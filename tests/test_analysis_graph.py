"""Model-graph verifier: per-rule fixtures, zoo invariants, soundness.

Every graph rule id gets one minimal failing fixture and one passing
fixture; the soundness demo mutates a valid CNV graph three ways and
checks each mutation is flagged with the correct rule id while the
pristine zoo models verify clean.
"""

from __future__ import annotations

import pytest

from repro.analysis import Severity, verify_model
from repro.core.architectures import build_cnv, table1_folding
from repro.core.zoo import verify_zoo
from repro.hw.compiler import (
    FoldingConfig,
    MVTUGeometry,
    compile_model,
    folding_violations,
    mvtu_geometry,
)
from repro.nn.layers import (
    BatchNorm,
    BinaryConv2D,
    BinaryDense,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    SignActivation,
)
from repro.nn.layers.xnor import XnorDense
from repro.nn.sequential import Sequential
from repro.testing import make_tiny_bnn

pytestmark = pytest.mark.analysis

UNIT_FOLD = FoldingConfig(pe=(1, 1, 1, 1), simd=(1, 1, 1, 1))


def conv_block(c_in, c_out, idx):
    return [
        (f"conv{idx}", BinaryConv2D(c_in, c_out, kernel_size=3, rng=idx)),
        (f"bn{idx}", BatchNorm(c_out)),
        (f"sign{idx}", SignActivation()),
    ]


def rule_ids(model, folding=None):
    return set(verify_model(model, folding).rule_ids)


# -- passing fixtures ----------------------------------------------------------
class TestCleanModels:
    def test_tiny_bnn_clean(self):
        report = verify_model(make_tiny_bnn(), UNIT_FOLD, name="tiny")
        assert report.rule_ids == []
        assert report.exit_code() == 0

    def test_tiny_bnn_clean_without_folding(self):
        assert verify_model(make_tiny_bnn()).rule_ids == []

    def test_zoo_models_all_verify_clean(self):
        """Zoo-wide invariant: every registered prototype + its Table I
        folding passes the verifier with zero findings."""
        reports = verify_zoo()
        assert set(reports) == {"cnv", "n-cnv", "u-cnv"}
        for name, report in reports.items():
            assert report.rule_ids == [], (
                f"{name} should verify clean:\n{report.render()}"
            )


# -- soundness demo (acceptance criterion) ------------------------------------
class TestSoundnessDemo:
    """Mutate a valid CNV graph; each mutation flags the right rule."""

    def _rebuild(self, mutate):
        cnv = build_cnv(rng=0)
        entries = [(name, cnv[name]) for name in cnv.layer_names]
        return Sequential(mutate(entries), input_shape=cnv.input_shape)

    def test_swapped_bn_sign_order_flagged(self):
        def swap(entries):
            out = list(entries)
            i = [n for n, _ in out].index("bn_conv1_1")
            out[i], out[i + 1] = out[i + 1], out[i]  # sign before bn
            return out

        ids = set(verify_model(self._rebuild(swap)).rule_ids)
        assert "MG002" in ids

    def test_pe_not_dividing_channels_flagged(self):
        folding = table1_folding("cnv")
        bad = FoldingConfig(
            pe=(7,) + folding.pe[1:], simd=folding.simd
        )  # conv1_1 has 64 output channels; 7 does not divide 64
        report = verify_model(build_cnv(rng=0), bad)
        assert "MG007" in report.rule_ids
        (diag,) = report.by_rule("MG007")
        assert diag.symbol == "conv1_1"

    def test_dropped_reshape_flagged(self):
        def drop_flatten(entries):
            return [(n, m) for n, m in entries if n != "flatten"]

        ids = set(verify_model(self._rebuild(drop_flatten)).rule_ids)
        assert "MG006" in ids

    def test_verifier_clean_implies_compile_succeeds(self):
        model = make_tiny_bnn()
        folding = UNIT_FOLD
        assert verify_model(model, folding).rule_ids == []
        compile_model(model, folding)  # must not raise


# -- one failing fixture per rule id ------------------------------------------
class TestPerRuleFailures:
    def test_mg001_shape_contract_violation(self):
        model = Sequential(
            conv_block(5, 8, 1)  # declares 5 input channels, input has 3
            + [("flatten", Flatten()), ("fc", BinaryDense(8, 4))],
            input_shape=(8, 8, 3),
        )
        assert "MG001" in rule_ids(model)

    def test_mg001_missing_input_shape(self):
        model = Sequential([("fc", BinaryDense(4, 2))])
        assert "MG001" in rule_ids(model)

    def test_mg002_sign_without_batchnorm(self):
        model = Sequential(
            [
                ("conv", BinaryConv2D(3, 8, rng=0)),
                ("sign", SignActivation()),  # no BN in front
                ("bn", BatchNorm(8)),
                ("flatten", Flatten()),
                ("fc", BinaryDense(8 * 6 * 6, 4)),
            ],
            input_shape=(8, 8, 3),
        )
        assert "MG002" in rule_ids(model)

    def test_mg003_pool_before_sign(self):
        model = Sequential(
            [
                ("conv", BinaryConv2D(3, 8, rng=0)),
                ("bn", BatchNorm(8)),
                ("pool", MaxPool2D(2)),  # pools the real-valued stream
                ("sign", SignActivation()),
                ("flatten", Flatten()),
                ("fc", BinaryDense(8 * 3 * 3, 4)),
            ],
            input_shape=(8, 8, 3),
        )
        assert "MG003" in rule_ids(model)

    def test_mg004_conv_without_bn_sign(self):
        model = Sequential(
            [
                ("conv", BinaryConv2D(3, 8, rng=0)),
                ("flatten", Flatten()),
                ("fc", BinaryDense(8 * 6 * 6, 4)),
            ],
            input_shape=(8, 8, 3),
        )
        assert "MG004" in rule_ids(model)

    def test_mg005_mid_stack_unthresholded_dense(self):
        model = Sequential(
            [
                ("flatten", Flatten()),
                ("fc1", BinaryDense(12, 8)),
                ("fc2", BinaryDense(8, 4)),
            ],
            input_shape=(2, 2, 3),
        )
        assert "MG005" in rule_ids(model)

    def test_mg005_fp_dense_head(self):
        model = Sequential(
            conv_block(3, 8, 1)
            + [("flatten", Flatten()), ("fc", Dense(8 * 6 * 6, 4))],
            input_shape=(8, 8, 3),
        )
        assert "MG005" in rule_ids(model)

    def test_mg005_xnor_logits(self):
        model = Sequential(
            [("flatten", Flatten()), ("fc", XnorDense(12, 4))],
            input_shape=(2, 2, 3),
        )
        assert "MG005" in rule_ids(model)

    def test_mg005_model_without_logits_layer(self):
        model = Sequential(
            conv_block(3, 8, 1), input_shape=(8, 8, 3)
        )  # ends in sign
        assert "MG005" in rule_ids(model)

    def test_mg006_missing_flatten(self):
        model = Sequential(
            conv_block(3, 8, 1) + [("fc", BinaryDense(8 * 6 * 6, 4))],
            input_shape=(8, 8, 3),
        )
        assert "MG006" in rule_ids(model)

    def test_mg007_pe_divisibility(self):
        model = make_tiny_bnn()  # conv1 has 8 output channels
        bad = FoldingConfig(pe=(3, 1, 1, 1), simd=(1, 1, 1, 1))
        assert "MG007" in rule_ids(model, bad)

    def test_mg008_simd_divisibility(self):
        model = make_tiny_bnn()  # conv1 fan-in is 3*3*3 = 27
        bad = FoldingConfig(pe=(1, 1, 1, 1), simd=(4, 1, 1, 1))
        assert "MG008" in rule_ids(model, bad)

    def test_mg009_folding_arity(self):
        model = make_tiny_bnn()
        bad = FoldingConfig(pe=(1, 1), simd=(1, 1))
        assert "MG009" in rule_ids(model, bad)

    def test_mg010_dead_sign(self):
        model = Sequential(
            conv_block(3, 8, 1)
            + [
                ("sign_again", SignActivation()),  # sign of binary stream
                ("flatten", Flatten()),
                ("fc", BinaryDense(8 * 6 * 6, 4)),
            ],
            input_shape=(8, 8, 3),
        )
        report = verify_model(model)
        assert "MG010" in report.rule_ids
        assert report.by_rule("MG010")[0].severity is Severity.WARNING

    def test_mg010_double_batchnorm(self):
        model = Sequential(
            [
                ("conv", BinaryConv2D(3, 8, rng=0)),
                ("bn", BatchNorm(8)),
                ("bn2", BatchNorm(8)),
                ("sign", SignActivation()),
                ("flatten", Flatten()),
                ("fc", BinaryDense(8 * 6 * 6, 4)),
            ],
            input_shape=(8, 8, 3),
        )
        assert "MG010" in rule_ids(model)

    def test_mg011_unbinarised_operand(self):
        model = Sequential(
            [
                ("conv1", BinaryConv2D(3, 8, rng=0)),
                ("bn1", BatchNorm(8)),
                # no sign: conv2 consumes the real-valued stream
                ("conv2", BinaryConv2D(8, 8, rng=1)),
                ("bn2", BatchNorm(8)),
                ("sign2", SignActivation()),
                ("flatten", Flatten()),
                ("fc", BinaryDense(8 * 4 * 4, 4)),
            ],
            input_shape=(8, 8, 3),
        )
        assert "MG011" in rule_ids(model)

    def test_mg012_resource_envelope(self):
        # 8192 * 1024 = 8.4M weight bits > the Z7020's 140 * 36Kb BRAM.
        model = Sequential(
            [
                ("flatten", Flatten()),
                ("fc1", BinaryDense(8192, 1024)),
                ("bn1", BatchNorm(1024)),
                ("sign1", SignActivation()),
                ("fc2", BinaryDense(1024, 4)),
            ],
            input_shape=(64, 32, 4),
        )
        folding = FoldingConfig(pe=(1, 1), simd=(1, 1))
        report = verify_model(model, folding)
        assert "MG012" in report.rule_ids
        assert report.by_rule("MG012")[0].severity is Severity.WARNING

    def test_mg013_strided_conv(self):
        model = Sequential(
            [
                ("conv", BinaryConv2D(3, 8, kernel_size=3, stride=2, rng=0)),
                ("bn", BatchNorm(8)),
                ("sign", SignActivation()),
                ("flatten", Flatten()),
                ("fc", BinaryDense(8 * 3 * 3, 4)),
            ],
            input_shape=(8, 8, 3),
        )
        assert "MG013" in rule_ids(model)

    def test_mg014_alien_layer(self):
        model = Sequential(
            [
                ("conv", BinaryConv2D(3, 8, rng=0)),
                ("bn", BatchNorm(8)),
                ("relu", ReLU()),
                ("flatten", Flatten()),
                ("fc", BinaryDense(8 * 6 * 6, 4)),
            ],
            input_shape=(8, 8, 3),
        )
        assert "MG014" in rule_ids(model)


# -- folding construction (satellite: fail at construction, named MVTU) -------
class TestBoundFoldingConfig:
    def test_bound_construction_rejects_bad_pe(self):
        geometry = (MVTUGeometry("conv1", "conv", 8, 27),)
        with pytest.raises(ValueError, match=r"conv1: PE=3 does not divide"):
            FoldingConfig(pe=(3,), simd=(1,), geometry=geometry)

    def test_bound_construction_rejects_bad_simd(self):
        geometry = (MVTUGeometry("fc1", "fc", 8, 27),)
        with pytest.raises(ValueError, match=r"fc1: SIMD=4 does not divide"):
            FoldingConfig(pe=(1,), simd=(4,), geometry=geometry)

    def test_for_model_names_the_offending_mvtu(self):
        with pytest.raises(ValueError, match=r"conv1: PE=3"):
            FoldingConfig(pe=(3, 1, 1, 1), simd=(1, 1, 1, 1)).for_model(
                make_tiny_bnn()
            )

    def test_compile_model_fails_early_with_named_mvtu(self):
        with pytest.raises(ValueError, match=r"conv2: PE=5"):
            compile_model(
                make_tiny_bnn(),
                FoldingConfig(pe=(1, 5, 1, 1), simd=(1, 1, 1, 1)),
            )

    def test_bound_and_unbound_compare_equal(self):
        model = make_tiny_bnn()
        unbound = FoldingConfig(pe=(1, 1, 1, 1), simd=(1, 1, 1, 1))
        assert unbound.for_model(model) == unbound

    def test_folding_violations_empty_for_legal(self):
        geometry = mvtu_geometry(make_tiny_bnn())
        assert folding_violations((8, 8, 16, 4), (3, 8, 4, 16), geometry) == []

    def test_mvtu_geometry_matches_table1(self):
        geoms = mvtu_geometry(build_cnv(rng=0))
        assert [g.name for g in geoms][:2] == ["conv1_1", "conv1_2"]
        assert geoms[0] == MVTUGeometry("conv1_1", "conv", 64, 27)
        folding = table1_folding("cnv")
        assert len(geoms) == len(folding)


# -- static shape hooks --------------------------------------------------------
class TestShapeHooks:
    def test_iter_shape_inference_captures_error_and_continues(self):
        model = Sequential(
            [
                ("conv", BinaryConv2D(5, 8, rng=0)),  # wrong channel count
                ("bn", BatchNorm(8)),
            ],
            input_shape=(8, 8, 3),
        )
        steps = list(model.iter_shape_inference())
        assert steps[0][0] == "conv"
        assert steps[0][3] is None and steps[0][4] is not None
        # downstream layers still visited, with unknown shapes
        assert steps[1][0] == "bn" and steps[1][2] is None

    def test_shapes_still_raises_on_bad_stack(self):
        model = Sequential(
            [("conv", BinaryConv2D(5, 8, rng=0))], input_shape=(8, 8, 3)
        )
        with pytest.raises(ValueError):
            model.shapes()

    def test_shapes_happy_path_unchanged(self):
        model = make_tiny_bnn()
        shapes = dict(model.shapes())
        assert shapes["conv1"] == (6, 6, 8)
        assert shapes["fc2"] == (4,)
