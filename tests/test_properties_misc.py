"""Cross-cutting hypothesis property tests.

Invariants that span modules and did not fit the per-module files:
balancing conservation, augmentation range/grid safety, threshold
monotonicity, pipeline-timing consistency.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.augmentation import Augmenter
from repro.data.balancing import balance_by_subsampling, class_distribution
from repro.hw.thresholding import apply_thresholds, fold_popcount_domain


@settings(max_examples=25, deadline=None)
@given(
    counts=st.lists(st.integers(2, 40), min_size=4, max_size=4),
    seed=st.integers(0, 1000),
)
def test_balancing_conserves_sample_identity(counts, seed):
    """Property: every balanced sample is an original sample with its
    original label (subsampling never relabels or fabricates)."""
    labels = np.concatenate([np.full(n, c) for c, n in enumerate(counts)])
    # Encode identity in the image payload.
    images = np.arange(len(labels), dtype=np.float32).reshape(-1, 1, 1, 1)
    images = np.broadcast_to(images, (len(labels), 2, 2, 3)).copy()
    xb, yb = balance_by_subsampling(images, labels, rng=seed)
    assert set(class_distribution(yb).values()) == {min(counts)}
    ids = xb[:, 0, 0, 0].astype(int)
    assert len(set(ids)) == len(ids)  # sampling without replacement
    np.testing.assert_array_equal(labels[ids], yb)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_augmenter_output_always_valid(seed):
    """Property: any augmentation combination yields a valid image —
    in range, on the uint8 grid, same shape and dtype."""
    rng = np.random.default_rng(seed)
    img = (rng.integers(0, 256, (16, 16, 3)) / 255.0).astype(np.float32)
    out = Augmenter()(img, rng=seed)
    assert out.shape == img.shape
    assert out.dtype == np.float32
    assert out.min() >= 0.0 and out.max() <= 1.0
    scaled = out * 255.0
    np.testing.assert_allclose(scaled, np.rint(scaled), atol=1e-4)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    fan_in=st.integers(2, 300),
)
def test_threshold_output_monotone_in_accumulator(seed, fan_in):
    """Property: per channel, the thresholded bit is monotone in the
    popcount (non-decreasing for un-flipped channels, non-increasing for
    flipped ones) — the defining structure of a threshold unit."""
    rng = np.random.default_rng(seed)
    channels = 6
    spec = fold_popcount_domain(
        rng.uniform(-2, 2, channels), rng.normal(0, 4, channels), fan_in
    )
    p = np.arange(fan_in + 1)[:, None].repeat(channels, axis=1)
    bits = apply_thresholds(p, spec).astype(np.int8)
    diffs = np.diff(bits, axis=0)
    for c in range(channels):
        if spec.flipped[c]:
            assert (diffs[:, c] <= 0).all()
        else:
            assert (diffs[:, c] >= 0).all()


@settings(max_examples=10, deadline=None)
@given(
    pe1=st.sampled_from([1, 2, 4, 8]),
    simd1=st.sampled_from([1, 3]),
    seed=st.integers(0, 100),
)
def test_faster_folding_never_slower(pe1, simd1, seed):
    """Property: increasing a layer's PE/SIMD never lowers throughput
    (monotone resource-performance trade-off of the folding model)."""
    from repro.hw.compiler import FoldingConfig, compile_model
    from repro.hw.pipeline import analyze_pipeline
    from repro.testing import make_tiny_bnn, randomize_bn_stats

    model = make_tiny_bnn(seed=seed)
    randomize_bn_stats(model, seed=seed)
    model.eval()
    base = FoldingConfig(pe=(pe1, 1, 1, 1), simd=(simd1, 1, 1, 1))
    bigger = FoldingConfig(pe=(pe1, 2, 2, 2), simd=(simd1, 2, 2, 2))
    fps_base = analyze_pipeline(compile_model(model, base)).fps_analytic
    fps_big = analyze_pipeline(compile_model(model, bigger)).fps_analytic
    assert fps_big >= fps_base - 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(1, 30))
def test_stream_simulation_rate_bounded_by_analytic(seed, n):
    """Property: no finite stream beats the analytic steady-state rate."""
    from repro.hw.compiler import FoldingConfig, compile_model
    from repro.hw.pipeline import analyze_pipeline, simulate_stream
    from repro.testing import make_tiny_bnn, randomize_bn_stats

    model = make_tiny_bnn(seed=seed % 7)
    randomize_bn_stats(model, seed=seed % 7)
    model.eval()
    acc = compile_model(model, FoldingConfig(pe=(1, 1, 1, 1), simd=(1, 1, 1, 1)))
    timing = analyze_pipeline(acc)
    sim = simulate_stream(acc, num_images=n)
    assert float(sim["fps"]) <= timing.fps_analytic + 1e-6
