"""Tests for the Sequential container: taps, persistence, introspection."""

import numpy as np
import pytest

from repro.nn.layers import (
    BatchNorm,
    BinaryConv2D,
    Dense,
    Flatten,
    ReLU,
    SignActivation,
)
from repro.nn.sequential import Sequential


def small_model(seed=0):
    return Sequential(
        [
            ("conv", BinaryConv2D(1, 4, kernel_size=3, rng=seed)),
            ("bn", BatchNorm(4)),
            ("sign", SignActivation()),
            ("flatten", Flatten()),
            ("fc", Dense(4 * 4 * 4, 3, rng=seed + 1)),
        ],
        input_shape=(6, 6, 1),
    )


@pytest.fixture()
def x():
    return np.random.default_rng(0).standard_normal((2, 6, 6, 1)).astype(np.float32)


class TestConstruction:
    def test_auto_naming(self):
        m = Sequential([ReLU(), ReLU()])
        assert m.layer_names == ["relu0", "relu1"]

    def test_duplicate_name_rejected(self):
        m = Sequential([("a", ReLU())])
        with pytest.raises(ValueError, match="duplicate"):
            m.add(ReLU(), name="a")

    def test_non_module_rejected(self):
        with pytest.raises(TypeError, match="Module"):
            Sequential([("a", "not a layer")])

    def test_getitem(self):
        m = small_model()
        assert m["bn"] is m.layers[1]
        with pytest.raises(KeyError, match="available"):
            m["missing"]

    def test_index_of(self):
        m = small_model()
        assert m.index_of("sign") == 2
        with pytest.raises(KeyError):
            m.index_of("nope")

    def test_add_propagates_mode(self):
        m = small_model().eval()
        m.add(ReLU(), name="extra")
        assert not m["extra"].training


class TestForwardBackward:
    def test_forward_shape(self, x):
        assert small_model().forward(x).shape == (2, 3)

    def test_taps_record_activations(self, x):
        m = small_model()
        m.forward(x, taps=("sign", "conv"))
        assert m.tap_activations["sign"].shape == (2, 4, 4, 4)
        assert m.tap_activations["conv"].shape == (2, 4, 4, 4)

    def test_unknown_tap_rejected(self, x):
        with pytest.raises(KeyError, match="unknown tap"):
            small_model().forward(x, taps=("mystery",))

    def test_backward_taps_record_gradients(self, x):
        m = small_model()
        out = m.forward(x, taps=("sign",))
        m.backward(np.ones_like(out), taps=("sign",))
        assert m.tap_gradients["sign"].shape == (2, 4, 4, 4)

    def test_backward_returns_input_grad(self, x):
        m = small_model()
        out = m.forward(x)
        grad = m.backward(np.ones_like(out))
        assert grad.shape == x.shape


class TestIntrospection:
    def test_shapes(self):
        shapes = dict(small_model().shapes())
        assert shapes["conv"] == (4, 4, 4)
        assert shapes["flatten"] == (64,)
        assert shapes["fc"] == (3,)

    def test_shapes_requires_input_shape(self):
        m = Sequential([ReLU()])
        with pytest.raises(ValueError, match="input_shape"):
            m.shapes()

    def test_summary_contains_totals(self):
        s = small_model().summary()
        assert "total parameters" in s
        assert "conv" in s

    def test_num_parameters(self):
        m = small_model()
        expected = 3 * 3 * 1 * 4 + 2 * 4 + 64 * 3  # conv + bn(gamma,beta) + fc
        assert m.num_parameters() == expected

    def test_named_parameters_paths(self):
        names = [n for n, _ in small_model().named_parameters()]
        assert "conv.weight" in names and "bn.gamma" in names


class TestPersistence:
    def test_state_dict_roundtrip(self, x, tmp_path):
        m1 = small_model(seed=0)
        m1.forward(x)  # update BN running stats
        m1.eval()
        ref = m1.forward(x)
        path = m1.save(tmp_path / "model", metadata={"tag": "test"})
        m2 = small_model(seed=99)  # different init
        meta = m2.load(path)
        m2.eval()
        np.testing.assert_allclose(m2.forward(x), ref, atol=1e-6)
        assert meta["tag"] == "test"
        assert meta["layer_names"] == m1.layer_names

    def test_state_dict_includes_running_stats(self):
        state = small_model().state_dict()
        assert "bn.running_mean" in state and "bn.running_var" in state

    def test_load_rejects_missing_keys(self):
        m = small_model()
        state = m.state_dict()
        del state["fc.weight"]
        with pytest.raises(ValueError, match="missing"):
            m.load_state_dict(state)

    def test_load_rejects_extra_keys(self):
        m = small_model()
        state = m.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(ValueError, match="unexpected"):
            m.load_state_dict(state)

    def test_load_rejects_shape_mismatch(self):
        m = small_model()
        state = m.state_dict()
        state["fc.weight"] = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="shape mismatch"):
            m.load_state_dict(state)

    def test_state_dict_returns_copies(self):
        m = small_model()
        state = m.state_dict()
        state["fc.weight"][:] = 99.0
        assert not np.any(m["fc"].weight.data == 99.0)


class TestModes:
    def test_train_eval_recursive(self):
        m = small_model()
        m.eval()
        assert all(not layer.training for layer in m.layers)
        m.train()
        assert all(layer.training for layer in m.layers)

    def test_zero_grad(self, x):
        m = small_model()
        out = m.forward(x)
        m.backward(np.ones_like(out))
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())

    def test_clear_cache(self, x):
        m = small_model()
        m.forward(x)
        m.clear_cache()
        with pytest.raises(RuntimeError):
            m.backward(np.ones((2, 3), dtype=np.float32))
