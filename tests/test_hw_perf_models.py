"""Tests for pipeline timing, resources, power, devices and DSE."""

import numpy as np
import pytest

from repro.core.architectures import build_architecture, table1_folding
from repro.hw.compiler import FoldingConfig, compile_model
from repro.hw.devices import DEVICES, Z7010, Z7020, Device, fit_report
from repro.hw.dse import (
    DesignPoint,
    balance_folding,
    divisors,
    explore,
    legal_foldings,
    pareto_frontier,
)
from repro.hw.pipeline import (
    MEASURED_EFFICIENCY,
    analyze_pipeline,
    simulate_stream,
)
from repro.hw.power import IDLE_POWER_W, PowerModel
from repro.hw.resources import TABLE2_CALIBRATION, estimate_resources
from repro.testing import make_tiny_bnn, randomize_bn_stats


@pytest.fixture(scope="module")
def prototype_accelerators():
    """The three paper prototypes with plausible BN stats, compiled."""
    out = {}
    for name in ("cnv", "n-cnv", "u-cnv"):
        model = build_architecture(name, rng=0)
        randomize_bn_stats(model, seed=1)
        model.eval()
        out[name] = compile_model(model, table1_folding(name), name=name)
    return out


class TestPipelineTiming:
    def test_ncnv_throughput_matches_paper(self, prototype_accelerators):
        """The paper's headline: ~6400 FPS for n-CNV at 100 MHz."""
        timing = analyze_pipeline(prototype_accelerators["n-cnv"], 100.0)
        assert 6000 <= timing.fps_calibrated <= 6800
        # Analytic bound is about 2x the measured rate.
        assert 11000 <= timing.fps_analytic <= 14000

    def test_ncnv_bottleneck_is_first_conv(self, prototype_accelerators):
        timing = analyze_pipeline(prototype_accelerators["n-cnv"])
        assert timing.bottleneck[0] == "conv1_1"

    def test_cnv_slower_than_ncnv(self, prototype_accelerators):
        fps = {
            name: analyze_pipeline(acc).fps_analytic
            for name, acc in prototype_accelerators.items()
        }
        assert fps["n-cnv"] > fps["cnv"]
        assert fps["n-cnv"] > fps["u-cnv"]

    def test_latency_is_sum_of_intervals(self, prototype_accelerators):
        timing = analyze_pipeline(prototype_accelerators["n-cnv"])
        assert timing.latency_cycles == sum(ii for _, ii in timing.stage_intervals)

    def test_clock_scales_throughput(self, prototype_accelerators):
        acc = prototype_accelerators["n-cnv"]
        f100 = analyze_pipeline(acc, 100.0).fps_analytic
        f200 = analyze_pipeline(acc, 200.0).fps_analytic
        assert abs(f200 - 2 * f100) < 1e-6

    def test_report_mentions_bottleneck(self, prototype_accelerators):
        report = analyze_pipeline(prototype_accelerators["n-cnv"]).report()
        assert "bottleneck" in report and "FPS" in report

    def test_validation(self, prototype_accelerators):
        acc = prototype_accelerators["n-cnv"]
        with pytest.raises(ValueError, match="clock"):
            analyze_pipeline(acc, 0.0)
        with pytest.raises(ValueError, match="efficiency"):
            analyze_pipeline(acc, 100.0, efficiency=0.0)


class TestSimulateStream:
    def test_converges_to_analytic_rate(self, prototype_accelerators):
        acc = prototype_accelerators["n-cnv"]
        timing = analyze_pipeline(acc)
        sim = simulate_stream(acc, num_images=100)
        assert sim["fps"] == pytest.approx(timing.fps_analytic, rel=0.15)

    def test_monotone_schedule(self, prototype_accelerators):
        sim = simulate_stream(prototype_accelerators["u-cnv"], num_images=10)
        start, finish = sim["start"], sim["finish"]
        assert (finish > start).all()
        # Images exit in order, stages process in order.
        assert (np.diff(finish[:, -1]) > 0).all()
        assert (np.diff(finish[0, :]) > 0).all()

    def test_single_image_latency(self, prototype_accelerators):
        acc = prototype_accelerators["n-cnv"]
        sim = simulate_stream(acc, num_images=1)
        assert sim["total_cycles"] == analyze_pipeline(acc).latency_cycles

    def test_validation(self, prototype_accelerators):
        with pytest.raises(ValueError, match="positive"):
            simulate_stream(prototype_accelerators["n-cnv"], 0)


class TestResources:
    def test_table2_lut_exact(self, prototype_accelerators):
        """The LUT model reproduces Table II exactly for all prototypes."""
        for name, acc in prototype_accelerators.items():
            res = estimate_resources(acc, dsp_offload=(name == "u-cnv"))
            assert res.lut == pytest.approx(TABLE2_CALIBRATION[name]["lut"], abs=1.0)

    def test_table2_bram_within_tolerance(self, prototype_accelerators):
        for name, acc in prototype_accelerators.items():
            res = estimate_resources(acc)
            paper = TABLE2_CALIBRATION[name]["bram"]
            assert res.bram36 == pytest.approx(paper, rel=0.35), name

    def test_dsp_counts(self, prototype_accelerators):
        cnv = estimate_resources(prototype_accelerators["cnv"])
        assert cnv.dsp == 24  # exact Table II value
        ucnv = estimate_resources(prototype_accelerators["u-cnv"], dsp_offload=True)
        assert ucnv.dsp == 27  # exact Table II value

    def test_memory_footprint_ordering(self, prototype_accelerators):
        """§IV-B: µ-CNV has a *larger* weight footprint than n-CNV."""
        n = prototype_accelerators["n-cnv"].weight_bits()
        u = prototype_accelerators["u-cnv"].weight_bits()
        c = prototype_accelerators["cnv"].weight_bits()
        assert u > n
        assert c > u

    def test_per_stage_breakdown_sums(self, prototype_accelerators):
        from repro.hw.resources import LUT_BASE

        res = estimate_resources(prototype_accelerators["n-cnv"])
        assert res.lut == pytest.approx(LUT_BASE + sum(res.per_stage_lut))
        assert res.bram36 == pytest.approx(sum(res.per_stage_bram))

    def test_report_string(self, prototype_accelerators):
        res = estimate_resources(prototype_accelerators["u-cnv"], dsp_offload=True)
        assert "offload" in res.report()


class TestDevices:
    def test_only_ucnv_fits_z7010(self, prototype_accelerators):
        """§IV-B: µ-CNV is synthesizable on the constrained Z7010."""
        fits = {}
        for name, acc in prototype_accelerators.items():
            res = estimate_resources(acc, dsp_offload=(name == "u-cnv"))
            fits[name] = Z7010.fits(res.lut, res.bram36, res.dsp)
        assert fits == {"cnv": False, "n-cnv": False, "u-cnv": True}

    def test_all_fit_z7020(self, prototype_accelerators):
        for name, acc in prototype_accelerators.items():
            res = estimate_resources(acc, dsp_offload=(name == "u-cnv"))
            assert Z7020.fits(res.lut, res.bram36, res.dsp), name

    def test_utilisation(self):
        util = Z7020.utilisation(26600, 70, 110)
        assert util["lut"] == pytest.approx(0.5)
        assert util["bram36"] == pytest.approx(0.5)
        assert util["dsp"] == pytest.approx(0.5)

    def test_fit_report_lines(self):
        lines = fit_report(lut=20000, bram36=10, dsp=20)
        assert len(lines) == len(DEVICES)
        assert any("FITS" in line for line in lines)
        assert any("does not fit" in line for line in lines)

    def test_device_validation(self):
        with pytest.raises(ValueError, match="positive"):
            Device(name="bad", luts=0, flip_flops=1, bram36=1, dsp48=1)


class TestPower:
    def test_idle_matches_paper(self):
        """§IV-B: idle power ~1.6 W for all prototypes."""
        assert IDLE_POWER_W == pytest.approx(1.6)

    def test_active_power_plausible(self, prototype_accelerators):
        model = PowerModel()
        for name, acc in prototype_accelerators.items():
            res = estimate_resources(acc)
            report = model.estimate(res, clock_mhz=100.0)
            assert report.idle_w == pytest.approx(1.6)
            assert 1.7 < report.active_w < 3.0, name

    def test_gate_mode_near_idle(self, prototype_accelerators):
        """A single gate is idle almost always -> average ≈ 1.6 W."""
        model = PowerModel()
        res = estimate_resources(prototype_accelerators["n-cnv"])
        avg = model.gate_mode_average_w(
            res, classifications_per_hour=600, classification_us=500.0
        )
        assert avg == pytest.approx(IDLE_POWER_W, abs=0.01)

    def test_utilization_scales_dynamic(self, prototype_accelerators):
        model = PowerModel()
        res = estimate_resources(prototype_accelerators["cnv"])
        half = model.estimate(res, utilization=0.5)
        full = model.estimate(res, utilization=1.0)
        assert half.dynamic_w == pytest.approx(full.dynamic_w / 2)

    def test_energy_per_classification(self, prototype_accelerators):
        model = PowerModel()
        res = estimate_resources(prototype_accelerators["n-cnv"])
        report = model.estimate(res)
        mj = report.energy_per_classification_mj(6400.0)
        assert 0.1 < mj < 1.0  # sub-millijoule per frame

    def test_validation(self, prototype_accelerators):
        model = PowerModel()
        res = estimate_resources(prototype_accelerators["n-cnv"])
        with pytest.raises(ValueError, match="utilization"):
            model.estimate(res, utilization=2.0)
        with pytest.raises(ValueError, match="positive"):
            model.estimate(res, clock_mhz=0.0)
        with pytest.raises(ValueError, match="fps"):
            model.estimate(res).energy_per_classification_mj(0.0)


class TestDSE:
    def test_divisors(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(1) == [1]
        with pytest.raises(ValueError):
            divisors(0)

    def test_legal_foldings_respect_constraints(self):
        pairs = legal_foldings(64, 27, max_pe=16, max_simd=9)
        assert all(64 % pe == 0 and 27 % simd == 0 for pe, simd in pairs)
        assert all(pe <= 16 and simd <= 9 for pe, simd in pairs)
        assert (16, 9) in pairs

    def test_balance_folding_meets_target(self):
        model = make_tiny_bnn()
        randomize_bn_stats(model)
        model.eval()
        folding = balance_folding(model, target_cycles=2000)
        acc = compile_model(model, folding)
        # Every MVTU (not necessarily SWU) meets the target.
        for stage in acc.stages:
            assert (
                stage.mvtu.cycles_per_image(stage.vectors_per_image) <= 2000
            ), stage.name

    def test_tighter_target_costs_more(self):
        model = make_tiny_bnn()
        randomize_bn_stats(model)
        model.eval()
        loose = balance_folding(model, target_cycles=50_000)
        tight = balance_folding(model, target_cycles=500)
        cost = lambda f: sum(p * s for p, s in zip(f.pe, f.simd))
        assert cost(tight) > cost(loose)

    def test_explore_and_pareto(self):
        model = make_tiny_bnn()
        randomize_bn_stats(model)
        model.eval()
        points = explore(model, [200, 1000, 5000, 50_000], device=Z7020)
        assert points
        frontier = pareto_frontier(points)
        assert frontier
        # Frontier is sorted by fps desc and has no dominated points.
        fps = [p.fps_analytic for p in frontier]
        assert fps == sorted(fps, reverse=True)
        for p in frontier:
            assert not any(q.dominates(p) for q in frontier if q is not p)

    def test_dominates(self):
        a = DesignPoint(None, fps_analytic=100, bottleneck=("x", 1), lut=10, bram36=0, dsp=0)
        b = DesignPoint(None, fps_analytic=50, bottleneck=("x", 1), lut=20, bram36=0, dsp=0)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(a)

    def test_balance_validation(self):
        with pytest.raises(ValueError, match="positive"):
            balance_folding(make_tiny_bnn(), target_cycles=0)
