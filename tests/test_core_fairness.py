"""Tests for the demographic-parity (fairness) evaluation."""

import numpy as np
import pytest

from repro.core.fairness import FACTOR_COHORTS, FairnessReport, evaluate_fairness


class TestFairnessReport:
    def _report(self):
        return FairnessReport(
            factor="skin_tone",
            cohort_accuracy={"a": 0.9, "b": 0.7, "c": 0.8},
            samples_per_cohort=10,
        )

    def test_disparity(self):
        r = self._report()
        assert r.disparity == pytest.approx(0.2)
        assert r.worst == ("b", 0.7)
        assert r.best == ("a", 0.9)

    def test_mean(self):
        assert self._report().mean_accuracy() == pytest.approx(0.8)

    def test_render(self):
        out = self._report().render()
        assert "disparity" in out and "skin_tone" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="cohort"):
            FairnessReport(factor="x", cohort_accuracy={}, samples_per_cohort=1)


class TestFactorCohorts:
    def test_factor_catalog(self):
        assert set(FACTOR_COHORTS) == {
            "skin_tone",
            "age_group",
            "hair_color",
            "mask_type",
        }

    def test_skin_cohort_count_matches_palette(self):
        from repro.data.attributes import SKIN_TONES

        assert len(FACTOR_COHORTS["skin_tone"]()) == len(SKIN_TONES)

    def test_cohorts_differ_only_in_factor(self):
        for factor, builder in FACTOR_COHORTS.items():
            cohorts = builder()
            assert len(cohorts) >= 2
            names = [name for name, _ in cohorts]
            assert len(set(names)) == len(names)


class TestEvaluateFairness:
    def test_contract(self, trained_tiny_classifier):
        report = evaluate_fairness(
            trained_tiny_classifier.model, "age_group", samples_per_cohort=8, rng=0
        )
        assert set(report.cohort_accuracy) == {"infant", "adult", "elderly"}
        assert all(0.0 <= a <= 1.0 for a in report.cohort_accuracy.values())
        assert 0.0 <= report.disparity <= 1.0

    def test_trained_model_above_chance_everywhere(self, trained_tiny_classifier):
        report = evaluate_fairness(
            trained_tiny_classifier.model, "mask_type", samples_per_cohort=12, rng=1
        )
        # Every mask-type cohort should classify above the 25% chance
        # level even for this lightly trained model.
        assert report.worst[1] > 0.25

    def test_deterministic(self, trained_tiny_classifier):
        a = evaluate_fairness(
            trained_tiny_classifier.model, "age_group", samples_per_cohort=4, rng=5
        )
        b = evaluate_fairness(
            trained_tiny_classifier.model, "age_group", samples_per_cohort=4, rng=5
        )
        assert a.cohort_accuracy == b.cohort_accuracy

    def test_unknown_factor(self, trained_tiny_classifier):
        with pytest.raises(ValueError, match="unknown factor"):
            evaluate_fairness(trained_tiny_classifier.model, "zodiac_sign")

    def test_samples_validation(self, trained_tiny_classifier):
        with pytest.raises(ValueError, match=">= 4"):
            evaluate_fairness(
                trained_tiny_classifier.model, "age_group", samples_per_cohort=2
            )
