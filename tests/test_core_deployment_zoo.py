"""Tests for the deployment scenarios and the model zoo cache."""

import numpy as np
import pytest

from repro.core.classifier import TrainingBudget
from repro.core.deployment import CrowdAnalyzer, GateMonitor
from repro.core.zoo import dataset_cached, trained_classifier
from repro.data.mask_model import CLASS_NAMES, WearClass


@pytest.fixture(scope="module")
def accelerator(trained_tiny_classifier):
    return trained_tiny_classifier.deploy()


class TestGateMonitor:
    def test_event_logging(self, accelerator, tiny_splits):
        gate = GateMonitor(accelerator)
        for t, img in enumerate(tiny_splits.test.images[:6]):
            event = gate.process_subject(img, timestamp_s=float(t))
            assert event.predicted_class in WearClass
            assert event.admitted == (event.predicted_class == WearClass.CORRECT)
        assert len(gate.events) == 6
        assert 0.0 <= gate.admission_rate() <= 1.0

    def test_admission_rate_requires_events(self, accelerator):
        with pytest.raises(ValueError, match="no subjects"):
            GateMonitor(accelerator).admission_rate()

    def test_average_power_near_idle(self, accelerator):
        """The paper's gate scenario: ~1.6 W."""
        gate = GateMonitor(accelerator)
        avg = gate.average_power_w(subjects_per_hour=1000)
        assert avg == pytest.approx(1.6, abs=0.05)

    def test_power_grows_with_traffic(self, accelerator):
        gate = GateMonitor(accelerator)
        low = gate.average_power_w(subjects_per_hour=10)
        high = gate.average_power_w(subjects_per_hour=3_000_000)
        assert high > low


class TestCrowdAnalyzer:
    def test_statistics(self, accelerator, tiny_splits):
        crowd = CrowdAnalyzer(accelerator)
        stats = crowd.analyze(tiny_splits.test.images[:20])
        assert stats.frames_processed == 20
        assert sum(stats.class_counts.values()) == 20
        assert set(stats.class_counts) == set(CLASS_NAMES)
        assert 0.0 <= stats.compliance_rate <= 1.0
        assert stats.effective_fps > 0

    def test_report_mentions_compliance(self, accelerator, tiny_splits):
        stats = CrowdAnalyzer(accelerator).analyze(tiny_splits.test.images[:8])
        assert "compliance" in stats.report()

    def test_rejects_single_image(self, accelerator, tiny_splits):
        with pytest.raises(ValueError, match="batch"):
            CrowdAnalyzer(accelerator).analyze(tiny_splits.test.images[0])

    def test_throughput_scales_with_batch(self, accelerator, tiny_splits):
        crowd = CrowdAnalyzer(accelerator)
        small = crowd.analyze(tiny_splits.test.images[:4])
        large = crowd.analyze(tiny_splits.test.images[:40])
        # Larger batches amortise the pipeline fill -> higher effective FPS.
        assert large.effective_fps > small.effective_fps

    def test_compliance_requires_faces(self, accelerator):
        from repro.core.deployment import CrowdStatistics

        stats = CrowdStatistics(
            class_counts={n: 0 for n in CLASS_NAMES},
            frames_processed=0,
            wall_seconds_modelled=1.0,
        )
        with pytest.raises(ValueError, match="no faces"):
            stats.compliance_rate


class TestZoo:
    def test_dataset_cached_memoises(self):
        a = dataset_cached(raw_size=80, rng=5, augmented_copies=0)
        b = dataset_cached(raw_size=80, rng=5, augmented_copies=0)
        assert a is b

    def test_trained_classifier_caches_to_disk(self, tmp_path):
        splits = dataset_cached(raw_size=80, rng=5, augmented_copies=0)
        budget = TrainingBudget(epochs=1, early_stopping_patience=None)
        kwargs = dict(
            splits=splits,
            budget=budget,
            cache_dir=tmp_path,
            dataset_key={"test": 1},
        )
        clf1 = trained_classifier("u-cnv", **kwargs)
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 1
        clf2 = trained_classifier("u-cnv", **kwargs)
        np.testing.assert_array_equal(
            clf1.model["conv1_1"].weight.data, clf2.model["conv1_1"].weight.data
        )
        assert len(list(tmp_path.glob("*.npz"))) == 1  # no retrain

    def test_different_budget_different_cache_key(self, tmp_path):
        splits = dataset_cached(raw_size=80, rng=5, augmented_copies=0)
        for epochs in (1, 2):
            trained_classifier(
                "u-cnv",
                splits=splits,
                budget=TrainingBudget(epochs=epochs, early_stopping_patience=None),
                cache_dir=tmp_path,
                dataset_key={"test": 2},
            )
        assert len(list(tmp_path.glob("*.npz"))) == 2
