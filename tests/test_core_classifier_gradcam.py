"""Tests for the BinaryCoP classifier API, Grad-CAM and generalization
studies, plus the end-to-end integration path (train -> deploy)."""

import numpy as np
import pytest

from repro.core.classifier import BinaryCoP, TrainingBudget
from repro.core.gradcam import GradCAM, attention_band_profile
from repro.core.generalization import GENERALIZATION_PANELS, run_study
from repro.data.generator import FaceSampleGenerator, SampleSpec
from repro.data.mask_model import WearClass


class TestTrainingBudget:
    def test_presets(self):
        assert TrainingBudget.paper().epochs == 300
        assert TrainingBudget.smoke().epochs <= 5
        assert TrainingBudget.laptop().epochs < TrainingBudget.paper().epochs

    def test_validation(self):
        with pytest.raises(ValueError, match="epochs"):
            TrainingBudget(epochs=0)
        with pytest.raises(ValueError, match="learning_rate"):
            TrainingBudget(learning_rate=-1.0)


class TestBinaryCoPBasics:
    def test_unknown_architecture(self):
        with pytest.raises(ValueError, match="unknown"):
            BinaryCoP("lenet")

    def test_is_binary_flag(self):
        assert BinaryCoP("n-cnv").is_binary
        assert not BinaryCoP("fp32-cnv").is_binary

    def test_fp32_not_deployable(self):
        with pytest.raises(ValueError, match="not deployable"):
            BinaryCoP("fp32-cnv").deploy()


class TestTrainedClassifier:
    """Uses the session-scoped smoke-trained n-CNV."""

    def test_training_learned_something(self, trained_tiny_classifier, tiny_splits):
        metrics = trained_tiny_classifier.evaluate(tiny_splits.test)
        assert metrics["accuracy"] > 0.4  # far above 25% chance

    def test_history_recorded(self, trained_tiny_classifier):
        assert trained_tiny_classifier.history is not None
        assert trained_tiny_classifier.history.epochs >= 1

    def test_predict_shapes(self, trained_tiny_classifier, tiny_splits):
        preds = trained_tiny_classifier.predict(tiny_splits.test.images[:10])
        assert preds.shape == (10,)
        single = trained_tiny_classifier.predict(tiny_splits.test.images[0])
        assert single.shape == (1,)

    def test_confusion_consistent_with_evaluate(
        self, trained_tiny_classifier, tiny_splits
    ):
        cm = trained_tiny_classifier.confusion(tiny_splits.test)
        metrics = trained_tiny_classifier.evaluate(tiny_splits.test)
        assert cm.overall_accuracy() == pytest.approx(metrics["accuracy"])

    def test_save_load_roundtrip(self, trained_tiny_classifier, tiny_splits, tmp_path):
        path = trained_tiny_classifier.save(tmp_path / "clf")
        restored = BinaryCoP.load(path)
        assert restored.architecture == trained_tiny_classifier.architecture
        np.testing.assert_array_equal(
            restored.predict(tiny_splits.test.images[:16]),
            trained_tiny_classifier.predict(tiny_splits.test.images[:16]),
        )

    def test_load_rejects_unknown_architecture(self, tmp_path):
        from repro.utils.serialization import save_arrays

        path = save_arrays(tmp_path / "bad", {"x": np.zeros(1)}, {"architecture": "gpt"})
        with pytest.raises(ValueError, match="known architecture"):
            BinaryCoP.load(path)

    def test_deploy_agrees_with_software(self, trained_tiny_classifier, tiny_splits):
        """End-to-end: Table I folding, integer datapath == float path."""
        acc = trained_tiny_classifier.deploy()
        images = tiny_splits.test.images[:32]
        sw = trained_tiny_classifier.predict(images)
        hw = acc.predict(images)
        assert (sw == hw).mean() >= 0.97

    def test_deploy_custom_folding(self, trained_tiny_classifier):
        from repro.hw.compiler import FoldingConfig

        folding = FoldingConfig(pe=(1,) * 9, simd=(1,) * 9)
        acc = trained_tiny_classifier.deploy(folding=folding, name="slow")
        assert acc.name == "slow"
        assert acc.folding() == folding


class TestGradCAM:
    def test_heatmap_contract(self, trained_tiny_classifier, tiny_splits):
        result = trained_tiny_classifier.gradcam(tiny_splits.test.images[0])
        assert result.heatmap.shape == (10, 10)  # conv2_2 output for 32x32
        assert result.heatmap.min() >= 0.0
        assert result.heatmap.max() <= 1.0 + 1e-6
        assert result.layer == "conv2_2"

    def test_target_class_override(self, trained_tiny_classifier, tiny_splits):
        img = tiny_splits.test.images[1]
        r = trained_tiny_classifier.gradcam(img, target_class=2)
        assert r.target_class == 2

    def test_default_target_is_prediction(self, trained_tiny_classifier, tiny_splits):
        img = tiny_splits.test.images[2]
        r = trained_tiny_classifier.gradcam(img)
        assert r.target_class == r.predicted_class

    def test_different_classes_different_maps(
        self, trained_tiny_classifier, tiny_splits
    ):
        img = tiny_splits.test.images[3]
        maps = [
            trained_tiny_classifier.gradcam(img, target_class=c).heatmap
            for c in range(4)
        ]
        diffs = [np.abs(maps[0] - m).max() for m in maps[1:]]
        assert max(diffs) > 0.0

    def test_model_state_restored(self, trained_tiny_classifier, tiny_splits):
        model = trained_tiny_classifier.model
        model.eval()
        trained_tiny_classifier.gradcam(tiny_splits.test.images[0])
        assert not model.training  # Grad-CAM must not leave training mode on

    def test_gradcam_does_not_change_predictions(
        self, trained_tiny_classifier, tiny_splits
    ):
        images = tiny_splits.test.images[:8]
        before = trained_tiny_classifier.predict(images)
        trained_tiny_classifier.gradcam(images[0])
        after = trained_tiny_classifier.predict(images)
        np.testing.assert_array_equal(before, after)

    def test_overlay_shape(self, trained_tiny_classifier, tiny_splits):
        img = tiny_splits.test.images[0]
        r = trained_tiny_classifier.gradcam(img)
        overlay = r.overlay(img)
        assert overlay.shape == img.shape
        assert overlay.min() >= 0.0 and overlay.max() <= 1.0

    def test_unknown_layer_rejected(self, trained_tiny_classifier):
        with pytest.raises(KeyError, match="not in model"):
            GradCAM(trained_tiny_classifier.model, layer="conv9_9")

    def test_batch_input_rejected(self, trained_tiny_classifier, tiny_splits):
        cam = GradCAM(trained_tiny_classifier.model)
        with pytest.raises(ValueError, match="single"):
            cam.compute(tiny_splits.test.images[:2])

    def test_invalid_target_class(self, trained_tiny_classifier, tiny_splits):
        with pytest.raises(ValueError, match="out of range"):
            trained_tiny_classifier.gradcam(tiny_splits.test.images[0], target_class=9)


class TestAttentionBands:
    def test_profile_sums_to_one(self, trained_tiny_classifier):
        gen = FaceSampleGenerator()
        sample = gen.generate_one(0, SampleSpec(wear_class=WearClass.CORRECT))
        result = trained_tiny_classifier.gradcam(sample.image)
        profile = attention_band_profile(result, sample)
        assert sum(profile.values()) == pytest.approx(1.0, abs=1e-5)
        assert set(profile) == {
            "background",
            "forehead_eyes",
            "nose",
            "mouth",
            "chin_neck",
        }

    def test_zero_heatmap_gives_zero_profile(self, trained_tiny_classifier):
        gen = FaceSampleGenerator()
        sample = gen.generate_one(1)
        result = trained_tiny_classifier.gradcam(sample.image)
        result.heatmap[:] = 0.0
        profile = attention_band_profile(result, sample)
        assert all(v == 0.0 for v in profile.values())


class TestGeneralizationStudy:
    def test_panels_defined(self):
        assert set(GENERALIZATION_PANELS) == {
            "fig7_age",
            "fig8_hair_headgear",
            "fig9_manipulation",
        }

    def test_run_study_contract(self, trained_tiny_classifier):
        result = run_study(
            trained_tiny_classifier.model,
            "fig7_age",
            model_name="tiny",
            samples_per_case=3,
            rng=0,
        )
        assert result.cases == ["infant", "adult", "elderly"]
        assert all(0.0 <= result.accuracy[c] <= 1.0 for c in result.cases)
        assert "panel" in result.report() or "fig7_age" in result.report()

    def test_unknown_panel(self, trained_tiny_classifier):
        with pytest.raises(ValueError, match="unknown panel"):
            run_study(trained_tiny_classifier.model, "fig99")

    def test_samples_validation(self, trained_tiny_classifier):
        with pytest.raises(ValueError, match="positive"):
            run_study(trained_tiny_classifier.model, "fig7_age", samples_per_case=0)
