"""Tests for repro.nn.functional: im2col/col2im, pooling windows."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


class TestConvOutputHW:
    def test_valid_conv(self):
        assert F.conv_output_hw((32, 32), (3, 3), (1, 1), (0, 0)) == (30, 30)

    def test_padding(self):
        assert F.conv_output_hw((32, 32), (3, 3), (1, 1), (1, 1)) == (32, 32)

    def test_stride(self):
        assert F.conv_output_hw((8, 8), (2, 2), (2, 2), (0, 0)) == (4, 4)

    def test_too_small_raises(self):
        with pytest.raises(ValueError, match="does not fit"):
            F.conv_output_hw((2, 2), (3, 3), (1, 1), (0, 0))


class TestIm2col:
    def test_known_patch(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        cols = F.im2col(x, (3, 3))
        assert cols.shape == (1, 2, 2, 9)
        # Top-left window is rows 0-2, cols 0-2 (channel-fastest order is
        # trivial with C=1).
        np.testing.assert_array_equal(
            cols[0, 0, 0], [0, 1, 2, 4, 5, 6, 8, 9, 10]
        )

    def test_channel_fastest_ordering(self):
        # Two channels: patch layout must be (kh, kw, C).
        x = np.zeros((1, 3, 3, 2), dtype=np.float32)
        x[0, 0, 0, 0] = 10.0
        x[0, 0, 0, 1] = 20.0
        cols = F.im2col(x, (3, 3))
        assert cols[0, 0, 0, 0] == 10.0
        assert cols[0, 0, 0, 1] == 20.0

    def test_matches_naive_conv(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 6, 7, 3)).astype(np.float32)
        w = rng.standard_normal((3, 3, 3, 4)).astype(np.float32)
        cols = F.im2col(x, (3, 3))
        out = cols.reshape(-1, 27) @ w.reshape(27, 4)
        out = out.reshape(2, 4, 5, 4)
        # Naive reference.
        ref = np.zeros_like(out)
        for n in range(2):
            for i in range(4):
                for j in range(5):
                    patch = x[n, i : i + 3, j : j + 3, :]
                    for co in range(4):
                        ref[n, i, j, co] = (patch * w[:, :, :, co]).sum()
        np.testing.assert_allclose(out, ref, atol=1e-4)

    def test_padding_value(self):
        x = np.ones((1, 2, 2, 1), dtype=np.float32)
        cols = F.im2col(x, (3, 3), padding=(1, 1), pad_value=0.0)
        assert cols.shape == (1, 2, 2, 9)
        assert cols[0, 0, 0, 0] == 0.0  # padded corner

    def test_rejects_non_nhwc(self):
        with pytest.raises(ValueError, match="NHWC"):
            F.im2col(np.zeros((4, 4)), (3, 3))


class TestCol2im:
    def test_adjoint_property(self):
        """<im2col(x), y> == <x, col2im(y)> — exact transposition."""
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 7, 6, 3)).astype(np.float64)
        cols = F.im2col(x, (3, 3))
        y = rng.standard_normal(cols.shape)
        lhs = (cols * y).sum()
        rhs = (x * F.col2im(y, x.shape, (3, 3))).sum()
        assert abs(lhs - rhs) < 1e-9

    def test_adjoint_with_stride_padding(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 9, 9, 2)).astype(np.float64)
        kernel, stride, padding = (3, 3), (2, 2), (1, 1)
        cols = F.im2col(x, kernel, stride, padding)
        y = rng.standard_normal(cols.shape)
        lhs = (cols * y).sum()
        rhs = (x * F.col2im(y, x.shape, kernel, stride, padding)).sum()
        assert abs(lhs - rhs) < 1e-9

    def test_overlap_accumulates(self):
        # All-ones cols: each input pixel receives one contribution per
        # window covering it.
        cols = np.ones((1, 2, 2, 9), dtype=np.float32)
        out = F.col2im(cols, (1, 4, 4, 1), (3, 3))
        assert out[0, 0, 0, 0] == 1.0  # corner covered by 1 window
        assert out[0, 1, 1, 0] == 4.0  # centre covered by all 4

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="inconsistent"):
            F.col2im(np.zeros((1, 2, 2, 9)), (1, 5, 5, 2), (3, 3))


class TestPoolWindows:
    def test_shapes(self):
        x = np.zeros((2, 8, 8, 3), dtype=np.float32)
        w = F.pool_windows(x, (2, 2), (2, 2))
        assert w.shape == (2, 4, 4, 4, 3)

    def test_max_matches_naive(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((1, 4, 4, 2)).astype(np.float32)
        w = F.pool_windows(x, (2, 2), (2, 2))
        out = w.max(axis=3)
        assert out[0, 0, 0, 0] == x[0, :2, :2, 0].max()
        assert out[0, 1, 1, 1] == x[0, 2:, 2:, 1].max()

    def test_rejects_non_tiling(self):
        with pytest.raises(ValueError, match="does not tile"):
            F.pool_windows(np.zeros((1, 5, 4, 1)), (2, 2), (2, 2))

    def test_unpool_adjoint(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((2, 6, 6, 3)).astype(np.float64)
        w = F.pool_windows(x, (2, 2), (2, 2))
        g = rng.standard_normal(w.shape)
        lhs = (w * g).sum()
        rhs = (x * F.unpool_windows(g, x.shape, (2, 2), (2, 2))).sum()
        assert abs(lhs - rhs) < 1e-9

    def test_unpool_overlapping_unsupported(self):
        with pytest.raises(NotImplementedError):
            F.unpool_windows(np.zeros((1, 2, 2, 4, 1)), (1, 4, 4, 1), (2, 2), (1, 1))


@settings(max_examples=30, deadline=None)
@given(
    h=st.integers(3, 10),
    w=st.integers(3, 10),
    c=st.integers(1, 4),
    n=st.integers(1, 3),
)
def test_im2col_col2im_adjoint_property(h, w, c, n):
    """Property: col2im is the exact adjoint of im2col for 3x3 kernels."""
    rng = np.random.default_rng(h * 1000 + w * 100 + c * 10 + n)
    x = rng.standard_normal((n, h, w, c))
    cols = F.im2col(x, (3, 3))
    y = rng.standard_normal(cols.shape)
    lhs = (cols * y).sum()
    rhs = (x * F.col2im(y, x.shape, (3, 3))).sum()
    assert abs(lhs - rhs) < 1e-8 * max(1.0, abs(lhs))
