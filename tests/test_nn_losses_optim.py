"""Tests for losses, optimizers and LR schedules."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import losses
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam
from repro.nn.schedules import constant, cosine_decay, get, step_decay, warmup


def numeric_loss_grad(fn, logits, targets, eps=1e-5):
    grad = np.zeros_like(logits, dtype=np.float64)
    l64 = logits.astype(np.float64)
    for idx in np.ndindex(*logits.shape):
        orig = l64[idx]
        l64[idx] = orig + eps
        f_plus, _ = fn(l64, targets)
        l64[idx] = orig - eps
        f_minus, _ = fn(l64, targets)
        l64[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
    return grad


class TestSoftmax:
    def test_rows_sum_to_one(self):
        p = losses.softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-7)

    def test_stability_with_huge_logits(self):
        p = losses.softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(p).all()
        np.testing.assert_allclose(p[0], [1.0, 0.0], atol=1e-7)

    def test_log_softmax_consistent(self):
        logits = np.random.default_rng(0).standard_normal((3, 5))
        np.testing.assert_allclose(
            losses.log_softmax(logits), np.log(losses.softmax(logits)), atol=1e-7
        )


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, _ = losses.cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-4

    def test_uniform_prediction_log_k(self):
        logits = np.zeros((4, 4))
        loss, _ = losses.cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert abs(loss - math.log(4)) < 1e-6

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((5, 4))
        targets = rng.integers(0, 4, 5)
        _, grad = losses.cross_entropy(logits, targets)
        numeric = numeric_loss_grad(losses.cross_entropy, logits, targets)
        np.testing.assert_allclose(grad, numeric, atol=1e-6)

    def test_gradient_with_label_smoothing(self):
        rng = np.random.default_rng(2)
        logits = rng.standard_normal((4, 3))
        targets = rng.integers(0, 3, 4)
        fn = lambda l, t: losses.cross_entropy(l, t, label_smoothing=0.1)
        _, grad = fn(logits, targets)
        np.testing.assert_allclose(
            grad, numeric_loss_grad(fn, logits, targets), atol=1e-6
        )

    def test_gradient_rows_sum_to_zero(self):
        logits = np.random.default_rng(3).standard_normal((6, 4))
        _, grad = losses.cross_entropy(logits, np.zeros(6, dtype=int))
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-7)

    def test_target_validation(self):
        with pytest.raises(ValueError, match="out of range"):
            losses.cross_entropy(np.zeros((2, 3)), np.array([0, 3]))
        with pytest.raises(ValueError, match="class indices"):
            losses.cross_entropy(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_smoothing_validation(self):
        with pytest.raises(ValueError, match="label_smoothing"):
            losses.cross_entropy(np.zeros((1, 2)), np.array([0]), label_smoothing=1.0)


class TestSquaredHinge:
    def test_zero_when_margins_met(self):
        logits = np.array([[2.0, -2.0]])
        loss, grad = losses.squared_hinge(logits, np.array([0]))
        assert loss == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(4)
        logits = rng.standard_normal((5, 4)) * 0.5
        targets = rng.integers(0, 4, 5)
        _, grad = losses.squared_hinge(logits, targets)
        numeric = numeric_loss_grad(losses.squared_hinge, logits, targets)
        np.testing.assert_allclose(grad, numeric, atol=1e-6)

    def test_margin_validation(self):
        with pytest.raises(ValueError, match="margin"):
            losses.squared_hinge(np.zeros((1, 2)), np.array([0]), margin=0.0)


class TestRegistry:
    def test_lookup(self):
        assert losses.get("cross_entropy") is losses.cross_entropy
        assert losses.get(losses.squared_hinge) is losses.squared_hinge

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown loss"):
            losses.get("mse")


def quadratic_param(start=5.0):
    """Parameter minimising f(w) = 0.5 * w^2 (gradient = w)."""
    return Parameter(np.full(3, start, dtype=np.float32))


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1, momentum=0.0)
        for _ in range(100):
            p.zero_grad()
            p.accumulate_grad(p.data.copy())
            opt.step()
        assert np.abs(p.data).max() < 1e-3

    def test_momentum_accelerates(self):
        trajectories = {}
        for momentum in (0.0, 0.9):
            p = quadratic_param()
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(30):
                p.zero_grad()
                p.accumulate_grad(p.data.copy())
                opt.step()
            trajectories[momentum] = float(np.abs(p.data).max())
        assert trajectories[0.9] < trajectories[0.0]

    def test_weight_decay_respects_flag(self):
        decayed = Parameter(np.ones(2, dtype=np.float32), weight_decay=True)
        exempt = Parameter(np.ones(2, dtype=np.float32), weight_decay=False)
        opt = SGD([decayed, exempt], lr=0.1, momentum=0.0, weight_decay=1.0)
        for p in (decayed, exempt):
            p.accumulate_grad(np.zeros(2, dtype=np.float32))
        opt.step()
        assert np.all(decayed.data < 1.0)
        np.testing.assert_array_equal(exempt.data, 1.0)

    def test_latent_clipping(self):
        p = Parameter(np.array([0.95], dtype=np.float32), latent_binary=True)
        opt = SGD([p], lr=1.0, momentum=0.0)
        p.accumulate_grad(np.array([-1.0], dtype=np.float32))
        opt.step()  # would move to 1.95 without clipping
        assert p.data[0] == 1.0

    def test_missing_grad_raises(self):
        opt = SGD([quadratic_param()], lr=0.1)
        with pytest.raises(RuntimeError, match="no gradient"):
            opt.step()

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            SGD([], lr=0.1)
        with pytest.raises(ValueError, match="learning rate"):
            SGD([quadratic_param()], lr=0.0)
        with pytest.raises(ValueError, match="momentum"):
            SGD([quadratic_param()], lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            p.zero_grad()
            p.accumulate_grad(p.data.copy())
            opt.step()
        assert np.abs(p.data).max() < 1e-2

    def test_first_step_is_lr_sized(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = Adam([p], lr=0.1)
        p.accumulate_grad(np.array([4.0], dtype=np.float32))
        opt.step()
        # Bias correction makes the first update ≈ lr * sign(grad).
        assert abs(p.data[0] - 0.9) < 1e-3

    def test_latent_clipping(self):
        p = Parameter(np.array([0.999], dtype=np.float32), latent_binary=True)
        opt = Adam([p], lr=1.0)
        p.accumulate_grad(np.array([-1.0], dtype=np.float32))
        opt.step()
        assert p.data[0] <= 1.0

    def test_betas_validation(self):
        with pytest.raises(ValueError, match="betas"):
            Adam([quadratic_param()], betas=(1.0, 0.999))


class TestSchedules:
    def test_constant(self):
        s = constant()
        assert s(0) == s(100) == 1.0

    def test_step_decay(self):
        s = step_decay(drop_every=10, factor=0.5)
        assert s(0) == 1.0 and s(9) == 1.0
        assert s(10) == 0.5 and s(20) == 0.25

    def test_cosine_endpoints(self):
        s = cosine_decay(total_epochs=100, floor=0.1)
        assert abs(s(0) - 1.0) < 1e-9
        assert abs(s(100) - 0.1) < 1e-9
        assert s(200) == s(100)  # clamped past the horizon

    def test_cosine_monotone_decreasing(self):
        s = cosine_decay(50)
        values = [s(e) for e in range(51)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_warmup_ramps(self):
        s = warmup(5)
        assert s(0) == pytest.approx(0.2)
        assert s(4) == pytest.approx(1.0)
        assert s(10) == 1.0

    def test_warmup_then_cosine(self):
        s = warmup(2, cosine_decay(10))
        assert s(1) == 1.0
        assert s(12) == pytest.approx(cosine_decay(10)(10))

    def test_get_by_name(self):
        assert get("constant")(3) == 1.0
        assert get("step", drop_every=2)(2) == 0.5
        assert get("cosine", total_epochs=4)(0) == 1.0
        with pytest.raises(ValueError, match="unknown schedule"):
            get("linear")

    def test_validation(self):
        with pytest.raises(ValueError):
            step_decay(0)
        with pytest.raises(ValueError):
            cosine_decay(10, floor=1.0)
        with pytest.raises(ValueError):
            warmup(0)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 8),
    k=st.integers(2, 6),
    seed=st.integers(0, 1000),
)
def test_cross_entropy_softmax_identity(n, k, seed):
    """Property: dL/dlogits = (softmax - onehot)/n for hard targets."""
    rng = np.random.default_rng(seed)
    logits = rng.standard_normal((n, k))
    targets = rng.integers(0, k, n)
    _, grad = losses.cross_entropy(logits, targets)
    onehot = np.eye(k)[targets]
    expected = (losses.softmax(logits) - onehot) / n
    np.testing.assert_allclose(grad, expected, atol=1e-6)
