"""Interprocedural concurrency analysis: soundness demos + repo gate.

Each CC rule gets the seeded-defect fixture from
:mod:`repro.analysis.fixtures` (which must produce *exactly* that rule)
and the clean counterpart (which must produce nothing). The repo-at-head
checks pin the acceptance criteria: the lock graph's nodes cover every
lock attribute in serving/, telemetry/ and utils/profiling.py, and the
graph is acyclic.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

import repro
from repro.analysis import analyze_concurrency, build_lock_graph, collect_sources
from repro.analysis import fixtures
from repro.cli import main

pytestmark = pytest.mark.analysis


def parse(tmp_path: Path, code: str, name: str = "mod.py"):
    path = tmp_path / name
    path.write_text(code)
    return path, ast.parse(code, filename=str(path))


def cc_ids(tmp_path: Path, code: str) -> list:
    return [d.rule_id for d in analyze_concurrency([parse(tmp_path, code)])]


@pytest.fixture(scope="module")
def repo_sources():
    files = collect_sources([Path(repro.__file__).parent])
    return [(p, ast.parse(p.read_text(), filename=str(p))) for p in files]


class TestLockOrderCycles:
    def test_abba_fixture_yields_exactly_cc001(self, tmp_path):
        diags = analyze_concurrency([parse(tmp_path, fixtures.ABBA_DEADLOCK)])
        assert [d.rule_id for d in diags] == ["CC001"]
        message = diags[0].message
        # both lock names and both acquisition sites appear in the message
        assert "Journal._lock" in message and "Ledger._lock" in message
        assert message.count("mod.py:") >= 2

    def test_abba_across_modules(self, tmp_path):
        """The cycle survives splitting the two classes across files."""
        journal_src = (
            "import threading\n\n\n"
            "class Journal:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.entries = []\n\n"
            "    def record(self, entry):\n"
            "        with self._lock:\n"
            "            self.entries.append(entry)\n"
        )
        ledger_src = (
            "import threading\n\n"
            "from journal import Journal\n\n\n"
            "class Ledger:\n"
            "    def __init__(self, journal: Journal):\n"
            "        self._lock = threading.Lock()\n"
            "        self.journal = journal\n\n"
            "    def post(self, amount):\n"
            "        with self._lock:\n"
            "            self.journal.record(amount)\n\n\n"
            "def reconcile(journal: Journal, ledger: Ledger):\n"
            "    with journal._lock:\n"
            "        with ledger._lock:\n"
            "            return True\n"
        )
        sources = [
            parse(tmp_path, journal_src, "journal.py"),
            parse(tmp_path, ledger_src, "ledger.py"),
        ]
        assert [d.rule_id for d in analyze_concurrency(sources)] == ["CC001"]

    def test_consistent_order_is_clean(self, tmp_path):
        assert cc_ids(tmp_path, fixtures.CLEAN_LOCK_ORDER) == []

    def test_lockgraph_edges_and_dot(self, tmp_path):
        graph = build_lock_graph([parse(tmp_path, fixtures.ABBA_DEADLOCK)])
        assert len(graph.cycles()) == 1
        dot = graph.to_dot()
        assert "Journal._lock" in dot and "Ledger._lock" in dot
        payload = graph.to_json()
        assert payload["cycles"]
        assert {n["kind"] for n in payload["nodes"]} == {"Lock"}


class TestBlockingUnderLock:
    def test_event_wait_under_lock_flagged(self, tmp_path):
        assert cc_ids(tmp_path, fixtures.BLOCKING_UNDER_LOCK) == ["CC002"]

    def test_condition_wait_on_held_condition_exempt(self, tmp_path):
        # CLEAN_LOCK_ORDER waits on the condition it holds — the one
        # blocking call that releases its lock by design.
        assert cc_ids(tmp_path, fixtures.CLEAN_LOCK_ORDER) == []

    def test_transitive_blocking_callee_flagged(self, tmp_path):
        code = (
            "import threading\n\n\n"
            "class Pump:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._done = threading.Event()\n\n"
            "    def _drain(self):\n"
            "        self._done.wait()\n\n"
            "    def flush(self):\n"
            "        with self._lock:\n"
            "            self._drain()\n"
        )
        assert cc_ids(tmp_path, code) == ["CC002"]


class TestSharedStateInference:
    def test_unguarded_write_from_thread_flagged(self, tmp_path):
        diags = analyze_concurrency(
            [parse(tmp_path, fixtures.UNGUARDED_SHARED_WRITE)]
        )
        assert [d.rule_id for d in diags] == ["CC003"]
        assert diags[0].symbol == "Sampler.count"

    def test_mixed_guards_flagged(self, tmp_path):
        diags = analyze_concurrency([parse(tmp_path, fixtures.MIXED_GUARDS)])
        assert [d.rule_id for d in diags] == ["CC004"]
        assert "_read_lock" in diags[0].message
        assert "_write_lock" in diags[0].message

    def test_access_under_extra_lock_is_consistent(self, tmp_path):
        # holding a second lock *on top of* the guard is not a CC004
        assert cc_ids(tmp_path, fixtures.CLEAN_LOCK_ORDER) == []

    def test_local_lock_flagged(self, tmp_path):
        assert cc_ids(tmp_path, fixtures.LOCAL_LOCK) == ["CC005"]


class TestRepoAtHead:
    #: every Lock-typed attribute the serving/telemetry/profiling stack owns
    REQUIRED_NODES = {
        "repro.serving.admission::AdmissionQueue._lock",
        "repro.serving.request::InferenceRequest._lock",
        "repro.serving.metrics::MetricsRegistry._lock",
        "repro.serving.workers::WorkerPool._slots",
        "repro.telemetry.journal::SpanJournal._lock",
        "repro.utils.profiling::Stopwatch._lock",
    }

    def test_concurrency_pass_is_clean(self, repo_sources):
        assert analyze_concurrency(repo_sources) == []

    def test_lock_graph_covers_all_serving_locks(self, repo_sources):
        graph = build_lock_graph(repo_sources)
        assert self.REQUIRED_NODES <= set(graph.nodes)
        dot = graph.to_dot()
        for node in self.REQUIRED_NODES:
            assert node in dot
        assert graph.cycles() == []

    def test_worker_slots_order_edge_present(self, repo_sources):
        """WorkerPool holds a backend slot while bumping metrics — the
        one real cross-class ordering fact in the serving stack."""
        graph = build_lock_graph(repo_sources)
        assert (
            "repro.serving.workers::WorkerPool._slots",
            "repro.serving.metrics::MetricsRegistry._lock",
        ) in graph.edges


class TestLockgraphCli:
    def test_dot_output(self, capsys):
        assert main(["lockgraph"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph lock_order")
        assert "AdmissionQueue._lock" in out

    def test_json_output_parses(self, capsys):
        assert main(["lockgraph", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cycles"] == []
        assert any(
            n["display"] == "Stopwatch._lock" for n in payload["nodes"]
        )

    def test_out_file_and_cycle_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "abba.py"
        bad.write_text(fixtures.ABBA_DEADLOCK)
        out = tmp_path / "graph.dot"
        assert main(["lockgraph", str(bad), "--out", str(out)]) == 1
        assert "digraph" in out.read_text()
