"""Cross-engine bit-exactness contract (PR 10, satellite 2).

Every registered engine must reproduce the interpreted reference
datapath exactly — logits for every Table I prototype under both input
dtypes, and ``return_bits`` traces where the engine supports them.
This is the contract the capability flag ``bit_exact`` declares; a new
engine registered without passing this file is a registry bug.

The process engine rides in the ``parallel`` marker (CI runs it in the
dedicated multi-core job); the in-process engines run in tier 1.
"""

import numpy as np
import pytest

from repro.core.architectures import build_architecture, table1_folding
from repro.hw.compiler import compile_model
from repro.runtime import ExecutionConfig, create_engine, engine_names
from repro.testing import randomize_bn_stats

PROTOTYPES = ("cnv", "n-cnv", "u-cnv")

#: Configs that resolve each registered engine, with enough workers /
#: buckets for the toy batches below. Kept in sync with the registry by
#: ``test_every_registered_engine_is_covered``.
ENGINE_CONFIGS = {
    "interpreted": ExecutionConfig(use_plan=False),
    "planned-blas": ExecutionConfig(lowering="blas"),
    "planned-packed": ExecutionConfig(lowering="packed"),
    "threaded": ExecutionConfig(workers=2, chunk_size=2),
    "process": ExecutionConfig(
        isolation="process", workers=1, bucket_sizes=(4,), max_batch=4
    ),
}
IN_PROCESS = tuple(n for n in ENGINE_CONFIGS if n != "process")


def build_accelerator(name: str):
    model = build_architecture(name, rng=0)
    randomize_bn_stats(model)
    model.eval()
    return compile_model(model, table1_folding(name), name=name)


@pytest.fixture(scope="module")
def accelerators():
    return {name: build_accelerator(name) for name in PROTOTYPES}


def seed_batch(dtype):
    rng = np.random.default_rng(1234)
    images = rng.random((4, 32, 32, 3)).astype(np.float32)
    if dtype == "uint8":
        return (images * 255).astype(np.uint8)
    return images


def reference_logits(accelerator, images, return_bits=False):
    engine = create_engine(accelerator, ENGINE_CONFIGS["interpreted"])
    return engine.run(images, return_bits=return_bits)


def test_every_registered_engine_is_covered():
    assert set(engine_names()) == set(ENGINE_CONFIGS)


@pytest.mark.parametrize("dtype", ["f32", "uint8"])
@pytest.mark.parametrize("engine_name", IN_PROCESS)
@pytest.mark.parametrize("arch", PROTOTYPES)
def test_engine_matches_interpreted_logits(accelerators, arch, engine_name, dtype):
    acc = accelerators[arch]
    images = seed_batch(dtype)
    golden = reference_logits(acc, images)
    engine = create_engine(acc, ENGINE_CONFIGS[engine_name])
    assert engine.name == engine_name
    np.testing.assert_array_equal(engine.run(images), golden)


@pytest.mark.parametrize("engine_name", ["planned-blas", "planned-packed"])
@pytest.mark.parametrize("arch", PROTOTYPES)
def test_planned_return_bits_match_interpreted(accelerators, arch, engine_name):
    acc = accelerators[arch]
    images = seed_batch("f32")
    golden_logits, golden_bits = reference_logits(acc, images, return_bits=True)
    engine = create_engine(acc, ENGINE_CONFIGS[engine_name])
    logits, bits = engine.run(images, return_bits=True)
    np.testing.assert_array_equal(logits, golden_logits)
    assert len(bits) == len(golden_bits)
    for got, ref in zip(bits, golden_bits):
        np.testing.assert_array_equal(got, ref)


def test_threaded_engine_refuses_return_bits(accelerators):
    engine = create_engine(
        accelerators["n-cnv"], ENGINE_CONFIGS["threaded"]
    )
    with pytest.raises(ValueError, match="return_bits"):
        engine.run(seed_batch("f32"), return_bits=True)


@pytest.mark.parallel
@pytest.mark.parametrize("arch", PROTOTYPES)
def test_process_engine_matches_interpreted(arch):
    acc = build_accelerator(arch)
    engine = create_engine(acc, ENGINE_CONFIGS["process"])
    try:
        for dtype in ("f32", "uint8"):
            images = seed_batch(dtype)
            golden = reference_logits(acc, images)
            np.testing.assert_array_equal(engine.run(images), golden)
        images = seed_batch("f32")
        golden_logits, golden_bits = reference_logits(
            acc, images, return_bits=True
        )
        logits, bits = engine.run(images, return_bits=True)
        np.testing.assert_array_equal(logits, golden_logits)
        assert len(bits) == len(golden_bits)
        for got, ref in zip(bits, golden_bits):
            np.testing.assert_array_equal(got, ref)
    finally:
        engine.close()
        acc.close_pool()
