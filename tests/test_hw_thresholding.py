"""Tests for batch-norm -> integer-threshold folding.

The central claim (§III-A): thresholding is *exactly* equivalent to
batch-norm followed by sign(). The property tests sweep random batch-norm
affines and verify the folded thresholds agree with the float64 predicate
at every accumulator value.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.thresholding import (
    ThresholdSpec,
    apply_thresholds,
    fold_batchnorm_sign,
    fold_popcount_domain,
)


def float_reference(acc, scale, shift, acc_to_real=1.0):
    """The defining predicate: sign(scale*(acc*acc_to_real)+shift) == +1."""
    return scale * (acc.astype(np.float64) * acc_to_real) + shift >= 0.0


class TestFoldBasics:
    def test_positive_scale_simple(self):
        # sign(2*acc - 5): true iff acc >= 2.5 -> threshold 3.
        spec = fold_batchnorm_sign(
            np.array([2.0]), np.array([-5.0]), acc_min=-10, acc_max=10
        )
        assert spec.thresholds[0] == 3
        assert not spec.flipped[0]

    def test_negative_scale_flips(self):
        # sign(-1*acc + 2.5): true iff acc <= 2.5 -> flipped threshold 2.
        spec = fold_batchnorm_sign(
            np.array([-1.0]), np.array([2.5]), acc_min=-10, acc_max=10
        )
        assert spec.flipped[0]
        assert spec.thresholds[0] == 2

    def test_boundary_inclusive(self):
        # sign(acc - 4) with acc == 4 -> BN output 0 -> sign(0) = +1.
        spec = fold_batchnorm_sign(
            np.array([1.0]), np.array([-4.0]), acc_min=0, acc_max=10
        )
        out = apply_thresholds(np.array([[3], [4], [5]]), spec)
        np.testing.assert_array_equal(out[:, 0], [False, True, True])

    def test_zero_scale_positive_shift_always_on(self):
        spec = fold_batchnorm_sign(
            np.array([0.0]), np.array([0.5]), acc_min=0, acc_max=5
        )
        acc = np.arange(6)[:, None]
        assert apply_thresholds(acc, spec).all()

    def test_zero_scale_negative_shift_always_off(self):
        spec = fold_batchnorm_sign(
            np.array([0.0]), np.array([-0.5]), acc_min=0, acc_max=5
        )
        acc = np.arange(6)[:, None]
        assert not apply_thresholds(acc, spec).any()

    def test_zero_scale_zero_shift_is_plus_one(self):
        # sign(0) = +1 by Eq. 1.
        spec = fold_batchnorm_sign(
            np.array([0.0]), np.array([0.0]), acc_min=0, acc_max=5
        )
        assert apply_thresholds(np.array([[0]]), spec).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="1-D"):
            fold_batchnorm_sign(np.zeros((2, 2)), np.zeros((2, 2)), 0, 1)

    def test_range_validation(self):
        with pytest.raises(ValueError, match="empty"):
            ThresholdSpec(
                thresholds=np.zeros(1, dtype=np.int64),
                flipped=np.zeros(1, dtype=bool),
                acc_min=5,
                acc_max=1,
            )

    def test_apply_channel_mismatch(self):
        spec = fold_batchnorm_sign(np.ones(3), np.zeros(3), 0, 4)
        with pytest.raises(ValueError, match="channels"):
            apply_thresholds(np.zeros((2, 4), dtype=np.int64), spec)

    def test_storage_bits_positive(self):
        spec = fold_popcount_domain(np.ones(8), np.zeros(8), fan_in=576)
        assert spec.storage_bits() > 8


class TestPopcountDomain:
    def test_matches_bipolar_batchnorm_sign(self):
        rng = np.random.default_rng(0)
        fan_in = 64
        scale = rng.uniform(-2, 2, 16)
        shift = rng.normal(0, 3, 16)
        spec = fold_popcount_domain(scale, shift, fan_in)
        p = rng.integers(0, fan_in + 1, size=(50, 16))
        got = apply_thresholds(p, spec)
        bipolar = 2 * p - fan_in
        expected = float_reference(bipolar, scale, shift)
        np.testing.assert_array_equal(got, expected)

    def test_fan_in_validation(self):
        with pytest.raises(ValueError, match="fan_in"):
            fold_popcount_domain(np.ones(2), np.zeros(2), 0)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    channels=st.integers(1, 8),
    fan_in=st.integers(1, 600),
)
def test_popcount_threshold_exactness_property(seed, channels, fan_in):
    """Property: threshold output == float64 BN+sign at EVERY popcount."""
    rng = np.random.default_rng(seed)
    scale = rng.uniform(-3, 3, channels)
    # Occasionally zero a scale to exercise the constant-channel path.
    if seed % 7 == 0:
        scale[0] = 0.0
    shift = rng.normal(0, fan_in / 4, channels)
    spec = fold_popcount_domain(scale, shift, fan_in)
    p = np.arange(fan_in + 1)[:, None].repeat(channels, axis=1)
    got = apply_thresholds(p, spec)
    expected = float_reference(2 * p - fan_in, scale, shift)
    np.testing.assert_array_equal(got, expected)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    acc_bound=st.integers(1, 2000),
)
def test_integer_domain_exactness_property(seed, acc_bound):
    """Property: 8-bit-layer thresholds exact over the full integer range."""
    rng = np.random.default_rng(seed)
    scale = rng.uniform(-2, 2, 3)
    shift = rng.normal(0, 2, 3)
    spec = fold_batchnorm_sign(
        scale, shift, acc_min=-acc_bound, acc_max=acc_bound, acc_to_real=1.0 / 255
    )
    acc = rng.integers(-acc_bound, acc_bound + 1, size=(64, 3))
    got = apply_thresholds(acc, spec)
    expected = float_reference(acc, scale, shift, acc_to_real=1.0 / 255)
    np.testing.assert_array_equal(got, expected)
