"""Tests for gate-camera approach streams and the speed-gate simulator."""

import numpy as np
import pytest

from repro.data.generator import SampleSpec
from repro.data.mask_model import WearClass
from repro.data.stream import (
    GateTrigger,
    SpeedGateSimulator,
    render_approach_sequence,
)


class TestApproachSequence:
    def test_contract(self):
        seq = render_approach_sequence(rng=0, n_frames=8, frame_size=32)
        assert len(seq) == 8
        for frame in seq.frames:
            assert frame.image.shape == (32, 32, 3)
            assert 0.0 <= frame.image.min() and frame.image.max() <= 1.0
            assert 0.0 < frame.face_fraction <= 1.0

    def test_face_grows_monotonically(self):
        seq = render_approach_sequence(rng=1)
        fractions = [f.face_fraction for f in seq.frames]
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))
        assert fractions[0] == pytest.approx(0.25, abs=0.05)
        assert fractions[-1] == pytest.approx(1.0, abs=0.05)

    def test_drift_decays(self):
        """Lateral offset at the end is smaller than the worst early one."""
        seq = render_approach_sequence(rng=2, lateral_jitter=0.4)
        offsets = [f.center_offset for f in seq.frames]
        assert offsets[-1] <= max(offsets) + 1e-9
        assert offsets[-1] < 0.1

    def test_spec_controls_class(self):
        seq = render_approach_sequence(
            rng=3, spec=SampleSpec(wear_class=WearClass.NOSE_EXPOSED)
        )
        assert seq.label == WearClass.NOSE_EXPOSED

    def test_deterministic(self):
        a = render_approach_sequence(rng=4)
        b = render_approach_sequence(rng=4)
        np.testing.assert_array_equal(a.frames[3].image, b.frames[3].image)

    def test_face_crop_matches_tile(self):
        seq = render_approach_sequence(rng=5)
        last = seq.frames[-1]
        crop = last.face_crop(32)
        # At full approach the crop is (nearly) the original sample.
        assert np.abs(crop - seq.sample.image).mean() < 0.05

    def test_crop_requires_box(self):
        from repro.data.stream import StreamFrame

        frame = StreamFrame(
            image=np.zeros((8, 8, 3), dtype=np.float32),
            face_fraction=0.5,
            center_offset=0.0,
            frame_index=0,
        )
        with pytest.raises(ValueError, match="face box"):
            frame.face_crop()

    def test_validation(self):
        with pytest.raises(ValueError, match="n_frames"):
            render_approach_sequence(rng=0, n_frames=1)
        with pytest.raises(ValueError, match="fraction"):
            render_approach_sequence(rng=0, start_fraction=0.9, end_fraction=0.5)


class TestGateTrigger:
    def test_fires_late_in_approach(self):
        trigger = GateTrigger(min_fraction=0.75, max_offset=0.12)
        seq = render_approach_sequence(rng=6)
        frame = trigger.first_trigger(seq)
        assert frame is not None
        assert frame.face_fraction >= 0.75
        # Early frames must not fire.
        assert not trigger.should_fire(seq.frames[0])

    def test_strict_trigger_may_not_fire(self):
        trigger = GateTrigger(min_fraction=1.0, max_offset=0.0)
        seq = render_approach_sequence(rng=7, end_fraction=0.8)
        assert trigger.first_trigger(seq) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="min_fraction"):
            GateTrigger(min_fraction=0.0)
        with pytest.raises(ValueError, match="max_offset"):
            GateTrigger(max_offset=-0.1)


class TestSpeedGateSimulator:
    def test_end_to_end(self, trained_tiny_classifier):
        sim = SpeedGateSimulator(trained_tiny_classifier)
        for i in range(6):
            decision = sim.process_subject(rng=100 + i)
            assert decision.truth in WearClass
            if decision.triggered:
                assert decision.predicted in WearClass
        assert 0.0 <= sim.trigger_rate() <= 1.0
        if any(d.triggered for d in sim.decisions):
            assert 0.0 <= sim.accuracy() <= 1.0

    def test_duty_cycle_is_low(self, trained_tiny_classifier):
        """One classification per ~12-frame approach => ~8% duty."""
        sim = SpeedGateSimulator(trained_tiny_classifier)
        for i in range(5):
            sim.process_subject(rng=i)
        assert sim.duty_cycle() < 0.2

    def test_accelerator_as_classifier(self, trained_tiny_classifier):
        sim = SpeedGateSimulator(trained_tiny_classifier.deploy())
        decision = sim.process_subject(rng=0)
        assert decision.triggered

    def test_requires_predict(self):
        with pytest.raises(TypeError, match="predict"):
            SpeedGateSimulator(object())

    def test_stats_need_subjects(self, trained_tiny_classifier):
        sim = SpeedGateSimulator(trained_tiny_classifier)
        with pytest.raises(ValueError, match="no subjects"):
            sim.trigger_rate()
        with pytest.raises(ValueError, match="no subjects"):
            sim.duty_cycle()
        with pytest.raises(ValueError, match="no triggered"):
            sim.accuracy()
