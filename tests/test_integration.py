"""Cross-module integration tests.

These tie the substrates together the way the paper's workflow does:
data pipeline -> training -> deployment -> interpretation -> reporting,
plus a hypothesis property over *randomly shaped* deployable models
(compiler fuzzing: every legal tiny BNN must compile and be bit-exact).
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.compiler import FoldingConfig, compile_model
from repro.nn.layers import (
    BatchNorm,
    BinaryConv2D,
    BinaryDense,
    Flatten,
    MaxPool2D,
    SignActivation,
)
from repro.nn.sequential import Sequential
from repro.testing import grid_images, randomize_bn_stats

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


class TestEndToEnd:
    def test_train_deploy_interpret_report(self, trained_tiny_classifier, tiny_splits):
        """The full user workflow on one trained model."""
        clf = trained_tiny_classifier
        # 1. evaluation artifacts
        cm = clf.confusion(tiny_splits.test)
        assert cm.counts.sum() == len(tiny_splits.test)
        # 2. deployment, bit-true on the dataset's (uint8-grid) images
        accelerator = clf.deploy()
        images = tiny_splits.test.images[:24]
        assert (accelerator.predict(images) == clf.predict(images)).mean() >= 0.95
        # 3. interpretability
        cam = clf.gradcam(images[0])
        assert cam.heatmap.max() <= 1.0
        # 4. performance models all answer
        from repro.hw import analyze_pipeline, estimate_resources, plan_buffers

        timing = analyze_pipeline(accelerator)
        resources = estimate_resources(accelerator)
        buffers = plan_buffers(accelerator)
        assert timing.fps_analytic > 0
        assert resources.lut > 0
        assert buffers.total_bits() > 0

    def test_checkpoint_then_deploy_identical(self, trained_tiny_classifier, tiny_splits, tmp_path):
        """Save/load round trip preserves the deployed datapath exactly."""
        from repro.core.classifier import BinaryCoP

        path = trained_tiny_classifier.save(tmp_path / "ck")
        restored = BinaryCoP.load(path)
        images = tiny_splits.test.images[:16]
        np.testing.assert_array_equal(
            restored.deploy().execute(images),
            trained_tiny_classifier.deploy().execute(images),
        )

    def test_faults_on_trained_accelerator(self, trained_tiny_classifier, tiny_splits):
        from repro.hw.faults import accuracy_under_faults

        acc = trained_tiny_classifier.deploy()
        report = accuracy_under_faults(
            acc,
            tiny_splits.test.images[:32],
            tiny_splits.test.labels[:32],
            rates=(0.0, 0.02),
            rng=0,
        )
        assert report.accuracies[0] == pytest.approx(report.baseline_accuracy)


def _random_bnn(hw: int, c1: int, c2: int, fc: int, seed: int) -> Sequential:
    """A randomly shaped deployable BNN (always grammatically legal)."""
    flat = ((hw - 4) // 2) ** 2 * c2
    return Sequential(
        [
            ("conv1", BinaryConv2D(3, c1, kernel_size=3, rng=seed)),
            ("bn_conv1", BatchNorm(c1)),
            ("sign_conv1", SignActivation()),
            ("conv2", BinaryConv2D(c1, c2, kernel_size=3, rng=seed + 1)),
            ("bn_conv2", BatchNorm(c2)),
            ("sign_conv2", SignActivation()),
            ("pool1", MaxPool2D(2)),
            ("flatten", Flatten()),
            ("fc1", BinaryDense(flat, fc, rng=seed + 2)),
            ("bn_fc1", BatchNorm(fc)),
            ("sign_fc1", SignActivation()),
            ("fc2", BinaryDense(fc, 4, rng=seed + 3)),
        ],
        input_shape=(hw, hw, 3),
    )


@settings(max_examples=12, deadline=None)
@given(
    hw=st.sampled_from([6, 8, 10]),
    c1=st.sampled_from([2, 4, 8]),
    c2=st.sampled_from([2, 4, 8]),
    fc=st.sampled_from([4, 8, 16]),
    seed=st.integers(0, 500),
)
def test_compiler_fuzz_bit_exactness(hw, c1, c2, fc, seed):
    """Property: every legal tiny BNN compiles and runs bit-exact
    against the software model on uint8-grid inputs."""
    model = _random_bnn(hw, c1, c2, fc, seed)
    randomize_bn_stats(model, seed=seed + 7)
    model.eval()
    acc = compile_model(model, FoldingConfig(pe=(1, 1, 1, 1), simd=(1, 1, 1, 1)))
    x = grid_images(3, hw=hw, seed=seed)
    np.testing.assert_array_equal(
        acc.execute(x), model.forward(x).astype(np.int64)
    )


class TestExamplesSmoke:
    """Every example parses, imports and prints its help text."""

    @pytest.mark.parametrize(
        "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
    )
    def test_help_runs(self, script):
        result = subprocess.run(
            [sys.executable, str(script), "--help"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "usage" in result.stdout.lower()

    def test_expected_example_set(self):
        names = {p.stem for p in EXAMPLES}
        assert {
            "quickstart",
            "gate_monitor",
            "crowd_statistics",
            "gradcam_explorer",
            "design_space_exploration",
            "fairness_audit",
            "speed_gate",
            "generate_report",
        } <= names
