"""Tests for the allocation-free training fast path.

The buffer arena must be an invisible optimisation: every History value,
every parameter, every functional primitive must be bit-identical with
and without it.
"""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BufferArena,
    Trainer,
    evaluate,
    evaluate_accuracy,
)
from repro.nn import functional as F
from repro.nn.binary_ops import sign, ste_grad
from repro.testing import make_tiny_bnn


def _tiny_data(n=64, hw=8, classes=4, seed=11):
    gen = np.random.default_rng(seed)
    x = gen.normal(size=(n, hw, hw, 3)).astype(np.float32)
    y = gen.integers(0, classes, size=n).astype(np.int64)
    return x, y


def _fit(use_arena, epochs=2):
    model = make_tiny_bnn(seed=3)
    x, y = _tiny_data(64)
    xv, yv = _tiny_data(24, seed=12)
    trainer = Trainer(
        model, Adam(model.parameters(), lr=0.01), use_arena=use_arena
    )
    history = trainer.fit(
        x, y, x_val=xv, y_val=yv, epochs=epochs, batch_size=16,
        rng=np.random.default_rng(5), verbose=False,
    )
    params = [p.data.copy() for p in model.parameters()]
    return history, params


class TestArenaBitIdentity:
    def test_history_and_params_identical(self):
        h_arena, p_arena = _fit(use_arena=True)
        h_plain, p_plain = _fit(use_arena=False)
        assert h_arena.train_loss == h_plain.train_loss
        assert h_arena.train_accuracy == h_plain.train_accuracy
        assert h_arena.val_loss == h_plain.val_loss
        assert h_arena.val_accuracy == h_plain.val_accuracy
        for a, b in zip(p_arena, p_plain):
            np.testing.assert_array_equal(a, b)

    def test_arena_cleared_after_fit(self):
        model = make_tiny_bnn(seed=3)
        x, y = _tiny_data(32)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01))
        trainer.fit(x, y, epochs=1, batch_size=16,
                    rng=np.random.default_rng(5), verbose=False)
        assert model._arena is None
        assert len(trainer.arena) > 0  # it was actually used

    def test_eval_mode_never_uses_arena(self):
        model = make_tiny_bnn(seed=3)
        arena = BufferArena()
        model.set_arena(arena)
        model.eval()
        x, _ = _tiny_data(8)
        model.forward(x)
        assert len(arena) == 0


class TestBufferArena:
    def test_same_key_reuses_buffer(self):
        arena = BufferArena()
        owner = object()
        a = arena.get(owner, "out", (4, 3))
        b = arena.get(owner, "out", (4, 3))
        assert a is b
        assert len(arena) == 1

    def test_distinct_keys_get_distinct_buffers(self):
        arena = BufferArena()
        owner, other = object(), object()
        a = arena.get(owner, "out", (4, 3))
        assert arena.get(owner, "cols", (4, 3)) is not a
        assert arena.get(other, "out", (4, 3)) is not a
        assert arena.get(owner, "out", (4, 4)) is not a
        assert len(arena) == 4
        assert arena.nbytes == 4 * (4 * 3 + 4 * 3 + 4 * 3 + 4 * 4)

    def test_clear(self):
        arena = BufferArena()
        arena.get(object(), "out", (2, 2))
        arena.clear()
        assert len(arena) == 0


class TestFusedEvaluate:
    def test_matches_separate_helpers(self):
        model = make_tiny_bnn(seed=3)
        x, y = _tiny_data(40)
        loss, acc = evaluate(model, x, y, batch_size=16)
        assert acc == evaluate_accuracy(model, x, y, batch_size=16)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01))
        assert (loss, acc) == trainer.evaluate(x, y, batch_size=16)
        assert loss == trainer._eval_loss(x, y, batch_size=16)

    def test_batch_size_invariant(self):
        model = make_tiny_bnn(seed=3)
        x, y = _tiny_data(40)
        loss_a, acc_a = evaluate(model, x, y, batch_size=40)
        loss_b, acc_b = evaluate(model, x, y, batch_size=7)
        # Accuracy is an integer count — exact; the loss accumulates in a
        # different order across chunkings, so only float-tolerance equal.
        assert acc_a == acc_b
        assert loss_a == pytest.approx(loss_b, rel=1e-12)

    def test_restores_training_mode(self):
        model = make_tiny_bnn(seed=3)
        model.train()
        x, y = _tiny_data(8)
        evaluate(model, x, y)
        assert model.training


class TestFunctionalOutParams:
    def test_im2col_out_matches(self):
        gen = np.random.default_rng(0)
        x = gen.normal(size=(2, 8, 8, 3)).astype(np.float32)
        ref = F.im2col(x, (3, 3), (1, 1), (1, 1))
        out = np.empty_like(ref)
        assert F.im2col(x, (3, 3), (1, 1), (1, 1), out=out) is out
        np.testing.assert_array_equal(ref, out)

    def test_im2col_rejects_bad_out(self):
        x = np.zeros((1, 4, 4, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            F.im2col(x, (3, 3), out=np.empty((1, 2, 2, 17), dtype=np.float32))

    def test_col2im_scratch_matches(self):
        gen = np.random.default_rng(1)
        cols = gen.normal(size=(2, 8, 8, 27)).astype(np.float32)
        shape = (2, 8, 8, 3)
        ref = F.col2im(cols, shape, (3, 3), (1, 1), (1, 1))
        scratch = np.empty((2, 10, 10, 3), dtype=np.float32)
        got = F.col2im(cols, shape, (3, 3), (1, 1), (1, 1), scratch=scratch)
        np.testing.assert_array_equal(ref, got)

    def test_pool_unpool_out_matches(self):
        gen = np.random.default_rng(2)
        x = gen.normal(size=(2, 4, 4, 3)).astype(np.float32)
        ref_w = F.pool_windows(x, (2, 2), (2, 2))
        out_w = np.empty_like(ref_w)
        F.pool_windows(x, (2, 2), (2, 2), out=out_w)
        np.testing.assert_array_equal(ref_w, out_w)
        grads = gen.normal(size=ref_w.shape).astype(np.float32)
        ref_u = F.unpool_windows(grads, x.shape, (2, 2), (2, 2))
        out_u = np.empty_like(ref_u)
        F.unpool_windows(grads, x.shape, (2, 2), (2, 2), out=out_u)
        np.testing.assert_array_equal(ref_u, out_u)


class TestBinaryOpsOutParams:
    def test_sign_out_matches_and_handles_signed_zero(self):
        x = np.array([-2.0, -0.0, 0.0, 1.5, -1e-30], dtype=np.float32)
        ref = sign(x)
        out = np.empty_like(x)
        assert sign(x, out=out) is out
        np.testing.assert_array_equal(ref, out)
        np.testing.assert_array_equal(
            out, np.array([-1.0, 1.0, 1.0, 1.0, -1.0], dtype=np.float32)
        )

    def test_sign_rejects_bad_out(self):
        with pytest.raises(ValueError):
            sign(np.zeros(3, dtype=np.float32), out=np.zeros(4, dtype=np.float32))
        with pytest.raises(ValueError):
            sign(np.zeros(3, dtype=np.float32), out=np.zeros(3, dtype=np.float64))

    @pytest.mark.parametrize("variant", ["identity", "clipped"])
    def test_ste_grad_out_matches(self, variant):
        gen = np.random.default_rng(3)
        g = gen.normal(size=(5, 7)).astype(np.float32)
        pre = gen.normal(size=(5, 7)).astype(np.float32) * 2.0
        ref = ste_grad(g, pre, variant)
        out = np.empty_like(g)
        assert ste_grad(g, pre, variant, out=out) is out
        np.testing.assert_array_equal(ref, out)


class TestBenchSchema:
    @staticmethod
    def _minimal_run(with_new_sections):
        run = {
            "timestamp": 1.0,
            "label": "full",
            "kernels": {
                "pack_bits": {"seconds": 0.1},
                "unpack_bits": {"seconds": 0.1},
                "xnor_gemm": {"fc": {"seconds": 0.1}},
            },
            "stages": {"cnv": [{"name": "s", "seconds": 0.1}]},
            "e2e": {"cnv": {"images": 1, "seconds": 0.1, "fps": 10.0}},
        }
        if with_new_sections:
            run["generation"] = {
                "samples": 4,
                "serial": {"seconds": 0.1, "samples_per_s": 40.0},
                "parallel": {
                    "workers": 2,
                    "seconds": 0.05,
                    "samples_per_s": 80.0,
                    "speedup_vs_serial": 2.0,
                },
                "cache": {
                    "raw_size": 4,
                    "cold_seconds": 0.2,
                    "warm_seconds": 0.01,
                    "warm_speedup": 20.0,
                },
            }
            run["training"] = {
                "arch": "cnv",
                "batch_size": 8,
                "steps": 2,
                "baseline": {
                    "epoch_seconds": 1.0, "steps_per_s": 2.0, "samples_per_s": 16.0,
                },
                "arena": {
                    "epoch_seconds": 0.5, "steps_per_s": 4.0, "samples_per_s": 32.0,
                },
                "arena_speedup": 2.0,
            }
        return run

    def test_sections_optional_but_validated(self):
        from repro.benchmarking import validate_run

        validate_run(self._minimal_run(False))  # pre-PR runs still validate
        validate_run(self._minimal_run(True))
        broken = self._minimal_run(True)
        broken["training"]["arena"]["steps_per_s"] = 0.0
        with pytest.raises(ValueError):
            validate_run(broken)
        broken = self._minimal_run(True)
        del broken["generation"]["cache"]["warm_seconds"]
        with pytest.raises(ValueError):
            validate_run(broken)

    def test_compare_runs_handles_mixed_presence(self):
        from repro.benchmarking import compare_runs

        old, new = self._minimal_run(False), self._minimal_run(True)
        metrics = {r["metric"] for r in compare_runs(old, new)}
        assert not any(m.startswith(("generation.", "training.")) for m in metrics)
        metrics = {r["metric"] for r in compare_runs(new, new)}
        assert "training.arena.steps_per_s" in metrics
        assert "generation.cache.warm_seconds" in metrics

    def test_compare_runs_flags_training_regression(self):
        from repro.benchmarking import compare_runs

        prev, cur = self._minimal_run(True), self._minimal_run(True)
        cur["training"]["arena"]["steps_per_s"] = 1.0  # 4.0 -> 1.0
        records = {r["metric"]: r for r in compare_runs(prev, cur)}
        assert records["training.arena.steps_per_s"]["regressed"]
