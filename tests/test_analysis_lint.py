"""AST lint pass: per-rule fixtures, baseline semantics, CLI smoke.

Each lint rule id gets one minimal failing snippet and one passing
snippet; the repo-at-head test wires ``repro lint`` into the tier-1
flow (the gate the CI acceptance criterion requires).
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    BASELINE_FILENAME,
    Baseline,
    find_baseline,
    lint_file,
    lint_paths,
)
from repro.cli import main

pytestmark = pytest.mark.analysis

REPO_ROOT = Path(repro.__file__).resolve().parents[2]


def write(tmp_path: Path, code: str, name: str = "snippet.py") -> Path:
    path = tmp_path / name
    path.write_text(textwrap.dedent(code))
    return path


def ids_of(tmp_path: Path, code: str) -> list:
    return [d.rule_id for d in lint_file(write(tmp_path, code))]


# -- LK001 lock discipline -----------------------------------------------------
class TestLockDiscipline:
    def test_unguarded_read_flagged(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1

                def read(self):
                    return self.count
            """,
        )
        assert ids == ["LK001"]

    def test_guarded_read_passes(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1

                def read(self):
                    with self._lock:
                        return self.count
            """,
        )
        assert ids == []

    def test_condition_counts_as_lock(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            import threading

            class Queue:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._not_empty = threading.Condition(self._lock)
                    self.items = []

                def put(self, x):
                    with self._lock:
                        self.items.append(x)
                        self.items = self.items

                def pop(self):
                    with self._not_empty:
                        return self.items.pop()
            """,
        )
        assert ids == []

    def test_init_writes_are_exempt(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            import threading

            class Once:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 1  # pre-publication write, never locked

                def read(self):
                    return self.value
            """,
        )
        assert ids == []


# -- NP001 global numpy RNG ----------------------------------------------------
class TestGlobalNpRandom:
    def test_legacy_calls_flagged(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            import numpy as np

            def sample():
                np.random.seed(0)
                return np.random.rand(4)
            """,
        )
        assert ids == ["NP001", "NP001"]

    def test_generator_api_passes(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            import numpy as np

            def sample(rng):
                gen = np.random.default_rng(rng)
                seq = np.random.SeedSequence(7)
                return gen.random(4), seq
            """,
        )
        assert ids == []


# -- NP002 in-place on view ----------------------------------------------------
class TestInplaceOnView:
    def test_slice_view_flagged(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            def shift(u):
                tail = u[1:]
                tail += 1.0
                return u
            """,
        )
        assert ids == ["NP002"]

    def test_transpose_and_reshape_views_flagged(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            def scale(u):
                t = u.T
                t *= 2.0
                flat = u.reshape(-1)
                flat -= 1.0
                return u
            """,
        )
        assert ids == ["NP002", "NP002"]

    def test_copy_passes(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            def shift(u):
                tail = u[1:].copy()
                tail += 1.0
                rebound = u[1:]
                rebound = rebound + 1.0
                return tail, rebound
            """,
        )
        assert ids == []


# -- PY001 bare except ---------------------------------------------------------
class TestBareExcept:
    def test_bare_except_flagged(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            def safe(fn):
                try:
                    return fn()
                except:
                    return None
            """,
        )
        assert ids == ["PY001"]

    def test_typed_except_passes(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            def safe(fn):
                try:
                    return fn()
                except Exception:
                    return None
            """,
        )
        assert ids == []


# -- PY002 mutable defaults ----------------------------------------------------
class TestMutableDefault:
    def test_list_and_dict_defaults_flagged(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            def collect(x, acc=[], index={}):
                acc.append(x)
                return acc, index
            """,
        )
        assert ids == ["PY002", "PY002"]

    def test_none_default_passes(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            def collect(x, acc=None):
                acc = [] if acc is None else acc
                acc.append(x)
                return acc
            """,
        )
        assert ids == []


# -- baseline semantics --------------------------------------------------------
class TestBaseline:
    BAD = """
    import numpy as np

    def sample():
        return np.random.rand(4)
    """

    def test_baseline_suppresses_by_symbol(self, tmp_path):
        src = write(tmp_path, self.BAD, "mod.py")
        bl = tmp_path / BASELINE_FILENAME
        bl.write_text("NP001 mod.py sample  # legacy demo code\n")
        report = lint_paths([src], baseline=Baseline.load(bl))
        assert report.rule_ids == []
        assert len(report.suppressed) == 1
        assert report.exit_code() == 0

    def test_wildcard_symbol(self, tmp_path):
        src = write(tmp_path, self.BAD, "mod.py")
        bl = tmp_path / BASELINE_FILENAME
        bl.write_text("NP001 mod.py *  # whole-file waiver\n")
        assert lint_paths([src], baseline=Baseline.load(bl)).rule_ids == []

    def test_suffix_path_matching(self, tmp_path):
        pkg = tmp_path / "src" / "pkg"
        pkg.mkdir(parents=True)
        src = write(pkg, self.BAD, "mod.py")
        bl = tmp_path / BASELINE_FILENAME
        bl.write_text("NP001 src/pkg/mod.py sample  # nested path\n")
        assert lint_paths([src], baseline=Baseline.load(bl)).rule_ids == []

    def test_justification_required(self, tmp_path):
        bl = tmp_path / BASELINE_FILENAME
        bl.write_text("NP001 mod.py sample\n")
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(bl)

    def test_unknown_rule_rejected(self, tmp_path):
        bl = tmp_path / BASELINE_FILENAME
        bl.write_text("XX999 mod.py sample  # nope\n")
        with pytest.raises(ValueError, match="unknown rule id"):
            Baseline.load(bl)

    def test_find_baseline_walks_up(self, tmp_path):
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        bl = tmp_path / BASELINE_FILENAME
        bl.write_text("# empty\n")
        assert find_baseline(nested) == bl

    def test_roundtrip_save_load(self, tmp_path):
        src = write(tmp_path, self.BAD, "mod.py")
        report = lint_paths([src], baseline=Baseline())
        baseline = Baseline.from_diagnostics(report.diagnostics)
        path = baseline.save(tmp_path / BASELINE_FILENAME)
        # The freshly written file carries TODO placeholders: it must NOT
        # load until a human replaces them with real justifications.
        with pytest.raises(ValueError, match="TODO-placeholder"):
            Baseline.load(path)
        path.write_text(
            path.read_text().replace(
                "TODO: justify this suppression", "seeded test data"
            )
        )
        reloaded = Baseline.load(path)
        assert len(reloaded) == 1
        assert lint_paths([src], baseline=reloaded).rule_ids == []

    def test_todo_placeholder_rejected_case_insensitive(self, tmp_path):
        bl = tmp_path / BASELINE_FILENAME
        bl.write_text("NP001 mod.py sample  # todo: explain later\n")
        with pytest.raises(ValueError, match="TODO-placeholder"):
            Baseline.load(bl)


# -- the tier-1 gate: repo at head is clean ------------------------------------
class TestRepoIsClean:
    def test_repo_lints_clean_against_checked_in_baseline(self):
        report = lint_paths([Path(repro.__file__).parent])
        assert report.exit_code() == 0, report.render()

    def test_checked_in_baseline_is_fully_used(self):
        baseline_path = REPO_ROOT / BASELINE_FILENAME
        baseline = Baseline.load(baseline_path)
        report = lint_paths(
            [Path(repro.__file__).parent], baseline=baseline
        )
        suppressed_rules = {d.rule_id for d, _ in report.suppressed}
        # every baseline entry still matches a live finding (no stale waivers)
        assert len(report.suppressed) == len(baseline)
        assert suppressed_rules <= {e.rule_id for e in baseline.entries}


# -- collect_sources hygiene ---------------------------------------------------
class TestCollectSources:
    def test_explicit_file_in_skip_dir_is_ignored(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        stray = write(cache, "x = 1\n", "stray.py")
        from repro.analysis import collect_sources

        assert collect_sources([stray]) == []

    def test_symlinked_duplicate_collapses(self, tmp_path):
        real = write(tmp_path, "x = 1\n", "real.py")
        link = tmp_path / "link.py"
        link.symlink_to(real)
        from repro.analysis import collect_sources

        assert len(collect_sources([real, link])) == 1


# -- stale baseline entries and pruning ----------------------------------------
class TestStaleBaseline:
    LIVE = """
    import numpy as np

    def sample():
        return np.random.rand(4)
    """

    def _baseline(self, tmp_path, extra: str = "") -> Path:
        bl = tmp_path / BASELINE_FILENAME
        bl.write_text(
            "NP001 mod.py sample  # legacy demo code\n" + extra
        )
        return bl

    def test_stale_entry_reported(self, tmp_path):
        src = write(tmp_path, self.LIVE, "mod.py")
        bl = self._baseline(
            tmp_path, "PY001 mod.py gone  # function was removed\n"
        )
        report = lint_paths([src], baseline=Baseline.load(bl))
        assert [e.symbol for e in report.stale_entries] == ["gone"]
        assert len(report.suppressed) == 1

    def test_stale_is_relative_to_run_passes(self, tmp_path):
        # an aliasing-engine entry is NOT stale when only the ast pass ran
        src = write(tmp_path, self.LIVE, "mod.py")
        bl = self._baseline(
            tmp_path, "AL002 mod.py Layer.forward  # arena step contract\n"
        )
        ast_only = lint_paths(
            [src], baseline=Baseline.load(bl), passes=("ast",)
        )
        assert ast_only.stale_entries == []
        all_passes = lint_paths([src], baseline=Baseline.load(bl))
        assert [e.rule_id for e in all_passes.stale_entries] == ["AL002"]

    def test_prune_baseline_cli_preserves_justifications(self, tmp_path, capsys):
        src = write(tmp_path, self.LIVE, "mod.py")
        bl = self._baseline(
            tmp_path, "PY001 mod.py gone  # function was removed\n"
        )
        assert main(
            ["lint", str(src), "--baseline", str(bl), "--prune-baseline"]
        ) == 0
        pruned = Baseline.load(bl)
        assert [e.rule_id for e in pruned.entries] == ["NP001"]
        # the surviving justification is byte-identical
        assert "# legacy demo code" in bl.read_text()
        assert "gone" not in bl.read_text()

    def test_stale_warning_on_stderr(self, tmp_path, capsys):
        src = write(tmp_path, self.LIVE, "mod.py")
        bl = self._baseline(
            tmp_path, "PY001 mod.py gone  # function was removed\n"
        )
        assert main(["lint", str(src), "--baseline", str(bl)]) == 0
        err = capsys.readouterr().err
        assert "stale baseline entry" in err and "gone" in err

    def test_lifecycle_write_edit_roundtrip_prune(self, tmp_path):
        """--write-baseline -> justify -> reload -> prune keeps it all."""
        src = write(tmp_path, self.LIVE, "mod.py")
        report = lint_paths([src], baseline=Baseline())
        bl_path = tmp_path / BASELINE_FILENAME
        Baseline.from_diagnostics(report.diagnostics).save(bl_path)
        text = bl_path.read_text().replace(
            "TODO: justify this suppression", "demo code keeps legacy RNG"
        )
        bl_path.write_text(text)
        reloaded = Baseline.load(bl_path)
        assert [e.justification for e in reloaded.entries] == [
            "demo code keeps legacy RNG"
        ]
        report = lint_paths([src], baseline=reloaded)
        assert report.rule_ids == [] and report.stale_entries == []
        from repro.analysis import prune_baseline

        pruned = prune_baseline(report)
        assert len(pruned) == len(reloaded)

    def test_checked_in_lk001_request_entries_still_match(self):
        """Regression: the two historical request.py waivers stay live."""
        baseline = Baseline.load(REPO_ROOT / BASELINE_FILENAME)
        report = lint_paths(
            [Path(repro.__file__).parent / "serving" / "request.py"],
            baseline=baseline,
            passes=("ast",),
        )
        lk = [
            d.symbol for d, _ in report.suppressed if d.rule_id == "LK001"
        ]
        assert sorted(lk) == [
            "InferenceRequest.completed_at",
            "InferenceRequest.started_at",
        ]


# -- output formats ------------------------------------------------------------
class TestOutputFormats:
    BAD = """
    import numpy as np

    def sample():
        return np.random.rand(4)
    """

    def test_json_format(self, tmp_path, capsys):
        import json

        src = write(tmp_path, self.BAD, "mod.py")
        assert main(
            ["lint", str(src), "--no-baseline", "--format", "json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["warnings"] == 1
        assert payload["diagnostics"][0]["rule_id"] == "NP001"

    def test_sarif_format(self, tmp_path, capsys):
        import json

        src = write(tmp_path, self.BAD, "mod.py")
        assert main(
            ["lint", str(src), "--no-baseline", "--format", "sarif"]
        ) == 1
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rules == {"NP001"}
        result = run["results"][0]
        assert result["ruleId"] == "NP001"
        assert result["level"] == "warning"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("mod.py")

    def test_sarif_marks_suppressed_findings(self, tmp_path, capsys):
        import json

        src = write(tmp_path, self.BAD, "mod.py")
        bl = tmp_path / BASELINE_FILENAME
        bl.write_text("NP001 mod.py sample  # legacy demo code\n")
        assert main(
            ["lint", str(src), "--baseline", str(bl), "--format", "sarif"]
        ) == 0
        sarif = json.loads(capsys.readouterr().out)
        result = sarif["runs"][0]["results"][0]
        assert result["suppressions"][0]["justification"] == (
            "legacy demo code"
        )

    def test_repo_sarif_is_wellformed(self, capsys):
        import json

        assert main(["lint", "--format", "sarif"]) == 0
        sarif = json.loads(capsys.readouterr().out)
        ids = {r["ruleId"] for r in sarif["runs"][0]["results"]}
        assert {"AL002", "LK001"} <= ids  # the justified baseline entries


# -- pass selection ------------------------------------------------------------
class TestPassSelection:
    def test_unknown_pass_rejected(self, capsys):
        assert main(["lint", "--passes", "ast,bogus"]) == 2
        assert "unknown pass" in capsys.readouterr().err

    def test_concurrency_and_aliasing_only(self, capsys):
        assert main(["lint", "--passes", "concurrency,aliasing"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_ast_only_skips_whole_program_rules(self, tmp_path):
        from repro.analysis import fixtures

        src = write(tmp_path, fixtures.ABBA_DEADLOCK, "abba.py")
        assert lint_paths(
            [src], baseline=Baseline(), passes=("ast",)
        ).rule_ids == []
        assert lint_paths(
            [src], baseline=Baseline(), passes=("concurrency",)
        ).rule_ids == ["CC001"]


# -- CLI smoke -----------------------------------------------------------------
class TestCliSmoke:
    def test_lint_clean_repo_exit_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_seeded_violation_exit_nonzero(self, tmp_path, capsys):
        bad = write(
            tmp_path,
            """
            import numpy as np

            def sample(acc=[]):
                try:
                    acc.append(np.random.rand())
                except:
                    pass
                return acc
            """,
            "seeded.py",
        )
        assert main(["lint", str(bad), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        for rule in ("NP001", "PY001", "PY002"):
            assert rule in out

    def test_lint_write_baseline_then_clean(self, tmp_path, capsys):
        bad = write(
            tmp_path,
            """
            import numpy as np

            def sample():
                return np.random.rand()
            """,
            "seeded.py",
        )
        bl = tmp_path / BASELINE_FILENAME
        assert main(["lint", str(bad), "--write-baseline", str(bl)]) == 0
        assert bl.exists()
        # The written entries carry TODO placeholders, which no longer
        # parse: the CLI reports the unjustified baseline and fails.
        assert main(["lint", str(bad), "--baseline", str(bl)]) == 2
        err = capsys.readouterr().err
        assert "TODO-placeholder" in err
        # Filling in a real justification makes the baseline usable.
        bl.write_text(
            bl.read_text().replace(
                "TODO: justify this suppression", "seeded test data"
            )
        )
        assert main(["lint", str(bad), "--baseline", str(bl)]) == 0

    def test_lint_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        assert "MG002" in out and "LK001" in out

    def test_verify_model_all_clean(self, capsys):
        assert main(["verify-model"]) == 0
        out = capsys.readouterr().out
        for arch in ("cnv", "n-cnv", "u-cnv"):
            assert f"{arch}: 0 error(s)" in out

    def test_verify_model_single_arch(self, capsys):
        assert main(["verify-model", "--arch", "u-cnv"]) == 0
        assert "u-cnv" in capsys.readouterr().out
