"""AST lint pass: per-rule fixtures, baseline semantics, CLI smoke.

Each lint rule id gets one minimal failing snippet and one passing
snippet; the repo-at-head test wires ``repro lint`` into the tier-1
flow (the gate the CI acceptance criterion requires).
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    BASELINE_FILENAME,
    Baseline,
    find_baseline,
    lint_file,
    lint_paths,
)
from repro.cli import main

pytestmark = pytest.mark.analysis

REPO_ROOT = Path(repro.__file__).resolve().parents[2]


def write(tmp_path: Path, code: str, name: str = "snippet.py") -> Path:
    path = tmp_path / name
    path.write_text(textwrap.dedent(code))
    return path


def ids_of(tmp_path: Path, code: str) -> list:
    return [d.rule_id for d in lint_file(write(tmp_path, code))]


# -- LK001 lock discipline -----------------------------------------------------
class TestLockDiscipline:
    def test_unguarded_read_flagged(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1

                def read(self):
                    return self.count
            """,
        )
        assert ids == ["LK001"]

    def test_guarded_read_passes(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1

                def read(self):
                    with self._lock:
                        return self.count
            """,
        )
        assert ids == []

    def test_condition_counts_as_lock(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            import threading

            class Queue:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._not_empty = threading.Condition(self._lock)
                    self.items = []

                def put(self, x):
                    with self._lock:
                        self.items.append(x)
                        self.items = self.items

                def pop(self):
                    with self._not_empty:
                        return self.items.pop()
            """,
        )
        assert ids == []

    def test_init_writes_are_exempt(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            import threading

            class Once:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 1  # pre-publication write, never locked

                def read(self):
                    return self.value
            """,
        )
        assert ids == []


# -- NP001 global numpy RNG ----------------------------------------------------
class TestGlobalNpRandom:
    def test_legacy_calls_flagged(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            import numpy as np

            def sample():
                np.random.seed(0)
                return np.random.rand(4)
            """,
        )
        assert ids == ["NP001", "NP001"]

    def test_generator_api_passes(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            import numpy as np

            def sample(rng):
                gen = np.random.default_rng(rng)
                seq = np.random.SeedSequence(7)
                return gen.random(4), seq
            """,
        )
        assert ids == []


# -- NP002 in-place on view ----------------------------------------------------
class TestInplaceOnView:
    def test_slice_view_flagged(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            def shift(u):
                tail = u[1:]
                tail += 1.0
                return u
            """,
        )
        assert ids == ["NP002"]

    def test_transpose_and_reshape_views_flagged(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            def scale(u):
                t = u.T
                t *= 2.0
                flat = u.reshape(-1)
                flat -= 1.0
                return u
            """,
        )
        assert ids == ["NP002", "NP002"]

    def test_copy_passes(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            def shift(u):
                tail = u[1:].copy()
                tail += 1.0
                rebound = u[1:]
                rebound = rebound + 1.0
                return tail, rebound
            """,
        )
        assert ids == []


# -- PY001 bare except ---------------------------------------------------------
class TestBareExcept:
    def test_bare_except_flagged(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            def safe(fn):
                try:
                    return fn()
                except:
                    return None
            """,
        )
        assert ids == ["PY001"]

    def test_typed_except_passes(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            def safe(fn):
                try:
                    return fn()
                except Exception:
                    return None
            """,
        )
        assert ids == []


# -- PY002 mutable defaults ----------------------------------------------------
class TestMutableDefault:
    def test_list_and_dict_defaults_flagged(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            def collect(x, acc=[], index={}):
                acc.append(x)
                return acc, index
            """,
        )
        assert ids == ["PY002", "PY002"]

    def test_none_default_passes(self, tmp_path):
        ids = ids_of(
            tmp_path,
            """
            def collect(x, acc=None):
                acc = [] if acc is None else acc
                acc.append(x)
                return acc
            """,
        )
        assert ids == []


# -- baseline semantics --------------------------------------------------------
class TestBaseline:
    BAD = """
    import numpy as np

    def sample():
        return np.random.rand(4)
    """

    def test_baseline_suppresses_by_symbol(self, tmp_path):
        src = write(tmp_path, self.BAD, "mod.py")
        bl = tmp_path / BASELINE_FILENAME
        bl.write_text("NP001 mod.py sample  # legacy demo code\n")
        report = lint_paths([src], baseline=Baseline.load(bl))
        assert report.rule_ids == []
        assert len(report.suppressed) == 1
        assert report.exit_code() == 0

    def test_wildcard_symbol(self, tmp_path):
        src = write(tmp_path, self.BAD, "mod.py")
        bl = tmp_path / BASELINE_FILENAME
        bl.write_text("NP001 mod.py *  # whole-file waiver\n")
        assert lint_paths([src], baseline=Baseline.load(bl)).rule_ids == []

    def test_suffix_path_matching(self, tmp_path):
        pkg = tmp_path / "src" / "pkg"
        pkg.mkdir(parents=True)
        src = write(pkg, self.BAD, "mod.py")
        bl = tmp_path / BASELINE_FILENAME
        bl.write_text("NP001 src/pkg/mod.py sample  # nested path\n")
        assert lint_paths([src], baseline=Baseline.load(bl)).rule_ids == []

    def test_justification_required(self, tmp_path):
        bl = tmp_path / BASELINE_FILENAME
        bl.write_text("NP001 mod.py sample\n")
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(bl)

    def test_unknown_rule_rejected(self, tmp_path):
        bl = tmp_path / BASELINE_FILENAME
        bl.write_text("XX999 mod.py sample  # nope\n")
        with pytest.raises(ValueError, match="unknown rule id"):
            Baseline.load(bl)

    def test_find_baseline_walks_up(self, tmp_path):
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        bl = tmp_path / BASELINE_FILENAME
        bl.write_text("# empty\n")
        assert find_baseline(nested) == bl

    def test_roundtrip_save_load(self, tmp_path):
        src = write(tmp_path, self.BAD, "mod.py")
        report = lint_paths([src], baseline=Baseline())
        baseline = Baseline.from_diagnostics(report.diagnostics)
        path = baseline.save(tmp_path / BASELINE_FILENAME)
        # The freshly written file carries TODO placeholders: it must NOT
        # load until a human replaces them with real justifications.
        with pytest.raises(ValueError, match="TODO-placeholder"):
            Baseline.load(path)
        path.write_text(
            path.read_text().replace(
                "TODO: justify this suppression", "seeded test data"
            )
        )
        reloaded = Baseline.load(path)
        assert len(reloaded) == 1
        assert lint_paths([src], baseline=reloaded).rule_ids == []

    def test_todo_placeholder_rejected_case_insensitive(self, tmp_path):
        bl = tmp_path / BASELINE_FILENAME
        bl.write_text("NP001 mod.py sample  # todo: explain later\n")
        with pytest.raises(ValueError, match="TODO-placeholder"):
            Baseline.load(bl)


# -- the tier-1 gate: repo at head is clean ------------------------------------
class TestRepoIsClean:
    def test_repo_lints_clean_against_checked_in_baseline(self):
        report = lint_paths([Path(repro.__file__).parent])
        assert report.exit_code() == 0, report.render()

    def test_checked_in_baseline_is_fully_used(self):
        baseline_path = REPO_ROOT / BASELINE_FILENAME
        baseline = Baseline.load(baseline_path)
        report = lint_paths(
            [Path(repro.__file__).parent], baseline=baseline
        )
        suppressed_rules = {d.rule_id for d, _ in report.suppressed}
        # every baseline entry still matches a live finding (no stale waivers)
        assert len(report.suppressed) == len(baseline)
        assert suppressed_rules <= {e.rule_id for e in baseline.entries}


# -- CLI smoke -----------------------------------------------------------------
class TestCliSmoke:
    def test_lint_clean_repo_exit_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_seeded_violation_exit_nonzero(self, tmp_path, capsys):
        bad = write(
            tmp_path,
            """
            import numpy as np

            def sample(acc=[]):
                try:
                    acc.append(np.random.rand())
                except:
                    pass
                return acc
            """,
            "seeded.py",
        )
        assert main(["lint", str(bad), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        for rule in ("NP001", "PY001", "PY002"):
            assert rule in out

    def test_lint_write_baseline_then_clean(self, tmp_path, capsys):
        bad = write(
            tmp_path,
            """
            import numpy as np

            def sample():
                return np.random.rand()
            """,
            "seeded.py",
        )
        bl = tmp_path / BASELINE_FILENAME
        assert main(["lint", str(bad), "--write-baseline", str(bl)]) == 0
        assert bl.exists()
        # The written entries carry TODO placeholders, which no longer
        # parse: the CLI reports the unjustified baseline and fails.
        assert main(["lint", str(bad), "--baseline", str(bl)]) == 2
        err = capsys.readouterr().err
        assert "TODO-placeholder" in err
        # Filling in a real justification makes the baseline usable.
        bl.write_text(
            bl.read_text().replace(
                "TODO: justify this suppression", "seeded test data"
            )
        )
        assert main(["lint", str(bad), "--baseline", str(bl)]) == 0

    def test_lint_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        assert "MG002" in out and "LK001" in out

    def test_verify_model_all_clean(self, capsys):
        assert main(["verify-model"]) == 0
        out = capsys.readouterr().out
        for arch in ("cnv", "n-cnv", "u-cnv"):
            assert f"{arch}: 0 error(s)" in out

    def test_verify_model_single_arch(self, capsys):
        assert main(["verify-model", "--arch", "u-cnv"]) == 0
        assert "u-cnv" in capsys.readouterr().out
