"""Tests for activation-buffer planning and the device-fit optimizer."""

import numpy as np
import pytest

from repro.core.architectures import build_architecture, table1_folding
from repro.hw.buffers import BufferPlan, StageBuffer, plan_buffers
from repro.hw.compiler import FoldingConfig, compile_model
from repro.hw.devices import Z7010, Z7020, Device
from repro.hw.dse import optimize_for_device
from repro.testing import make_tiny_bnn, randomize_bn_stats


@pytest.fixture(scope="module")
def tiny_acc():
    m = make_tiny_bnn()
    randomize_bn_stats(m)
    m.eval()
    return compile_model(m, FoldingConfig(pe=(1, 1, 1, 1), simd=(1, 1, 1, 1)))


@pytest.fixture(scope="module")
def ncnv_acc():
    m = build_architecture("n-cnv", rng=0)
    randomize_bn_stats(m)
    m.eval()
    return compile_model(m, table1_folding("n-cnv"))


class TestBufferPlan:
    def test_every_stage_planned(self, ncnv_acc):
        plan = plan_buffers(ncnv_acc)
        assert [b.stage for b in plan.buffers] == [
            s.name for s in ncnv_acc.stages
        ]

    def test_first_layer_line_buffer_is_8bit(self, ncnv_acc):
        plan = plan_buffers(ncnv_acc)
        first = plan.buffers[0]
        # (K-1) rows * 32 px + K px, 3 channels x 8 bits.
        assert first.line_buffer_bits == (2 * 32 + 3) * 3 * 8

    def test_binary_layers_use_1bit_lines(self, ncnv_acc):
        plan = plan_buffers(ncnv_acc)
        conv1_2 = plan.buffers[1]
        # conv1_2 input: 30x30x16 binary -> (2*30 + 3) * 16 bits.
        assert conv1_2.line_buffer_bits == (2 * 30 + 3) * 16

    def test_fc_stages_have_no_line_buffer(self, ncnv_acc):
        plan = plan_buffers(ncnv_acc)
        for buf in plan.buffers:
            if buf.stage.startswith("fc"):
                assert buf.line_buffer_bits == 0

    def test_last_stage_has_no_fifo(self, ncnv_acc):
        plan = plan_buffers(ncnv_acc)
        assert plan.buffers[-1].fifo_bits == 0

    def test_fifo_depth_minimum_two(self, tiny_acc):
        plan = plan_buffers(tiny_acc)
        for buf in plan.buffers[:-1]:
            assert buf.fifo_depth_words >= 2

    def test_totals_consistent(self, ncnv_acc):
        plan = plan_buffers(ncnv_acc)
        assert plan.total_bits() == sum(b.total_bits for b in plan.buffers)
        assert plan.total_bram_blocks() == sum(
            b.bram_blocks() for b in plan.buffers
        )

    def test_report_mentions_totals(self, ncnv_acc):
        report = plan_buffers(ncnv_acc).report()
        assert "total:" in report and "BRAM18" in report

    def test_buffers_are_small_vs_weights(self, ncnv_acc):
        """Sanity: activation buffering is a small fraction of weights
        for these topologies (which is why Table II tracks weights)."""
        plan = plan_buffers(ncnv_acc)
        assert plan.total_bits() < ncnv_acc.weight_bits()


class TestOptimizeForDevice:
    def test_result_fits_and_is_fast(self):
        model = make_tiny_bnn()
        randomize_bn_stats(model)
        model.eval()
        point = optimize_for_device(model, Z7010)
        assert point is not None
        assert point.fits_device
        # The chosen point must beat the slowest (fully folded) design.
        slow = optimize_for_device(
            model, Z7010, min_target=3_999_999, max_target=4_000_000
        )
        assert point.fps_analytic >= slow.fps_analytic

    def test_ncnv_fits_z7020_with_headroom(self):
        model = build_architecture("n-cnv", rng=0)
        randomize_bn_stats(model)
        model.eval()
        point = optimize_for_device(model, Z7020)
        assert point is not None and point.fits_device
        # Matched-throughput DSE should find a point at least as fast as
        # Table I's hand dimensioning (12,346 FPS analytic).
        assert point.fps_analytic >= 12_000

    def test_impossible_device_returns_none(self):
        model = build_architecture("cnv", rng=0)
        randomize_bn_stats(model)
        model.eval()
        matchbox = Device(
            name="matchbox", luts=1000, flip_flops=2000, bram36=1, dsp48=1
        )
        assert optimize_for_device(model, matchbox) is None

    def test_range_validation(self):
        model = make_tiny_bnn()
        with pytest.raises(ValueError, match="target range"):
            optimize_for_device(model, Z7020, min_target=0)
