"""Tests for tensor validation helpers and weight initialisers."""

import numpy as np
import pytest

from repro.nn import initializers
from repro.utils.tensor_checks import (
    as_pair,
    require_binary,
    require_dtype,
    require_ndim,
    require_shape,
)


class TestRequireNdim:
    def test_accepts(self):
        x = np.zeros((2, 3))
        assert require_ndim(x, 2) is x

    def test_rejects(self):
        with pytest.raises(ValueError, match="must be 3-D"):
            require_ndim(np.zeros((2, 3)), 3, name="acts")


class TestRequireShape:
    def test_wildcards(self):
        x = np.zeros((4, 8, 3))
        assert require_shape(x, (None, 8, None)) is x

    def test_axis_mismatch_message(self):
        with pytest.raises(ValueError, match="axis 1 must be 9"):
            require_shape(np.zeros((4, 8)), (4, 9))

    def test_rank_mismatch(self):
        with pytest.raises(ValueError, match="2-D"):
            require_shape(np.zeros(3), (None, None))


class TestRequireDtype:
    def test_accepts_family(self):
        x = np.zeros(3, dtype=np.float32)
        assert require_dtype(x, [np.floating]) is x

    def test_rejects(self):
        with pytest.raises(TypeError, match="dtype"):
            require_dtype(np.zeros(3, dtype=np.int32), [np.floating])


class TestRequireBinary:
    def test_accepts_bipolar(self):
        x = np.array([1.0, -1.0, 1.0])
        assert require_binary(x) is x

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="only -1"):
            require_binary(np.array([1.0, 0.0]))

    def test_reports_offender_count(self):
        with pytest.raises(ValueError, match="2 offending"):
            require_binary(np.array([0.5, 1.0, 0.5]))


class TestAsPair:
    def test_int(self):
        assert as_pair(3) == (3, 3)

    def test_sequence(self):
        assert as_pair((2, 5)) == (2, 5)
        assert as_pair([4, 1]) == (4, 1)

    def test_numpy_int(self):
        assert as_pair(np.int64(7)) == (7, 7)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="pair"):
            as_pair((1, 2, 3))

    def test_rejects_non_iterable(self):
        with pytest.raises(ValueError, match="pair"):
            as_pair(object())


class TestInitializers:
    def test_glorot_limits(self):
        w = initializers.glorot_uniform((100, 50), rng=0)
        limit = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= limit + 1e-6
        assert w.dtype == np.float32

    def test_glorot_conv_fans(self):
        w = initializers.glorot_uniform((3, 3, 16, 32), rng=0)
        limit = np.sqrt(6.0 / (9 * 16 + 9 * 32))
        assert np.abs(w).max() <= limit + 1e-6

    def test_he_std(self):
        w = initializers.he_normal((1000, 10), rng=0)
        assert abs(w.std() - np.sqrt(2.0 / 1000)) < 0.005

    def test_uniform_range(self):
        w = initializers.uniform((100,), rng=0, low=-0.2, high=0.2)
        assert w.min() >= -0.2 and w.max() < 0.2

    def test_zeros_ones(self):
        np.testing.assert_array_equal(initializers.zeros((2, 2)), 0.0)
        np.testing.assert_array_equal(initializers.ones((2, 2)), 1.0)

    def test_deterministic(self):
        a = initializers.glorot_uniform((5, 5), rng=42)
        b = initializers.glorot_uniform((5, 5), rng=42)
        np.testing.assert_array_equal(a, b)

    def test_bad_shape_for_fans(self):
        with pytest.raises(ValueError, match="fans"):
            initializers.glorot_uniform((3,), rng=0)

    def test_registry(self):
        assert initializers.get("he_normal") is initializers.he_normal
        assert initializers.get(initializers.zeros) is initializers.zeros
        with pytest.raises(ValueError, match="unknown initializer"):
            initializers.get("kaiming")

    def test_latent_weights_start_inside_ste_window(self):
        """Glorot init keeps latent binary weights within [-1, 1] for all
        the paper's layer sizes, so no weight starts frozen by the
        clipped STE."""
        for shape in ((3, 3, 3, 64), (3, 3, 256, 256), (512, 512), (27, 4)):
            w = initializers.glorot_uniform(shape, rng=1)
            assert np.abs(w).max() < 1.0, shape
