"""Layer-level tests: shapes, gradchecks, binary semantics, error paths."""

import numpy as np
import pytest

from repro.nn.binary_ops import sign, ste_grad
from repro.nn.gradcheck import check_layer_input_grad, check_layer_param_grads
from repro.nn.layers import (
    BatchNorm,
    BinaryConv2D,
    BinaryDense,
    Conv2D,
    Dense,
    Flatten,
    HardTanh,
    MaxPool2D,
    ReLU,
    SignActivation,
)
from repro.nn.module import Parameter


@pytest.fixture()
def x_img():
    return np.random.default_rng(0).standard_normal((2, 8, 8, 3)).astype(np.float32)


@pytest.fixture()
def x_flat():
    return np.random.default_rng(1).standard_normal((4, 10)).astype(np.float32)


class TestBinaryOps:
    def test_sign_zero_maps_to_plus_one(self):
        np.testing.assert_array_equal(
            sign(np.array([-2.0, 0.0, 3.0])), [-1.0, 1.0, 1.0]
        )

    def test_sign_output_dtype(self):
        assert sign(np.zeros(3, dtype=np.float64)).dtype == np.float32

    def test_identity_ste_passthrough(self):
        g = np.array([1.0, -2.0, 3.0], dtype=np.float32)
        x = np.array([5.0, -5.0, 0.1], dtype=np.float32)
        np.testing.assert_array_equal(ste_grad(g, x, "identity"), g)

    def test_clipped_ste_masks_saturated(self):
        g = np.ones(4, dtype=np.float32)
        x = np.array([-2.0, -1.0, 1.0, 2.0], dtype=np.float32)
        np.testing.assert_array_equal(ste_grad(g, x, "clipped"), [0, 1, 1, 0])

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown STE"):
            ste_grad(np.zeros(1), np.zeros(1), "magic")


class TestConv2D:
    def test_output_shape(self, x_img):
        conv = Conv2D(3, 5, kernel_size=3, rng=0)
        assert conv.forward(x_img).shape == (2, 6, 6, 5)
        assert conv.output_shape((8, 8, 3)) == (6, 6, 5)

    def test_gradcheck(self, x_img):
        conv = Conv2D(3, 4, kernel_size=3, rng=0)
        check_layer_input_grad(conv, x_img)
        check_layer_param_grads(conv, x_img)

    def test_bias(self, x_img):
        conv = Conv2D(3, 4, use_bias=True, rng=0)
        conv.bias.data[:] = 5.0
        conv2 = Conv2D(3, 4, use_bias=False, rng=0)
        conv2.weight.data = conv.weight.data.copy()
        np.testing.assert_allclose(
            conv.forward(x_img), conv2.forward(x_img) + 5.0, atol=1e-5
        )

    def test_padding_same_spatial(self, x_img):
        conv = Conv2D(3, 4, kernel_size=3, padding=1, rng=0)
        assert conv.forward(x_img).shape == (2, 8, 8, 4)

    def test_stride_two(self, x_img):
        conv = Conv2D(3, 4, kernel_size=3, stride=2, rng=0)
        check_layer_input_grad(conv, x_img)

    def test_wrong_channels_rejected(self, x_img):
        conv = Conv2D(5, 4, rng=0)
        with pytest.raises(ValueError, match="expected"):
            conv.forward(x_img)

    def test_backward_without_forward(self):
        conv = Conv2D(3, 4, rng=0)
        with pytest.raises(RuntimeError, match="backward"):
            conv.backward(np.zeros((1, 6, 6, 4), dtype=np.float32))

    def test_eval_mode_skips_cache(self, x_img):
        conv = Conv2D(3, 4, rng=0)
        conv.eval()
        conv.forward(x_img)
        assert conv._cache is None

    def test_nonpositive_channels_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Conv2D(0, 4)


class TestBinaryConv2D:
    def test_effective_weight_is_bipolar(self):
        conv = BinaryConv2D(3, 4, rng=0)
        w = conv.effective_weight()
        assert set(np.unique(w)) <= {-1.0, 1.0}

    def test_forward_uses_binarized_weights(self, x_img):
        conv = BinaryConv2D(3, 4, rng=0)
        ref = Conv2D(3, 4, rng=0)
        ref.weight.data = sign(conv.weight.data)
        np.testing.assert_allclose(conv.forward(x_img), ref.forward(x_img), atol=1e-5)

    def test_latent_binary_flag(self):
        conv = BinaryConv2D(3, 4, rng=0)
        assert conv.weight.latent_binary
        assert not conv.weight.weight_decay

    def test_ste_clips_weight_gradient(self, x_img):
        conv = BinaryConv2D(3, 4, rng=0, ste="clipped")
        conv.weight.data[0, 0, 0, 0] = 2.0  # saturated latent weight
        conv.forward(x_img)
        conv.backward(np.ones((2, 6, 6, 4), dtype=np.float32))
        assert conv.weight.grad[0, 0, 0, 0] == 0.0
        assert np.abs(conv.weight.grad).sum() > 0.0

    def test_scale_invariance_of_latent_weights(self, x_img):
        """Binarisation makes the forward invariant to latent magnitude."""
        conv = BinaryConv2D(3, 4, rng=0)
        out1 = conv.forward(x_img)
        conv.weight.data *= 0.3
        out2 = conv.forward(x_img)
        np.testing.assert_allclose(out1, out2, atol=1e-5)


class TestDense:
    def test_shapes(self, x_flat):
        d = Dense(10, 7, rng=0)
        assert d.forward(x_flat).shape == (4, 7)
        assert d.output_shape((10,)) == (7,)

    def test_gradcheck(self, x_flat):
        d = Dense(10, 5, rng=0)
        check_layer_input_grad(d, x_flat)
        check_layer_param_grads(d, x_flat)

    def test_gradcheck_with_bias(self, x_flat):
        d = Dense(10, 5, use_bias=True, rng=0)
        check_layer_param_grads(d, x_flat)

    def test_wrong_fan_in(self, x_flat):
        with pytest.raises(ValueError, match="expected"):
            Dense(11, 5, rng=0).forward(x_flat)

    def test_output_shape_validation(self):
        with pytest.raises(ValueError, match="expects"):
            Dense(10, 5).output_shape((11,))


class TestBinaryDense:
    def test_integer_logits_on_binary_input(self):
        d = BinaryDense(16, 4, rng=0)
        x = sign(np.random.default_rng(2).standard_normal((3, 16))).astype(np.float32)
        out = d.forward(x)
        np.testing.assert_array_equal(out, np.rint(out))
        # Parity: dot of two ±1 vectors of even length is even.
        assert np.all(out.astype(int) % 2 == 0)

    def test_logit_bound_is_fan_in(self):
        d = BinaryDense(16, 4, rng=0)
        x = sign(np.random.default_rng(3).standard_normal((8, 16))).astype(np.float32)
        assert np.abs(d.forward(x)).max() <= 16


class TestBatchNorm:
    def test_training_normalises(self, x_img):
        bn = BatchNorm(3)
        out = bn.forward(x_img * 3.0 + 5.0)
        np.testing.assert_allclose(out.mean(axis=(0, 1, 2)), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=(0, 1, 2)), 1.0, atol=1e-3)

    def test_gradcheck(self, x_img):
        bn = BatchNorm(3)
        check_layer_input_grad(bn, x_img, eps=1e-2, atol=1e-3, rtol=1e-2)
        check_layer_param_grads(bn, x_img, eps=1e-2, atol=1e-3, rtol=1e-2)

    def test_running_stats_converge(self, rng):
        bn = BatchNorm(2, momentum=0.5)
        for _ in range(50):
            x = rng.normal(3.0, 2.0, (64, 2)).astype(np.float32)
            bn.forward(x)
        np.testing.assert_allclose(bn.running_mean, 3.0, atol=0.3)
        np.testing.assert_allclose(np.sqrt(bn.running_var), 2.0, atol=0.3)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm(2)
        bn.running_mean[:] = 10.0
        bn.running_var[:] = 4.0
        bn.eval()
        out = bn.forward(np.full((1, 2), 10.0, dtype=np.float32))
        np.testing.assert_allclose(out, 0.0, atol=1e-3)

    def test_eval_backward_is_affine(self):
        bn = BatchNorm(2)
        bn.running_var[:] = 4.0
        bn.gamma.data[:] = 3.0
        bn.eval()
        x = np.random.default_rng(0).standard_normal((5, 2)).astype(np.float32)
        bn.forward(x)
        g = np.ones_like(x)
        dx = bn.backward(g)
        np.testing.assert_allclose(dx, 3.0 / np.sqrt(4.0 + bn.eps), rtol=1e-5)

    def test_fused_scale_shift_matches_eval_forward(self):
        bn = BatchNorm(3)
        gen = np.random.default_rng(5)
        bn.running_mean = gen.normal(0, 1, 3).astype(np.float32)
        bn.running_var = gen.uniform(0.5, 2, 3).astype(np.float32)
        bn.gamma.data = gen.uniform(0.5, 1.5, 3).astype(np.float32)
        bn.beta.data = gen.normal(0, 1, 3).astype(np.float32)
        bn.eval()
        x = gen.standard_normal((4, 3)).astype(np.float32)
        scale, shift = bn.fused_scale_shift()
        np.testing.assert_allclose(bn.forward(x), x * scale + shift, atol=1e-5)

    def test_single_sample_training_rejected(self):
        bn = BatchNorm(3)
        with pytest.raises(ValueError, match="more than one sample"):
            bn.forward(np.zeros((1, 3), dtype=np.float32))

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="incompatible"):
            BatchNorm(3).forward(np.zeros((2, 4), dtype=np.float32))

    def test_non_affine(self, x_img):
        bn = BatchNorm(3, affine=False)
        assert bn.parameters() == []
        out = bn.forward(x_img)
        np.testing.assert_allclose(out.mean(axis=(0, 1, 2)), 0.0, atol=1e-4)


class TestMaxPool:
    def test_forward(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = MaxPool2D(2).forward(x)
        np.testing.assert_array_equal(out[0, :, :, 0], [[5, 7], [13, 15]])

    def test_gradcheck(self):
        # Distinct, well-separated values: finite differences at argmax
        # ties are undefined, so the input must be tie-free within eps.
        rng = np.random.default_rng(0)
        vals = np.linspace(-1.0, 1.0, 2 * 8 * 8 * 3, dtype=np.float64)
        x = rng.permuted(vals).reshape(2, 8, 8, 3).astype(np.float32)
        check_layer_input_grad(MaxPool2D(2), x)

    def test_gradient_routes_to_argmax(self):
        x = np.zeros((1, 2, 2, 1), dtype=np.float32)
        x[0, 1, 0, 0] = 9.0
        mp = MaxPool2D(2)
        mp.forward(x)
        dx = mp.backward(np.ones((1, 1, 1, 1), dtype=np.float32))
        assert dx[0, 1, 0, 0] == 1.0
        assert dx.sum() == 1.0

    def test_overlapping_rejected(self):
        with pytest.raises(NotImplementedError):
            MaxPool2D(2, stride=1)

    def test_output_shape(self):
        assert MaxPool2D(2).output_shape((8, 8, 5)) == (4, 4, 5)


class TestActivations:
    def test_sign_activation_binary_output(self, x_img):
        out = SignActivation().forward(x_img)
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_sign_ste_backward(self, x_img):
        act = SignActivation()
        act.forward(x_img)
        g = np.ones_like(x_img)
        dx = act.backward(g)
        np.testing.assert_array_equal(dx, (np.abs(x_img) <= 1.0).astype(np.float32))

    def test_relu_gradcheck(self, x_img):
        # Finite differences at the kink (x = 0) are undefined; push every
        # element at least 0.05 away from it.
        x = np.where(np.abs(x_img) < 0.05, 0.5, x_img).astype(np.float32)
        check_layer_input_grad(ReLU(), x)

    def test_hardtanh_gradcheck(self, x_img):
        # Same treatment for the kinks at ±1 (scaled input keeps values
        # inside, away-from-kink filter handles x = 0 irrelevance).
        x = (x_img * 0.4).astype(np.float32)
        x = np.where(np.abs(np.abs(x) - 1.0) < 0.05, 0.5, x).astype(np.float32)
        check_layer_input_grad(HardTanh(), x)

    def test_hardtanh_saturates(self):
        out = HardTanh().forward(np.array([-5.0, 0.3, 5.0], dtype=np.float32))
        np.testing.assert_allclose(out, [-1.0, 0.3, 1.0], atol=1e-6)

    def test_backward_requires_forward(self):
        for layer in (SignActivation(), ReLU(), HardTanh()):
            with pytest.raises(RuntimeError):
                layer.backward(np.zeros(3, dtype=np.float32))


class TestFlatten:
    def test_roundtrip(self, x_img):
        f = Flatten()
        out = f.forward(x_img)
        assert out.shape == (2, 8 * 8 * 3)
        back = f.backward(out)
        np.testing.assert_array_equal(back, x_img)

    def test_output_shape(self):
        assert Flatten().output_shape((4, 4, 8)) == (128,)


class TestParameter:
    def test_grad_accumulation(self):
        p = Parameter(np.zeros((2, 2)))
        p.accumulate_grad(np.ones((2, 2)))
        p.accumulate_grad(np.ones((2, 2)))
        np.testing.assert_array_equal(p.grad, 2.0)
        p.zero_grad()
        assert p.grad is None

    def test_shape_mismatch(self):
        p = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="shape"):
            p.accumulate_grad(np.ones(3))
