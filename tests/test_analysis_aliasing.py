"""Arena aliasing analysis: soundness demos + the nn/ fast-path gate.

The AL fixtures must each produce exactly their seeded rule; the
repo-at-head test pins the four known (justified) AL002 escapes and
nothing else.
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import analyze_aliasing, collect_sources
from repro.analysis import fixtures

pytestmark = pytest.mark.analysis


def parse(tmp_path: Path, code: str, name: str = "mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(code))
    return path, ast.parse(textwrap.dedent(code), filename=str(path))


def al_ids(tmp_path: Path, code: str) -> list:
    return [d.rule_id for d in analyze_aliasing([parse(tmp_path, code)])]


class TestOverlappingOut:
    def test_same_view_in_and_out_yields_exactly_al001(self, tmp_path):
        diags = analyze_aliasing([parse(tmp_path, fixtures.OVERLAPPING_OUT)])
        assert [d.rule_id for d in diags] == ["AL001"]
        assert "matmul" in diags[0].message

    def test_elementwise_inplace_is_safe(self, tmp_path):
        assert al_ids(tmp_path, fixtures.CLEAN_ARENA) == []

    def test_distinct_out_buffer_passes(self, tmp_path):
        assert al_ids(
            tmp_path,
            """
            import numpy as np


            def step(arena, w):
                a = arena.get(None, "a", (8, 8))
                b = arena.get(None, "b", (8, 8))
                np.matmul(a, w, out=b)
                return float(b.sum())
            """,
        ) == []


class TestArenaEscape:
    def test_store_on_self_flagged(self, tmp_path):
        diags = analyze_aliasing([parse(tmp_path, fixtures.ARENA_ESCAPE)])
        assert [d.rule_id for d in diags] == ["AL002"]
        assert "self.keep" in diags[0].message

    def test_forward_return_is_exempt(self, tmp_path):
        # the layer-chain contract: forward's output is consumed by the
        # next layer within the same step.
        assert al_ids(
            tmp_path,
            """
            class Layer:
                def forward(self, arena, x):
                    out = arena.get(self, "out", x.shape)
                    return out
            """,
        ) == []

    def test_non_forward_return_flagged(self, tmp_path):
        assert al_ids(
            tmp_path,
            """
            class Layer:
                def scratch(self, arena, x):
                    out = arena.get(self, "out", x.shape)
                    return out
            """,
        ) == ["AL002"]

    def test_view_method_keeps_taint(self, tmp_path):
        assert al_ids(
            tmp_path,
            """
            class Layer:
                def pack(self, arena, x):
                    buf = arena.get(self, "buf", x.shape)
                    flat = buf.reshape(-1)
                    self.stash = flat
            """,
        ) == ["AL002"]

    def test_arena_owner_class_self_store_exempt(self, tmp_path):
        # A class that binds the arena itself (self._arena = ...) is the
        # arena's lifecycle owner: its stored views live exactly as long
        # as the arena, guarded by the epoch check — not an escape.
        assert al_ids(
            tmp_path,
            """
            class Plan:
                def __init__(self, arena):
                    self._arena = arena

                def bind(self):
                    self.buf = self._arena.get(self, "acc", (4, 4))

                def fetch(self):
                    buf = self._arena.get(self, "tmp", (4, 4))
                    return buf
            """,
        ) == []

    def test_arena_owner_class_still_gets_al001(self, tmp_path):
        # The owner exemption covers AL002 only — in/out overlap in an
        # owner method is still undefined behaviour.
        assert al_ids(
            tmp_path,
            """
            import numpy as np


            class Plan:
                def __init__(self, arena):
                    self._arena = arena

                def step(self, w):
                    a = self._arena.get(self, "a", (8, 8))
                    np.matmul(a, w, out=a)
            """,
        ) == ["AL001"]

    def test_non_owner_class_self_store_still_flagged(self, tmp_path):
        # Merely *using* an arena (parameter, not stored) keeps the
        # step-scope contract and the AL002 escape finding.
        assert al_ids(
            tmp_path,
            """
            class Layer:
                def pack(self, arena, x):
                    buf = arena.get(self, "buf", x.shape)
                    self.stash = buf
            """,
        ) == ["AL002"]

    def test_copy_breaks_taint(self, tmp_path):
        assert al_ids(
            tmp_path,
            """
            class Layer:
                def pack(self, arena, x):
                    buf = arena.get(self, "buf", x.shape)
                    self.stash = buf.copy()
            """,
        ) == []


class TestUseAfterReset:
    def test_read_after_clear_flagged(self, tmp_path):
        assert al_ids(tmp_path, fixtures.USE_AFTER_RESET) == ["AL003"]

    def test_read_before_clear_passes(self, tmp_path):
        assert al_ids(tmp_path, fixtures.CLEAN_ARENA) == []

    def test_set_arena_none_counts_as_reset(self, tmp_path):
        assert al_ids(
            tmp_path,
            """
            def run(arena, set_arena):
                buf = arena.get(None, "x", (4,))
                set_arena(None)
                return float(buf.sum())
            """,
        ) == ["AL003"]


class TestRepoAtHead:
    def test_only_the_four_justified_escapes(self):
        files = collect_sources([Path(repro.__file__).parent])
        sources = [
            (p, ast.parse(p.read_text(), filename=str(p))) for p in files
        ]
        diags = analyze_aliasing(sources)
        found = sorted((d.rule_id, d.symbol) for d in diags)
        assert found == [
            ("AL002", "BatchNorm.forward"),
            ("AL002", "BinaryConv2D.effective_weight"),
            ("AL002", "BinaryDense.effective_weight"),
            ("AL002", "Conv2D.forward"),
        ]
