"""Tests for parallel deterministic generation and the on-disk dataset cache."""

import numpy as np
import pytest

import repro.data.cache as cache_mod
from repro.data.cache import DATA_VERSION, DatasetCache, dataset_cache_key
from repro.data.dataset import build_masked_face_dataset
from repro.data.generator import FaceSampleGenerator

RAW = 48  # small enough to render in well under a second


def _entries(root):
    """Finished cache entry directories under ``root`` (no tmp dirs)."""
    if not root.exists():
        return []
    return sorted(p for p in root.iterdir() if p.is_dir() and ".tmp-" not in p.name)


def _assert_splits_equal(a, b):
    for split in ("train", "val", "test"):
        da, db = getattr(a, split), getattr(b, split)
        np.testing.assert_array_equal(np.asarray(da.images), np.asarray(db.images))
        np.testing.assert_array_equal(np.asarray(da.labels), np.asarray(db.labels))


class TestParallelGeneration:
    def test_workers_bit_identical_to_serial(self):
        gen = FaceSampleGenerator()
        xs, ys = gen.generate_batch(9, rng=7)
        xp, yp = gen.generate_batch(9, rng=7, num_workers=3)
        np.testing.assert_array_equal(xs, xp)
        np.testing.assert_array_equal(ys, yp)

    def test_pipeline_workers_bit_identical(self):
        serial = build_masked_face_dataset(raw_size=RAW, rng=11)
        parallel = build_masked_face_dataset(raw_size=RAW, rng=11, num_workers=2)
        _assert_splits_equal(serial, parallel)

    def test_invalid_worker_count_rejected(self):
        gen = FaceSampleGenerator()
        with pytest.raises(ValueError):
            gen.generate_batch(4, rng=0, num_workers=0)


class TestCacheKey:
    def test_insensitive_to_dict_order(self):
        a = dataset_cache_key({"raw_size": 10, "seed": 3})
        b = dataset_cache_key({"seed": 3, "raw_size": 10})
        assert a == b

    def test_sensitive_to_values(self):
        base = {"raw_size": 10, "seed": 3}
        assert dataset_cache_key(base) != dataset_cache_key({**base, "seed": 4})
        assert dataset_cache_key(base) != dataset_cache_key({**base, "raw_size": 11})


class TestDatasetCache:
    def test_hit_is_bit_identical_and_memmapped(self, tmp_path):
        fresh = build_masked_face_dataset(raw_size=RAW, rng=5, cache_dir=tmp_path)
        assert len(_entries(tmp_path)) == 1
        cached = build_masked_face_dataset(raw_size=RAW, rng=5, cache_dir=tmp_path)
        assert len(_entries(tmp_path)) == 1  # hit: no new entry
        assert isinstance(cached.train.images, np.memmap)
        _assert_splits_equal(fresh, cached)

    def test_config_and_seed_changes_invalidate(self, tmp_path):
        build_masked_face_dataset(raw_size=RAW, rng=5, cache_dir=tmp_path)
        build_masked_face_dataset(raw_size=RAW, rng=6, cache_dir=tmp_path)
        build_masked_face_dataset(raw_size=RAW + 4, rng=5, cache_dir=tmp_path)
        build_masked_face_dataset(
            raw_size=RAW, rng=5, augment=False, cache_dir=tmp_path
        )
        assert len(_entries(tmp_path)) == 4

    def test_num_workers_does_not_change_key(self, tmp_path):
        build_masked_face_dataset(raw_size=RAW, rng=5, cache_dir=tmp_path)
        hit = build_masked_face_dataset(
            raw_size=RAW, rng=5, num_workers=2, cache_dir=tmp_path
        )
        assert len(_entries(tmp_path)) == 1
        assert isinstance(hit.train.images, np.memmap)

    def test_data_version_bump_invalidates(self, tmp_path, monkeypatch):
        build_masked_face_dataset(raw_size=RAW, rng=5, cache_dir=tmp_path)
        monkeypatch.setattr(cache_mod, "DATA_VERSION", DATA_VERSION + 1)
        build_masked_face_dataset(raw_size=RAW, rng=5, cache_dir=tmp_path)
        assert len(_entries(tmp_path)) == 2

    def test_corrupted_shard_detected_and_regenerated(self, tmp_path):
        fresh = build_masked_face_dataset(raw_size=RAW, rng=5, cache_dir=tmp_path)
        (entry,) = _entries(tmp_path)
        shard = entry / "train-images.npy"
        shard.write_bytes(shard.read_bytes()[:-16])  # truncate
        regenerated = build_masked_face_dataset(
            raw_size=RAW, rng=5, cache_dir=tmp_path
        )
        _assert_splits_equal(fresh, regenerated)
        # The repaired entry now reads as a valid hit again.
        hit = build_masked_face_dataset(raw_size=RAW, rng=5, cache_dir=tmp_path)
        assert isinstance(hit.train.images, np.memmap)
        _assert_splits_equal(fresh, hit)

    def test_bitflip_detected_as_miss(self, tmp_path):
        splits = build_masked_face_dataset(raw_size=RAW, rng=5, cache_dir=tmp_path)
        (entry,) = _entries(tmp_path)
        shard = entry / "val-labels.npy"
        blob = bytearray(shard.read_bytes())
        blob[-1] ^= 0xFF
        shard.write_bytes(bytes(blob))
        cache = DatasetCache(tmp_path)
        manifest = (entry / "meta.json").read_text()
        import json

        config = json.loads(manifest)["config"]
        assert cache.load(config) is None
        del splits

    def test_missing_manifest_is_miss(self, tmp_path):
        cache = DatasetCache(tmp_path)
        assert cache.load({"raw_size": 1}) is None
