"""Process-parallel planned inference (PR 9).

Locks the tentpole's contract:

1. batch-shape bucketing is sound — ``bucket_for`` only ever answers a
   configured geometry (hypothesis property), padding never changes the
   valid rows' logits, and bucketed traffic keeps the per-worker plan
   LRU from ever evicting;
2. the multi-process pool is bit-exact against the single-process
   planned path for every Table I prototype — logits (the PR3 golden
   capture), labels and ``return_bits`` traces;
3. a SIGKILLed worker loses no accepted request: orphaned slots are
   requeued to a respawned worker and the pool reports healthy again;
4. the per-worker zero-allocation steady state survives the move into
   worker processes (``alloc_check`` runs the tracemalloc gate *inside*
   each worker);
5. ``compare_to_best`` refuses to gate throughput across runs recorded
   on hosts with different CPU counts.
"""

import pickle
import signal
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.architectures import build_architecture, table1_folding
from repro.hw.compiler import FoldingConfig, compile_model
from repro.hw.plan import PlanCache
from repro.parallel import (
    ProcessPool,
    RingSpec,
    SharedArena,
    ShmRing,
    bucket_for,
    default_buckets,
    host_info,
    logical_cpu_count,
    pad_to_bucket,
    physical_cpu_count,
    recommended_workers,
    validate_buckets,
)
from repro.serving import (
    InferenceServer,
    ProcessPoolBackend,
    ServingConfig,
)
from repro.testing import make_tiny_bnn, randomize_bn_stats

PROTOTYPES = ("cnv", "n-cnv", "u-cnv")

# Same golden capture as test_hw_plan / test_hw_packed_datapath (seed
# batch below): the pool must not move a logit either.
GOLDEN_LOGITS = {
    "cnv": [[-54, 28, -8, 26], [-8, 34, 22, 16], [0, -2, -30, 0], [8, 30, -18, 4]],
    "n-cnv": [[-8, -6, 2, 30], [-2, -8, -8, -8], [-10, 12, -4, -16], [-4, -6, -2, 6]],
    "u-cnv": [[-20, 6, 4, -4], [-8, -2, 4, -4], [-24, -14, -8, 0], [-6, 4, 2, -10]],
}


def build_zoo_accelerator(name: str):
    model = build_architecture(name, rng=0)
    randomize_bn_stats(model)
    model.eval()
    return compile_model(model, table1_folding(name), name=name)


def build_tiny_accelerator():
    model = make_tiny_bnn(seed=3)
    randomize_bn_stats(model, seed=4)
    model.eval()
    return compile_model(
        model, FoldingConfig(pe=(1, 1, 1, 1), simd=(1, 1, 1, 1)), name="tiny"
    )


@pytest.fixture(scope="module")
def tiny_acc():
    return build_tiny_accelerator()


@pytest.fixture(scope="module")
def tiny_pool(tiny_acc):
    pool = ProcessPool(tiny_acc, num_workers=2, max_batch=8, buckets=(2, 4, 8))
    yield pool
    pool.close()


@pytest.fixture(scope="module")
def seed_batch():
    return np.random.default_rng(1234).random((4, 32, 32, 3)).astype(np.float32)


@pytest.fixture(scope="module")
def tiny_batch():
    return np.random.default_rng(7).random((5, 8, 8, 3)).astype(np.float32)


# ---------------------------------------------------------------------------
# bucketing
# ---------------------------------------------------------------------------
class TestBucketing:
    def test_default_buckets_are_powers_of_two_plus_max(self):
        assert default_buckets(32) == (1, 2, 4, 8, 16, 32)
        assert default_buckets(12) == (1, 2, 4, 8, 12)
        assert default_buckets(1) == (1,)

    def test_validate_normalises_and_checks_coverage(self):
        assert validate_buckets([8, 2, 2, 4], 8) == (2, 4, 8)
        with pytest.raises(ValueError, match="does not cover"):
            validate_buckets([2, 4], 8)
        with pytest.raises(ValueError, match="positive"):
            validate_buckets([0, 4], 4)
        with pytest.raises(ValueError, match="empty"):
            validate_buckets([], 4)

    def test_bucket_for_picks_smallest_cover(self):
        assert bucket_for(3, (2, 4, 8)) == 4
        assert bucket_for(4, (2, 4, 8)) == 4
        assert bucket_for(5, (2, 4, 8)) == 8
        with pytest.raises(ValueError, match="no bucket"):
            bucket_for(9, (2, 4, 8))

    def test_pad_to_bucket_zero_pads_and_skips_copy_on_boundary(self):
        images = np.ones((3, 4, 4, 3), dtype=np.float32)
        padded, n_valid = pad_to_bucket(images, (4, 8))
        assert padded.shape[0] == 4 and n_valid == 3
        assert np.all(padded[3] == 0) and np.array_equal(padded[:3], images)
        on_boundary, n = pad_to_bucket(padded, (4, 8))
        assert on_boundary is padded and n == 4  # no copy

    @given(
        n=st.integers(min_value=1, max_value=64),
        raw=st.lists(
            st.integers(min_value=1, max_value=64), min_size=1, max_size=8
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_batcher_only_requests_configured_geometries(self, n, raw):
        """The bucketed batcher's advertised geometry is always one of
        the configured buckets — the property the plan caches rely on."""
        from repro.serving.batcher import MicroBatcher
        from repro.serving.admission import AdmissionQueue

        max_batch = 64
        buckets = validate_buckets(raw + [max_batch], max_batch)
        batcher = MicroBatcher(
            AdmissionQueue(capacity=4), max_batch_size=max_batch,
            buckets=buckets,
        )
        bucket = batcher.bucket_for(n)
        assert bucket in buckets
        assert bucket >= n
        # minimality: no configured bucket between n and the answer
        assert all(b < n or b >= bucket for b in buckets)

    def test_unbucketed_batcher_advertises_nothing(self):
        from repro.serving.batcher import MicroBatcher
        from repro.serving.admission import AdmissionQueue

        batcher = MicroBatcher(AdmissionQueue(capacity=4), max_batch_size=8)
        assert batcher.bucket_for(3) is None

    def test_padding_does_not_change_valid_logits(self, tiny_acc, tiny_batch):
        plan5, _ = tiny_acc.plans.get(5)
        ref = plan5.execute(tiny_batch)
        padded, n_valid = pad_to_bucket(tiny_batch, (8,))
        plan8, _ = tiny_acc.plans.get(8)
        assert np.array_equal(plan8.execute(padded)[:n_valid], ref)


# ---------------------------------------------------------------------------
# plan-cache LRU under mixed batch shapes
# ---------------------------------------------------------------------------
class TestPlanCacheLRU:
    def test_mixed_shapes_churn_a_small_cache(self, tiny_acc):
        cache = PlanCache(tiny_acc, capacity=2)
        for size in (2, 4, 6):
            _, hit = cache.get(size)
            assert not hit
        # 2 was evicted by 6 (LRU, capacity 2): re-requesting recompiles.
        _, hit = cache.get(2)
        assert not hit
        stats = cache.stats()
        assert stats["misses"] == 4 and stats["plans"] == 2

    def test_bucketing_collapses_shapes_below_capacity(self, tiny_acc):
        buckets = (2, 4, 8)
        cache = PlanCache(tiny_acc, capacity=len(buckets))
        sizes = [1, 2, 3, 4, 5, 6, 7, 8, 3, 5, 1, 8]
        for size in sizes:
            cache.get(bucket_for(size, buckets))
        stats = cache.stats()
        # every shape after the three warm-up compiles is a hit — no
        # eviction ever happens with bucketed traffic
        assert stats["plans"] == len(buckets)
        assert stats["misses"] == len(buckets)
        assert stats["hits"] == len(sizes) - len(buckets)

    def test_prewarm_compiles_each_bucket_once(self, tiny_acc):
        cache = PlanCache(tiny_acc, capacity=4)
        cache.prewarm((2, 4, 8))
        stats = cache.stats()
        assert stats["plans"] == 3 and stats["misses"] == 3
        with pytest.raises(ValueError, match="capacity"):
            PlanCache(tiny_acc, capacity=2).prewarm((1, 2, 4))


# ---------------------------------------------------------------------------
# host introspection
# ---------------------------------------------------------------------------
class TestHost:
    def test_counts_are_sane(self):
        logical = logical_cpu_count()
        assert logical >= 1
        physical = physical_cpu_count()
        assert physical is None or 1 <= physical <= logical
        assert 1 <= recommended_workers() <= 4
        assert recommended_workers(cap=2) <= 2

    def test_host_info_shape(self):
        info = host_info()
        assert set(info) == {"cpu_count", "logical_cpus", "physical_cores"}
        assert info["logical_cpus"] >= 1


# ---------------------------------------------------------------------------
# shared-memory primitives
# ---------------------------------------------------------------------------
class TestSharedMemory:
    def test_arena_views_are_aligned_and_shared(self):
        arena = SharedArena(1 << 16)
        try:
            a = arena.get("t", "a", (100,), np.float64)
            b = arena.get("t", "b", (10, 10), np.int64)
            assert a.ctypes.data % 64 == 0
            assert b.ctypes.data % 64 == 0
            a[:] = np.arange(100, dtype=np.float64)
            # a second attachment over the same segment sees the data
            other = SharedArena(0, name=arena.name, create=False)
            try:
                twin = other.get("t", "a", (100,), np.float64)
                assert np.array_equal(twin, a)
            finally:
                del twin
                other.close()
        finally:
            del a, b
            arena.close(unlink=True)

    def test_arena_overflow_falls_back_to_heap(self):
        arena = SharedArena(1 << 10)
        try:
            arena.get("t", "fits", (8,), np.float64)
            big = arena.get("t", "big", (1 << 12,), np.float64)
            big[:] = 1.0  # writable heap fallback
            assert arena.overflow_bytes >= (1 << 12) * 8
        finally:
            del big
            arena.close(unlink=True)

    def test_ring_regions_are_disjoint_and_aligned(self):
        spec = RingSpec(
            slots=3, max_batch=4, input_shape=(8, 8, 3), num_classes=4
        )
        assert spec.input_region % 64 == 0
        assert spec.stride % 64 == 0
        assert spec.total_bytes == spec.slots * spec.stride
        ring = ShmRing(spec)
        try:
            views = []
            for slot in range(spec.slots):
                inp = ring.input_view(slot, 4, "float32")
                out = ring.output_view(slot, 4)
                inp[:] = float(slot)
                out[:] = slot
                views.append((inp, out))
            for slot, (inp, out) in enumerate(views):
                assert np.all(inp == float(slot))
                assert np.all(out == slot)
        finally:
            del views, inp, out
            ring.close(unlink=True)


# ---------------------------------------------------------------------------
# the pool: bit-exactness (acceptance criterion)
# ---------------------------------------------------------------------------
@pytest.mark.parallel
class TestPoolBitExact:
    @pytest.mark.parametrize("arch", PROTOTYPES)
    def test_zoo_logits_labels_and_bits_match_single_process(
        self, arch, seed_batch
    ):
        acc = build_zoo_accelerator(arch)
        plan, _ = acc.plans.get(4)
        ref_logits, ref_bits = plan.execute(seed_batch, return_bits=True)
        assert np.array_equal(ref_logits, np.array(GOLDEN_LOGITS[arch]))
        with ProcessPool(acc, num_workers=1, max_batch=4, buckets=(4,)) as pool:
            task = pool.submit(seed_batch, return_bits=True)
            assert np.array_equal(task.result(timeout=120.0), ref_logits)
            bits = task.bits()
            assert len(bits) == len(ref_bits)
            for got, want in zip(bits, ref_bits):
                assert np.array_equal(got, want)
            assert np.array_equal(
                pool.predict(seed_batch), ref_logits.argmax(axis=1)
            )

    def test_uint8_and_ragged_batches_round_trip(self, tiny_acc, tiny_pool):
        rng = np.random.default_rng(11)
        images = rng.integers(0, 256, size=(13, 8, 8, 3), dtype=np.uint8)
        # 13 images chunk as 8 + 5 -> buckets 8 and 8-padded
        assert np.array_equal(
            tiny_pool.execute(images), tiny_acc.execute(images)
        )

    def test_accelerator_predict_process_mode(self, tiny_acc):
        rng = np.random.default_rng(13)
        images = rng.random((6, 8, 8, 3)).astype(np.float32)
        ref = tiny_acc.predict(images)
        got = tiny_acc.predict(images, mode="process", num_workers=1)
        try:
            assert np.array_equal(got, ref)
        finally:
            tiny_acc.close_pool()

    def test_predict_rejects_unknown_mode(self, tiny_acc):
        with pytest.raises(ValueError, match="mode"):
            tiny_acc.predict(np.zeros((1, 8, 8, 3), np.float32), mode="warp")


# ---------------------------------------------------------------------------
# the pool: telemetry, stats, allocation gate
# ---------------------------------------------------------------------------
@pytest.mark.parallel
class TestPoolObservability:
    def test_plan_stats_aggregate_per_worker(self, tiny_pool, tiny_batch):
        tiny_pool.execute(tiny_batch)
        stats = tiny_pool.plan_stats()
        assert set(stats) == {"workers", "total", "pool"}
        assert len(stats["workers"]) == 2
        assert stats["total"]["plans"] == sum(
            w["plans"] for w in stats["workers"].values()
        )
        # every worker prewarmed all three buckets at startup
        for w in stats["workers"].values():
            assert w["plans"] == 3
            assert w["arena_overflow_bytes"] == 0

    def test_render_pool_bill(self, tiny_pool):
        from repro.hw.buffers import render_pool_bill

        text = render_pool_bill(tiny_pool.plan_stats())
        assert "worker 0" in text and "worker 1" in text
        assert "OVERFLOW" not in text

    def test_spans_are_tagged_by_worker(self, tiny_acc, tiny_batch):
        from repro.telemetry import SpanJournal

        with ProcessPool(
            tiny_acc, num_workers=1, max_batch=8, buckets=(8,), trace_sample=1
        ) as pool:
            pool.execute(tiny_batch)
            journal = SpanJournal()
            spans = pool.drain_spans(journal)
        assert spans, "tracing pool produced no spans"
        assert all(s["attributes"].get("worker") == 0 for s in spans)
        assert len(journal.snapshot()) == len(spans)

    def test_workers_allocate_nothing_in_steady_state(self, tiny_pool):
        reports = tiny_pool.alloc_check(batch=4, iters=10)
        assert len(reports) == 2
        for wid, report in reports.items():
            assert report.get("error") is None, report
            assert report["per_call_blocks"] == 0, (
                f"worker {wid} allocates in steady state: {report}"
            )


# ---------------------------------------------------------------------------
# the pool: fault tolerance (acceptance criterion)
# ---------------------------------------------------------------------------
@pytest.mark.parallel
class TestPoolFaults:
    def test_sigkilled_worker_loses_no_accepted_request(self, tiny_acc):
        rng = np.random.default_rng(23)
        images = rng.random((4, 8, 8, 3)).astype(np.float32)
        plan, _ = tiny_acc.plans.get(4)
        ref = plan.execute(images)
        events = []
        pool = ProcessPool(
            tiny_acc, num_workers=2, max_batch=4, buckets=(4,),
            on_event=lambda name, n: events.append(name),
        )
        try:
            tasks = [pool.submit(images) for _ in range(8)]
            # murder one worker while its tasks are in flight
            victim = pool._procs[0]
            victim.kill()
            for task in tasks:
                assert np.array_equal(task.result(timeout=120.0), ref)
            # restart detection is asynchronous (collector heartbeat), so
            # results can all drain before the reaper notices the corpse —
            # wait for the counter rather than sampling it immediately
            deadline = time.monotonic() + 30.0
            while (
                pool.counters["worker_restarts"] < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            assert pool.counters["worker_restarts"] >= 1
            assert "pool_worker_restarts" in events
            # recovery within the probe window: both workers alive again
            while not pool.healthy() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.healthy()
            # and the respawned worker serves correctly
            assert np.array_equal(pool.submit(images).result(timeout=120.0), ref)
        finally:
            pool.close()

    def test_submit_after_close_raises(self, tiny_acc):
        pool = ProcessPool(tiny_acc, num_workers=1, max_batch=2, buckets=(2,))
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(np.zeros((2, 8, 8, 3), np.float32))

    def test_oversize_batch_is_rejected(self, tiny_pool):
        with pytest.raises(ValueError):
            tiny_pool.submit(np.zeros((9, 8, 8, 3), np.float32))


# ---------------------------------------------------------------------------
# serving integration
# ---------------------------------------------------------------------------
@pytest.mark.parallel
@pytest.mark.serving
class TestServingIntegration:
    def test_process_mode_server_pads_and_matches_reference(self, tiny_acc):
        config = ServingConfig(
            max_batch_size=8, max_wait_ms=20.0, num_workers=1,
            bucket_sizes=(4, 8),
        )
        server = InferenceServer.from_accelerator(
            tiny_acc, config, mode="process"
        )
        rng = np.random.default_rng(31)
        images = rng.random((11, 8, 8, 3)).astype(np.float32)
        ref = tiny_acc.predict(images)
        with server:
            labels = server.predict(images, timeout=120.0)
        assert np.array_equal(np.asarray(labels), ref)
        stats = server.stats()
        assert stats.completed == 11
        # some batch closed off-boundary and was padded up
        assert stats.padded_images > 0

    def test_injected_pool_backend_reports_concurrency(self, tiny_acc):
        pool = ProcessPool(tiny_acc, num_workers=2, max_batch=4, buckets=(4,))
        try:
            backend = ProcessPoolBackend(tiny_acc, pool=pool)
            assert backend.max_concurrency == 2
            assert backend.name == "pool:tiny"
            assert backend.modelled_batch_seconds(4) > 0
        finally:
            pool.close()

    def test_config_rejects_uncovering_buckets(self):
        with pytest.raises(ValueError, match="does not cover"):
            ServingConfig(max_batch_size=16, bucket_sizes=(2, 4))

    def test_from_accelerator_rejects_unknown_mode(self, tiny_acc):
        with pytest.raises(ValueError, match="mode"):
            InferenceServer.from_accelerator(tiny_acc, mode="quantum")


# ---------------------------------------------------------------------------
# spawn portability: the accelerator pickles without its runtime state
# ---------------------------------------------------------------------------
class TestPickling:
    def test_accelerator_pickles_without_cache_or_pool(self, tiny_acc, tiny_batch):
        ref = tiny_acc.execute(tiny_batch)
        tiny_acc.plans.get(5)  # warm the cache so there is state to drop
        clone = pickle.loads(pickle.dumps(tiny_acc))
        assert clone._plan_cache is None and clone._process_pool is None
        assert np.array_equal(clone.execute(tiny_batch), ref)


# ---------------------------------------------------------------------------
# benchmark gating across hosts
# ---------------------------------------------------------------------------
class TestBenchCpuCountGate:
    @staticmethod
    def _run(cpu_count, fps):
        return {
            "timestamp": 1.0,
            "label": "full",
            "cpu_count": cpu_count,
            "e2e": {"u-cnv": {"images": 4, "seconds": 4 / fps, "fps": fps}},
        }

    def test_refuses_to_gate_across_core_counts(self):
        from repro.benchmarking import compare_to_best

        prior_4core = self._run(cpu_count=4, fps=2000.0)
        cur_1core = self._run(cpu_count=1, fps=500.0)
        assert compare_to_best([prior_4core], cur_1core) == []
        # no recorded cpu_count never gates a run that has one
        legacy = self._run(cpu_count=4, fps=2000.0)
        del legacy["cpu_count"]
        assert compare_to_best([legacy], cur_1core) == []

    def test_gates_within_same_core_count(self):
        from repro.benchmarking import compare_to_best

        prior = self._run(cpu_count=1, fps=1000.0)
        cur = self._run(cpu_count=1, fps=500.0)
        records = compare_to_best([prior], cur)
        assert len(records) == 1
        assert records[0]["metric"] == "e2e.u-cnv.fps"
        assert records[0]["regressed"]

    def test_parallel_section_compares_only_equal_worker_counts(self):
        from repro.benchmarking import compare_runs

        def run(workers, fps):
            par = {
                "supported": True,
                "workers": workers,
                "single": {"seconds": 0.01, "fps": 400.0},
                "pool": {"seconds": 0.01, "fps": fps},
            }
            return {"timestamp": 1.0, "label": "full", "parallel": par}

        same = compare_runs(run(4, 1000.0), run(4, 900.0))
        assert any(r["metric"] == "parallel.pool.fps" for r in same)
        cross = compare_runs(run(4, 1000.0), run(1, 300.0))
        assert not any("parallel" in r["metric"] for r in cross)
