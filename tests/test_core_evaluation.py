"""Tests for evaluation utilities (confusion matrix / accuracy)."""

import numpy as np
import pytest

from repro.core.evaluation import ConfusionMatrix, accuracy, confusion_matrix


class TestAccuracy:
    def test_basic(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            accuracy(np.zeros(3), np.zeros(4))

    def test_empty(self):
        with pytest.raises(ValueError, match="empty"):
            accuracy(np.empty(0), np.empty(0))


class TestConfusionMatrix:
    def _cm(self):
        preds = np.array([0, 0, 1, 1, 2, 3, 3, 0])
        labels = np.array([0, 0, 1, 2, 2, 3, 3, 3])
        return confusion_matrix(preds, labels)

    def test_counts(self):
        cm = self._cm()
        assert cm.counts[0, 0] == 2  # two correct class-0
        assert cm.counts[2, 1] == 1  # one N+M predicted as Nose
        assert cm.counts[3, 0] == 1
        assert cm.counts.sum() == 8

    def test_overall_accuracy(self):
        assert self._cm().overall_accuracy() == pytest.approx(6 / 8)

    def test_per_class_recall(self):
        recall = self._cm().per_class_recall()
        assert recall["Correct"] == pytest.approx(1.0)
        assert recall["N+M"] == pytest.approx(0.5)
        assert recall["Chin"] == pytest.approx(2 / 3)

    def test_per_class_precision(self):
        precision = self._cm().per_class_precision()
        assert precision["Correct"] == pytest.approx(2 / 3)
        assert precision["Nose"] == pytest.approx(0.5)

    def test_per_class_f1(self):
        f1 = self._cm().per_class_f1()
        # Correct: recall 1.0, precision 2/3 -> F1 = 0.8.
        assert f1["Correct"] == pytest.approx(0.8)
        # Nose: recall 1.0, precision 0.5 -> F1 = 2/3.
        assert f1["Nose"] == pytest.approx(2 / 3)

    def test_macro_f1_bounds(self):
        cm = self._cm()
        macro = cm.macro_f1()
        f1 = cm.per_class_f1()
        assert min(f1.values()) <= macro <= max(f1.values())

    def test_f1_nan_for_absent_class(self):
        cm = ConfusionMatrix(np.array([[3, 0], [0, 0]]), class_names=("a", "b"))
        f1 = cm.per_class_f1()
        assert f1["a"] == pytest.approx(1.0)
        assert np.isnan(f1["b"])
        assert cm.macro_f1() == pytest.approx(1.0)  # nan-aware mean

    def test_row_normalised(self):
        rn = self._cm().row_normalised()
        np.testing.assert_allclose(rn.sum(axis=1), 1.0)

    def test_row_normalised_empty_class(self):
        cm = ConfusionMatrix(np.array([[2, 0], [0, 0]]), class_names=("a", "b"))
        rn = cm.row_normalised()
        np.testing.assert_array_equal(rn[1], 0.0)

    def test_dominant_confusion(self):
        cm = ConfusionMatrix(
            np.array([[5, 3], [1, 9]]), class_names=("a", "b")
        )
        assert cm.dominant_confusion() == ("a", "b", 3)

    def test_render_contains_percentages(self):
        out = self._cm().render()
        assert "100%" in out and "Correct" in out

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            ConfusionMatrix(np.zeros((2, 3)))
        with pytest.raises(ValueError, match="names"):
            ConfusionMatrix(np.zeros((2, 2)), class_names=("only-one",))
        with pytest.raises(ValueError, match="out of range"):
            confusion_matrix(np.array([5]), np.array([0]))
        with pytest.raises(ValueError, match="empty"):
            ConfusionMatrix(np.zeros((4, 4))).overall_accuracy()

    def test_perfect_diagonal(self):
        preds = labels = np.array([0, 1, 2, 3] * 5)
        cm = confusion_matrix(preds, labels)
        assert cm.overall_accuracy() == 1.0
        assert np.trace(cm.counts) == 20
