"""Unit tests for repro.utils.tables, .serialization and .profiling."""

import time

import numpy as np
import pytest

from repro.utils.profiling import OpCounter, Stopwatch, timed
from repro.utils.serialization import load_arrays, save_arrays
from repro.utils.tables import format_cell, render_matrix, render_table


class TestTables:
    def test_render_basic(self):
        out = render_table(["a", "b"], [[1, 2], [3, 4]], title="t")
        assert "t" in out and "| a" in out and out.count("+") >= 6

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [[1]])

    def test_format_cell_float(self):
        assert format_cell(0.12345) == "0.1235"
        assert format_cell(3.14159) == "3.14"
        assert format_cell(12345.6) == "12,346"
        assert format_cell(0.0) == "0"

    def test_format_cell_str(self):
        assert format_cell("x") == "x"

    def test_render_matrix_percent(self):
        m = np.array([[8, 2], [1, 9]])
        out = render_matrix(m, ["t0", "t1"], ["p0", "p1"], percent=True)
        assert "8 (80%)" in out and "9 (90%)" in out

    def test_render_matrix_shape_check(self):
        with pytest.raises(ValueError, match="labels"):
            render_matrix(np.eye(3), ["a"], ["b", "c", "d"])

    def test_render_matrix_requires_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            render_matrix(np.zeros(3), ["a", "b", "c"], ["x", "y", "z"])


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        arrays = {"w": np.arange(6, dtype=np.float32).reshape(2, 3)}
        path = save_arrays(tmp_path / "model", arrays, {"arch": "tiny"})
        assert path.suffix == ".npz"
        loaded, meta = load_arrays(path)
        np.testing.assert_array_equal(loaded["w"], arrays["w"])
        assert meta["arch"] == "tiny"
        assert meta["format_version"] == 1

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_arrays(tmp_path / "nothing.npz")

    def test_future_version_rejected(self, tmp_path):
        path = save_arrays(tmp_path / "m", {"a": np.zeros(1)}, {})
        # Rewrite with a bumped version.
        arrays, meta = load_arrays(path)
        import json

        meta["format_version"] = 999
        blob = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, a=np.zeros(1), __meta_json__=blob)
        with pytest.raises(ValueError, match="newer"):
            load_arrays(path)

    def test_reserved_name_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_arrays(tmp_path / "m", {"__meta_json__": np.zeros(1)})

    def test_creates_parent_dirs(self, tmp_path):
        path = save_arrays(tmp_path / "deep" / "dir" / "model", {"a": np.ones(2)})
        assert path.exists()


class TestProfiling:
    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        for _ in range(3):
            with sw.section("work"):
                pass
        assert sw.counts["work"] == 3
        assert sw.mean("work") >= 0.0
        assert "work" in sw.report()

    def test_stopwatch_unknown_section(self):
        with pytest.raises(KeyError):
            Stopwatch().mean("nope")

    def test_opcounter(self):
        c = OpCounter()
        c.add("mac_xnor", 100)
        c.add("mac_xnor", 50)
        c.add("compare", 10)
        assert c.ops["mac_xnor"] == 150
        assert c.total() == 160

    def test_opcounter_merge(self):
        a, b = OpCounter(), OpCounter()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a.ops == {"x": 3, "y": 3}

    def test_opcounter_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            OpCounter().add("x", -1)

    def test_timed(self):
        with timed("dt") as out:
            time.sleep(0.001)
        assert out["dt"] > 0
