"""Tests for the CLI and the multi-camera hub queueing model."""

import sys

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.deployment import HubReport, MultiCameraHub


class TestParser:
    def test_commands_present(self):
        parser = build_parser()
        # argparse stores subparser choices on the last action.
        sub = next(
            a for a in parser._actions if hasattr(a, "choices") and a.choices
        )
        assert {
            "train", "evaluate", "deploy", "report", "info",
            "serve", "serve-bench",
        } <= set(sub.choices)

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--model", "m.npz"])
        assert args.backend == "software"
        assert args.max_batch == 32
        assert args.max_wait_ms == 5.0
        assert args.rate == 200.0

    def test_train_defaults(self):
        args = build_parser().parse_args(
            ["train", "--save", "m.npz"]
        )
        assert args.arch == "n-cnv"
        assert args.epochs == 30

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestInfoCommand:
    def test_info_all(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "cnv:" in out and "PE:" in out and "conv1_1" in out

    def test_info_single(self, capsys):
        assert main(["info", "--arch", "u-cnv"]) == 0
        out = capsys.readouterr().out
        assert "u-cnv" in out
        assert "conv3_2" not in out  # µ-CNV drops it


class TestTrainEvaluateDeploy:
    """One miniature end-to-end CLI pass (shared tmp checkpoint)."""

    @pytest.fixture(scope="class")
    def checkpoint(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "model.npz"
        code = main(
            [
                "train",
                "--arch",
                "u-cnv",
                "--raw-size",
                "300",
                "--epochs",
                "2",
                "--save",
                str(path),
                "--quiet",
            ]
        )
        assert code == 0
        assert path.exists()
        return path

    def test_evaluate(self, checkpoint, capsys):
        assert main(["evaluate", "--model", str(checkpoint), "--raw-size", "200"]) == 0
        out = capsys.readouterr().out
        assert "accuracy:" in out and "recall[" in out

    def test_deploy(self, checkpoint, capsys):
        assert main(["deploy", "--model", str(checkpoint)]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out
        assert "LUT=" in out
        assert "idle" in out
        assert "XC7Z020" in out

    def test_serve(self, checkpoint, capsys):
        code = main(
            [
                "serve",
                "--model", str(checkpoint),
                "--rate", "60",
                "--duration", "0.4",
                "--tile-pool", "4",
                "--report-every", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "offered" in out
        assert "completed" in out
        assert "backends: software:u-cnv" in out

    def test_serve_bench(self, checkpoint, capsys):
        code = main(
            [
                "serve-bench",
                "--model", str(checkpoint),
                "--rates", "50",
                "--duration", "0.3",
                "--tile-pool", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "offered load sweep" in out
        assert "mean batch" in out

    def test_deploy_rejects_fp32(self, tmp_path, capsys):
        from repro.core.classifier import BinaryCoP

        clf = BinaryCoP("fp32-cnv")
        path = clf.save(tmp_path / "fp32.npz")
        assert main(["deploy", "--model", str(path)]) == 2


class TestMultiCameraHub:
    @pytest.fixture(scope="class")
    def hub(self, trained_tiny_classifier):
        return MultiCameraHub(trained_tiny_classifier.deploy())

    def test_capacity_is_huge(self, hub):
        """The ~6400 FPS headline: thousands of gates per accelerator."""
        gates = hub.capacity_gates(arrivals_per_gate_per_hour=1200)
        assert gates > 10_000

    def test_light_load_waits_negligible(self, hub):
        report = hub.analyze(num_gates=16, arrivals_per_gate_per_hour=1200, rng=0)
        assert not report.saturated
        assert report.utilization < 0.01
        assert report.mean_wait_us < hub.service_us

    def test_waits_grow_with_load(self, hub):
        light = hub.analyze(4, 1200, rng=0)
        heavy = hub.analyze(4_000, 18_000, rng=0)
        assert heavy.utilization > light.utilization
        assert heavy.mean_wait_us >= light.mean_wait_us

    def test_saturation_detected(self, hub):
        # Arrival rate beyond service rate -> saturated, infinite waits.
        rate = 3600.0 * 2.0 / (hub.service_us * 1e-6)  # 2x capacity
        report = hub.analyze(num_gates=1, arrivals_per_gate_per_hour=rate)
        assert report.saturated
        assert report.mean_wait_us == float("inf")
        assert "SATURATED" in report.render()

    def test_pk_formula_agreement(self, hub):
        """Simulated mean wait matches Pollaczek-Khinchine for M/D/1."""
        report = hub.analyze(
            num_gates=2000, arrivals_per_gate_per_hour=6000,
            simulate_subjects=20_000, rng=1,
        )
        rho = report.utilization
        service_s = hub.service_us * 1e-6
        pk_wait_us = rho * service_s / (2 * (1 - rho)) * 1e6
        assert report.mean_wait_us == pytest.approx(pk_wait_us, rel=0.25)

    def test_validation(self, hub):
        with pytest.raises(ValueError, match="num_gates"):
            hub.analyze(0, 100)
        with pytest.raises(ValueError, match="arrival"):
            hub.analyze(1, 0)
        with pytest.raises(ValueError, match="arrival"):
            hub.capacity_gates(0)

    def test_render(self, hub):
        report = hub.analyze(8, 600, rng=0)
        assert "gates" in report.render()
