"""Tests for the training loop, early stopping and history."""

import numpy as np
import pytest

from repro.nn.layers import BatchNorm, Dense, ReLU
from repro.nn.optim import Adam
from repro.nn.sequential import Sequential
from repro.nn.trainer import (
    EarlyStopping,
    History,
    Trainer,
    evaluate_accuracy,
    predict_classes,
)


def make_blobs(n, seed=0):
    """Two well-separated gaussian blobs in 2-D."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    centers = np.array([[-2.0, 0.0], [2.0, 0.0]])
    x = centers[y] + rng.normal(0, 0.5, (n, 2))
    return x.astype(np.float32), y


def make_mlp(seed=0):
    return Sequential(
        [
            ("fc1", Dense(2, 16, rng=seed)),
            ("bn", BatchNorm(16)),
            ("relu", ReLU()),
            ("fc2", Dense(16, 2, rng=seed + 1)),
        ],
        input_shape=(2,),
    )


class TestTrainerFit:
    def test_learns_blobs(self):
        x, y = make_blobs(256)
        xv, yv = make_blobs(128, seed=1)
        model = make_mlp()
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-2))
        hist = trainer.fit(x, y, epochs=10, batch_size=32, x_val=xv, y_val=yv, rng=0)
        assert hist.val_accuracy[-1] > 0.95
        assert hist.epochs == 10
        assert len(hist.epoch_seconds) == 10

    def test_loss_decreases(self):
        x, y = make_blobs(256)
        model = make_mlp()
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-2))
        hist = trainer.fit(x, y, epochs=8, batch_size=32, rng=0)
        assert hist.train_loss[-1] < hist.train_loss[0]

    def test_model_left_in_eval_mode(self):
        x, y = make_blobs(64)
        model = make_mlp()
        Trainer(model, Adam(model.parameters())).fit(x, y, epochs=1, rng=0)
        assert not model.training

    def test_schedule_applied(self):
        x, y = make_blobs(64)
        model = make_mlp()
        trainer = Trainer(
            model,
            Adam(model.parameters(), lr=1.0),
            schedule=lambda e: 0.5**e,
        )
        hist = trainer.fit(x, y, epochs=3, rng=0)
        np.testing.assert_allclose(hist.learning_rate, [1.0, 0.5, 0.25])

    def test_callback_invoked(self):
        x, y = make_blobs(64)
        model = make_mlp()
        seen = []
        Trainer(model, Adam(model.parameters())).fit(
            x, y, epochs=3, rng=0, callback=lambda e, h: seen.append(e)
        )
        assert seen == [0, 1, 2]

    def test_early_stopping_halts(self):
        x, y = make_blobs(256)
        xv, yv = make_blobs(64, seed=1)
        model = make_mlp()
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-2))
        hist = trainer.fit(
            x,
            y,
            epochs=50,
            batch_size=32,
            x_val=xv,
            y_val=yv,
            rng=0,
            early_stopping=EarlyStopping(patience=2),
        )
        assert hist.epochs < 50  # blobs saturate almost immediately

    def test_input_validation(self):
        model = make_mlp()
        trainer = Trainer(model, Adam(model.parameters()))
        x, y = make_blobs(8)
        with pytest.raises(ValueError, match="epochs"):
            trainer.fit(x, y, epochs=0)
        with pytest.raises(ValueError, match="batch_size"):
            trainer.fit(x, y, epochs=1, batch_size=1)

    def test_singleton_tail_batch_dropped(self):
        # 33 samples with batch 32 leaves a singleton; batch-norm cannot
        # normalise it, so the loop must skip it rather than crash.
        x, y = make_blobs(33)
        model = make_mlp()
        trainer = Trainer(model, Adam(model.parameters()))
        hist = trainer.fit(x, y, epochs=1, batch_size=32, rng=0)
        assert hist.epochs == 1


class TestEarlyStopping:
    def test_stops_after_patience(self):
        es = EarlyStopping(patience=3)
        assert not es.update(0.8)
        assert not es.update(0.8)
        assert not es.update(0.8)
        assert es.update(0.8)

    def test_improvement_resets(self):
        es = EarlyStopping(patience=2, min_delta=0.0)
        es.update(0.5)
        es.update(0.4)
        assert not es.update(0.6)  # improvement
        assert not es.update(0.5)
        assert es.update(0.5)

    def test_min_delta(self):
        es = EarlyStopping(patience=1, min_delta=0.1)
        es.update(0.5)
        assert es.update(0.55)  # not enough improvement


class TestHelpers:
    def test_predict_classes_batched(self):
        x, y = make_blobs(300)
        model = make_mlp()
        preds = predict_classes(model, x, chunk_size=64)
        assert preds.shape == (300,)

    def test_predict_classes_rejects_bad_chunk(self):
        x, _ = make_blobs(10)
        model = make_mlp()
        with pytest.raises(ValueError, match="chunk_size"):
            predict_classes(model, x, chunk_size=0)

    def test_predict_preserves_mode(self):
        x, _ = make_blobs(10)
        model = make_mlp()
        model.train()
        predict_classes(model, x)
        assert model.training

    def test_evaluate_accuracy_empty_raises(self):
        model = make_mlp()
        with pytest.raises(ValueError, match="empty"):
            evaluate_accuracy(model, np.empty((0, 2), dtype=np.float32), np.empty(0))

    def test_history_best_val(self):
        h = History(val_accuracy=[0.1, 0.8, 0.5])
        assert h.best_val_accuracy() == 0.8
        assert History().best_val_accuracy() == 0.0
