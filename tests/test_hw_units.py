"""Tests for the hardware units: MVTU, SWU, OR-pooling."""

import numpy as np
import pytest

from repro.hw.bitpack import pack_bits
from repro.hw.maxpool_unit import MaxPoolUnit, MaxPoolUnitConfig
from repro.hw.mvtu import MVTU, MVTUConfig
from repro.hw.swu import SlidingWindowUnit, SWUConfig
from repro.hw.thresholding import fold_popcount_domain
from repro.nn.binary_ops import sign
from repro.nn.functional import im2col


def bipolar(shape, seed=0):
    return sign(np.random.default_rng(seed).standard_normal(shape)).astype(np.float32)


class TestMVTUConfig:
    def test_folding_arithmetic(self):
        cfg = MVTUConfig("l", rows=64, cols=27, pe=16, simd=3)
        assert cfg.neuron_fold == 4
        assert cfg.synapse_fold == 9
        assert cfg.total_fold == 36
        assert cfg.weight_bits == 64 * 27

    def test_pe_must_divide_rows(self):
        with pytest.raises(ValueError, match="does not divide rows"):
            MVTUConfig("l", rows=10, cols=8, pe=3, simd=2)

    def test_simd_must_divide_cols(self):
        with pytest.raises(ValueError, match="does not divide cols"):
            MVTUConfig("l", rows=8, cols=10, pe=2, simd=3)

    def test_input_bits_validated(self):
        with pytest.raises(ValueError, match="input_bits"):
            MVTUConfig("l", rows=4, cols=4, pe=1, simd=1, input_bits=4)


class TestMVTUBinary:
    def _unit(self, rows=8, cols=32, seed=0, thresholds=True):
        w = bipolar((rows, cols), seed)
        if thresholds:
            rng = np.random.default_rng(seed + 1)
            spec = fold_popcount_domain(
                rng.uniform(-1, 1, rows), rng.normal(0, 2, rows), cols
            )
            cfg = MVTUConfig("mv", rows=rows, cols=cols, pe=1, simd=1)
            return MVTU(cfg, w, spec), w
        cfg = MVTUConfig(
            "mv", rows=rows, cols=cols, pe=1, simd=1, has_threshold=False
        )
        return MVTU(cfg, w, None), w

    def test_accumulators_match_float(self):
        unit, w = self._unit()
        x = bipolar((5, 32), seed=3)
        p = unit.compute_accumulators(pack_bits(x))
        np.testing.assert_array_equal(2 * p - 32, (x @ w.T).astype(np.int64))

    def test_execute_with_threshold_is_boolean(self):
        unit, _ = self._unit()
        out = unit.execute(pack_bits(bipolar((4, 32), 5)))
        assert out.dtype == bool
        assert out.shape == (4, 8)

    def test_execute_without_threshold_is_bipolar(self):
        unit, w = self._unit(thresholds=False)
        x = bipolar((4, 32), 6)
        out = unit.execute(pack_bits(x))
        np.testing.assert_array_equal(out, (x @ w.T).astype(np.int64))

    def test_rejects_wrong_fan_in(self):
        unit, _ = self._unit()
        with pytest.raises(ValueError, match="fan-in"):
            unit.execute(pack_bits(bipolar((2, 16))))

    def test_rejects_unpacked_input(self):
        unit, _ = self._unit()
        with pytest.raises(TypeError, match="PackedBits"):
            unit.execute(bipolar((2, 32)))

    def test_rejects_non_bipolar_weights(self):
        cfg = MVTUConfig("mv", rows=2, cols=4, pe=1, simd=1)
        spec = fold_popcount_domain(np.ones(2), np.zeros(2), 4)
        with pytest.raises(ValueError, match="bipolar"):
            MVTU(cfg, np.zeros((2, 4)), spec)

    def test_threshold_count_checked(self):
        cfg = MVTUConfig("mv", rows=4, cols=8, pe=1, simd=1)
        spec = fold_popcount_domain(np.ones(3), np.zeros(3), 8)
        with pytest.raises(ValueError, match="thresholds"):
            MVTU(cfg, bipolar((4, 8)), spec)

    def test_cycles(self):
        cfg = MVTUConfig("mv", rows=64, cols=144, pe=16, simd=16)
        spec = fold_popcount_domain(np.ones(64), np.zeros(64), 144)
        unit = MVTU(cfg, bipolar((64, 144)), spec)
        assert unit.cycles_per_vector() == 4 * 9
        assert unit.cycles_per_image(784) == 784 * 36
        with pytest.raises(ValueError, match="positive"):
            unit.cycles_per_image(0)

    def test_ops_per_image(self):
        cfg = MVTUConfig("mv", rows=4, cols=8, pe=1, simd=1, has_threshold=False)
        unit = MVTU(cfg, bipolar((4, 8)), None)
        assert unit.ops_per_image(10) == 2 * 4 * 8 * 10


class TestMVTUFixedPoint:
    def test_integer_macs(self):
        w = bipolar((4, 12), seed=1)
        cfg = MVTUConfig(
            "first", rows=4, cols=12, pe=1, simd=1, input_bits=8, has_threshold=False
        )
        unit = MVTU(cfg, w, None)
        x = np.random.default_rng(2).integers(0, 256, (3, 12))
        acc = unit.execute(x)
        np.testing.assert_array_equal(acc, x.astype(np.int64) @ w.astype(np.int64).T)

    def test_rejects_float_input(self):
        cfg = MVTUConfig(
            "first", rows=2, cols=4, pe=1, simd=1, input_bits=8, has_threshold=False
        )
        unit = MVTU(cfg, bipolar((2, 4)), None)
        with pytest.raises(TypeError, match="integer"):
            unit.execute(np.zeros((1, 4), dtype=np.float32))


class TestSWU:
    def test_matches_im2col(self):
        x = bipolar((2, 6, 6, 4), seed=0)
        swu = SlidingWindowUnit(SWUConfig("swu", in_hw=(6, 6), channels=4, simd=4))
        rows = swu.execute(x)
        ref = im2col(x, (3, 3)).reshape(2 * 16, 36)
        np.testing.assert_array_equal(rows, ref.astype(np.int64))

    def test_boolean_input(self):
        x = np.random.default_rng(1).random((1, 5, 5, 2)) > 0.5
        swu = SlidingWindowUnit(SWUConfig("swu", in_hw=(5, 5), channels=2, simd=2))
        rows = swu.execute(x)
        assert rows.dtype == np.int64
        assert set(np.unique(rows)) <= {0, 1}

    def test_cycles(self):
        swu = SlidingWindowUnit(SWUConfig("swu", in_hw=(32, 32), channels=3, simd=3))
        # 30*30 windows, 27/3 = 9 cycles per window.
        assert swu.cycles_per_image() == 900 * 9

    def test_simd_must_divide_window(self):
        with pytest.raises(ValueError, match="does not divide"):
            SWUConfig("swu", in_hw=(6, 6), channels=3, simd=4)

    def test_shape_validation(self):
        swu = SlidingWindowUnit(SWUConfig("swu", in_hw=(6, 6), channels=4, simd=4))
        with pytest.raises(ValueError, match="does not match"):
            swu.execute(np.zeros((1, 5, 6, 4)))


class TestMaxPoolUnit:
    def test_or_equals_max_of_binary(self):
        """§III-B: OR pooling == max pooling on binarised maps."""
        rng = np.random.default_rng(0)
        bits = rng.random((3, 8, 8, 5)) > 0.5
        unit = MaxPoolUnit(MaxPoolUnitConfig("p", in_hw=(8, 8), channels=5))
        got = unit.execute(bits)
        bipolar_map = np.where(bits, 1.0, -1.0)
        from repro.nn.layers import MaxPool2D

        pooled = MaxPool2D(2).forward(bipolar_map.astype(np.float32))
        np.testing.assert_array_equal(got, pooled > 0)

    def test_all_zero_window_stays_zero(self):
        bits = np.zeros((1, 4, 4, 1), dtype=bool)
        unit = MaxPoolUnit(MaxPoolUnitConfig("p", in_hw=(4, 4), channels=1))
        assert not unit.execute(bits).any()

    def test_requires_boolean(self):
        unit = MaxPoolUnit(MaxPoolUnitConfig("p", in_hw=(4, 4), channels=1))
        with pytest.raises(TypeError, match="boolean"):
            unit.execute(np.zeros((1, 4, 4, 1), dtype=np.float32))

    def test_non_tiling_rejected(self):
        with pytest.raises(ValueError, match="does not tile"):
            MaxPoolUnitConfig("p", in_hw=(5, 4), channels=1)

    def test_cycles(self):
        unit = MaxPoolUnit(MaxPoolUnitConfig("p", in_hw=(8, 8), channels=3))
        assert unit.cycles_per_image() == 16
