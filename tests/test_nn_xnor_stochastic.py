"""Tests for the XNOR-Net scaled layers and stochastic binarisation."""

import numpy as np
import pytest

from repro.nn.binary_ops import hard_sigmoid, sign, stochastic_sign
from repro.nn.layers import (
    BatchNorm,
    BinaryDense,
    Flatten,
    MaxPool2D,
    SignActivation,
    XnorConv2D,
    XnorDense,
)
from repro.nn.layers.xnor import channel_scales
from repro.nn.sequential import Sequential
from repro.testing import grid_images, randomize_bn_stats


@pytest.fixture()
def x_img():
    return np.random.default_rng(0).standard_normal((2, 8, 8, 3)).astype(np.float32)


class TestChannelScales:
    def test_mean_abs_per_channel(self):
        w = np.zeros((3, 3, 2, 4), dtype=np.float32)
        w[..., 0] = 2.0
        w[..., 1] = -0.5
        alpha = channel_scales(w)
        np.testing.assert_allclose(alpha[:2], [2.0, 0.5])

    def test_dense_shape(self):
        w = np.random.default_rng(1).standard_normal((10, 6))
        assert channel_scales(w).shape == (6,)

    def test_zero_channel_epsilon(self):
        w = np.zeros((2, 3), dtype=np.float32)
        assert (channel_scales(w) > 0).all()


class TestXnorConv:
    def test_effective_weight_scaled_bipolar(self):
        conv = XnorConv2D(3, 4, rng=0)
        w_eff = conv.effective_weight()
        alpha = channel_scales(conv.weight.data)
        np.testing.assert_allclose(
            w_eff, sign(conv.weight.data) * alpha, atol=1e-6
        )

    def test_forward_scales_outputs(self, x_img):
        xnor = XnorConv2D(3, 4, rng=0)
        from repro.nn.layers import BinaryConv2D

        plain = BinaryConv2D(3, 4, rng=0)
        plain.weight.data = xnor.weight.data.copy()
        alpha = channel_scales(xnor.weight.data)
        np.testing.assert_allclose(
            xnor.forward(x_img), plain.forward(x_img) * alpha, rtol=1e-4, atol=1e-4
        )

    def test_latent_magnitude_matters(self, x_img):
        """Unlike plain BinaryConv2D, XNOR-Net output depends on latent
        magnitude (through alpha) — the extra information capacity."""
        conv = XnorConv2D(3, 4, rng=0)
        out1 = conv.forward(x_img)
        conv.weight.data *= 0.5
        out2 = conv.forward(x_img)
        np.testing.assert_allclose(out2, out1 * 0.5, rtol=1e-4, atol=1e-5)

    def test_backward_runs_and_clips(self, x_img):
        conv = XnorConv2D(3, 4, rng=0)
        conv.weight.data[0, 0, 0, 0] = 2.0
        conv.forward(x_img)
        conv.backward(np.ones((2, 6, 6, 4), dtype=np.float32))
        assert conv.weight.grad is not None
        assert conv.weight.grad[0, 0, 0, 0] == 0.0  # clipped STE


class TestXnorCompile:
    def _model(self):
        m = Sequential(
            [
                ("conv1", XnorConv2D(3, 8, kernel_size=3, rng=1)),
                ("bn_conv1", BatchNorm(8)),
                ("sign_conv1", SignActivation()),
                ("pool1", MaxPool2D(2)),
                ("flatten", Flatten()),
                ("fc1", XnorDense(3 * 3 * 8, 16, rng=2)),
                ("bn_fc1", BatchNorm(16)),
                ("sign_fc1", SignActivation()),
                ("fc2", BinaryDense(16, 4, rng=3)),
            ],
            input_shape=(8, 8, 3),
        )
        randomize_bn_stats(m)
        m.eval()
        return m

    def test_scales_fold_into_thresholds_exactly(self):
        """XNOR-Net hidden layers deploy with zero hardware overhead."""
        from repro.hw.compiler import FoldingConfig, compile_model

        m = self._model()
        acc = compile_model(m, FoldingConfig(pe=(1, 1, 1), simd=(1, 1, 1)))
        x = grid_images(6, hw=8)
        np.testing.assert_array_equal(
            acc.execute(x), m.forward(x).astype(np.int64)
        )

    def test_xnor_logits_layer_rejected(self):
        from repro.hw.compiler import FoldingConfig, compile_model

        m = Sequential(
            [
                ("flatten", Flatten()),
                ("fc1", XnorDense(12, 4, rng=0)),
            ],
            input_shape=(2, 2, 3),
        )
        with pytest.raises(ValueError, match="real multipliers"):
            compile_model(m, FoldingConfig(pe=(1,), simd=(1,)))


class TestStochasticSign:
    def test_hard_sigmoid_values(self):
        x = np.array([-3.0, -1.0, 0.0, 1.0, 3.0])
        np.testing.assert_allclose(hard_sigmoid(x), [0.0, 0.0, 0.5, 1.0, 1.0])

    def test_output_is_bipolar(self):
        rng = np.random.default_rng(0)
        out = stochastic_sign(rng.standard_normal(1000), rng)
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_saturated_inputs_deterministic(self):
        rng = np.random.default_rng(1)
        x = np.array([5.0, -5.0] * 100)
        out = stochastic_sign(x, rng)
        np.testing.assert_array_equal(out, np.tile([1.0, -1.0], 100))

    def test_expectation_tracks_hard_tanh(self):
        rng = np.random.default_rng(2)
        x = np.full(20_000, 0.5)
        mean = stochastic_sign(x, rng).mean()
        assert abs(mean - 0.5) < 0.03  # E[sign] = 2p - 1 = x inside (-1,1)

    def test_activation_layer_stochastic_training_only(self):
        act = SignActivation(stochastic=True, rng=0)
        x = np.full((4, 1000), 0.2, dtype=np.float32)
        act.train()
        out_train = act.forward(x)
        assert 0.0 < (out_train > 0).mean() < 1.0  # mixed signs
        act.eval()
        out_eval = act.forward(x)
        np.testing.assert_array_equal(out_eval, 1.0)  # deterministic

    def test_stochastic_backward_still_ste(self):
        act = SignActivation(stochastic=True, rng=0)
        x = np.array([[0.5, 2.0]], dtype=np.float32)
        act.train()
        act.forward(x)
        dx = act.backward(np.ones_like(x))
        np.testing.assert_array_equal(dx, [[1.0, 0.0]])
