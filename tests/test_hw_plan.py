"""Execution plans (PR 8): allocation-free precompiled inference.

Locks the tentpole's contract:

1. a compiled :class:`ExecutionPlan` is bit-exact against the
   interpreted datapath — logits *and* ``return_bits`` traces — for
   every Table I prototype, under both GEMM lowerings and both input
   dtypes, and the PR3 golden logits still come out identical through
   ``predict(use_plan=True)``;
2. plan-cache keys invalidate on folding-config or batch-shape change,
   and a stale plan (arena cleared underneath it) is never reused;
3. steady-state planned execution performs zero heap allocations
   (``perf``-marked tracemalloc gate, run by the CI bench step);
4. the ``hw_plan`` telemetry span and the bench/CLI section selection
   behave.
"""

import copy
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.architectures import build_architecture, table1_folding
from repro.hw.compiler import FoldingConfig, compile_model
from repro.hw.plan import (
    ExecutionPlan,
    PlanCache,
    blas_exact_bound,
    measure_steady_state,
    plan_key,
    plan_unsupported_reason,
)
from repro.nn.arena import BufferArena
from repro.testing import randomize_bn_stats

PROTOTYPES = ("cnv", "n-cnv", "u-cnv")

# Same golden capture as test_hw_packed_datapath (pre-PR3 boolean
# datapath, seed batch below): the planned path must not move a logit.
GOLDEN_LOGITS = {
    "cnv": [[-54, 28, -8, 26], [-8, 34, 22, 16], [0, -2, -30, 0], [8, 30, -18, 4]],
    "n-cnv": [[-8, -6, 2, 30], [-2, -8, -8, -8], [-10, 12, -4, -16], [-4, -6, -2, 6]],
    "u-cnv": [[-20, 6, 4, -4], [-8, -2, 4, -4], [-24, -14, -8, 0], [-6, 4, 2, -10]],
}


def build_accelerator(name: str):
    model = build_architecture(name, rng=0)
    randomize_bn_stats(model)
    model.eval()
    return compile_model(model, table1_folding(name), name=name)


@pytest.fixture(scope="module")
def accelerators():
    return {name: build_accelerator(name) for name in PROTOTYPES}


@pytest.fixture(scope="module")
def seed_batch():
    return np.random.default_rng(1234).random((4, 32, 32, 3)).astype(np.float32)


class TestBitExactness:
    @pytest.mark.parametrize("arch", PROTOTYPES)
    @pytest.mark.parametrize("lowering", ("blas", "packed"))
    def test_logits_match_interpreted(
        self, accelerators, seed_batch, arch, lowering
    ):
        acc = accelerators[arch]
        plan = ExecutionPlan(acc, seed_batch.shape[0], lowering=lowering)
        np.testing.assert_array_equal(
            plan.execute(seed_batch),
            acc.execute(seed_batch, use_plan=False),
        )

    @pytest.mark.parametrize("arch", PROTOTYPES)
    @pytest.mark.parametrize("lowering", ("blas", "packed"))
    def test_return_bits_traces_match(
        self, accelerators, seed_batch, arch, lowering
    ):
        acc = accelerators[arch]
        plan = ExecutionPlan(acc, seed_batch.shape[0], lowering=lowering)
        ref_logits, ref_trace = acc.execute(
            seed_batch, return_bits=True, use_plan=False
        )
        logits, trace = plan.execute(seed_batch, return_bits=True)
        np.testing.assert_array_equal(logits, ref_logits)
        assert len(trace) == len(ref_trace)
        for got, want in zip(trace, ref_trace):
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("arch", PROTOTYPES)
    def test_integer_input_matches_interpreted(
        self, accelerators, seed_batch, arch
    ):
        acc = accelerators[arch]
        pixels = np.rint(seed_batch.astype(np.float64) * 255).astype(np.uint8)
        plan = ExecutionPlan(acc, pixels.shape[0])
        np.testing.assert_array_equal(
            plan.execute(pixels), acc.execute(pixels, use_plan=False)
        )

    @pytest.mark.parametrize("arch", PROTOTYPES)
    def test_golden_logits_through_planned_predict(
        self, accelerators, seed_batch, arch
    ):
        acc = accelerators[arch]
        np.testing.assert_array_equal(
            acc.execute(seed_batch, use_plan=True),
            np.array(GOLDEN_LOGITS[arch], dtype=np.int64),
        )
        np.testing.assert_array_equal(
            acc.predict(seed_batch),
            np.argmax(GOLDEN_LOGITS[arch], axis=1),
        )

    def test_out_parameter_is_honoured(self, accelerators, seed_batch):
        acc = accelerators["u-cnv"]
        plan, _ = acc.plans.get(seed_batch.shape[0])
        ref = plan.execute(seed_batch)
        out = np.empty_like(ref)
        result = plan.execute(seed_batch, out=out)
        assert result is out
        np.testing.assert_array_equal(out, ref)
        with pytest.raises(ValueError, match="out must be"):
            plan.execute(seed_batch, out=np.empty_like(ref, dtype=np.int32))

    def test_fusion_covers_every_pooled_stage(self, accelerators, seed_batch):
        for arch, acc in accelerators.items():
            plan = ExecutionPlan(acc, 2)
            pooled = sum(1 for s in acc.stages if s.pool is not None)
            assert plan.fused_stages == pooled > 0, arch

    def test_exact_bound_stays_in_float32_range(self, accelerators):
        for acc in accelerators.values():
            for stage in acc.stages:
                assert blas_exact_bound(stage) < 2 ** 24


class TestPlanKey:
    @settings(max_examples=20, deadline=None)
    @given(b1=st.integers(1, 64), b2=st.integers(1, 64))
    def test_key_separates_batch_shapes(self, shared_accelerator, b1, b2):
        k1 = plan_key(shared_accelerator, b1)
        k2 = plan_key(shared_accelerator, b2)
        assert (k1 == k2) == (b1 == b2)

    def test_key_changes_with_folding(self):
        base = build_accelerator("u-cnv")
        folding = table1_folding("u-cnv")
        refolded = FoldingConfig(
            pe=tuple(max(1, p // 2) for p in folding.pe),
            simd=folding.simd,
        )
        assert refolded != folding
        model = build_architecture("u-cnv", rng=0)
        randomize_bn_stats(model)
        model.eval()
        other = compile_model(model, refolded, name="u-cnv-refolded")
        assert plan_key(base, 4) != plan_key(other, 4)
        # ... and the refolded design still plans bit-exactly.
        batch = np.random.default_rng(7).random((4, 32, 32, 3)).astype(
            np.float32
        )
        np.testing.assert_array_equal(
            ExecutionPlan(other, 4).execute(batch),
            other.execute(batch, use_plan=False),
        )

    def test_key_is_deterministic(self, shared_accelerator):
        assert plan_key(shared_accelerator, 4) == plan_key(
            shared_accelerator, 4
        )


@pytest.fixture(scope="module")
def shared_accelerator():
    return build_accelerator("u-cnv")


class TestStaleness:
    def test_stale_plan_refuses_to_run(self, seed_batch):
        acc = build_accelerator("u-cnv")
        plan = ExecutionPlan(acc, 4)
        plan.execute(seed_batch)
        plan.arena.clear()
        assert plan.stale
        with pytest.raises(RuntimeError, match="stale execution plan"):
            plan.execute(seed_batch)

    def test_cache_never_reuses_a_stale_plan(self):
        acc = build_accelerator("u-cnv")
        cache = PlanCache(acc)
        plan, hit = cache.get(2)
        assert not hit
        again, hit = cache.get(2)
        assert hit and again is plan
        plan.arena.clear()
        fresh, hit = cache.get(2)
        assert not hit
        assert fresh is not plan
        assert not fresh.stale

    def test_set_arena_rebinds_and_revives(self, seed_batch):
        acc = build_accelerator("u-cnv")
        plan = ExecutionPlan(acc, 4)
        ref = plan.execute(seed_batch)
        plan.arena.clear()
        plan.set_arena(BufferArena())
        assert not plan.stale
        np.testing.assert_array_equal(plan.execute(seed_batch), ref)

    def test_set_arena_rejects_none(self):
        acc = build_accelerator("u-cnv")
        plan = ExecutionPlan(acc, 2)
        with pytest.raises(ValueError, match="arena-less"):
            plan.set_arena(None)

    def test_batch_shape_mismatch_is_rejected(self, seed_batch):
        acc = build_accelerator("u-cnv")
        plan = ExecutionPlan(acc, 2)
        with pytest.raises(ValueError, match="compiled for batch"):
            plan.execute(seed_batch)  # plan is for batch 2, batch has 4


class TestPlanCache:
    def test_lru_eviction_respects_capacity(self):
        acc = build_accelerator("u-cnv")
        cache = PlanCache(acc, capacity=2)
        for batch in (1, 2, 3):
            cache.get(batch)
        assert len(cache) == 2
        stats = cache.stats()
        assert stats["misses"] == 3 and stats["plans"] == 2

    def test_thread_identity_partitions_plans(self):
        acc = build_accelerator("u-cnv")
        cache = PlanCache(acc)
        mine, _ = cache.get(1)
        theirs = {}

        def worker():
            theirs["plan"], theirs["hit"] = cache.get(1)

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert not theirs["hit"]
        assert theirs["plan"] is not mine

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            PlanCache(build_accelerator("u-cnv"), capacity=0)

    def test_accelerator_deepcopy_resets_the_cache(self, seed_batch):
        acc = build_accelerator("u-cnv")
        acc.execute(seed_batch, use_plan=True)  # populate the plan cache
        assert acc.plans.stats()["plans"] == 1
        clone = copy.deepcopy(acc)
        assert clone.plans.stats() == {
            **acc.plans.stats(), "plans": 0, "hits": 0, "misses": 0,
            "arena_bytes": 0,
        }
        np.testing.assert_array_equal(
            clone.execute(seed_batch), acc.execute(seed_batch)
        )


class TestUnsupportedShapes:
    class _Stage:
        def __init__(self, kind, input_bits, thresholds):
            cfg = type("Cfg", (), {"input_bits": input_bits})()
            self.kind = kind
            self.name = f"{kind}-stub"
            self.mvtu = type(
                "Mvtu", (), {"config": cfg, "thresholds": thresholds}
            )()

    def _acc(self, stages):
        return type("Acc", (), {"stages": stages, "name": "stub"})()

    def test_rejects_non_8bit_entry(self):
        acc = self._acc([self._Stage("conv", 1, object())])
        assert "8-bit conv" in plan_unsupported_reason(acc)

    def test_rejects_unthresholded_middle_stage(self):
        acc = self._acc(
            [
                self._Stage("conv", 8, object()),
                self._Stage("conv", 1, None),
                self._Stage("fc", 1, None),
            ]
        )
        assert "no thresholds" in plan_unsupported_reason(acc)

    def test_rejects_thresholded_final_stage(self):
        acc = self._acc(
            [
                self._Stage("conv", 8, object()),
                self._Stage("fc", 1, object()),
            ]
        )
        assert "un-thresholded fc" in plan_unsupported_reason(acc)

    def test_zoo_is_fully_supported(self, accelerators):
        for acc in accelerators.values():
            assert plan_unsupported_reason(acc) is None


class TestTelemetry:
    def test_hw_plan_span_carries_cache_counters(self, seed_batch):
        from repro.telemetry import SpanJournal, Tracer, activate, deactivate

        acc = build_accelerator("u-cnv")
        journal = SpanJournal()
        activate(Tracer(journal=journal))
        try:
            acc.execute(seed_batch, use_plan=True)
            acc.execute(seed_batch, use_plan=True)
        finally:
            deactivate()
        plans = [
            s for s in journal.snapshot() if s.get("kind") == "hw_plan"
        ]
        assert [s["attributes"]["cache_hit"] for s in plans] == [False, True]
        assert plans[-1]["attributes"]["plan_hits"] >= 1
        assert plans[-1]["attributes"]["arena_kib"] > 0
        stage_spans = [
            s for s in journal.snapshot() if s.get("kind") == "hw_stage"
        ]
        assert any(s["attributes"].get("fused") for s in stage_spans)

    def test_summary_aggregates_plan_spans(self, seed_batch):
        from repro.telemetry import SpanJournal, Tracer, activate, deactivate
        from repro.telemetry.summary import summarize_spans

        acc = build_accelerator("u-cnv")
        journal = SpanJournal()
        activate(Tracer(journal=journal))
        try:
            acc.execute(seed_batch, use_plan=True)
            acc.execute(seed_batch, use_plan=True)
        finally:
            deactivate()
        summary = summarize_spans(journal.snapshot())
        assert summary.plan is not None
        assert summary.plan.spans == 2
        assert summary.plan.cache_hits == 1
        assert summary.plan.cache_misses == 1
        assert "execution plans: 2 planned batches" in summary.render()

    def test_summary_without_plan_spans_stays_none(self):
        from repro.telemetry.summary import summarize_spans

        summary = summarize_spans([])
        assert summary.plan is None
        assert "execution plans" not in summary.render()


class TestAllocationMeasurement:
    def test_accumulating_function_reports_allocations(self):
        sink = []
        report = measure_steady_state(
            lambda: sink.append(np.empty(4096)), iters=8, warmup=4
        )
        assert report.per_call_blocks >= 1
        assert report.growth_bytes > 0

    @pytest.mark.perf
    @pytest.mark.parametrize("arch", PROTOTYPES)
    def test_steady_state_inference_allocates_nothing(self, arch, seed_batch):
        acc = build_accelerator(arch)
        plan, _ = acc.plans.get(seed_batch.shape[0])
        out = np.empty_like(plan.execute(seed_batch))
        report = measure_steady_state(
            lambda: plan.execute(seed_batch, out=out)
        )
        assert report.per_call_blocks == 0, report


class TestBenchSections:
    def test_unknown_section_exits_2(self, tmp_path, capsys):
        out = tmp_path / "BENCH.json"
        rc = main(
            ["bench", "--smoke", "--out", str(out), "--sections", "nope"]
        )
        assert rc == 2
        assert "unknown bench section" in capsys.readouterr().err

    def test_section_limited_run_is_not_recorded(self, tmp_path, capsys):
        out = tmp_path / "BENCH.json"
        rc = main(
            ["bench", "--out", str(out), "--images", "2", "--repeats", "1",
             "--archs", "u-cnv", "--sections", "kernels"]
        )
        assert rc == 0
        assert not out.exists()
        assert "not recorded" in capsys.readouterr().out

    def test_smoke_includes_plan_section(self):
        from repro.benchmarking import run_bench, validate_run

        run = run_bench(smoke=True, sections=("plan",))
        validate_run(run)
        entry = run["plan"]["u-cnv"]
        assert entry["supported"]
        assert entry["planned"]["fps"] > 0
        assert entry["steady_state_alloc_blocks"] == 0

    def test_compare_to_best_ignores_other_labels_and_picks_toughest(self):
        from repro.benchmarking import compare_to_best

        def run(label, fps):
            return {
                "label": label,
                "e2e": {"cnv": {"images": 4, "seconds": 4 / fps, "fps": fps}},
            }

        cur = run("full", 100.0)
        priors = [run("smoke", 900.0), run("full", 80.0), run("full", 140.0)]
        records = compare_to_best(priors, cur, tolerance=0.25)
        assert len(records) == 1
        rec = records[0]
        # Gated against the best full run (140), not smoke's 900.
        assert rec["previous"] == 140.0
        assert rec["regressed"]
        records = compare_to_best(priors, cur, tolerance=0.5)
        assert not records[0]["regressed"]

    def test_trajectory_doc_with_sectioned_run_roundtrips(self, tmp_path):
        from repro.benchmarking import (
            append_run, load_doc, run_bench, save_doc,
        )

        run = run_bench(smoke=True, sections=("kernels", "e2e", "stages"))
        doc = append_run(None, run)
        path = save_doc(doc, tmp_path / "BENCH.json")
        assert load_doc(path)["runs"][0]["sections"] == [
            "kernels", "stages", "e2e",
        ]
