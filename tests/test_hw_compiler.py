"""Tests for the BNN -> accelerator compiler and the integer datapath.

The bit-exactness tests are the heart of the reproduction: the hardware
(XNOR+popcount+threshold) path must agree with the trained software model
when both consume pixels on the uint8 grid.
"""

import numpy as np
import pytest

from repro.hw.compiler import FinnAccelerator, FoldingConfig, compile_model
from repro.nn.layers import (
    BatchNorm,
    BinaryConv2D,
    BinaryDense,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    SignActivation,
)
from repro.nn.sequential import Sequential
from repro.testing import make_tiny_bnn, randomize_bn_stats


@pytest.fixture()
def compiled(tiny_bnn):
    return compile_model(
        tiny_bnn, FoldingConfig(pe=(1, 1, 1, 1), simd=(1, 1, 1, 1)), name="tiny"
    )


def grid_batch(n=6, hw=8, seed=0):
    q = np.random.default_rng(seed).integers(0, 256, size=(n, hw, hw, 3))
    return (q / 255.0).astype(np.float32)


class TestFoldingConfig:
    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            FoldingConfig(pe=(1, 2), simd=(1,))

    def test_positive_entries(self):
        with pytest.raises(ValueError, match="positive"):
            FoldingConfig(pe=(0,), simd=(1,))

    def test_len(self):
        assert len(FoldingConfig(pe=(1, 2), simd=(3, 4))) == 2


class TestCompile:
    def test_stage_structure(self, compiled):
        kinds = [s.kind for s in compiled.stages]
        assert kinds == ["conv", "conv", "fc", "fc"]
        assert compiled.stages[0].mvtu.config.input_bits == 8
        assert compiled.stages[1].mvtu.config.input_bits == 1
        assert compiled.stages[1].pool is not None
        assert compiled.stages[-1].mvtu.thresholds is None

    def test_folding_length_checked(self, tiny_bnn):
        with pytest.raises(ValueError, match="folding has"):
            compile_model(tiny_bnn, FoldingConfig(pe=(1, 1), simd=(1, 1)))

    def test_requires_input_shape(self):
        m = Sequential([("fc", BinaryDense(4, 2))])
        with pytest.raises(ValueError, match="input_shape"):
            compile_model(m, FoldingConfig(pe=(1,), simd=(1,)))

    def test_conv_without_bn_rejected(self):
        m = Sequential(
            [("conv", BinaryConv2D(3, 4)), ("sign", SignActivation())],
            input_shape=(8, 8, 3),
        )
        with pytest.raises(ValueError, match="BatchNorm"):
            compile_model(m, FoldingConfig(pe=(1,), simd=(1,)))

    def test_relu_rejected(self):
        m = Sequential(
            [
                ("conv", BinaryConv2D(3, 4)),
                ("bn", BatchNorm(4)),
                ("relu", ReLU()),
            ],
            input_shape=(8, 8, 3),
        )
        with pytest.raises(ValueError, match="BatchNorm -> SignActivation"):
            compile_model(m, FoldingConfig(pe=(1,), simd=(1,)))

    def test_fp_dense_head_rejected(self):
        m = Sequential(
            [
                ("conv", BinaryConv2D(3, 4)),
                ("bn", BatchNorm(4)),
                ("sign", SignActivation()),
                ("flatten", Flatten()),
                ("fc", Dense(6 * 6 * 4, 4)),
            ],
            input_shape=(8, 8, 3),
        )
        with pytest.raises(ValueError, match="BinaryDense"):
            compile_model(m, FoldingConfig(pe=(1, 1), simd=(1, 1)))

    def test_mid_stack_unthresholded_dense_rejected(self):
        m = Sequential(
            [
                ("flatten", Flatten()),
                ("fc1", BinaryDense(12, 8)),
                ("fc2", BinaryDense(8, 4)),
            ],
            input_shape=(2, 2, 3),
        )
        with pytest.raises(ValueError, match="neither thresholded nor final"):
            compile_model(m, FoldingConfig(pe=(1, 1), simd=(1, 1)))

    def test_weight_bits_accounting(self, compiled, tiny_bnn):
        expected = sum(
            int(layer.weight.data.size)
            for layer in tiny_bnn.layers
            if hasattr(layer, "weight")
        )
        assert compiled.weight_bits() == expected


class TestDatapath:
    def test_bit_exact_on_grid_inputs(self, tiny_bnn, compiled):
        """HW integer datapath == SW float path on uint8-grid pixels."""
        x = grid_batch()
        sw_logits = tiny_bnn.forward(x)
        hw_logits = compiled.execute(x)
        np.testing.assert_array_equal(hw_logits, sw_logits.astype(np.int64))

    def test_intermediate_bits_match_sw(self, tiny_bnn, compiled):
        x = grid_batch(seed=1)
        tiny_bnn.forward(x, taps=("sign_conv1", "pool1"))
        _, bits = compiled.execute(x, return_bits=True)
        np.testing.assert_array_equal(
            bits[0], tiny_bnn.tap_activations["sign_conv1"] > 0
        )
        np.testing.assert_array_equal(
            bits[1], tiny_bnn.tap_activations["pool1"] > 0
        )

    def test_folding_does_not_change_results(self, tiny_bnn):
        x = grid_batch(seed=2)
        acc1 = compile_model(tiny_bnn, FoldingConfig(pe=(1, 1, 1, 1), simd=(1, 1, 1, 1)))
        acc2 = compile_model(tiny_bnn, FoldingConfig(pe=(8, 4, 16, 4), simd=(3, 8, 4, 16)))
        np.testing.assert_array_equal(acc1.execute(x), acc2.execute(x))

    def test_single_image_accepted(self, compiled):
        out = compiled.execute(grid_batch(n=1)[0])
        assert out.shape == (1, 4)

    def test_predict_argmax(self, compiled):
        x = grid_batch(seed=3)
        np.testing.assert_array_equal(
            compiled.predict(x), compiled.execute(x).argmax(axis=1)
        )

    def test_uint8_input_accepted(self, compiled):
        q = np.random.default_rng(4).integers(0, 256, (2, 8, 8, 3)).astype(np.uint8)
        out_int = compiled.execute(q)
        out_float = compiled.execute((q / 255.0).astype(np.float32))
        np.testing.assert_array_equal(out_int, out_float)

    def test_input_shape_checked(self, compiled):
        with pytest.raises(ValueError, match="does not match"):
            compiled.execute(np.zeros((1, 9, 9, 3), dtype=np.float32))

    def test_input_range_checked(self, compiled):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            compiled.execute(np.full((1, 8, 8, 3), 1.5, dtype=np.float32))
        with pytest.raises(ValueError, match=r"\[0, 255\]"):
            compiled.execute(np.full((1, 8, 8, 3), 300, dtype=np.int64))

    def test_logits_are_even_integers(self, compiled):
        # Bipolar dot of even fan-in (16) is even — a structural sanity
        # check on the popcount-to-bipolar conversion.
        logits = compiled.execute(grid_batch(seed=5))
        assert np.all(logits % 2 == 0)


class TestStageTiming:
    def test_intervals_positive(self, compiled):
        for name, ii in compiled.stage_intervals():
            assert ii > 0

    def test_conv_interval_includes_swu(self, tiny_bnn):
        # With SIMD=1 the SWU streams 27 elements per window; MVTU with
        # PE=8 (full) needs fewer cycles -> SWU dominates.
        acc = compile_model(tiny_bnn, FoldingConfig(pe=(8, 8, 16, 4), simd=(1, 1, 1, 1)))
        stage = acc.stages[0]
        assert stage.initiation_interval() == stage.swu.cycles_per_image()

    def test_unit_cycles_breakdown(self, compiled):
        cycles = compiled.stages[1].unit_cycles()
        assert set(cycles) == {"mvtu", "swu", "pool"}


class TestFoldingAccessor:
    def test_roundtrip(self, tiny_bnn):
        folding = FoldingConfig(pe=(2, 4, 1, 2), simd=(3, 8, 2, 4))
        acc = compile_model(tiny_bnn, folding)
        assert acc.folding() == folding
