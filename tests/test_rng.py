"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, choice_index, derive, spawn


class TestAsGenerator:
    def test_from_int_is_deterministic(self):
        a = as_generator(7).random(5)
        b = as_generator(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert as_generator(1).random() != as_generator(2).random()

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_from_seed_sequence(self):
        ss = np.random.SeedSequence(99)
        gen = as_generator(ss)
        assert isinstance(gen, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError, match="cannot coerce"):
            as_generator("seed")

    def test_numpy_integer_accepted(self):
        assert isinstance(as_generator(np.int64(3)), np.random.Generator)


class TestSpawn:
    def test_children_are_independent(self):
        children = spawn(0, 3)
        values = [c.random() for c in children]
        assert len(set(values)) == 3

    def test_count(self):
        assert len(spawn(1, 5)) == 5
        assert spawn(1, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn(1, -1)

    def test_deterministic_from_int_seed(self):
        a = [g.random() for g in spawn(42, 2)]
        b = [g.random() for g in spawn(42, 2)]
        assert a == b


class TestDerive:
    def test_same_key_same_stream(self):
        assert derive(5, "data").random() == derive(5, "data").random()

    def test_different_keys_differ(self):
        assert derive(5, "data").random() != derive(5, "init").random()

    def test_does_not_consume_int_parent(self):
        # Deriving twice with different keys from the same int seed is
        # stable regardless of order.
        a1 = derive(9, "a").random()
        _ = derive(9, "b").random()
        a2 = derive(9, "a").random()
        assert a1 == a2


class TestChoiceIndex:
    def test_respects_zero_weight(self):
        picks = {choice_index(i, [0.0, 1.0, 0.0]) for i in range(20)}
        assert picks == {1}

    def test_unnormalised_ok(self):
        idx = choice_index(0, [10, 20, 30])
        assert idx in (0, 1, 2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            choice_index(0, [1, -1])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError, match="zero"):
            choice_index(0, [0, 0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            choice_index(0, [])
