"""Tests for bit-packing and XNOR+popcount kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.bitpack import WORD_BITS, PackedBits, pack_bits, popcount, unpack_bits
from repro.hw.xnor_kernels import (
    bipolar_from_popcount,
    xnor_dot_popcount,
    xnor_matmul_popcount,
)
from repro.nn.binary_ops import sign


def random_bipolar(shape, seed=0):
    rng = np.random.default_rng(seed)
    return sign(rng.standard_normal(shape)).astype(np.float32)


class TestPackBits:
    def test_roundtrip_small(self):
        x = np.array([[1, -1, 1, 1, -1]], dtype=np.float32)
        packed = pack_bits(x)
        np.testing.assert_array_equal(unpack_bits(packed), x)

    def test_word_count(self):
        assert pack_bits(np.ones((2, 64))).n_words == 1
        assert pack_bits(np.ones((2, 65))).n_words == 2
        assert pack_bits(np.ones((2, 128))).n_words == 2

    def test_tail_bits_zero(self):
        x = -np.ones((1, 70), dtype=np.float32)  # all bits 0
        x[0, :5] = 1.0
        packed = pack_bits(x)
        # Second word covers bits 64..69: only zeros beyond nbits.
        assert packed.words[0, 1] == 0

    def test_bool_input(self):
        x = np.array([True, False, True])
        packed = pack_bits(x[None])
        np.testing.assert_array_equal(
            unpack_bits(packed, dtype=bool), x[None]
        )

    def test_memory_footprint_x32(self):
        """The paper's headline: ~x32 smaller than float32 storage."""
        x = random_bipolar((64, 1152))
        packed = pack_bits(x)
        float_bytes = x.astype(np.float32).nbytes
        assert float_bytes / packed.nbytes() == 32.0

    def test_rejects_non_bipolar(self):
        with pytest.raises(ValueError, match=r"-1/\+1"):
            pack_bits(np.array([[0.5, 1.0]]))

    def test_rejects_scalar(self):
        with pytest.raises(ValueError, match="scalar"):
            pack_bits(np.float32(1.0))

    def test_packed_validation(self):
        with pytest.raises(TypeError, match="uint64"):
            PackedBits(words=np.zeros((1, 1), dtype=np.int64), nbits=3)
        with pytest.raises(ValueError, match="words"):
            PackedBits(words=np.zeros((1, 3), dtype=np.uint64), nbits=64)

    def test_shape_property(self):
        packed = pack_bits(np.ones((3, 5, 70)))
        assert packed.shape == (3, 5, 70)
        assert packed.words.shape == (3, 5, 2)


class TestPopcount:
    def test_known_values(self):
        words = np.array([0, 1, 3, 0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        np.testing.assert_array_equal(popcount(words), [0, 1, 2, 64])

    def test_dtype_guard(self):
        with pytest.raises(TypeError, match="uint64"):
            popcount(np.zeros(3, dtype=np.int64))


class TestXnorDot:
    def test_matches_float_dot(self):
        a = random_bipolar((4, 100), seed=1)
        b = random_bipolar((4, 100), seed=2)
        p = xnor_dot_popcount(pack_bits(a), pack_bits(b))
        expected_dot = (a * b).sum(axis=1)
        np.testing.assert_array_equal(2 * p - 100, expected_dot.astype(np.int64))

    def test_bit_length_mismatch(self):
        with pytest.raises(ValueError, match="bit lengths"):
            xnor_dot_popcount(pack_bits(np.ones((1, 4))), pack_bits(np.ones((1, 5))))

    def test_self_dot_is_full_match(self):
        a = random_bipolar((3, 77), seed=3)
        p = xnor_dot_popcount(pack_bits(a), pack_bits(a))
        np.testing.assert_array_equal(p, 77)


class TestXnorMatmul:
    def test_matches_float_gemm(self):
        a = random_bipolar((10, 130), seed=4)
        w = random_bipolar((7, 130), seed=5)
        p = xnor_matmul_popcount(pack_bits(a), pack_bits(w))
        expected = (a @ w.T).astype(np.int64)
        np.testing.assert_array_equal(bipolar_from_popcount(p, 130), expected)

    def test_popcount_bounds(self):
        a = random_bipolar((6, 90), seed=6)
        w = random_bipolar((5, 90), seed=7)
        p = xnor_matmul_popcount(pack_bits(a), pack_bits(w))
        assert p.min() >= 0 and p.max() <= 90

    def test_blocking_consistency(self, monkeypatch):
        """Results must not depend on the internal block size."""
        import repro.hw.xnor_kernels as xk

        a = random_bipolar((33, 200), seed=8)
        w = random_bipolar((9, 200), seed=9)
        full = xnor_matmul_popcount(pack_bits(a), pack_bits(w))
        monkeypatch.setattr(xk, "_BLOCK_ELEMS", 64)
        blocked = xnor_matmul_popcount(pack_bits(a), pack_bits(w))
        np.testing.assert_array_equal(full, blocked)

    def test_dimension_guards(self):
        with pytest.raises(ValueError, match="2-D"):
            xnor_matmul_popcount(pack_bits(np.ones((2, 2, 8))), pack_bits(np.ones((2, 8))))
        with pytest.raises(ValueError, match="fan-in"):
            xnor_matmul_popcount(pack_bits(np.ones((2, 8))), pack_bits(np.ones((2, 9))))

    def test_bipolar_from_popcount_validation(self):
        with pytest.raises(ValueError, match="positive"):
            bipolar_from_popcount(np.array([1]), 0)


@settings(max_examples=40, deadline=None)
@given(
    m=st.integers(1, 8),
    n=st.integers(1, 8),
    f=st.integers(1, 200),
    seed=st.integers(0, 10_000),
)
def test_xnor_gemm_equals_float_gemm_property(m, n, f, seed):
    """Property: XNOR+popcount GEMM == float GEMM of ±1 matrices, exactly."""
    rng = np.random.default_rng(seed)
    a = sign(rng.standard_normal((m, f))).astype(np.float32)
    w = sign(rng.standard_normal((n, f))).astype(np.float32)
    p = xnor_matmul_popcount(pack_bits(a), pack_bits(w))
    np.testing.assert_array_equal(2 * p - f, (a @ w.T).astype(np.int64))


@settings(max_examples=40, deadline=None)
@given(
    rows=st.integers(1, 5),
    nbits=st.integers(1, 300),
    seed=st.integers(0, 10_000),
)
def test_pack_unpack_roundtrip_property(rows, nbits, seed):
    """Property: unpack(pack(x)) == x for any bipolar tensor."""
    rng = np.random.default_rng(seed)
    x = sign(rng.standard_normal((rows, nbits))).astype(np.float32)
    np.testing.assert_array_equal(unpack_bits(pack_bits(x)), x)


def reference_pack_words(bits: np.ndarray) -> np.ndarray:
    """The pre-PR3 pack kernel: explicit 64-wide grouping + weighted sum."""
    nbits = bits.shape[-1]
    n_words = -(-nbits // WORD_BITS)
    pad = n_words * WORD_BITS - nbits
    padded = np.concatenate(
        [bits, np.zeros(bits.shape[:-1] + (pad,), dtype=bool)], axis=-1
    )
    grouped = padded.reshape(bits.shape[:-1] + (n_words, WORD_BITS))
    weights = np.uint64(1) << np.arange(WORD_BITS, dtype=np.uint64)
    return (grouped.astype(np.uint64) * weights).sum(
        axis=-1, dtype=np.uint64
    )


class TestPackBitsMatchesOldKernel:
    """The np.packbits rewrite must produce the exact same word layout."""

    @pytest.mark.parametrize("nbits", [1, 7, 63, 64, 65, 127, 128, 129, 300])
    def test_word_layout_identical(self, nbits):
        rng = np.random.default_rng(nbits)
        bits = rng.random((5, nbits)) < 0.5
        packed = pack_bits(bits)
        np.testing.assert_array_equal(packed.words, reference_pack_words(bits))

    @pytest.mark.parametrize("nbits", [63, 64, 65])
    def test_tail_roundtrip(self, nbits):
        rng = np.random.default_rng(99)
        bits = rng.random((3, 2, nbits)) < 0.5
        packed = pack_bits(bits)
        np.testing.assert_array_equal(unpack_bits(packed, dtype=bool), bits)
        if nbits % WORD_BITS:
            tail = packed.words[..., -1] >> np.uint64(nbits % WORD_BITS)
            assert not tail.any()  # tail bits stay zero

    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.integers(1, 4),
        nbits=st.integers(1, 260),
        seed=st.integers(0, 10_000),
    )
    def test_word_layout_identical_property(self, rows, nbits, seed):
        rng = np.random.default_rng(seed)
        bits = rng.random((rows, nbits)) < 0.5
        np.testing.assert_array_equal(
            pack_bits(bits).words, reference_pack_words(bits)
        )

    @pytest.mark.parametrize("dtype", [np.float32, np.int8, np.int64])
    def test_unpack_dtypes(self, dtype):
        rng = np.random.default_rng(7)
        bits = rng.random((2, 70)) < 0.5
        out = unpack_bits(pack_bits(bits), dtype=dtype)
        assert out.dtype == dtype
        np.testing.assert_array_equal(out > 0, bits)
        np.testing.assert_array_equal(np.abs(out), np.ones_like(out))
