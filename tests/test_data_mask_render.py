"""Tests for the deformable mask model and the face renderer.

The mask placement tests check the *geometric class definitions* — the
property the whole classification task rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.attributes import MaskAttributes, sample_attributes
from repro.data.face_renderer import render_face
from repro.data.keypoints import sample_keypoints
from repro.data.mask_model import (
    CLASS_NAMES,
    MaskPlacement,
    WearClass,
    composite_mask,
    place_mask,
)


class TestWearClass:
    def test_four_classes(self):
        assert len(WearClass) == 4
        assert len(CLASS_NAMES) == 4

    def test_values_stable(self):
        # The integer coding is part of the dataset contract (Fig. 2 axes).
        assert WearClass.CORRECT == 0
        assert WearClass.NOSE_EXPOSED == 1
        assert WearClass.NOSE_MOUTH_EXPOSED == 2
        assert WearClass.CHIN_EXPOSED == 3


class TestPlaceMask:
    @pytest.mark.parametrize("seed", range(15))
    def test_correct_covers_nose_mouth_chin(self, seed):
        kp = sample_keypoints(seed)
        p = place_mask(kp, WearClass.CORRECT, rng=seed)
        assert p.top_y <= kp.nose_tip[1], "nose must be covered"
        assert p.bottom_y >= kp.chin_tip[1], "chin must be covered"

    @pytest.mark.parametrize("seed", range(15))
    def test_nose_exposed_geometry(self, seed):
        kp = sample_keypoints(seed)
        p = place_mask(kp, WearClass.NOSE_EXPOSED, rng=seed)
        assert p.top_y > kp.nose_tip[1], "nose must be exposed"
        assert p.top_y < kp.mouth_center[1], "mouth must be covered"
        assert p.bottom_y >= kp.chin_tip[1], "chin must be covered"

    @pytest.mark.parametrize("seed", range(15))
    def test_nose_mouth_exposed_geometry(self, seed):
        kp = sample_keypoints(seed)
        p = place_mask(kp, WearClass.NOSE_MOUTH_EXPOSED, rng=seed)
        assert p.top_y > kp.mouth_center[1], "mouth must be exposed"
        assert p.bottom_y >= kp.chin_tip[1], "chin must be covered"

    @pytest.mark.parametrize("seed", range(15))
    def test_chin_exposed_geometry(self, seed):
        kp = sample_keypoints(seed)
        p = place_mask(kp, WearClass.CHIN_EXPOSED, rng=seed)
        assert p.top_y <= kp.nose_tip[1], "nose must be covered"
        assert p.bottom_y < kp.chin_tip[1], "chin must be exposed"
        assert p.bottom_y > kp.mouth_center[1], "mouth must be covered"

    def test_placement_jitters_within_class(self):
        kp = sample_keypoints(0)
        tops = {place_mask(kp, WearClass.CORRECT, rng=s).top_y for s in range(10)}
        assert len(tops) > 5  # not a fixed pixel row

    def test_accepts_plain_int(self):
        kp = sample_keypoints(0)
        p = place_mask(kp, 2, rng=0)
        assert p.wear_class == WearClass.NOSE_MOUTH_EXPOSED


class TestMaskPlacementValidation:
    def test_inverted_span_rejected(self):
        with pytest.raises(ValueError, match="below top"):
            MaskPlacement(
                top_y=40,
                bottom_y=30,
                top_half_width=10,
                bottom_half_width=8,
                center_x=32,
                wear_class=WearClass.CORRECT,
            )

    def test_bad_widths_rejected(self):
        with pytest.raises(ValueError, match="widths"):
            MaskPlacement(
                top_y=30,
                bottom_y=40,
                top_half_width=0,
                bottom_half_width=8,
                center_x=32,
                wear_class=WearClass.CORRECT,
            )


class TestRenderFace:
    def test_shape_and_range(self):
        kp = sample_keypoints(0)
        attrs = sample_attributes(0)
        img = render_face(kp, attrs, rng=0)
        assert img.shape == (64, 64, 3)
        assert img.dtype == np.float32
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_deterministic(self):
        kp = sample_keypoints(1)
        attrs = sample_attributes(1)
        a = render_face(kp, attrs, rng=9)
        b = render_face(kp, attrs, rng=9)
        np.testing.assert_array_equal(a, b)

    def test_face_region_is_skin_toned(self):
        kp = sample_keypoints(2)
        attrs = sample_attributes(2, sunglasses=False, face_paint=False)
        img = render_face(kp, attrs, rng=0)
        cx, cy = kp.face_center
        # A cheek pixel (between eye line and nose, off-centre).
        cheek_y = int((kp.eye_line_y + kp.nose_tip[1]) / 2)
        cheek_x = int(cx + kp.face_rx * 0.55)
        pixel = img[cheek_y, cheek_x]
        skin = np.asarray(attrs.skin_tone)
        assert np.abs(pixel - skin).max() < 0.3

    def test_sunglasses_darken_eyes(self):
        kp = sample_keypoints(3)
        plain = sample_attributes(3, sunglasses=False)
        shaded = sample_attributes(3, sunglasses=True)
        img_plain = render_face(kp, plain, rng=0)
        img_shaded = render_face(kp, shaded, rng=0)
        ex, ey = int(kp.left_eye[0]), int(kp.left_eye[1])
        assert img_shaded[ey, ex].mean() < img_plain[ey, ex].mean()

    def test_different_subjects_differ(self):
        img1 = render_face(sample_keypoints(4), sample_attributes(4), rng=0)
        img2 = render_face(sample_keypoints(5), sample_attributes(5), rng=0)
        assert np.abs(img1 - img2).mean() > 0.01


class TestCompositeMask:
    def _setup(self, seed=0, wear=WearClass.CORRECT):
        kp = sample_keypoints(seed)
        attrs = sample_attributes(seed)
        img = render_face(kp, attrs, rng=seed)
        placement = place_mask(kp, wear, rng=seed)
        return kp, attrs, img, placement

    def test_mask_pixels_take_mask_color(self):
        kp, attrs, img, placement = self._setup()
        mask_attrs = MaskAttributes(color=(1.0, 0.0, 0.0), texture_noise=0.0)
        composite_mask(img, kp, placement, mask_attrs, rng=0)
        my = int((placement.top_y + placement.bottom_y) / 2)
        mx = int(placement.center_x)
        assert img[my, mx, 0] > 0.6 and img[my, mx, 1] < 0.4

    def test_mask_does_not_touch_forehead(self):
        kp, attrs, img, placement = self._setup()
        before = img.copy()
        composite_mask(img, kp, placement, MaskAttributes(strap_visible=False), rng=0)
        fy = int(kp.forehead_top[1] + 2)
        fx = int(kp.face_center[0])
        np.testing.assert_array_equal(img[fy, fx], before[fy, fx])

    def test_double_mask_layers_second_color(self):
        kp, attrs, img, placement = self._setup(seed=1)
        mask_attrs = MaskAttributes(color=(0.0, 0.0, 1.0), texture_noise=0.0)
        composite_mask(
            img,
            kp,
            placement,
            mask_attrs,
            rng=0,
            double_mask=True,
            second_color=(1.0, 1.0, 0.0),
        )
        my = int((placement.top_y + placement.bottom_y) / 2)
        mx = int(placement.center_x)
        # Second (yellow) mask dominates the centre.
        assert img[my, mx, 0] > 0.7 and img[my, mx, 2] < 0.4

    def test_image_stays_in_range(self):
        kp, attrs, img, placement = self._setup(seed=2)
        composite_mask(img, kp, placement, MaskAttributes(texture_noise=0.05), rng=0)
        assert img.min() >= 0.0 and img.max() <= 1.0


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 5000), wear=st.sampled_from(list(WearClass)))
def test_mask_span_class_property(seed, wear):
    """Property: every sampled placement satisfies its class geometry."""
    kp = sample_keypoints(seed % 100)
    p = place_mask(kp, wear, rng=seed)
    if wear in (WearClass.CORRECT, WearClass.CHIN_EXPOSED):
        assert p.top_y <= kp.nose_tip[1]
    else:
        assert p.top_y > kp.nose_tip[1]
    if wear == WearClass.CHIN_EXPOSED:
        assert p.bottom_y < kp.chin_tip[1]
    else:
        assert p.bottom_y >= kp.chin_tip[1]
    if wear == WearClass.NOSE_MOUTH_EXPOSED:
        assert p.top_y > kp.mouth_center[1]
    elif wear == WearClass.NOSE_EXPOSED:
        assert p.top_y < kp.mouth_center[1]
