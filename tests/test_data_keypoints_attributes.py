"""Tests for the key-point skeleton and attribute sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.attributes import (
    HAIR_COLORS,
    MASK_COLORS,
    SKIN_TONES,
    FaceAttributes,
    MaskAttributes,
    sample_attributes,
    sample_mask_attributes,
)
from repro.data.keypoints import FaceKeypoints, sample_keypoints


class TestSampleKeypoints:
    def test_deterministic(self):
        a = sample_keypoints(0)
        b = sample_keypoints(0)
        assert a.as_dict() == b.as_dict()

    def test_vertical_ordering_invariant(self):
        for seed in range(40):
            kp = sample_keypoints(seed)
            assert kp.forehead_top[1] < kp.eye_line_y
            assert kp.eye_line_y < kp.nose_bridge[1]
            assert kp.nose_bridge[1] < kp.nose_tip[1]
            assert kp.nose_tip[1] < kp.mouth_center[1]
            assert kp.mouth_center[1] < kp.chin_tip[1]

    def test_landmarks_inside_canvas(self):
        for seed in range(20):
            kp = sample_keypoints(seed, canvas=64)
            for name, (x, y) in kp.as_dict().items():
                assert 0 <= x <= 64, f"{name} x out of canvas"
                assert 0 <= y <= 64, f"{name} y out of canvas"

    def test_age_groups_change_proportions(self):
        infants = [sample_keypoints(s, age_group="infant") for s in range(10)]
        elderly = [sample_keypoints(s, age_group="elderly") for s in range(10)]
        # Infants have wider (rounder) faces relative to height.
        infant_ratio = np.mean([k.face_rx / k.face_ry for k in infants])
        elderly_ratio = np.mean([k.face_rx / k.face_ry for k in elderly])
        assert infant_ratio > elderly_ratio

    def test_unknown_age_group(self):
        with pytest.raises(ValueError, match="age_group"):
            sample_keypoints(0, age_group="teen")

    def test_band_helpers_ordered(self):
        kp = sample_keypoints(3)
        assert kp.nose_tip[1] < kp.below_nose_y() < kp.mouth_center[1]
        assert kp.mouth_center[1] < kp.below_mouth_y() < kp.chin_tip[1]
        assert kp.mouth_center[1] < kp.above_chin_y() < kp.chin_tip[1]


class TestFaceKeypointsValidation:
    def test_disordered_landmarks_rejected(self):
        with pytest.raises(ValueError, match="disordered"):
            FaceKeypoints(
                canvas=64,
                face_center=(32, 32),
                face_rx=16,
                face_ry=20,
                left_eye=(24, 40),  # below the nose -> invalid
                right_eye=(40, 40),
                nose_bridge=(32, 30),
                nose_tip=(32, 36),
                mouth_center=(32, 44),
                chin_tip=(32, 50),
                jaw_left=(18, 44),
                jaw_right=(46, 44),
                forehead_top=(32, 12),
            )

    def test_bad_radii_rejected(self):
        with pytest.raises(ValueError, match="radii"):
            FaceKeypoints(
                canvas=64,
                face_center=(32, 32),
                face_rx=0,
                face_ry=20,
                left_eye=(24, 28),
                right_eye=(40, 28),
                nose_bridge=(32, 31),
                nose_tip=(32, 38),
                mouth_center=(32, 44),
                chin_tip=(32, 51),
                jaw_left=(18, 44),
                jaw_right=(46, 44),
                forehead_top=(32, 12),
            )


class TestAttributes:
    def test_deterministic(self):
        assert sample_attributes(5) == sample_attributes(5)

    def test_overrides_pin_factors(self):
        attrs = sample_attributes(
            0,
            age_group="elderly",
            headgear="cap",
            sunglasses=True,
            face_paint=True,
            double_mask=True,
        )
        assert attrs.age_group == "elderly"
        assert attrs.headgear == "cap"
        assert attrs.sunglasses
        assert attrs.face_paint is not None
        assert attrs.double_mask

    def test_hair_color_override(self):
        attrs = sample_attributes(0, hair_color=HAIR_COLORS[6])
        assert attrs.hair_color == HAIR_COLORS[6]

    def test_diversity_over_seeds(self):
        skins = {sample_attributes(s).skin_tone for s in range(40)}
        ages = {sample_attributes(s).age_group for s in range(40)}
        assert len(skins) > 10
        assert ages == {"infant", "adult", "elderly"}

    def test_validation(self):
        with pytest.raises(ValueError, match="age_group"):
            FaceAttributes(age_group="ancient")
        with pytest.raises(ValueError, match="hair_style"):
            FaceAttributes(hair_style="mohawk")
        with pytest.raises(ValueError, match="headgear"):
            FaceAttributes(headgear="crown")

    def test_palettes_are_valid_colors(self):
        for palette in (SKIN_TONES, HAIR_COLORS, MASK_COLORS):
            for color in palette:
                assert len(color) == 3
                assert all(0.0 <= c <= 1.0 for c in color)


class TestMaskAttributes:
    def test_sampling_valid(self):
        for seed in range(30):
            m = sample_mask_attributes(seed)
            assert m.mask_type in ("surgical", "cloth", "ffp2")
            assert 0 <= m.pleats <= 5
            assert all(0.0 <= c <= 1.0 for c in m.color)

    def test_only_surgical_has_pleats(self):
        for seed in range(50):
            m = sample_mask_attributes(seed)
            if m.mask_type != "surgical":
                assert m.pleats == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="mask_type"):
            MaskAttributes(mask_type="bandana")
        with pytest.raises(ValueError, match="pleats"):
            MaskAttributes(pleats=9)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), canvas=st.sampled_from([48, 64, 96]))
def test_keypoints_scale_with_canvas(seed, canvas):
    """Property: the skeleton scales with the canvas and stays ordered."""
    kp = sample_keypoints(seed, canvas=canvas)
    assert kp.canvas == canvas
    assert 0 < kp.face_rx < canvas / 2
    assert kp.chin_tip[1] <= canvas
    assert kp.forehead_top[1] >= 0
