"""Unit tests for repro.utils.imaging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import imaging


class TestClipAndConvert:
    def test_clip01_bounds(self):
        img = np.array([-0.5, 0.2, 1.7], dtype=np.float32)
        out = imaging.clip01(img)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_uint8_roundtrip(self):
        img = np.linspace(0, 1, 256, dtype=np.float32).reshape(16, 16)
        back = imaging.from_uint8(imaging.to_uint8(img))
        assert np.abs(back - img).max() <= 1.0 / 255.0 + 1e-6

    def test_quantize_to_uint8_grid_idempotent(self):
        rng = np.random.default_rng(0)
        img = rng.random((8, 8, 3)).astype(np.float32)
        q1 = imaging.quantize_to_uint8_grid(img)
        q2 = imaging.quantize_to_uint8_grid(q1)
        np.testing.assert_array_equal(q1, q2)

    def test_quantize_values_on_grid(self):
        img = np.array([[0.123, 0.9999]], dtype=np.float32)
        q = imaging.quantize_to_uint8_grid(img)
        assert np.allclose(q * 255.0, np.rint(q * 255.0))


class TestResize:
    def test_identity_size(self):
        img = np.random.default_rng(0).random((10, 12, 3)).astype(np.float32)
        out = imaging.resize_bilinear(img, (10, 12))
        np.testing.assert_array_equal(out, img)
        assert out is not img  # copy, not view

    def test_constant_image_stays_constant(self):
        img = np.full((16, 16, 3), 0.3, dtype=np.float32)
        out = imaging.resize_bilinear(img, (7, 9))
        np.testing.assert_allclose(out, 0.3, atol=1e-6)

    def test_downsample_shape(self):
        img = np.zeros((64, 64, 3), dtype=np.float32)
        assert imaging.resize_bilinear(img, (32, 32)).shape == (32, 32, 3)

    def test_grayscale_supported(self):
        img = np.zeros((8, 8), dtype=np.float32)
        assert imaging.resize_bilinear(img, (4, 4)).shape == (4, 4)

    def test_mean_preserved_approximately(self):
        rng = np.random.default_rng(1)
        img = rng.random((32, 32)).astype(np.float32)
        out = imaging.resize_bilinear(img, (16, 16))
        assert abs(out.mean() - img.mean()) < 0.05

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError, match="positive"):
            imaging.resize_bilinear(np.zeros((4, 4)), (0, 4))


class TestNormalizeAndColormap:
    def test_normalize_range(self):
        x = np.array([3.0, 5.0, 7.0])
        out = imaging.normalize01(x)
        assert out.min() == 0.0 and out.max() == 1.0

    def test_normalize_constant_is_zero(self):
        np.testing.assert_array_equal(imaging.normalize01(np.full(5, 2.0)), 0.0)

    def test_jet_extremes(self):
        rgb = imaging.jet_colormap(np.array([0.0, 1.0]))
        # low values blue-ish, high values red-ish
        assert rgb[0, 2] > rgb[0, 0]
        assert rgb[1, 0] > rgb[1, 2]

    def test_jet_shape(self):
        assert imaging.jet_colormap(np.zeros((5, 5))).shape == (5, 5, 3)


class TestOverlay:
    def test_overlay_shape_and_range(self):
        img = np.zeros((16, 16, 3), dtype=np.float32)
        hm = np.random.default_rng(0).random((4, 4)).astype(np.float32)
        out = imaging.overlay_heatmap(img, hm, alpha=0.5)
        assert out.shape == (16, 16, 3)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_alpha_zero_is_identity(self):
        img = np.random.default_rng(0).random((8, 8, 3)).astype(np.float32)
        out = imaging.overlay_heatmap(img, np.ones((2, 2)), alpha=0.0)
        np.testing.assert_allclose(out, img, atol=1e-6)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            imaging.overlay_heatmap(np.zeros((4, 4, 3)), np.zeros((2, 2)), alpha=1.5)


class TestPolygon:
    def test_full_canvas_square(self):
        verts = np.array([(-1, -1), (9, -1), (9, 9), (-1, 9)])
        mask = imaging.polygon_mask((8, 8), verts)
        np.testing.assert_allclose(mask, 1.0)

    def test_half_plane_triangle(self):
        # Big triangle covering the lower-left half.
        verts = np.array([(0, 0), (0, 16), (16, 16)])
        mask = imaging.polygon_mask((16, 16), verts)
        assert mask[14, 1] > 0.9  # deep inside
        assert mask[1, 14] < 0.1  # outside

    def test_coverage_fraction_reasonable(self):
        verts = np.array([(2, 2), (6, 2), (6, 6), (2, 6)])  # 4x4 square in 8x8
        mask = imaging.polygon_mask((8, 8), verts)
        assert abs(mask.sum() - 16.0) < 2.0

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError, match="N>=3"):
            imaging.polygon_mask((8, 8), np.array([(0, 0), (1, 1)]))

    def test_fill_polygon_paints(self):
        img = np.zeros((8, 8, 3), dtype=np.float32)
        verts = np.array([(-1, -1), (9, -1), (9, 9), (-1, 9)])
        imaging.fill_polygon(img, verts, (1.0, 0.0, 0.0))
        assert img[4, 4, 0] > 0.99 and img[4, 4, 1] < 0.01


class TestEllipse:
    def test_center_inside(self):
        mask = imaging.ellipse_mask((16, 16), (8, 8), (5, 3))
        assert mask[8, 8] == 1.0

    def test_outside_zero(self):
        mask = imaging.ellipse_mask((16, 16), (8, 8), (3, 3))
        assert mask[0, 0] == 0.0

    def test_rotation_changes_shape(self):
        a = imaging.ellipse_mask((16, 16), (8, 8), (6, 2), angle=0.0)
        b = imaging.ellipse_mask((16, 16), (8, 8), (6, 2), angle=np.pi / 2)
        assert a[8, 13] > 0.5 and b[8, 13] < 0.5  # on the long axis of a only

    def test_rejects_nonpositive_radii(self):
        with pytest.raises(ValueError, match="positive"):
            imaging.ellipse_mask((8, 8), (4, 4), (0, 2))

    def test_draw_ellipse_composites(self):
        img = np.zeros((16, 16, 3), dtype=np.float32)
        imaging.draw_ellipse(img, (8, 8), (4, 4), (0.0, 1.0, 0.0))
        assert img[8, 8, 1] > 0.99


class TestRotate:
    def test_zero_rotation_identity(self):
        img = np.random.default_rng(0).random((8, 8, 3)).astype(np.float32)
        np.testing.assert_array_equal(imaging.rotate_image(img, 0.0), img)

    def test_shape_preserved(self):
        img = np.zeros((12, 12, 3), dtype=np.float32)
        assert imaging.rotate_image(img, 15.0).shape == img.shape

    def test_360_rotation_close_to_identity(self):
        img = np.random.default_rng(1).random((16, 16)).astype(np.float32)
        out = imaging.rotate_image(img, 360.0)
        assert np.abs(out - img).mean() < 0.05


@settings(max_examples=25, deadline=None)
@given(
    h=st.integers(4, 20),
    w=st.integers(4, 20),
    oh=st.integers(2, 24),
    ow=st.integers(2, 24),
)
def test_resize_output_within_input_range(h, w, oh, ow):
    """Bilinear interpolation never over/undershoots the input range."""
    rng = np.random.default_rng(h * 100 + w)
    img = rng.random((h, w)).astype(np.float32)
    out = imaging.resize_bilinear(img, (oh, ow))
    assert out.shape == (oh, ow)
    assert out.min() >= img.min() - 1e-5
    assert out.max() <= img.max() + 1e-5
