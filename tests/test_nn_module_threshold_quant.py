"""Tests for the Module base class and threshold re-quantisation."""

import numpy as np
import pytest

from repro.hw.thresholding import (
    ThresholdSpec,
    apply_thresholds,
    fold_popcount_domain,
    quantize_spec,
)
from repro.nn.layers import ReLU
from repro.nn.module import Module, Parameter
from repro.nn.sequential import Sequential


class TestModuleBase:
    def test_duplicate_parameter_rejected(self):
        m = Module()
        m.register_parameter("w", Parameter(np.zeros(2)))
        with pytest.raises(ValueError, match="already registered"):
            m.register_parameter("w", Parameter(np.zeros(2)))

    def test_duplicate_module_rejected(self):
        m = Module()
        m.register_module("child", Module())
        with pytest.raises(ValueError, match="already registered"):
            m.register_module("child", Module())

    def test_parameter_name_assigned(self):
        m = Module()
        p = m.register_parameter("w", Parameter(np.zeros(2)))
        assert "w" in p.name

    def test_parameters_recursive(self):
        parent = Module()
        child = Module()
        child.register_parameter("c", Parameter(np.zeros(1)))
        parent.register_parameter("p", Parameter(np.zeros(1)))
        parent.register_module("sub", child)
        assert len(parent.parameters()) == 2
        names = [n for n, _ in parent.named_parameters()]
        assert "p" in names and "sub.c" in names

    def test_modules_traversal(self):
        parent = Module()
        child = Module()
        parent.register_module("sub", child)
        assert list(parent.modules()) == [parent, child]

    def test_train_eval_recursive(self):
        parent = Module()
        child = Module()
        parent.register_module("sub", child)
        parent.eval()
        assert not child.training
        parent.train()
        assert child.training

    def test_default_output_shape_preserves(self):
        assert Module().output_shape((3, 4)) == (3, 4)

    def test_forward_backward_abstract(self):
        m = Module()
        with pytest.raises(NotImplementedError):
            m.forward(np.zeros(1))
        with pytest.raises(NotImplementedError):
            m.backward(np.zeros(1))

    def test_call_dispatches_to_forward(self):
        layer = ReLU()
        x = np.array([-1.0, 2.0], dtype=np.float32)
        np.testing.assert_array_equal(layer(x), layer.forward(x))

    def test_num_parameters(self):
        m = Module()
        m.register_parameter("a", Parameter(np.zeros((2, 3))))
        m.register_parameter("b", Parameter(np.zeros(4)))
        assert m.num_parameters() == 10


class TestQuantizeSpec:
    def _spec(self, fan_in=64, channels=16, seed=0):
        rng = np.random.default_rng(seed)
        return fold_popcount_domain(
            rng.uniform(-2, 2, channels), rng.normal(0, 5, channels), fan_in
        )

    def test_full_width_is_identity(self):
        spec = self._spec()
        q = quantize_spec(spec, bits=16)
        assert q is spec

    def test_one_bit_extreme(self):
        spec = self._spec()
        q = quantize_spec(spec, bits=1)
        # Only two representable levels.
        assert len(np.unique(q.thresholds)) <= 2

    def test_quantised_stays_in_range(self):
        spec = self._spec(fan_in=576, channels=64, seed=3)
        for bits in (2, 4, 6):
            q = quantize_spec(spec, bits)
            assert q.thresholds.min() >= spec.acc_min - 1
            assert q.thresholds.max() <= spec.acc_max + 1

    def test_error_shrinks_with_bits(self):
        spec = self._spec(fan_in=576, channels=64, seed=4)
        errors = []
        for bits in (2, 4, 8):
            q = quantize_spec(spec, bits)
            errors.append(np.abs(q.thresholds - spec.thresholds).mean())
        assert errors[0] >= errors[1] >= errors[2]

    def test_output_agreement_grows_with_bits(self):
        spec = self._spec(fan_in=128, channels=32, seed=5)
        rng = np.random.default_rng(6)
        acc = rng.integers(0, 129, size=(400, 32))
        reference = apply_thresholds(acc, spec)
        agreements = []
        for bits in (2, 5, 9):
            q = quantize_spec(spec, bits)
            agreements.append(
                float((apply_thresholds(acc, q) == reference).mean())
            )
        assert agreements[0] <= agreements[1] <= agreements[2] + 1e-9
        assert agreements[-1] == 1.0  # 9 bits cover [−1, 129] fully

    def test_flip_flags_preserved(self):
        spec = self._spec(seed=7)
        q = quantize_spec(spec, 3)
        np.testing.assert_array_equal(q.flipped, spec.flipped)

    def test_bits_validation(self):
        with pytest.raises(ValueError, match="bits"):
            quantize_spec(self._spec(), 0)
