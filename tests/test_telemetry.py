"""Tests for ``repro.telemetry``: spans, journal, exporters, probes, CLI.

The tracing tests pin the subsystem's core contracts: span trees stay
connected across the serving thread hops, sampling drops whole trees
(never fragments), a disabled tracer records nothing, and the trace
summary's modelled bottleneck agrees with ``analyze_pipeline``'s
analytic II argmax.
"""

from __future__ import annotations

import json
import re
import threading

import numpy as np
import pytest

from repro.cli import main
from repro.core.architectures import build_architecture, table1_folding
from repro.hw.compiler import compile_model
from repro.hw.pipeline import analyze_pipeline
from repro.serving import InferenceServer, ServingConfig
from repro.telemetry import (
    NOOP_SPAN,
    NULL_TRACER,
    TELEMETRY_SCHEMA,
    TRACE_SCHEMA,
    HealthReport,
    ProbeResult,
    ProbeStatus,
    SpanJournal,
    TelemetryExporter,
    Tracer,
    activate,
    deactivate,
    escape_label_value,
    get_tracer,
    probe_backend_smoke,
    probe_queue,
    probe_workers,
    summarize_spans,
    validate_telemetry_doc,
)
from repro.telemetry.export import render_prometheus, span_families
from repro.testing import randomize_bn_stats
from repro.utils.clock import MONOTONIC, FakeClock, MonotonicClock

pytestmark = pytest.mark.telemetry


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    """Every test starts and ends with tracing deactivated."""
    deactivate()
    yield
    deactivate()


def make_tracer(**kwargs):
    journal = SpanJournal()
    return Tracer(journal=journal, **kwargs), journal


# ---------------------------------------------------------------------------
# clocks
# ---------------------------------------------------------------------------
class TestClocks:
    def test_monotonic_clock_advances(self):
        clock = MonotonicClock()
        a = clock.monotonic()
        clock.sleep(0.001)
        assert clock.monotonic() > a

    def test_monotonic_sleep_ignores_nonpositive(self):
        MONOTONIC.sleep(0.0)
        MONOTONIC.sleep(-1.0)  # must not raise

    def test_fake_clock_advances_only_when_told(self):
        clock = FakeClock(start=10.0)
        assert clock.monotonic() == 10.0
        clock.advance(2.5)
        assert clock.monotonic() == 12.5
        clock.sleep(0.5)  # sleep advances fake time, never blocks
        assert clock.monotonic() == 13.0

    def test_fake_clock_rejects_negative_advance(self):
        with pytest.raises(ValueError, match="backwards"):
            FakeClock().advance(-1.0)


# ---------------------------------------------------------------------------
# spans and tracer
# ---------------------------------------------------------------------------
class TestTracer:
    def test_nested_spans_form_one_tree(self):
        tracer, journal = make_tracer()
        with tracer.span("root", kind="request") as root:
            with tracer.span("mid", kind="batch") as mid:
                with tracer.span("leaf", kind="backend") as leaf:
                    assert tracer.current_span() is leaf
        spans = {s["name"]: s for s in journal.snapshot()}
        assert set(spans) == {"root", "mid", "leaf"}
        assert spans["mid"]["parent_id"] == spans["root"]["span_id"]
        assert spans["leaf"]["parent_id"] == spans["mid"]["span_id"]
        # one trace id across the tree, rooted at the root span
        assert (
            spans["root"]["trace_id"]
            == spans["mid"]["trace_id"]
            == spans["leaf"]["trace_id"]
            == spans["root"]["span_id"]
        )
        assert spans["root"]["parent_id"] is None

    def test_current_span_restored_after_exit(self):
        tracer, _ = make_tracer()
        assert tracer.current_span() is None
        with tracer.span("a"):
            assert tracer.current_span() is not None
        assert tracer.current_span() is None

    def test_exception_recorded_and_propagated(self):
        tracer, journal = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        (span,) = journal.snapshot()
        assert span["attributes"]["error"] == "RuntimeError"
        assert span["end_s"] is not None

    def test_manual_span_finish_is_write_once(self):
        tracer, journal = make_tracer(clock=FakeClock())
        span = tracer.start_span("req", kind="request", parent=None)
        tracer.clock.advance(1.0)
        span.finish()
        first_end = span.end_s
        tracer.clock.advance(1.0)
        span.finish()  # second finish is a no-op
        assert span.end_s == first_end
        assert len(journal.snapshot()) == 1

    def test_record_externally_timed_span(self):
        tracer, journal = make_tracer()
        tracer.record("hw.fc1", kind="hw_stage", start_s=1.0, end_s=3.5,
                      parent=None, attributes={"cycles": 2048})
        (span,) = journal.snapshot()
        assert span["end_s"] - span["start_s"] == pytest.approx(2.5)
        assert span["attributes"]["cycles"] == 2048

    def test_durations_use_injected_clock(self):
        clock = FakeClock()
        tracer, journal = make_tracer(clock=clock)
        with tracer.span("timed"):
            clock.advance(0.25)
        (span,) = journal.snapshot()
        assert span["end_s"] - span["start_s"] == pytest.approx(0.25)

    def test_rejects_nonpositive_sample_every(self):
        with pytest.raises(ValueError, match="sample_every"):
            Tracer(sample_every=0)


class TestSampling:
    def test_sample_every_n_keeps_every_nth_root(self):
        tracer, journal = make_tracer(sample_every=2)
        for i in range(6):
            with tracer.span(f"root{i}", kind="request"):
                pass
        names = {s["name"] for s in journal.snapshot()}
        assert names == {"root0", "root2", "root4"}

    def test_sampled_out_root_drops_its_whole_subtree(self):
        tracer, journal = make_tracer(sample_every=2)
        for i in range(2):
            with tracer.span(f"root{i}") as root:
                with tracer.span(f"child{i}"):
                    pass
                if i == 1:
                    assert root is NOOP_SPAN
        names = {s["name"] for s in journal.snapshot()}
        assert names == {"root0", "child0"}  # trees, never fragments

    def test_children_of_recording_parents_always_record(self):
        tracer, journal = make_tracer(sample_every=3)
        with tracer.span("root"):
            for i in range(5):
                with tracer.span(f"child{i}"):
                    pass
        assert len(journal.snapshot()) == 6  # root + all five children


class TestDisabledAndAmbient:
    def test_disabled_tracer_records_nothing(self):
        tracer, journal = make_tracer(enabled=False)
        with tracer.span("invisible") as span:
            assert span is NOOP_SPAN
            assert tracer.current_span() is None  # contextvar untouched
        assert tracer.start_span("also-invisible") is NOOP_SPAN
        tracer.record("x", kind="y", start_s=0.0, end_s=1.0)
        assert journal.snapshot() == []

    def test_null_tracer_is_ambient_default(self):
        assert get_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_activate_and_deactivate(self):
        tracer, journal = make_tracer()
        assert activate(tracer) is tracer
        assert get_tracer() is tracer
        with get_tracer().span("via-ambient"):
            pass
        deactivate()
        assert get_tracer() is NULL_TRACER
        assert [s["name"] for s in journal.snapshot()] == ["via-ambient"]

    def test_noop_span_is_inert(self):
        NOOP_SPAN.set_attribute("k", "v")
        NOOP_SPAN.finish()
        assert NOOP_SPAN.duration_s == 0.0
        assert not NOOP_SPAN.recording


# ---------------------------------------------------------------------------
# journal
# ---------------------------------------------------------------------------
class TestJournal:
    def test_capacity_bounds_retained_spans(self):
        journal = SpanJournal(capacity_per_thread=4)
        for i in range(10):
            journal.record({"span_id": i, "start_s": float(i)})
        retained = [s["span_id"] for s in journal.snapshot()]
        assert retained == [6, 7, 8, 9]  # ring buffer keeps the newest

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity_per_thread"):
            SpanJournal(capacity_per_thread=0)

    def test_concurrent_recording_from_many_threads(self):
        journal = SpanJournal()
        per_thread = 200

        def record(tid):
            for i in range(per_thread):
                journal.record(
                    {"span_id": tid * per_thread + i, "start_s": float(i)}
                )

        threads = [
            threading.Thread(target=record, args=(tid,)) for tid in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(journal) == 8 * per_thread

    def test_clear(self):
        journal = SpanJournal()
        journal.record({"span_id": 1, "start_s": 0.0})
        journal.clear()
        assert len(journal) == 0

    def test_save_load_roundtrip(self, tmp_path):
        tracer, journal = make_tracer()
        with tracer.span("a"):
            pass
        path = journal.save(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == TRACE_SCHEMA
        spans = SpanJournal.load(path)
        assert [s["name"] for s in spans] == ["a"]

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": "other/v9", "spans": []}))
        with pytest.raises(ValueError, match="not a trace journal"):
            SpanJournal.load(path)


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------
PROM_METRIC_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*")*\})? '
    r'[0-9.eE+-]+(?:nan|inf)?$'
)


def assert_valid_prometheus(text: str) -> None:
    """Mini-parser for the Prometheus text exposition format."""
    current_name = None
    typed = set()
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            current_name = line.split()[2]
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            assert parts[2] == current_name, "TYPE must follow its HELP"
            assert parts[3] in ("counter", "gauge")
            typed.add(parts[2])
            continue
        assert PROM_METRIC_LINE.match(line), f"malformed sample line: {line!r}"
        name = re.split(r"[{ ]", line, 1)[0]
        assert name in typed, f"sample {name!r} before its TYPE line"
    assert text.endswith("\n")


class TestExport:
    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_span_families_prometheus_validity(self):
        tracer, journal = make_tracer()
        with tracer.span('odd"name\\', kind="request"):
            with tracer.span("child", kind="batch"):
                pass
        exporter = TelemetryExporter(journal=journal)
        assert_valid_prometheus(exporter.to_prometheus())

    def test_json_document_schema(self):
        tracer, journal = make_tracer()
        with tracer.span("a", kind="request"):
            pass
        doc = json.loads(TelemetryExporter(journal=journal).to_json())
        validate_telemetry_doc(doc)
        assert doc["schema"] == TELEMETRY_SCHEMA
        names = {m["name"] for m in doc["metrics"]}
        assert names == {"repro_span_total", "repro_span_seconds"}
        counts = doc["metrics"][0]["samples"]
        assert counts[0]["labels"] == {"span": "a", "kind": "request"}
        assert counts[0]["value"] == 1.0

    def test_span_families_skip_unfinished(self):
        families = span_families([
            {"name": "open", "kind": "x", "start_s": 0.0, "end_s": None},
        ])
        assert families == []

    def test_validate_rejects_bad_documents(self):
        good = {"schema": TELEMETRY_SCHEMA, "metrics": []}
        validate_telemetry_doc(good)
        for bad, match in (
            ({"schema": "nope", "metrics": []}, "schema mismatch"),
            ({"schema": TELEMETRY_SCHEMA}, "no metric list"),
            (
                {
                    "schema": TELEMETRY_SCHEMA,
                    "metrics": [{"name": "1bad", "type": "gauge",
                                 "help": "", "samples": []}],
                },
                "invalid metric name",
            ),
            (
                {
                    "schema": TELEMETRY_SCHEMA,
                    "metrics": [{"name": "m", "type": "histogram",
                                 "help": "", "samples": []}],
                },
                "invalid metric type",
            ),
            (
                {
                    "schema": TELEMETRY_SCHEMA,
                    "metrics": [{"name": "m", "type": "gauge", "help": "",
                                 "samples": [{"labels": {"bad-label": "x"},
                                              "value": 1.0}]}],
                },
                "invalid label name",
            ),
            (
                {
                    "schema": TELEMETRY_SCHEMA,
                    "metrics": [{"name": "m", "type": "gauge", "help": "",
                                 "samples": [{"labels": {},
                                              "value": float("nan")}]}],
                },
                "not finite",
            ),
        ):
            with pytest.raises(ValueError, match=match):
                validate_telemetry_doc(bad)

    def test_server_stats_exported(self):
        backend = _StubBackend()
        server = InferenceServer([backend], ServingConfig(
            max_batch_size=4, max_wait_ms=1.0, queue_capacity=16,
            num_workers=1,
        ))
        images = np.zeros((3, 4, 4, 3), dtype=np.float32)
        with server:
            server.predict(images)
        exporter = TelemetryExporter(stats_source=server.stats)
        text = exporter.to_prometheus()
        assert_valid_prometheus(text)
        assert 'repro_serving_requests_total{outcome="completed"} 3' in text
        assert "repro_serving_qps" in text
        assert "repro_serving_latency_ms" in text


# ---------------------------------------------------------------------------
# health probes
# ---------------------------------------------------------------------------
class _StubBackend:
    name = "stub"
    max_concurrency = 2

    def infer(self, images):
        return np.zeros(len(images), dtype=int)


class _BrokenBackend:
    name = "broken"
    max_concurrency = 1

    def infer(self, images):
        raise RuntimeError("dead silicon")


class _ShortBackend:
    name = "short"
    max_concurrency = 1

    def infer(self, images):
        return np.zeros(max(0, len(images) - 1), dtype=int)


class TestHealthProbes:
    def test_queue_thresholds(self):
        assert probe_queue(0, 10).status is ProbeStatus.OK
        assert probe_queue(8, 10).status is ProbeStatus.DEGRADED
        assert probe_queue(10, 10).status is ProbeStatus.FAILING
        assert probe_queue(0, 10, closed=True).status is ProbeStatus.FAILING

    def test_worker_liveness(self):
        assert probe_workers(2, 2, running=True).status is ProbeStatus.OK
        assert probe_workers(1, 2, running=True).status is ProbeStatus.DEGRADED
        assert probe_workers(0, 2, running=True).status is ProbeStatus.FAILING
        assert probe_workers(2, 2, running=False).status is ProbeStatus.FAILING

    def test_backend_smoke_ok_and_failing(self):
        ok = probe_backend_smoke(_StubBackend())
        assert ok.status is ProbeStatus.OK
        assert "label 0" in ok.detail
        broken = probe_backend_smoke(_BrokenBackend())
        assert broken.status is ProbeStatus.FAILING
        assert "dead silicon" in broken.detail
        short = probe_backend_smoke(_ShortBackend())
        assert short.status is ProbeStatus.FAILING
        assert "0 labels" in short.detail

    def test_report_aggregates_worst_status(self):
        report = HealthReport(probes=(
            ProbeResult("a", ProbeStatus.OK),
            ProbeResult("b", ProbeStatus.DEGRADED, "meh"),
        ))
        assert report.status is ProbeStatus.DEGRADED
        assert report.ok  # degraded still serves
        assert "DEGRADED" in report.render()
        failing = HealthReport(probes=(
            ProbeResult("a", ProbeStatus.FAILING, "x"),
        ))
        assert not failing.ok
        assert failing.to_dict()["status"] == "failing"

    def test_server_health_and_ready(self):
        server = InferenceServer([_StubBackend()], ServingConfig(
            max_batch_size=4, max_wait_ms=1.0, queue_capacity=16,
            num_workers=2,
        ))
        assert not server.ready()  # not started yet
        with server:
            report = server.health(smoke=True)
            assert report.status is ProbeStatus.OK
            assert {p.name for p in report.probes} == {
                "queue", "workers", "backend:stub",
            }
            assert server.ready()
        assert not server.ready()


# ---------------------------------------------------------------------------
# instrumented subsystems
# ---------------------------------------------------------------------------
class TestServingTraces:
    def test_request_tree_connected_through_server(self):
        tracer, journal = make_tracer()
        activate(tracer)
        server = InferenceServer([_StubBackend()], ServingConfig(
            max_batch_size=4, max_wait_ms=1.0, queue_capacity=16,
            num_workers=1,
        ))
        images = np.zeros((4, 4, 4, 3), dtype=np.float32)
        with server:
            server.predict(images)
        deactivate()
        spans = journal.snapshot()
        by_kind = {}
        for s in spans:
            by_kind.setdefault(s["kind"], []).append(s)
        assert set(by_kind) == {"request", "batch", "backend"}
        assert len(by_kind["request"]) == 4
        ids = {s["span_id"]: s for s in spans}
        for batch in by_kind["batch"]:
            parent = ids[batch["parent_id"]]
            assert parent["kind"] == "request"
            # requests beyond the first are linked, not re-parented
            covered = {parent["span_id"], *batch["links"]}
            assert covered <= {r["span_id"] for r in by_kind["request"]}
        for infer in by_kind["backend"]:
            assert ids[infer["parent_id"]]["kind"] == "batch"
            assert infer["attributes"]["backend"] == "stub"
        for req in by_kind["request"]:
            assert req["attributes"]["status"] == "completed"

    def test_untraced_server_records_nothing(self):
        server = InferenceServer([_StubBackend()], ServingConfig(
            max_batch_size=4, max_wait_ms=1.0, queue_capacity=16,
            num_workers=1,
        ))
        images = np.zeros((2, 4, 4, 3), dtype=np.float32)
        with server:
            server.predict(images)
        # no ambient tracer: requests carry no span
        assert get_tracer() is NULL_TRACER


class TestHwTraces:
    @pytest.fixture(scope="class")
    def cnv_accelerator(self):
        model = build_architecture("cnv", rng=0)
        randomize_bn_stats(model, seed=1)
        model.eval()
        return compile_model(model, table1_folding("cnv"), name="cnv")

    def test_stage_spans_and_modelled_bottleneck_match_analytic(
        self, cnv_accelerator
    ):
        tracer, journal = make_tracer()
        activate(tracer)
        image = np.random.default_rng(0).random((1, 32, 32, 3)).astype(
            np.float32
        )
        cnv_accelerator.predict(image)
        deactivate()
        summary = summarize_spans(journal.snapshot())
        stage_names = [row.name for row in summary.hw_stages]
        analytic = analyze_pipeline(cnv_accelerator)
        assert stage_names == [n for n, _ in analytic.stage_intervals]
        # the modelled bottleneck is the analytic II argmax, exactly
        assert summary.bottleneck_modelled == analytic.bottleneck[0]
        for row, (name, ii) in zip(
            summary.hw_stages, analytic.stage_intervals
        ):
            assert row.cycles == ii
        # one hw root above the stages
        roots = [
            s for s in journal.snapshot() if s["parent_id"] is None
        ]
        assert len(roots) == 1 and roots[0]["kind"] == "hw"

    def test_stage_spans_nest_under_existing_parent(self, cnv_accelerator):
        tracer, journal = make_tracer()
        activate(tracer)
        image = np.zeros((1, 32, 32, 3), dtype=np.float32)
        with tracer.span("outer", kind="request"):
            cnv_accelerator.predict(image)
        deactivate()
        spans = journal.snapshot()
        roots = [s for s in spans if s["parent_id"] is None]
        # the execute call must not open its own root under a live span
        assert [r["name"] for r in roots] == ["outer"]
        assert not any(s["name"] == "hw.execute" for s in spans)


class TestTrainDatagenTraces:
    def test_trainer_emits_epoch_and_step_spans(self):
        from repro.nn import Adam, Trainer

        tracer, journal = make_tracer()
        activate(tracer)
        model = build_architecture("u-cnv", rng=0)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01))
        gen = np.random.default_rng(0)
        x = gen.normal(size=(16, 32, 32, 3)).astype(np.float32)
        y = gen.integers(0, 4, size=16).astype(np.int64)
        trainer.fit(x, y, epochs=1, batch_size=8, rng=0)
        deactivate()
        spans = journal.snapshot()
        kinds = {s["kind"] for s in spans}
        assert kinds == {"train_epoch", "train_step"}
        steps = [s for s in spans if s["kind"] == "train_step"]
        assert len(steps) == 2  # 16 samples / batch 8
        epoch = next(s for s in spans if s["kind"] == "train_epoch")
        assert all(s["parent_id"] == epoch["span_id"] for s in steps)

    def test_generator_emits_datagen_span(self):
        from repro.data.generator import FaceSampleGenerator

        tracer, journal = make_tracer()
        activate(tracer)
        FaceSampleGenerator().generate_batch(2, np.random.default_rng(0))
        deactivate()
        (span,) = journal.snapshot()
        assert span["kind"] == "datagen"
        assert span["attributes"]["samples"] == 2


# ---------------------------------------------------------------------------
# trace summary
# ---------------------------------------------------------------------------
class TestSummary:
    def test_critical_path_prefers_request_roots(self):
        spans = [
            {"trace_id": 1, "span_id": 1, "parent_id": None, "name": "hw",
             "kind": "hw", "start_s": 0.0, "end_s": 9.0, "attributes": {}},
            {"trace_id": 2, "span_id": 2, "parent_id": None, "name": "req",
             "kind": "request", "start_s": 0.0, "end_s": 2.0,
             "attributes": {}},
            {"trace_id": 2, "span_id": 3, "parent_id": 2, "name": "fast",
             "kind": "batch", "start_s": 0.0, "end_s": 0.5, "attributes": {}},
            {"trace_id": 2, "span_id": 4, "parent_id": 2, "name": "slow",
             "kind": "batch", "start_s": 0.5, "end_s": 2.0, "attributes": {}},
        ]
        summary = summarize_spans(spans)
        path = [s["name"] for s in summary.critical_path]
        assert path == ["req", "slow"]  # request root wins despite shorter

    def test_modelled_bottleneck_first_wins_tie_break(self):
        def stage(i, name, cycles, dur):
            return {
                "trace_id": 1, "span_id": i, "parent_id": None,
                "name": f"hw.{name}", "kind": "hw_stage",
                "start_s": 0.0, "end_s": dur,
                "attributes": {"cycles": cycles},
            }

        summary = summarize_spans([
            stage(1, "conv1", 500, 0.1),
            stage(2, "fc1", 500, 0.9),  # ties on cycles, slower wall time
            stage(3, "fc2", 100, 0.2),
        ])
        assert summary.bottleneck_modelled == "conv1"  # first maximum wins
        assert summary.bottleneck_measured == "fc1"

    def test_unfinished_spans_excluded(self):
        summary = summarize_spans([
            {"trace_id": 1, "span_id": 1, "parent_id": None, "name": "open",
             "kind": "request", "start_s": 0.0, "end_s": None,
             "attributes": {}},
        ])
        assert summary.span_count == 0
        assert summary.trace_count == 0

    def test_render_is_printable(self):
        tracer, journal = make_tracer()
        with tracer.span("r", kind="request"):
            pass
        text = summarize_spans(journal.snapshot()).render()
        assert "1 spans across 1 traces" in text
        assert "per-span-kind latency" in text


# ---------------------------------------------------------------------------
# CLI verbs
# ---------------------------------------------------------------------------
class TestCli:
    @pytest.fixture()
    def saved_journal(self, tmp_path):
        tracer, journal = make_tracer()
        with tracer.span("serving.request", kind="request"):
            with tracer.span("serving.batch", kind="batch"):
                tracer.record("hw.fc1", kind="hw_stage", start_s=0.0,
                              end_s=0.5, attributes={"cycles": 2048})
        return journal.save(tmp_path / "trace.json")

    def test_trace_verb(self, saved_journal, capsys):
        assert main(["trace", str(saved_journal)]) == 0
        out = capsys.readouterr().out
        assert "3 spans across 1 traces" in out
        assert "bottleneck (modelled, II argmax): fc1" in out
        assert "critical path" in out

    def test_trace_verb_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "absent.json")]) == 1
        assert "error" in capsys.readouterr().err

    def test_trace_verb_empty_journal(self, tmp_path, capsys):
        path = SpanJournal().save(tmp_path / "empty.json")
        assert main(["trace", str(path)]) == 0
        assert "empty journal" in capsys.readouterr().out

    def test_metrics_verb_prometheus(self, saved_journal, capsys):
        assert main(["metrics", "--journal", str(saved_journal)]) == 0
        out = capsys.readouterr().out
        assert_valid_prometheus(out)
        assert "repro_span_total" in out

    def test_metrics_verb_json(self, saved_journal, capsys):
        assert main([
            "metrics", "--journal", str(saved_journal), "--format", "json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        validate_telemetry_doc(doc)

    def test_metrics_verb_without_journal(self, capsys):
        assert main(["metrics"]) == 0
        doc_text = capsys.readouterr().out
        assert doc_text == "\n" or doc_text.strip() == ""


# ---------------------------------------------------------------------------
# bench schema extension
# ---------------------------------------------------------------------------
class TestBenchTelemetrySection:
    def _run_with_telemetry(self):
        return {
            "timestamp": 0.0, "label": "t", "kernels": {
                "pack_bits": {"seconds": 0.1, "gbits_per_s": 1.0},
                "unpack_bits": {"seconds": 0.1, "gbits_per_s": 1.0},
                "xnor_gemm": {"x": {"seconds": 0.1, "gops_per_s": 1.0}},
            },
            "stages": {"u-cnv": [{"name": "s", "seconds": 0.1}]},
            "e2e": {"u-cnv": {"images": 1, "seconds": 0.1, "fps": 10.0}},
            "telemetry": {
                "arch": "u-cnv", "images": 2,
                "baseline": {"seconds": 0.1, "fps": 20.0},
                "off": {"seconds": 0.1, "fps": 20.0,
                        "overhead_vs_baseline": 0.0},
                "sampled": {"sample_every": 64, "seconds": 0.1, "fps": 19.0,
                            "overhead_vs_off": 0.05, "spans": 8},
                "full": {"sample_every": 1, "seconds": 0.11, "fps": 18.0,
                         "overhead_vs_off": 0.10, "spans": 16},
            },
        }

    def test_validate_and_render(self):
        from repro.benchmarking import render_run, validate_run

        run = self._run_with_telemetry()
        validate_run(run)
        text = render_run(run)
        assert "telemetry off" in text
        assert "telemetry sampled" in text

    def test_validate_rejects_malformed_section(self):
        from repro.benchmarking import validate_run

        run = self._run_with_telemetry()
        del run["telemetry"]["sampled"]["overhead_vs_off"]
        with pytest.raises(ValueError, match="overhead_vs_off"):
            validate_run(run)

    def test_compare_runs_covers_telemetry(self):
        from repro.benchmarking import compare_runs

        prev = self._run_with_telemetry()
        cur = self._run_with_telemetry()
        cur["telemetry"]["full"]["fps"] = 9.0  # halved throughput
        records = compare_runs(prev, cur, tolerance=0.25)
        by_metric = {r["metric"]: r for r in records}
        assert by_metric["telemetry.off.fps"]["regressed"] is False
        assert by_metric["telemetry.full.fps"]["regressed"] is True
