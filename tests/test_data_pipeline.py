"""Tests for the generator, balancing, augmentation and dataset pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.augmentation import (
    Augmenter,
    add_gaussian_noise,
    adjust_brightness,
    adjust_contrast,
    horizontal_flip,
    rotate,
)
from repro.data.balancing import (
    RAW_CLASS_PROBABILITIES,
    balance_by_subsampling,
    class_distribution,
)
from repro.data.dataset import (
    Dataset,
    build_masked_face_dataset,
    iterate_minibatches,
)
from repro.data.generator import FaceSampleGenerator, SampleSpec
from repro.data.mask_model import WearClass


class TestGenerator:
    def test_sample_contract(self):
        g = FaceSampleGenerator(image_size=32)
        s = g.generate_one(0)
        assert s.image.shape == (32, 32, 3)
        assert s.image.dtype == np.float32
        assert 0.0 <= s.image.min() and s.image.max() <= 1.0
        assert s.label in WearClass

    def test_images_on_uint8_grid(self):
        s = FaceSampleGenerator().generate_one(1)
        scaled = s.image * 255.0
        np.testing.assert_allclose(scaled, np.rint(scaled), atol=1e-4)

    def test_deterministic(self):
        g = FaceSampleGenerator()
        a = g.generate_one(7)
        b = g.generate_one(7)
        np.testing.assert_array_equal(a.image, b.image)
        assert a.label == b.label

    def test_spec_pins_class(self):
        g = FaceSampleGenerator()
        for seed in range(8):
            s = g.generate_one(seed, SampleSpec(wear_class=WearClass.CHIN_EXPOSED))
            assert s.label == WearClass.CHIN_EXPOSED

    def test_batch_shapes(self):
        X, y = FaceSampleGenerator().generate_batch(12, rng=0)
        assert X.shape == (12, 32, 32, 3)
        assert y.shape == (12,)
        assert y.dtype == np.int64

    def test_batch_class_probabilities(self):
        X, y = FaceSampleGenerator().generate_batch(
            300, rng=0, class_probabilities=(1.0, 0.0, 0.0, 0.0)
        )
        assert set(y) == {0}

    def test_raw_imbalance_reproduced(self):
        _, y = FaceSampleGenerator().generate_batch(
            600, rng=0, class_probabilities=RAW_CLASS_PROBABILITIES
        )
        counts = np.bincount(y, minlength=4) / len(y)
        assert counts[0] > 0.4 and counts[1] > 0.3
        assert counts[2] < 0.12 and counts[3] < 0.12

    def test_bad_probabilities_rejected(self):
        g = FaceSampleGenerator()
        with pytest.raises(ValueError, match="class_probabilities"):
            g.generate_batch(4, rng=0, class_probabilities=(0.5, 0.5, 0.5, 0.5))

    def test_render_smaller_than_output_rejected(self):
        with pytest.raises(ValueError, match="render_size"):
            FaceSampleGenerator(image_size=64, render_size=32)

    def test_nonpositive_batch_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            FaceSampleGenerator().generate_batch(0)


class TestBalancing:
    def _data(self, counts):
        labels = np.concatenate([np.full(n, c) for c, n in enumerate(counts)])
        images = np.arange(len(labels), dtype=np.float32).reshape(-1, 1, 1, 1)
        images = np.broadcast_to(images, (len(labels), 2, 2, 3)).copy()
        return images, labels

    def test_balances_to_smallest(self):
        images, labels = self._data([100, 80, 10, 12])
        xb, yb = balance_by_subsampling(images, labels, rng=0)
        counts = class_distribution(yb)
        assert set(counts.values()) == {10}

    def test_explicit_target(self):
        images, labels = self._data([50, 50, 20, 20])
        _, yb = balance_by_subsampling(images, labels, rng=0, target_per_class=15)
        assert set(class_distribution(yb).values()) == {15}

    def test_target_above_minimum_rejected(self):
        images, labels = self._data([50, 50, 20, 20])
        with pytest.raises(ValueError, match="exceeds"):
            balance_by_subsampling(images, labels, rng=0, target_per_class=25)

    def test_output_shuffled(self):
        images, labels = self._data([30, 30, 30, 30])
        _, yb = balance_by_subsampling(images, labels, rng=0)
        # A sorted output would have long runs; shuffled output should not.
        runs = np.diff(yb) == 0
        assert runs.mean() < 0.9

    def test_images_follow_labels(self):
        images, labels = self._data([20, 20, 5, 5])
        xb, yb = balance_by_subsampling(images, labels, rng=0)
        # The image payload encodes the original index; check consistency.
        for img, label in zip(xb, yb):
            original_index = int(img[0, 0, 0])
            assert labels[original_index] == label

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            balance_by_subsampling(np.zeros((3, 2, 2, 3)), np.zeros(4, dtype=int))

    def test_class_distribution_validation(self):
        with pytest.raises(ValueError, match="out of range"):
            class_distribution(np.array([0, 5]), num_classes=4)


class TestAugmentationOps:
    @pytest.fixture()
    def img(self):
        return np.random.default_rng(0).random((8, 8, 3)).astype(np.float32)

    def test_contrast_identity(self, img):
        np.testing.assert_allclose(adjust_contrast(img, 1.0), img, atol=1e-6)

    def test_contrast_zero_collapses_to_mean(self, img):
        out = adjust_contrast(img, 0.0)
        expected = np.broadcast_to(img.mean(axis=(0, 1)), img.shape)
        np.testing.assert_allclose(out, expected, atol=1e-5)

    def test_brightness_shifts(self, img):
        out = adjust_brightness(img * 0.5, 0.1)
        np.testing.assert_allclose(out, img * 0.5 + 0.1, atol=1e-6)

    def test_noise_statistics(self):
        img = np.full((64, 64, 3), 0.5, dtype=np.float32)
        out = add_gaussian_noise(img, 0.05, rng=0)
        assert abs((out - img).std() - 0.05) < 0.01

    def test_noise_zero_copy(self, img):
        out = add_gaussian_noise(img, 0.0)
        np.testing.assert_array_equal(out, img)
        assert out is not img

    def test_flip_involution(self, img):
        np.testing.assert_array_equal(horizontal_flip(horizontal_flip(img)), img)

    def test_rotate_preserves_shape(self, img):
        assert rotate(img, 10.0).shape == img.shape

    def test_negative_sigma_rejected(self, img):
        with pytest.raises(ValueError, match="sigma"):
            add_gaussian_noise(img, -0.1)

    def test_negative_contrast_rejected(self, img):
        with pytest.raises(ValueError, match="non-negative"):
            adjust_contrast(img, -1.0)


class TestAugmenter:
    def test_output_contract(self):
        img = np.random.default_rng(1).random((16, 16, 3)).astype(np.float32)
        aug = Augmenter()
        out = aug(img, rng=0)
        assert out.shape == img.shape
        assert out.dtype == np.float32
        assert out.min() >= 0.0 and out.max() <= 1.0
        assert out is not img

    def test_stays_on_uint8_grid(self):
        img = np.random.default_rng(2).random((8, 8, 3)).astype(np.float32)
        out = Augmenter()(img, rng=3)
        scaled = out * 255.0
        np.testing.assert_allclose(scaled, np.rint(scaled), atol=1e-4)

    def test_deterministic_given_rng(self):
        img = np.random.default_rng(3).random((8, 8, 3)).astype(np.float32)
        a = Augmenter()(img, rng=11)
        b = Augmenter()(img, rng=11)
        np.testing.assert_array_equal(a, b)

    def test_batch(self):
        imgs = np.random.default_rng(4).random((5, 8, 8, 3)).astype(np.float32)
        out = Augmenter().augment_batch(imgs, rng=0)
        assert out.shape == imgs.shape

    def test_probability_validation(self):
        with pytest.raises(ValueError, match="p_flip"):
            Augmenter(p_flip=1.5)


class TestDatasetAndSplits:
    def test_dataset_validation(self):
        with pytest.raises(ValueError, match="mismatch"):
            Dataset(np.zeros((3, 4, 4, 3)), np.zeros(2, dtype=np.int64))
        with pytest.raises(ValueError, match="N, H, W, 3"):
            Dataset(np.zeros((3, 4, 4, 1)), np.zeros(3, dtype=np.int64))

    def test_subset(self):
        ds = Dataset(np.arange(48, dtype=np.float32).reshape(4, 2, 2, 3) / 48,
                     np.array([0, 1, 2, 3]))
        sub = ds.subset(np.array([1, 3]))
        np.testing.assert_array_equal(sub.labels, [1, 3])

    def test_build_pipeline_balanced(self, tiny_splits):
        counts = tiny_splits.train.class_counts()
        values = np.array(list(counts.values()), dtype=float)
        assert values.min() > 0
        # Balanced within a factor ~2 (augmentation doubles uniformly).
        assert values.max() / values.min() < 2.0

    def test_build_pipeline_unbalanced_keeps_skew(self):
        splits = build_masked_face_dataset(
            raw_size=300, rng=3, balance=False, augment=False
        )
        total = {c: 0 for c in range(4)}
        for ds in (splits.train, splits.val, splits.test):
            for c, n in ds.class_counts().items():
                total[c] += n
        assert total[0] > total[2] and total[0] > total[3]

    def test_augmentation_grows_train_only(self):
        plain = build_masked_face_dataset(raw_size=300, rng=4, augment=False)
        augd = build_masked_face_dataset(
            raw_size=300, rng=4, augment=True, augmented_copies=1
        )
        assert len(augd.train) == 2 * len(plain.train)
        assert len(augd.val) == len(plain.val)
        assert len(augd.test) == len(plain.test)

    def test_split_fractions_validated(self):
        with pytest.raises(ValueError, match="sum to 1"):
            build_masked_face_dataset(
                raw_size=50, rng=0, split_fractions=(0.5, 0.5, 0.5)
            )

    def test_summary_mentions_all_splits(self, tiny_splits):
        s = tiny_splits.summary()
        assert "train" in s and "val" in s and "test" in s

    def test_deterministic_pipeline(self):
        a = build_masked_face_dataset(raw_size=120, rng=9)
        b = build_masked_face_dataset(raw_size=120, rng=9)
        np.testing.assert_array_equal(a.train.images, b.train.images)
        np.testing.assert_array_equal(a.test.labels, b.test.labels)


class TestMinibatches:
    def _dataset(self, n=20):
        return Dataset(
            np.zeros((n, 2, 2, 3), dtype=np.float32),
            np.arange(n, dtype=np.int64) % 4,
        )

    def test_covers_everything(self):
        ds = self._dataset(20)
        seen = sum(len(y) for _, y in iterate_minibatches(ds, 6, rng=0))
        assert seen == 20

    def test_drop_last(self):
        ds = self._dataset(20)
        batches = list(iterate_minibatches(ds, 6, rng=0, drop_last=True))
        assert all(len(y) == 6 for _, y in batches)
        assert len(batches) == 3

    def test_no_shuffle_is_ordered(self):
        ds = self._dataset(8)
        _, y = next(iterate_minibatches(ds, 4, shuffle=False))
        np.testing.assert_array_equal(y, [0, 1, 2, 3])

    def test_bad_batch_size(self):
        with pytest.raises(ValueError, match="positive"):
            next(iterate_minibatches(self._dataset(), 0))
