"""Tests for the markdown experiment-report builder."""

import pytest

from repro.core.reporting import ExperimentReport, ReportSection, build_report


class TestReportPrimitives:
    def test_section_render_level(self):
        s = ReportSection(title="T", body="body text")
        assert s.render().startswith("## T")
        assert s.render(level=3).startswith("### T")

    def test_report_render_order(self):
        r = ExperimentReport(title="R")
        r.add("first", "a").add("second", "b")
        out = r.render()
        assert out.index("first") < out.index("second")
        assert out.startswith("# R")

    def test_save(self, tmp_path):
        r = ExperimentReport(title="R").add("s", "b")
        path = r.save(tmp_path / "sub" / "report.md")
        assert path.exists()
        assert "# R" in path.read_text()


class TestBuildReport:
    def test_empty_classifiers_rejected(self, tiny_splits):
        with pytest.raises(ValueError, match="at least one"):
            build_report({}, tiny_splits)

    def test_full_report_sections(self, trained_tiny_classifier, tiny_splits):
        report = build_report(
            {"n-cnv": trained_tiny_classifier},
            tiny_splits,
            fairness_samples=4,
            fairness_model="n-cnv",
        )
        text = report.render()
        titles = [s.title for s in report.sections]
        assert any("Dataset" in t for t in titles)
        assert any("accuracy" in t.lower() for t in titles)
        assert any("Table II" in t for t in titles)
        assert any("Confusion" in t for t in titles)
        assert any("Deployment" in t for t in titles)
        assert any("Fairness" in t for t in titles)
        assert any("Table I" in t for t in titles)
        # Core regenerated facts appear in the body.
        assert "20,425" in text  # n-CNV Table II LUTs
        assert "0.9394" in text  # paper n-CNV accuracy
        assert "bottleneck" in text
        assert "disparity" in text

    def test_report_without_fairness_model(self, trained_tiny_classifier, tiny_splits):
        report = build_report(
            {"n-cnv": trained_tiny_classifier},
            tiny_splits,
            fairness_model="cnv",  # not in the classifier dict
        )
        titles = [s.title for s in report.sections]
        assert not any("Fairness" in t for t in titles)
