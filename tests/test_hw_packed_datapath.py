"""Tests for the pack-once packed-domain datapath (PR 3).

Locks three properties of the performance rework:

1. the packed fast path (word-gathering SWU, OR-word pooling, packed
   threshold outputs) is bit-exact against the boolean reference path,
   per stage and end to end, for every Table I prototype;
2. the rework did not move the numbers: golden logits captured from the
   pre-change implementation on a fixed seed batch still come out
   bit-identical;
3. the new conveniences (empty batches, chunked/thread-parallel
   prediction, the bench harness) behave and stay result-identical.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.architectures import build_architecture, table1_folding
from repro.core.classifier import BinaryCoP
from repro.hw.bitpack import pack_bits, unpack_bits
from repro.hw.compiler import compile_model
from repro.hw.maxpool_unit import MaxPoolUnit, MaxPoolUnitConfig
from repro.hw.pipeline import simulate_stream
from repro.hw.swu import SlidingWindowUnit, SWUConfig
from repro.testing import randomize_bn_stats

PROTOTYPES = ("cnv", "n-cnv", "u-cnv")

# Logits of the pre-PR3 implementation for the seed batch below
# (rng(1234), 4 images; build_architecture(rng=0) + randomize_bn_stats
# defaults). Captured from the unmodified boolean datapath at the
# commit preceding the packed-path rework.
GOLDEN_LOGITS = {
    "cnv": [[-54, 28, -8, 26], [-8, 34, 22, 16], [0, -2, -30, 0], [8, 30, -18, 4]],
    "n-cnv": [[-8, -6, 2, 30], [-2, -8, -8, -8], [-10, 12, -4, -16], [-4, -6, -2, 6]],
    "u-cnv": [[-20, 6, 4, -4], [-8, -2, 4, -4], [-24, -14, -8, 0], [-6, 4, 2, -10]],
}


@pytest.fixture(scope="module")
def prototype_accelerators():
    out = {}
    for name in PROTOTYPES:
        model = build_architecture(name, rng=0)
        randomize_bn_stats(model)
        model.eval()
        out[name] = compile_model(model, table1_folding(name), name=name)
    return out


@pytest.fixture(scope="module")
def seed_batch():
    return np.random.default_rng(1234).random((4, 32, 32, 3)).astype(np.float32)


class TestPackedVsBoolEquivalence:
    @pytest.mark.parametrize("arch", PROTOTYPES)
    def test_stage_traces_and_logits_identical(
        self, prototype_accelerators, seed_batch, arch
    ):
        """Every per-stage bit map and the logits match the bool path."""
        acc = prototype_accelerators[arch]
        packed_logits, packed_trace = acc.execute(
            seed_batch, return_bits=True, use_packed=True
        )
        bool_logits, bool_trace = acc.execute(
            seed_batch, return_bits=True, use_packed=False
        )
        np.testing.assert_array_equal(packed_logits, bool_logits)
        assert len(packed_trace) == len(bool_trace) == len(acc.stages)
        for stage, p, b in zip(acc.stages, packed_trace, bool_trace):
            assert p.shape == b.shape, stage.name
            np.testing.assert_array_equal(p, b, err_msg=stage.name)

    @pytest.mark.parametrize("arch", PROTOTYPES)
    def test_default_path_is_packed_path(
        self, prototype_accelerators, seed_batch, arch
    ):
        acc = prototype_accelerators[arch]
        np.testing.assert_array_equal(
            acc.execute(seed_batch), acc.execute(seed_batch, use_packed=True)
        )


class TestGoldenLogits:
    @pytest.mark.parametrize("arch", PROTOTYPES)
    def test_logits_unchanged_since_pre_packed_rework(
        self, prototype_accelerators, seed_batch, arch
    ):
        """The perf rework must not move a single logit."""
        np.testing.assert_array_equal(
            prototype_accelerators[arch].execute(seed_batch),
            np.array(GOLDEN_LOGITS[arch], dtype=np.int64),
        )


class TestPackedSWU:
    def _packed_map(self, n=2, hw=(6, 6), channels=64, seed=0):
        rng = np.random.default_rng(seed)
        bits = rng.random((n, *hw, channels)) < 0.5
        return bits, pack_bits(bits)

    def test_matches_boolean_gather(self):
        bits, packed = self._packed_map()
        cfg = SWUConfig(name="swu", in_hw=(6, 6), channels=64)
        swu = SlidingWindowUnit(cfg)
        rows = swu.execute_packed(packed)
        np.testing.assert_array_equal(
            unpack_bits(rows, dtype=bool),
            swu.execute(bits).astype(bool),
        )

    def test_stride_two(self):
        bits, packed = self._packed_map(hw=(8, 8), channels=128, seed=3)
        cfg = SWUConfig(name="swu", in_hw=(8, 8), channels=128, stride=(2, 2))
        swu = SlidingWindowUnit(cfg)
        np.testing.assert_array_equal(
            unpack_bits(swu.execute_packed(packed), dtype=bool),
            swu.execute(bits).astype(bool),
        )

    def test_supports_packed_flag(self):
        aligned = SWUConfig(name="a", in_hw=(6, 6), channels=128)
        narrow = SWUConfig(name="b", in_hw=(6, 6), channels=16)
        assert aligned.supports_packed
        assert not narrow.supports_packed

    def test_rejects_unaligned_channels(self):
        cfg = SWUConfig(name="swu", in_hw=(6, 6), channels=16)
        bits = np.zeros((1, 6, 6, 16), dtype=bool)
        with pytest.raises(ValueError, match="word-aligned"):
            SlidingWindowUnit(cfg).execute_packed(pack_bits(bits))

    def test_rejects_wrong_geometry(self):
        cfg = SWUConfig(name="swu", in_hw=(6, 6), channels=64)
        bits = np.zeros((1, 5, 5, 64), dtype=bool)
        with pytest.raises(ValueError, match="does not"):
            SlidingWindowUnit(cfg).execute_packed(pack_bits(bits))


class TestPackedPooling:
    def test_matches_boolean_or(self):
        rng = np.random.default_rng(5)
        bits = rng.random((3, 4, 4, 64)) < 0.3
        cfg = MaxPoolUnitConfig(name="pool", in_hw=(4, 4), channels=64)
        unit = MaxPoolUnit(cfg)
        pooled = unit.execute_packed(pack_bits(bits))
        np.testing.assert_array_equal(
            unpack_bits(pooled, dtype=bool), unit.execute(bits)
        )

    def test_rejects_wrong_shape(self):
        cfg = MaxPoolUnitConfig(name="pool", in_hw=(4, 4), channels=64)
        flat = pack_bits(np.zeros((2, 64), dtype=bool))
        with pytest.raises(ValueError, match=r"\(n, H, W"):
            MaxPoolUnit(cfg).execute_packed(flat)


class TestEmptyBatch:
    def test_quantize_input_empty(self, prototype_accelerators):
        acc = prototype_accelerators["u-cnv"]
        empty = np.zeros((0, 32, 32, 3), dtype=np.float32)
        assert acc.quantize_input(empty).shape == (0, 32, 32, 3)

    def test_execute_empty(self, prototype_accelerators):
        acc = prototype_accelerators["u-cnv"]
        empty = np.zeros((0, 32, 32, 3), dtype=np.float32)
        logits = acc.execute(empty)
        assert logits.shape == (0, acc.num_classes)
        assert logits.dtype == np.int64
        logits2, trace = acc.execute(empty, return_bits=True)
        assert logits2.shape == (0, acc.num_classes)
        assert trace == []

    def test_predict_empty(self, prototype_accelerators):
        acc = prototype_accelerators["u-cnv"]
        empty = np.zeros((0, 32, 32, 3), dtype=np.float32)
        assert acc.predict(empty).shape == (0,)


class TestParallelPredict:
    def test_accelerator_four_workers_matches_serial(
        self, prototype_accelerators, seed_batch
    ):
        acc = prototype_accelerators["u-cnv"]
        images = np.tile(seed_batch, (3, 1, 1, 1))  # 12 images, >=4 chunks
        serial = acc.predict(images)
        parallel = acc.predict(images, chunk_size=3, num_workers=4)
        np.testing.assert_array_equal(parallel, serial)

    def test_accelerator_auto_chunking(self, prototype_accelerators, seed_batch):
        acc = prototype_accelerators["u-cnv"]
        np.testing.assert_array_equal(
            acc.predict(seed_batch, num_workers=4), acc.predict(seed_batch)
        )

    def test_execute_chunked_matches_whole_batch(
        self, prototype_accelerators, seed_batch
    ):
        acc = prototype_accelerators["u-cnv"]
        np.testing.assert_array_equal(
            acc.execute(seed_batch, chunk_size=1, num_workers=2),
            acc.execute(seed_batch),
        )

    def test_classifier_four_workers_matches_serial(self, seed_batch):
        clf = BinaryCoP("u-cnv", rng=0)
        randomize_bn_stats(clf.model)
        images = np.tile(seed_batch, (3, 1, 1, 1))
        serial = clf.predict(images)
        parallel = clf.predict(images, chunk_size=3, num_workers=4)
        np.testing.assert_array_equal(parallel, serial)

    def test_classifier_restores_training_mode(self, seed_batch):
        clf = BinaryCoP("u-cnv", rng=0)
        randomize_bn_stats(clf.model)
        assert clf.model.training
        clf.predict(np.tile(seed_batch, (2, 1, 1, 1)), chunk_size=2, num_workers=2)
        assert clf.model.training

    def test_invalid_num_workers(self, prototype_accelerators, seed_batch):
        with pytest.raises(ValueError, match="num_workers"):
            prototype_accelerators["u-cnv"].predict(seed_batch, num_workers=0)
        clf = BinaryCoP("u-cnv", rng=0)
        with pytest.raises(ValueError, match="num_workers"):
            clf.predict(seed_batch, num_workers=-1)


class TestSimulateStreamScan:
    def test_matches_reference_recurrence(self, prototype_accelerators):
        """The vectorised scan equals the original cell-by-cell recurrence."""
        for acc in prototype_accelerators.values():
            intervals = [ii for _, ii in acc.stage_intervals()]
            for num_images in (1, 2, 7, 25):
                ref_start = np.zeros((num_images, len(intervals)), dtype=np.int64)
                ref_finish = np.zeros_like(ref_start)
                for i in range(num_images):
                    for l, interval in enumerate(intervals):
                        ready_input = ref_finish[i, l - 1] if l > 0 else 0
                        ready_stage = ref_finish[i - 1, l] if i > 0 else 0
                        ref_start[i, l] = max(ready_input, ready_stage)
                        ref_finish[i, l] = ref_start[i, l] + interval
                sim = simulate_stream(acc, num_images)
                np.testing.assert_array_equal(sim["start"], ref_start)
                np.testing.assert_array_equal(sim["finish"], ref_finish)


class TestBenchCLI:
    def test_smoke_passes_and_validates_existing_doc(self, tmp_path):
        out = tmp_path / "BENCH_throughput.json"
        assert main(["bench", "--smoke", "--out", str(out)]) == 0
        # Smoke mode records nothing.
        assert not out.exists()

    def test_smoke_rejects_malformed_doc(self, tmp_path):
        out = tmp_path / "BENCH_throughput.json"
        out.write_text(json.dumps({"schema": "wrong", "runs": []}))
        assert main(["bench", "--smoke", "--out", str(out)]) == 1

    def test_smoke_run_shape(self):
        from repro.benchmarking import run_bench, validate_run

        run = run_bench(smoke=True)
        validate_run(run)
        assert "pack_bits" in run["kernels"]
        assert "xnor_gemm" in run["kernels"]
        assert run["e2e"]["u-cnv"]["fps"] > 0
