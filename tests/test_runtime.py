"""The runtime engine registry (PR 10): one config, five engines.

Locks the tentpole's contract:

1. :class:`ExecutionConfig` is the single validated value naming an
   inference target — bad enums, non-positive sizes and contradictory
   combinations are rejected at construction;
2. the registry's resolution rules map every config to exactly one
   registered engine, and ``engine_table`` declares each engine's
   capability flags;
3. the legacy ``use_plan=`` / ``mode=`` kwargs survive as deprecation
   shims: exactly one :class:`DeprecationWarning` per call, identical
   results to the equivalent ``execution=ExecutionConfig(...)``;
4. ``ServingConfig.bucket_sizes`` rejects unsorted, duplicate and
   non-positive bucket lists eagerly;
5. ``repro engines`` lists every engine with its flags, in table and
   JSON form.
"""

import json
import warnings

import numpy as np
import pytest

from repro.cli import main
from repro.hw.compiler import FoldingConfig, compile_model
from repro.runtime import (
    EngineCapabilities,
    EngineSpec,
    ExecutionConfig,
    create_engine,
    deprecated_kwargs_config,
    engine_names,
    engine_spec,
    engine_table,
    register_engine,
    resolve_engine_name,
)
from repro.runtime.engines import Engine
from repro.serving import AcceleratorBackend, ServingConfig
from repro.testing import make_tiny_bnn, randomize_bn_stats

ENGINES = ("interpreted", "planned-blas", "planned-packed", "threaded", "process")


def build_tiny_accelerator():
    model = make_tiny_bnn(seed=3)
    randomize_bn_stats(model, seed=4)
    model.eval()
    folding = FoldingConfig(pe=(1, 1, 1, 1), simd=(1, 1, 1, 1))
    return compile_model(model, folding, name="tiny")


@pytest.fixture(scope="module")
def tiny_acc():
    return build_tiny_accelerator()


@pytest.fixture(scope="module")
def images():
    rng = np.random.default_rng(42)
    return rng.random((6, 8, 8, 3)).astype(np.float32)


# -- ExecutionConfig validation --------------------------------------------


class TestExecutionConfig:
    def test_defaults_are_valid_and_frozen(self):
        cfg = ExecutionConfig()
        assert cfg.use_plan and cfg.isolation == "none"
        with pytest.raises(AttributeError):
            cfg.use_plan = False
        assert hash(cfg) == hash(ExecutionConfig())

    @pytest.mark.parametrize("kwargs", [
        {"lowering": "simd"},
        {"isolation": "fiber"},
        {"workers": 0},
        {"workers": -2},
        {"chunk_size": 0},
        {"max_batch": -1},
        {"slots": 0},
        {"trace_sample": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionConfig(**kwargs)

    def test_rejects_contradictory_process_configs(self):
        with pytest.raises(ValueError, match="use_plan=False"):
            ExecutionConfig(isolation="process", use_plan=False)
        with pytest.raises(ValueError, match="packed_datapath=False"):
            ExecutionConfig(isolation="process", packed_datapath=False)

    def test_bucket_sizes_coerced_to_int_tuple(self):
        cfg = ExecutionConfig(bucket_sizes=[2, 4, 8])
        assert cfg.bucket_sizes == (2, 4, 8)
        assert all(isinstance(b, int) for b in cfg.bucket_sizes)

    def test_merged_applies_only_non_none(self):
        cfg = ExecutionConfig(chunk_size=16)
        merged = cfg.merged(workers=4, chunk_size=None)
        assert merged.workers == 4 and merged.chunk_size == 16
        assert cfg.merged() is cfg

    def test_describe_is_json_ready(self):
        desc = ExecutionConfig(bucket_sizes=(2, 4)).describe()
        assert desc["bucket_sizes"] == [2, 4]
        json.dumps(desc)  # must not raise


# -- registry + resolution rules -------------------------------------------


class TestRegistry:
    def test_all_five_engines_registered_in_order(self):
        assert engine_names() == ENGINES

    def test_capability_flags(self):
        table = {row["name"]: row["capabilities"] for row in engine_table()}
        assert all(table[name]["bit_exact"] for name in ENGINES)
        assert table["planned-blas"]["zero_alloc"]
        assert table["planned-packed"]["zero_alloc"]
        assert not table["interpreted"]["zero_alloc"]
        assert table["process"] == {
            "bit_exact": True,
            "zero_alloc": True,
            "zero_copy_ipc": True,
            "process_isolated": True,
        }

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            engine_spec("warp")
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine_name(ExecutionConfig(engine="warp"))

    def test_duplicate_registration_rejected(self):
        spec = engine_spec("interpreted")
        with pytest.raises(ValueError, match="already registered"):
            register_engine(spec)
        assert register_engine(spec, replace=True) is spec

    def test_resolution_rules(self, tiny_acc):
        resolve = resolve_engine_name
        # 1. explicit pin wins over everything else
        assert resolve(
            ExecutionConfig(engine="interpreted", isolation="process")
        ) == "interpreted"
        # 2. process isolation
        assert resolve(ExecutionConfig(isolation="process")) == "process"
        # 3. thread-parallel chunks
        assert resolve(ExecutionConfig(workers=4)) == "threaded"
        assert resolve(ExecutionConfig(workers=1), tiny_acc) != "threaded"
        # 4. the interpreted reference path
        assert resolve(ExecutionConfig(use_plan=False)) == "interpreted"
        assert resolve(ExecutionConfig(packed_datapath=False)) == "interpreted"
        # 6. planned lowering, resolved against the accelerator
        assert resolve(ExecutionConfig(), tiny_acc).startswith("planned-")
        assert resolve(ExecutionConfig(lowering="packed")) == "planned-packed"
        assert resolve(ExecutionConfig(lowering="blas")) == "planned-blas"

    def test_auto_lowering_needs_an_accelerator(self):
        with pytest.raises(ValueError, match="auto"):
            resolve_engine_name(ExecutionConfig())

    def test_create_engine_returns_prepared_protocol_instance(self, tiny_acc):
        engine = create_engine(tiny_acc, ExecutionConfig(use_plan=False))
        assert isinstance(engine, Engine)
        assert engine.name == "interpreted"
        assert engine.capabilities().bit_exact
        assert engine.stats()["engine"] == "interpreted"

    def test_threaded_engine_requires_workers(self, tiny_acc):
        with pytest.raises(ValueError, match="workers"):
            create_engine(tiny_acc, ExecutionConfig(engine="threaded"))

    def test_engine_for_caches_per_config(self, tiny_acc):
        a = tiny_acc.engine_for(ExecutionConfig(use_plan=False))
        b = tiny_acc.engine_for(ExecutionConfig(use_plan=False))
        c = tiny_acc.engine_for(ExecutionConfig(lowering="packed"))
        assert a is b and a is not c
        tiny_acc.close_pool()
        assert tiny_acc.engine_for(ExecutionConfig(use_plan=False)) is not a


# -- deprecation shims ------------------------------------------------------


class TestDeprecationShims:
    def test_mapping_helper_emits_one_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cfg = deprecated_kwargs_config(
                "caller", None, use_plan=False, mode="thread"
            )
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert "caller" in str(deprecations[0].message)
        assert cfg == ExecutionConfig(use_plan=False, isolation="none")

    def test_mapping_helper_validates_mode_before_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with pytest.raises(ValueError, match="mode"):
                deprecated_kwargs_config("caller", None, mode="quantum")
        assert not [w for w in caught if w.category is DeprecationWarning]

    def test_predict_use_plan_shim(self, tiny_acc, images):
        reference = tiny_acc.predict(
            images, execution=ExecutionConfig(use_plan=False)
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = tiny_acc.predict(images, use_plan=False)
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert "use_plan" in str(deprecations[0].message)
        np.testing.assert_array_equal(legacy, reference)

    def test_execute_use_plan_shim(self, tiny_acc, images):
        reference = tiny_acc.run(images, ExecutionConfig())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = tiny_acc.execute(images, use_plan=True)
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        np.testing.assert_array_equal(legacy, reference)

    @pytest.mark.parallel
    def test_predict_mode_process_shim(self, images):
        acc = build_tiny_accelerator()
        try:
            reference = acc.predict(
                images,
                execution=ExecutionConfig(isolation="process", workers=1),
            )
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                legacy = acc.predict(images, mode="process", num_workers=1)
            deprecations = [
                w for w in caught if w.category is DeprecationWarning
            ]
            assert len(deprecations) == 1
            assert "mode='process'" in str(deprecations[0].message)
            np.testing.assert_array_equal(legacy, reference)
        finally:
            acc.close_pool()

    def test_accelerator_backend_use_plan_shim(self, tiny_acc, images):
        reference = AcceleratorBackend(
            tiny_acc, execution=ExecutionConfig(use_plan=False)
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = AcceleratorBackend(tiny_acc, use_plan=False)
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert "AcceleratorBackend" in str(deprecations[0].message)
        np.testing.assert_array_equal(
            legacy.infer(images), reference.infer(images)
        )

    def test_legacy_validation_messages_survive(self, tiny_acc, images):
        with pytest.raises(ValueError, match="num_workers"):
            tiny_acc.predict(images, num_workers=0)
        with pytest.raises(ValueError, match="mode"):
            tiny_acc.predict(images, mode="warp")


# -- ServingConfig bucket validation ---------------------------------------


@pytest.mark.serving
class TestServingBuckets:
    def test_accepts_strictly_increasing_buckets(self):
        cfg = ServingConfig(max_batch_size=8, bucket_sizes=[2, 4, 8])
        assert cfg.bucket_sizes == (2, 4, 8)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            ServingConfig(max_batch_size=8, bucket_sizes=(4, 2, 8))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            ServingConfig(max_batch_size=8, bucket_sizes=(2, 2, 8))

    @pytest.mark.parametrize("bad", [0, -3])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError, match="positive"):
            ServingConfig(max_batch_size=8, bucket_sizes=(bad, 8))

    def test_coverage_check_still_applies(self):
        with pytest.raises(ValueError, match="does not cover"):
            ServingConfig(max_batch_size=16, bucket_sizes=(2, 4))


# -- the `repro engines` CLI verb ------------------------------------------


class TestEnginesCli:
    def test_table_lists_every_engine(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in ENGINES:
            assert name in out

    def test_json_schema(self, capsys):
        assert main(["engines", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["name"] for row in payload["engines"]] == list(ENGINES)
        for row in payload["engines"]:
            assert set(row) == {"name", "capabilities", "summary"}
            assert set(row["capabilities"]) == {
                "bit_exact", "zero_alloc", "zero_copy_ipc", "process_isolated",
            }
        assert payload["default_config"]["use_plan"] is True
        assert len(payload["resolution"]) == 6
