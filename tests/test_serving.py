"""Tests for ``repro.serving``: queue, batcher, workers, server, metrics.

Component tests run against stub backends (deterministic, no model), so
coalescing/backpressure/timeout semantics are exercised without numpy
inference noise; the end-to-end smoke test serves the session-scoped
trained tiny classifier and checks served labels against direct
``predict`` calls.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serving import (
    AcceleratorBackend,
    AdmissionQueue,
    ClassifierBackend,
    InferenceRequest,
    InferenceServer,
    MicroBatcher,
    MetricsRegistry,
    RejectionReason,
    RequestNotCompleted,
    RequestStatus,
    ServingConfig,
    WorkerPool,
    face_tile_pool,
    folding_concurrency,
    run_open_loop,
)
from repro.core.architectures import table1_folding
from repro.hw.compiler import FoldingConfig, compile_model
from repro.testing import grid_images, make_tiny_bnn, randomize_bn_stats
from repro.utils.clock import FakeClock
from repro.utils.profiling import Stopwatch

pytestmark = pytest.mark.serving


def make_request(value: float = 0.5, **kwargs) -> InferenceRequest:
    return InferenceRequest(
        np.full((4, 4, 3), value, dtype=np.float32), **kwargs
    )


class StubBackend:
    """Deterministic backend: label = round(mean * 1000) % 4, optional delay."""

    def __init__(self, name="stub", delay_s=0.0, fail=False, max_concurrency=2):
        self.name = name
        self.delay_s = delay_s
        self.fail = fail
        self.max_concurrency = max_concurrency
        self.calls = 0
        self.batch_sizes = []

    def infer(self, images):
        self.calls += 1
        self.batch_sizes.append(len(images))
        if self.delay_s:
            time.sleep(self.delay_s)
        if self.fail:
            raise RuntimeError("stub backend configured to fail")
        return (np.round(images.mean(axis=(1, 2, 3)) * 1000).astype(int)) % 4


# ---------------------------------------------------------------------------
# admission queue
# ---------------------------------------------------------------------------
class TestAdmissionQueue:
    def test_fifo_within_priority(self):
        q = AdmissionQueue(capacity=8)
        first, second = make_request(0.1), make_request(0.2)
        assert q.offer(first) and q.offer(second)
        assert q.pop(0.1) is first
        assert q.pop(0.1) is second

    def test_priority_order(self):
        q = AdmissionQueue(capacity=8)
        low, high = make_request(priority=0), make_request(priority=5)
        q.offer(low)
        q.offer(high)
        assert q.pop(0.1) is high
        assert q.pop(0.1) is low

    def test_full_queue_rejects_with_reason(self):
        q = AdmissionQueue(capacity=2)
        assert q.offer(make_request())
        assert q.offer(make_request())
        admission = q.offer(make_request())
        assert not admission.accepted
        assert admission.reason is RejectionReason.QUEUE_FULL
        assert q.depth() == 2  # hard bound holds

    def test_overload_sheds_lowest_priority_first(self):
        q = AdmissionQueue(capacity=2)
        low = make_request(priority=0)
        mid = make_request(priority=1)
        q.offer(low)
        q.offer(mid)
        vip = make_request(priority=9)
        admission = q.offer(vip)
        assert admission.accepted
        assert admission.shed is low
        assert low.status is RequestStatus.SHED
        assert "shed" in low.detail
        assert q.depth() == 2

    def test_equal_priority_never_shed(self):
        q = AdmissionQueue(capacity=1)
        q.offer(make_request(priority=3))
        admission = q.offer(make_request(priority=3))
        assert not admission.accepted
        assert admission.reason is RejectionReason.QUEUE_FULL

    def test_shedding_can_be_disabled(self):
        q = AdmissionQueue(capacity=1, allow_shedding=False)
        q.offer(make_request(priority=0))
        assert not q.offer(make_request(priority=9)).accepted

    def test_close_returns_leftovers_and_rejects_new(self):
        q = AdmissionQueue(capacity=4)
        r = make_request()
        q.offer(r)
        leftovers = q.close()
        assert leftovers == [r]
        assert q.offer(make_request()).reason is RejectionReason.SHUTTING_DOWN
        assert q.pop(0.01) is None

    def test_validates_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            AdmissionQueue(capacity=0)


# ---------------------------------------------------------------------------
# micro-batcher
# ---------------------------------------------------------------------------
class TestMicroBatcher:
    def test_size_trigger_returns_immediately(self):
        q = AdmissionQueue(capacity=16)
        batcher = MicroBatcher(q, max_batch_size=4, max_wait_ms=10_000)
        for _ in range(6):
            q.offer(make_request())
        start = time.monotonic()
        batch = batcher.next_batch()
        elapsed = time.monotonic() - start
        assert len(batch) == 4  # size trigger, not the huge wait
        assert elapsed < 1.0
        assert len(batcher.next_batch()) == 2  # deadline trigger drains rest

    def test_deadline_trigger_bounds_lone_request(self):
        q = AdmissionQueue(capacity=16)
        batcher = MicroBatcher(q, max_batch_size=64, max_wait_ms=40.0)
        q.offer(make_request())
        start = time.monotonic()
        batch = batcher.next_batch()
        elapsed = time.monotonic() - start
        assert len(batch) == 1
        assert 0.035 <= elapsed < 0.5  # waited ~max_wait_ms, no longer

    def test_idle_poll_returns_empty(self):
        q = AdmissionQueue(capacity=4)
        batcher = MicroBatcher(q, max_batch_size=4, max_wait_ms=5.0)
        assert batcher.next_batch(poll_timeout_s=0.01) == []

    def test_expired_requests_resolved_not_batched(self):
        # A fake clock makes the expiry deterministic: no real sleep, no
        # flaking when the host stalls between offer and collection.
        clock = FakeClock()
        q = AdmissionQueue(capacity=4)
        timeouts = []
        batcher = MicroBatcher(
            q, max_batch_size=4, max_wait_ms=0.0,
            on_timeout=timeouts.append, clock=clock,
        )
        dead = make_request(timeout_s=0.01, now=clock.monotonic())
        live = make_request(now=clock.monotonic())
        q.offer(dead)
        q.offer(live)
        clock.advance(0.03)  # the deadline expires while queued
        batch = batcher.next_batch()
        assert batch == [live]
        assert dead.status is RequestStatus.TIMED_OUT
        assert timeouts == [dead]

    def test_cancelled_requests_skipped(self):
        q = AdmissionQueue(capacity=4)
        batcher = MicroBatcher(q, max_batch_size=4, max_wait_ms=5.0)
        r = make_request()
        q.offer(r)
        assert r.cancel()
        assert batcher.next_batch() == []
        assert r.status is RequestStatus.CANCELLED

    def test_validates_config(self):
        q = AdmissionQueue(capacity=4)
        with pytest.raises(ValueError, match="max_batch_size"):
            MicroBatcher(q, max_batch_size=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            MicroBatcher(q, max_wait_ms=-1.0)


# ---------------------------------------------------------------------------
# backends
# ---------------------------------------------------------------------------
class TestBackends:
    def test_folding_concurrency_from_table1(self):
        assert folding_concurrency(table1_folding("n-cnv")) == 3  # 9 MVTUs
        assert folding_concurrency(table1_folding("u-cnv")) == 2  # 8 MVTUs
        tiny = FoldingConfig(pe=(1, 1, 1, 1), simd=(1, 1, 1, 1))
        assert folding_concurrency(tiny) == 1

    def test_classifier_backend_derives_concurrency(self, trained_tiny_classifier):
        backend = ClassifierBackend(trained_tiny_classifier)
        assert backend.name == "software:n-cnv"
        assert backend.max_concurrency == 3

    def test_accelerator_backend_matches_direct_predict(self, tiny_bnn):
        folding = FoldingConfig(pe=(1, 1, 1, 1), simd=(1, 1, 1, 1))
        acc = compile_model(tiny_bnn, folding)
        backend = AcceleratorBackend(acc, chunk_size=3)
        images = grid_images(7, hw=8)
        np.testing.assert_array_equal(backend.infer(images), acc.predict(images))
        assert backend.max_concurrency == 1
        assert backend.modelled_batch_seconds(8) > backend.modelled_batch_seconds(1)

    def test_rejects_predictless_classifier(self):
        with pytest.raises(TypeError, match="predict"):
            ClassifierBackend(object())

    def test_backends_with_num_workers_match_serial(
        self, trained_tiny_classifier, tiny_bnn
    ):
        images = grid_images(9, hw=32)
        serial = ClassifierBackend(trained_tiny_classifier, chunk_size=3)
        parallel = ClassifierBackend(
            trained_tiny_classifier, chunk_size=3, num_workers=4
        )
        np.testing.assert_array_equal(parallel.infer(images), serial.infer(images))

        folding = FoldingConfig(pe=(1, 1, 1, 1), simd=(1, 1, 1, 1))
        acc = compile_model(tiny_bnn, folding)
        small = grid_images(9, hw=8)
        serial_acc = AcceleratorBackend(acc, chunk_size=3)
        parallel_acc = AcceleratorBackend(acc, chunk_size=3, num_workers=4)
        np.testing.assert_array_equal(
            parallel_acc.infer(small), serial_acc.infer(small)
        )

    def test_backends_reject_invalid_num_workers(self, trained_tiny_classifier):
        with pytest.raises(ValueError, match="num_workers"):
            ClassifierBackend(trained_tiny_classifier, num_workers=0)


# ---------------------------------------------------------------------------
# worker pool (stub backends)
# ---------------------------------------------------------------------------
def serve_with(backends, config=None, n=8, **submit_kwargs):
    """Spin up a server on stub backends, push n requests, return handles."""
    server = InferenceServer(backends, config or ServingConfig(
        max_batch_size=4, max_wait_ms=2.0, queue_capacity=64, num_workers=2
    ))
    rng = np.random.default_rng(0)
    with server:
        handles = [
            server.submit(
                rng.random((4, 4, 3)).astype(np.float32), **submit_kwargs
            )
            for _ in range(n)
        ]
        statuses = [h.wait(timeout=10.0) for h in handles]
    return server, handles, statuses


class TestWorkerPoolAndServer:
    def test_all_requests_complete(self):
        stub = StubBackend()
        server, handles, statuses = serve_with([stub])
        assert statuses == [RequestStatus.COMPLETED] * len(handles)
        assert all(0 <= h.result() <= 3 for h in handles)
        assert all(h.backend_name == "stub" for h in handles)
        assert server.stats().completed == len(handles)

    def test_backend_fallback_on_failure(self):
        bad = StubBackend(name="bad", fail=True)
        good = StubBackend(name="good")
        server, handles, statuses = serve_with([bad, good])
        assert statuses == [RequestStatus.COMPLETED] * len(handles)
        assert all(h.backend_name == "good" for h in handles)
        assert server.stats().counters["backend_errors"] >= 1
        assert server.stats().counters["fallbacks"] >= 1

    def test_all_backends_failing_resolves_failed(self):
        server, handles, statuses = serve_with(
            [StubBackend(name="bad1", fail=True), StubBackend(name="bad2", fail=True)]
        )
        assert statuses == [RequestStatus.FAILED] * len(handles)
        with pytest.raises(RequestNotCompleted, match="all backends failed"):
            handles[0].result()
        assert server.stats().failed == len(handles)

    def test_per_request_timeout_fires(self):
        # One slow worker thread: the first batch occupies it long enough
        # for the second submission's 30 ms deadline to expire in-queue.
        slow = StubBackend(delay_s=0.2, max_concurrency=1)
        config = ServingConfig(
            max_batch_size=1, max_wait_ms=0.0, queue_capacity=8, num_workers=1
        )
        server = InferenceServer([slow], config)
        img = np.zeros((4, 4, 3), dtype=np.float32)
        with server:
            blocker = server.submit(img)
            doomed = server.submit(img, timeout_s=0.03)
            assert blocker.wait(timeout=5.0) is RequestStatus.COMPLETED
            assert doomed.wait(timeout=5.0) is RequestStatus.TIMED_OUT
        with pytest.raises(RequestNotCompleted, match="deadline"):
            doomed.result()
        assert server.stats().timed_out == 1

    def test_queue_full_rejects_explicitly(self):
        slow = StubBackend(delay_s=0.3, max_concurrency=1)
        config = ServingConfig(
            max_batch_size=1, max_wait_ms=0.0, queue_capacity=2,
            num_workers=1, allow_shedding=False,
        )
        server = InferenceServer([slow], config)
        img = np.zeros((4, 4, 3), dtype=np.float32)
        with server:
            handles = [server.submit(img) for _ in range(8)]
            rejected = [
                h for h in handles if h.status is RequestStatus.REJECTED
            ]
            assert rejected, "overflow submissions must be rejected immediately"
            assert all("queue_full" in h.detail for h in rejected)
            for h in handles:
                h.wait(timeout=10.0)
        stats = server.stats()
        assert stats.rejected == len(rejected)
        assert stats.completed == len(handles) - len(rejected)

    def test_priority_shedding_under_overload(self):
        slow = StubBackend(delay_s=0.3, max_concurrency=1)
        config = ServingConfig(
            max_batch_size=1, max_wait_ms=0.0, queue_capacity=2, num_workers=1
        )
        server = InferenceServer([slow], config)
        img = np.zeros((4, 4, 3), dtype=np.float32)
        with server:
            blocker = server.submit(img)  # occupies the worker
            deadline = time.monotonic() + 5.0
            while (
                blocker.status is RequestStatus.PENDING
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)  # wait until the worker holds the blocker
            low = [server.submit(img, priority=0) for _ in range(2)]
            vip = server.submit(img, priority=9)
            assert vip.status is not RequestStatus.REJECTED
            shed = [h for h in low if h.wait(timeout=10.0) is RequestStatus.SHED]
            assert len(shed) == 1
            assert vip.wait(timeout=10.0) is RequestStatus.COMPLETED
        assert server.stats().shed == 1

    def test_batch_histogram_and_wait_metrics(self):
        stub = StubBackend()
        server, handles, _ = serve_with([stub], n=12)
        stats = server.stats()
        assert sum(size * n for size, n in stats.batch_histogram.items()) == 12
        assert stats.mean_batch_size >= 1.0
        assert "p95" in stats.latency_ms and "p50" in stats.queue_wait_ms
        assert stats.qps > 0
        report = stats.report()
        assert "12 submitted" in report and "batches" in report

    def test_distribution_empty_and_single_windows(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        stats = registry.snapshot()
        # Empty windows render no percentiles at all, not zeros.
        assert stats.latency_ms == {} and stats.queue_wait_ms == {}
        registry.observe_completion(0.004)
        registry.observe_queue_wait(0.002)
        stats = registry.snapshot()
        # One observation: every percentile collapses onto that value.
        for key in ("p50", "p95", "p99", "mean"):
            assert stats.latency_ms[key] == pytest.approx(4.0)
            assert stats.queue_wait_ms[key] == pytest.approx(2.0)

    def test_report_with_zero_completions(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        registry.increment("submitted", 3)
        registry.increment("rejected", 3)
        clock.advance(2.0)
        stats = registry.snapshot(queue_depth=1)
        assert stats.qps == 0.0
        assert stats.uptime_s == pytest.approx(2.0)
        assert stats.mean_batch_size == 0.0
        report = stats.report()
        assert "3 submitted" in report and "0 completed" in report
        # no latency/batch lines without observations
        assert "latency ms" not in report and "batches" not in report

    def test_qps_over_wrapped_window(self):
        # More completions than the window holds: QPS must reflect the
        # surviving (most recent) marks, not the lifetime count.
        clock = FakeClock()
        registry = MetricsRegistry(window=4, clock=clock)
        for _ in range(10):
            clock.advance(1.0)
            registry.observe_completion(0.001)
        stats = registry.snapshot()
        # 4 retained marks spanning 3 seconds -> 1 completion/s.
        assert stats.qps == pytest.approx(1.0)
        assert stats.completed == 10  # the counter, unlike the window, is lifetime

    def test_qps_single_completion_uses_uptime(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        clock.advance(4.0)
        registry.observe_completion(0.001)
        stats = registry.snapshot()
        assert stats.qps == pytest.approx(1.0 / 4.0)

    def test_sync_predict_roundtrip(self):
        stub = StubBackend()
        server = InferenceServer([stub], ServingConfig(
            max_batch_size=8, max_wait_ms=1.0, queue_capacity=32
        ))
        images = np.random.default_rng(3).random((5, 4, 4, 3)).astype(np.float32)
        with server:
            labels = server.predict(images)
        expected = (np.round(images.mean(axis=(1, 2, 3)) * 1000).astype(int)) % 4
        np.testing.assert_array_equal(labels, expected)

    def test_stop_rejects_undrained_requests(self):
        stub = StubBackend(delay_s=0.05, max_concurrency=1)
        server = InferenceServer([stub], ServingConfig(
            max_batch_size=1, max_wait_ms=0.0, queue_capacity=64, num_workers=1
        ))
        img = np.zeros((4, 4, 3), dtype=np.float32)
        server.start()
        handles = [server.submit(img) for _ in range(20)]
        server.stop(drain=False, timeout=5.0)
        statuses = {h.wait(timeout=5.0) for h in handles}
        assert statuses <= {RequestStatus.COMPLETED, RequestStatus.REJECTED}
        assert RequestStatus.REJECTED in statuses  # undrained tail rejected
        # no handle left unresolved
        assert all(h.done for h in handles)

    def test_submit_after_stop_is_rejected(self):
        server, _, _ = serve_with([StubBackend()], n=1)
        handle = server.submit(np.zeros((4, 4, 3), dtype=np.float32))
        assert handle.status is RequestStatus.REJECTED
        assert "shutting_down" in handle.detail

    def test_invalid_image_raises_eagerly(self):
        server = InferenceServer([StubBackend()])
        with pytest.raises(ValueError, match="one \\(H, W, C\\) image"):
            server.submit(np.zeros((4, 4), dtype=np.float32))

    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            ServingConfig(max_batch_size=0)
        with pytest.raises(ValueError, match="queue_capacity"):
            ServingConfig(queue_capacity=-1)
        with pytest.raises(ValueError, match="default_timeout_s"):
            ServingConfig(default_timeout_s=0.0)


# ---------------------------------------------------------------------------
# thread-safety of the shared Stopwatch (serving metrics share one)
# ---------------------------------------------------------------------------
class TestStopwatchThreadSafety:
    def test_concurrent_sections_lose_no_counts(self):
        sw = Stopwatch()
        n_threads, n_iter = 8, 200

        def hammer():
            for _ in range(n_iter):
                with sw.section("shared"):
                    pass
                sw.add("manual", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sw.counts["shared"] == n_threads * n_iter
        assert sw.counts["manual"] == n_threads * n_iter
        assert sw.totals["manual"] == pytest.approx(n_threads * n_iter * 0.001)

    def test_add_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            Stopwatch().add("x", -1.0)

    def test_snapshot_is_a_copy(self):
        sw = Stopwatch()
        sw.add("a", 1.0)
        totals, counts = sw.snapshot()
        totals["a"] = 99.0
        assert sw.totals["a"] == 1.0
        assert counts == {"a": 1}


# ---------------------------------------------------------------------------
# chunked prediction (the serving worker relies on it)
# ---------------------------------------------------------------------------
class TestChunkedPrediction:
    def test_classifier_chunked_matches_unchunked(self, trained_tiny_classifier, tiny_splits):
        images = tiny_splits.test.images[:17]
        np.testing.assert_array_equal(
            trained_tiny_classifier.predict(images, chunk_size=4),
            trained_tiny_classifier.predict(images, chunk_size=1024),
        )

    def test_accelerator_chunked_matches_unchunked(self, tiny_bnn):
        folding = FoldingConfig(pe=(1, 1, 1, 1), simd=(1, 1, 1, 1))
        acc = compile_model(tiny_bnn, folding)
        images = grid_images(9, hw=8)
        np.testing.assert_array_equal(
            acc.predict(images, chunk_size=2), acc.predict(images)
        )
        np.testing.assert_array_equal(
            acc.execute(images, chunk_size=4), acc.execute(images)
        )

    def test_accelerator_chunk_validation(self, tiny_bnn):
        folding = FoldingConfig(pe=(1, 1, 1, 1), simd=(1, 1, 1, 1))
        acc = compile_model(tiny_bnn, folding)
        images = grid_images(3, hw=8)
        with pytest.raises(ValueError, match="chunk_size"):
            acc.execute(images, chunk_size=0)
        with pytest.raises(ValueError, match="return_bits"):
            acc.execute(images, chunk_size=2, return_bits=True)


# ---------------------------------------------------------------------------
# end-to-end smoke with a trained model
# ---------------------------------------------------------------------------
class TestEndToEnd:
    def test_served_labels_match_direct_predict(self, trained_tiny_classifier):
        tiles = face_tile_pool(6, rng=11)
        expected = trained_tiny_classifier.predict(tiles)
        config = ServingConfig(
            max_batch_size=8, max_wait_ms=4.0, queue_capacity=32, num_workers=2
        )
        with InferenceServer.from_classifier(trained_tiny_classifier, config) as server:
            labels = server.predict(tiles, timeout=60.0)
            stats = server.stats()
        np.testing.assert_array_equal(labels, expected)
        assert stats.completed == len(tiles)
        assert stats.rejected == 0

    def test_open_loop_run_is_deterministically_seeded(self, trained_tiny_classifier):
        tiles = face_tile_pool(4, rng=11)
        config = ServingConfig(
            max_batch_size=8, max_wait_ms=2.0, queue_capacity=64, num_workers=2
        )
        offered = []
        for _ in range(2):
            with InferenceServer.from_classifier(trained_tiny_classifier, config) as server:
                result = run_open_loop(
                    server, tiles, rate_hz=150.0, duration_s=0.4, rng=5
                )
            offered.append(result.offered)
            assert result.completed == result.offered
        assert offered[0] == offered[1]  # arrival process is seed-determined

    def test_accelerator_fallback_server_builds(self, trained_tiny_classifier):
        config = ServingConfig(
            max_batch_size=4, max_wait_ms=2.0, queue_capacity=16, num_workers=1
        )
        server = InferenceServer.from_classifier(
            trained_tiny_classifier, config, with_accelerator_fallback=True
        )
        names = [b.name for b in server.backends]
        assert names[0].startswith("software:")
        assert names[1].startswith("accelerator:")
        tiles = face_tile_pool(3, rng=2)
        with server:
            labels = server.predict(tiles, timeout=60.0)
        assert labels.shape == (3,)


# ---------------------------------------------------------------------------
# soak (excluded from tier-1 via the `slow` marker)
# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestSoak:
    def test_sustained_overload_stays_bounded(self):
        """Minutes-scale invariant, compressed: under 4x-saturation open-loop
        traffic the queue depth never exceeds its capacity, every request
        reaches a terminal state, and the server shuts down cleanly."""
        stub = StubBackend(delay_s=0.002, max_concurrency=2)
        config = ServingConfig(
            max_batch_size=8, max_wait_ms=1.0, queue_capacity=16, num_workers=2
        )
        server = InferenceServer([stub], config)
        rng = np.random.default_rng(0)
        images = rng.random((8, 4, 4, 3)).astype(np.float32)
        handles, max_depth = [], 0
        with server:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                handles.append(server.submit(images[len(handles) % 8]))
                max_depth = max(max_depth, server.queue_depth)
                time.sleep(0.0005)  # ~2000 req/s offered
            for h in handles:
                h.wait(timeout=30.0)
        assert max_depth <= config.queue_capacity
        assert all(h.done for h in handles)
        stats = server.stats()
        outcomes = stats.completed + stats.rejected + stats.shed
        assert outcomes == len(handles)
        assert stats.completed > 0
