"""Tests for interpolated mask placement and boundary-sweep analysis."""

import numpy as np
import pytest

from repro.core.error_analysis import (
    BoundarySweep,
    boundary_sweep,
    render_sweep_table,
)
from repro.data.keypoints import sample_keypoints
from repro.data.mask_model import WearClass, place_mask_interpolated


class TestPlaceMaskInterpolated:
    @pytest.mark.parametrize("wear", list(WearClass))
    @pytest.mark.parametrize("t", [0.0, 0.5, 1.0])
    def test_class_geometry_holds_at_all_positions(self, wear, t):
        """The placement stays inside its class band along the sweep."""
        kp = sample_keypoints(3)
        p = place_mask_interpolated(kp, wear, t)
        if wear in (WearClass.CORRECT, WearClass.CHIN_EXPOSED):
            assert p.top_y <= kp.nose_tip[1] + 1e-6
        else:
            assert p.top_y > kp.nose_tip[1]
        if wear == WearClass.CHIN_EXPOSED:
            assert p.bottom_y < kp.chin_tip[1]
        else:
            assert p.bottom_y >= kp.chin_tip[1]
        if wear == WearClass.NOSE_MOUTH_EXPOSED:
            assert p.top_y > kp.mouth_center[1]

    @pytest.mark.parametrize("wear", list(WearClass))
    def test_monotone_toward_boundary(self, wear):
        """The class-defining edge moves monotonically with position."""
        kp = sample_keypoints(5)
        placements = [
            place_mask_interpolated(kp, wear, t) for t in (0.0, 0.3, 0.7, 1.0)
        ]
        if wear == WearClass.CHIN_EXPOSED:
            edges = [p.bottom_y for p in placements]
        else:
            edges = [p.top_y for p in placements]
        diffs = np.diff(edges)
        if wear in (WearClass.NOSE_EXPOSED, WearClass.NOSE_MOUTH_EXPOSED):
            assert (diffs <= 0).all()  # edge rises toward the boundary above
        else:
            assert (diffs >= 0).all()  # edge descends toward the boundary below

    def test_deterministic(self):
        kp = sample_keypoints(7)
        a = place_mask_interpolated(kp, WearClass.CORRECT, 0.4)
        b = place_mask_interpolated(kp, WearClass.CORRECT, 0.4)
        assert a == b

    def test_position_validation(self):
        kp = sample_keypoints(0)
        with pytest.raises(ValueError, match="position"):
            place_mask_interpolated(kp, WearClass.CORRECT, 1.5)


class TestBoundarySweep:
    def test_contract(self, trained_tiny_classifier):
        sweep = boundary_sweep(
            trained_tiny_classifier,
            WearClass.NOSE_EXPOSED,
            positions=(0.0, 1.0),
            subjects_per_point=4,
            rng=0,
        )
        assert sweep.positions == [0.0, 1.0]
        assert all(0.0 <= a <= 1.0 for a in sweep.accuracy)
        assert sweep.subjects_per_point == 4

    def test_same_subjects_across_positions(self, trained_tiny_classifier):
        """The sweep is paired: re-running yields identical curves."""
        kwargs = dict(
            positions=(0.0, 0.5), subjects_per_point=3, rng=9
        )
        a = boundary_sweep(trained_tiny_classifier, WearClass.CORRECT, **kwargs)
        b = boundary_sweep(trained_tiny_classifier, WearClass.CORRECT, **kwargs)
        assert a.accuracy == b.accuracy

    def test_sharpness_helpers(self):
        sweep = BoundarySweep(
            wear_class=WearClass.CORRECT,
            positions=[0.0, 1.0],
            accuracy=[0.9, 0.6],
            subjects_per_point=8,
        )
        assert sweep.interior_accuracy() == 0.9
        assert sweep.boundary_accuracy() == 0.6
        assert sweep.sharpness() == pytest.approx(0.3)

    def test_render_table(self):
        sweeps = [
            BoundarySweep(WearClass.CORRECT, [0.0, 1.0], [1.0, 0.5], 4),
            BoundarySweep(WearClass.NOSE_EXPOSED, [0.0, 1.0], [0.9, 0.7], 4),
        ]
        out = render_sweep_table(sweeps)
        assert "t=0.00" in out and "drop" in out and "Correct" in out

    def test_render_table_grid_mismatch(self):
        sweeps = [
            BoundarySweep(WearClass.CORRECT, [0.0, 1.0], [1.0, 0.5], 4),
            BoundarySweep(WearClass.NOSE_EXPOSED, [0.0, 0.5], [0.9, 0.7], 4),
        ]
        with pytest.raises(ValueError, match="position grid"):
            render_sweep_table(sweeps)
        with pytest.raises(ValueError, match="at least one"):
            render_sweep_table([])

    def test_validation(self, trained_tiny_classifier):
        with pytest.raises(TypeError, match="predict"):
            boundary_sweep(object(), WearClass.CORRECT)
        with pytest.raises(ValueError, match="subjects_per_point"):
            boundary_sweep(
                trained_tiny_classifier, WearClass.CORRECT, subjects_per_point=0
            )
        with pytest.raises(ValueError, match="positions"):
            boundary_sweep(
                trained_tiny_classifier, WearClass.CORRECT, positions=(2.0,)
            )
