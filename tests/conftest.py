"""Shared fixtures for the test suite.

Expensive artifacts (datasets, trained models) are session-scoped and
deliberately tiny: the goal of the fixtures is to exercise every code
path, not to reach paper accuracy (the benchmarks do that).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classifier import BinaryCoP, TrainingBudget
from repro.data.dataset import DatasetSplits, build_masked_face_dataset
from repro.data.generator import FaceSampleGenerator
from repro.nn.sequential import Sequential
from repro.testing import make_tiny_bnn, randomize_bn_stats


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_splits() -> DatasetSplits:
    """A small but complete run of the §IV-A data pipeline."""
    return build_masked_face_dataset(raw_size=1500, rng=7, augmented_copies=1)


@pytest.fixture(scope="session")
def sample_generator() -> FaceSampleGenerator:
    return FaceSampleGenerator(image_size=32)






@pytest.fixture()
def tiny_bnn() -> Sequential:
    model = make_tiny_bnn()
    randomize_bn_stats(model)
    model.eval()
    return model


@pytest.fixture(scope="session")
def trained_tiny_classifier(tiny_splits) -> BinaryCoP:
    """An n-CNV trained for a handful of epochs — enough for every
    downstream API (deploy, Grad-CAM, evaluation) to behave sensibly."""
    clf = BinaryCoP("n-cnv", rng=0)
    clf.fit(
        tiny_splits,
        TrainingBudget(epochs=10, early_stopping_patience=None),
    )
    return clf


@pytest.fixture(scope="session")
def grid_images(rng) -> np.ndarray:
    """Images on the exact uint8 grid (the deployment input domain)."""
    q = rng.integers(0, 256, size=(6, 32, 32, 3))
    return (q / 255.0).astype(np.float32)
