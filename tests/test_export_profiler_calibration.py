"""Tests for deployment-package export, dataset export, the layer
profiler and the resource-calibration provenance."""

import numpy as np
import pytest

from repro.data.export import export_ppm_samples, load_splits, save_splits
from repro.hw.calibration import (
    TABLE2_OBSERVATIONS,
    DesignObservation,
    solve_lut_coefficients,
)
from repro.hw.compiler import FoldingConfig, compile_model
from repro.hw.export import export_accelerator, load_accelerator
from repro.nn.profiler import LayerProfiler
from repro.testing import grid_images, make_tiny_bnn, randomize_bn_stats


@pytest.fixture(scope="module")
def compiled_tiny():
    m = make_tiny_bnn()
    randomize_bn_stats(m)
    m.eval()
    return m, compile_model(m, FoldingConfig(pe=(2, 4, 1, 2), simd=(3, 8, 2, 4)))


class TestAcceleratorExport:
    def test_roundtrip_bit_exact(self, compiled_tiny, tmp_path):
        model, acc = compiled_tiny
        path = export_accelerator(acc, tmp_path / "pkg")
        restored = load_accelerator(path)
        x = grid_images(6, hw=8, seed=11)
        np.testing.assert_array_equal(restored.execute(x), acc.execute(x))
        assert restored.name == acc.name
        assert restored.folding() == acc.folding()

    def test_timing_preserved(self, compiled_tiny, tmp_path):
        _, acc = compiled_tiny
        restored = load_accelerator(export_accelerator(acc, tmp_path / "p2"))
        assert restored.stage_intervals() == acc.stage_intervals()

    def test_rejects_foreign_npz(self, tmp_path):
        from repro.utils.serialization import save_arrays

        path = save_arrays(tmp_path / "other", {"x": np.zeros(1)}, {"kind": "model"})
        with pytest.raises(ValueError, match="not an accelerator package"):
            load_accelerator(path)

    def test_package_is_compact(self, compiled_tiny, tmp_path):
        """Bit-packed storage beats a float32 weight dump even with all
        the metadata and thresholds included (at toy scale metadata
        dominates, so compare against the float32 baseline)."""
        _, acc = compiled_tiny
        path = export_accelerator(acc, tmp_path / "p3")
        float32_weight_bytes = acc.weight_bits() * 4
        assert path.stat().st_size < float32_weight_bytes


class TestDatasetExport:
    def test_splits_roundtrip(self, tiny_splits, tmp_path):
        path = save_splits(tiny_splits, tmp_path / "ds")
        restored = load_splits(path)
        np.testing.assert_array_equal(restored.train.images, tiny_splits.train.images)
        np.testing.assert_array_equal(restored.test.labels, tiny_splits.test.labels)

    def test_kind_guard(self, tmp_path):
        from repro.utils.serialization import save_arrays

        path = save_arrays(tmp_path / "zzz", {"a": np.zeros(1)}, {})
        with pytest.raises(ValueError, match="not a dataset snapshot"):
            load_splits(path)

    def test_ppm_export(self, tiny_splits, tmp_path):
        written = export_ppm_samples(tiny_splits.test, tmp_path / "imgs", limit=3)
        assert len(written) == 3
        header = written[0].read_bytes()[:20]
        assert header.startswith(b"P6 32 32 255")

    def test_ppm_index_guard(self, tiny_splits, tmp_path):
        with pytest.raises(IndexError, match="out of range"):
            export_ppm_samples(tiny_splits.test, tmp_path, indices=[10**6])


class TestLayerProfiler:
    def test_forward_profile(self):
        model = make_tiny_bnn()
        randomize_bn_stats(model)
        model.eval()
        profiler = LayerProfiler(model)
        x = grid_images(4, hw=8)
        result = profiler.profile(x, repeats=2)
        assert len(result.timings) == len(model.layer_names)
        assert result.total_seconds() > 0
        assert all(t.calls == 2 for t in result.timings)
        assert result.bottleneck().total_s > 0

    def test_macs_accounting(self):
        model = make_tiny_bnn()
        profiler = LayerProfiler(model)
        x = grid_images(2, hw=8)
        result = profiler.profile(x, repeats=1)
        by_name = {t.name: t for t in result.timings}
        assert by_name["conv1"].macs == 6 * 6 * 8 * 3 * 3 * 3
        assert by_name["fc2"].macs == 16 * 4
        assert by_name["pool1"].macs == 0

    def test_backward_profile(self):
        model = make_tiny_bnn()
        profiler = LayerProfiler(model)
        result = profiler.profile(grid_images(4, hw=8), repeats=1, include_backward=True)
        assert any(t.backward_s > 0 for t in result.timings)
        # Gradients cleared, mode restored.
        assert all(p.grad is None for p in model.parameters())

    def test_render(self):
        model = make_tiny_bnn()
        randomize_bn_stats(model)
        model.eval()
        out = LayerProfiler(model).profile(grid_images(2, hw=8)).render()
        assert "layer profile" in out and "share" in out

    def test_requires_input_shape(self):
        from repro.nn.layers import ReLU
        from repro.nn.sequential import Sequential

        with pytest.raises(ValueError, match="input_shape"):
            LayerProfiler(Sequential([ReLU()]))

    def test_repeats_validation(self):
        profiler = LayerProfiler(make_tiny_bnn())
        with pytest.raises(ValueError, match="repeats"):
            profiler.profile(grid_images(1, hw=8), repeats=0)


class TestCalibration:
    def test_reproduces_resource_constants(self):
        """The solved coefficients are the ones baked into resources.py."""
        from repro.hw import resources

        solved = solve_lut_coefficients()
        assert solved["per_lane"] == pytest.approx(resources.LUT_PER_LANE, abs=1e-6)
        assert solved["per_pe"] == pytest.approx(resources.LUT_PER_PE, abs=1e-6)
        assert solved["per_mvtu"] == pytest.approx(resources.LUT_PER_MVTU, abs=1e-6)
        assert solved["base"] == resources.LUT_BASE
        assert solved["max_abs_error"] < 1e-6  # exact solve on 3 points

    def test_observation_sums(self):
        cnv = TABLE2_OBSERVATIONS[0]
        assert cnv.lane_sum == sum(
            p * s for p, s in zip(cnv.folding.pe, cnv.folding.simd)
        )
        assert cnv.pe_sum == sum(cnv.folding.pe)
        assert cnv.n_mvtus == 9

    def test_least_squares_with_extra_points(self):
        extra = TABLE2_OBSERVATIONS + (
            DesignObservation(
                name="fake",
                folding=FoldingConfig(pe=(2, 2), simd=(4, 4)),
                lut=3000
                + 4.56664629 * 16
                + 49.73969811 * 4
                + 906.47412331 * 2,
            ),
        )
        solved = solve_lut_coefficients(extra)
        assert solved["max_abs_error"] < 1e-5

    def test_underdetermined_rejected(self):
        with pytest.raises(ValueError, match="at least 3"):
            solve_lut_coefficients(TABLE2_OBSERVATIONS[:2])
