"""Tests for fault injection (weight SEUs, threshold upsets)."""

import numpy as np
import pytest

from repro.hw.compiler import FoldingConfig, compile_model
from repro.hw.faults import (
    FaultReport,
    accuracy_under_faults,
    flip_weight_bits,
    perturb_thresholds,
)
from repro.hw.bitpack import unpack_bits
from repro.testing import grid_images, make_tiny_bnn, randomize_bn_stats


@pytest.fixture(scope="module")
def acc():
    m = make_tiny_bnn()
    randomize_bn_stats(m)
    m.eval()
    return compile_model(m, FoldingConfig(pe=(1, 1, 1, 1), simd=(1, 1, 1, 1)))


@pytest.fixture(scope="module")
def images():
    return grid_images(16, hw=8, seed=3)


class TestFlipWeightBits:
    def test_zero_rate_is_identity(self, acc, images):
        faulty = flip_weight_bits(acc, 0.0, rng=0)
        np.testing.assert_array_equal(faulty.execute(images), acc.execute(images))

    def test_original_untouched(self, acc, images):
        before = acc.execute(images)
        flip_weight_bits(acc, 0.5, rng=0)
        np.testing.assert_array_equal(acc.execute(images), before)

    def test_full_rate_negates_all_weights(self, acc):
        faulty = flip_weight_bits(acc, 1.0, rng=0)
        for orig, flipped in zip(acc.stages, faulty.stages):
            if orig.mvtu.config.input_bits == 1:
                w0 = unpack_bits(orig.mvtu._packed_weights)
                w1 = unpack_bits(flipped.mvtu._packed_weights)
            else:
                w0 = orig.mvtu._int_weights
                w1 = flipped.mvtu._int_weights
            np.testing.assert_array_equal(w1, -w0)

    def test_flip_fraction_matches_rate(self, acc):
        faulty = flip_weight_bits(acc, 0.25, rng=1)
        total = 0
        flipped = 0
        for orig, f in zip(acc.stages, faulty.stages):
            if orig.mvtu.config.input_bits == 1:
                w0 = unpack_bits(orig.mvtu._packed_weights)
                w1 = unpack_bits(f.mvtu._packed_weights)
            else:
                w0, w1 = orig.mvtu._int_weights, f.mvtu._int_weights
            total += w0.size
            flipped += int((w0 != w1).sum())
        assert flipped / total == pytest.approx(0.25, abs=0.04)

    def test_rate_validation(self, acc):
        with pytest.raises(ValueError, match="rate"):
            flip_weight_bits(acc, 1.5)


class TestPerturbThresholds:
    def test_zero_rate_is_identity(self, acc, images):
        faulty = perturb_thresholds(acc, 0.0, rng=0)
        np.testing.assert_array_equal(faulty.execute(images), acc.execute(images))

    def test_logits_stage_untouched(self, acc):
        faulty = perturb_thresholds(acc, 1.0, rng=0)
        assert faulty.stages[-1].mvtu.thresholds is None

    def test_thresholds_move_by_magnitude(self, acc):
        faulty = perturb_thresholds(acc, 1.0, magnitude=2, rng=0)
        for orig, f in zip(acc.stages[:-1], faulty.stages[:-1]):
            d = np.abs(
                f.mvtu.thresholds.thresholds - orig.mvtu.thresholds.thresholds
            )
            # Every channel moved by <= 2 (clamping can shrink the step).
            assert d.max() <= 2
            assert d.sum() > 0

    def test_validation(self, acc):
        with pytest.raises(ValueError, match="rate"):
            perturb_thresholds(acc, -0.1)
        with pytest.raises(ValueError, match="magnitude"):
            perturb_thresholds(acc, 0.1, magnitude=0)


class TestAccuracySweep:
    def test_report_contract(self, acc, images):
        labels = acc.predict(images)  # self-labels: baseline accuracy 1.0
        report = accuracy_under_faults(
            acc, images, labels, rates=(0.0, 0.01, 0.3), rng=0
        )
        assert report.baseline_accuracy == 1.0
        assert report.accuracies[0] == 1.0  # rate 0
        assert len(report.accuracies) == 3
        assert "fault sweep" in report.render()

    def test_monotone_degradation_tendency(self, acc, images):
        """Heavy fault rates must hurt more than light ones (on average)."""
        labels = acc.predict(images)
        report = accuracy_under_faults(
            acc, images, labels, rates=(1e-3, 0.4), trials=3, rng=0
        )
        assert report.accuracies[0] >= report.accuracies[1]

    def test_threshold_kind(self, acc, images):
        labels = acc.predict(images)
        report = accuracy_under_faults(
            acc, images, labels, rates=(0.0, 1.0), fault_kind="threshold", rng=0
        )
        assert report.fault_kind == "threshold"
        assert report.accuracies[0] == 1.0

    def test_degradation_helper(self):
        report = FaultReport(
            fault_kind="weight",
            rates=[0.1],
            accuracies=[0.7],
            baseline_accuracy=0.9,
        )
        assert report.degradation() == [pytest.approx(0.2)]
        assert report.worst() == 0.7

    def test_validation(self, acc, images):
        labels = acc.predict(images)
        with pytest.raises(ValueError, match="fault_kind"):
            accuracy_under_faults(acc, images, labels, fault_kind="cosmic")
        with pytest.raises(ValueError, match="trials"):
            accuracy_under_faults(acc, images, labels, trials=0)
