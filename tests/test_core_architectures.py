"""Tests for the Table I architectures."""

import numpy as np
import pytest

from repro.core.architectures import (
    ARCHITECTURES,
    GRADCAM_LAYER,
    architecture_summary,
    build_architecture,
    build_fp32_cnv,
    table1_folding,
)
from repro.hw.compiler import compile_model
from repro.nn.layers import BinaryConv2D, BinaryDense, Conv2D, Dense
from repro.testing import randomize_bn_stats


class TestTable1Shapes:
    def test_cnv_layer_dims(self):
        """Table I column 1: CNV channel progression."""
        summary = architecture_summary("cnv")
        dims = [(c_in, c_out) for _, c_in, c_out in summary["layers"]]
        assert dims == [
            (3, 64), (64, 64), (64, 128), (128, 128), (128, 256), (256, 256),
            (256, 512), (512, 512), (512, 4),
        ]

    def test_ncnv_layer_dims(self):
        summary = architecture_summary("n-cnv")
        dims = [(c_in, c_out) for _, c_in, c_out in summary["layers"]]
        assert dims == [
            (3, 16), (16, 16), (16, 32), (32, 32), (32, 64), (64, 64),
            (64, 128), (128, 128), (128, 4),
        ]

    def test_ucnv_layer_dims(self):
        """µ-CNV drops conv3_2; FC1 fan-in grows to 3*3*64 = 576."""
        summary = architecture_summary("u-cnv")
        dims = [(c_in, c_out) for _, c_in, c_out in summary["layers"]]
        assert dims == [
            (3, 16), (16, 16), (16, 32), (32, 32), (32, 64),
            (576, 128), (128, 4),
        ]
        assert summary["fc_fan_in"] == 576

    def test_ucnv_memory_larger_than_ncnv(self):
        """The §IV-B trade-off: fewer layers but more weight bits."""
        assert (
            architecture_summary("u-cnv")["weight_bits"]
            > architecture_summary("n-cnv")["weight_bits"]
        )

    def test_model_shapes_match_summary(self):
        for name in ("cnv", "n-cnv", "u-cnv"):
            model = build_architecture(name)
            shapes = dict(model.shapes())
            assert shapes[model.layer_names[-1]] == (4,)

    def test_cnv_spatial_progression(self):
        shapes = dict(build_architecture("cnv").shapes())
        assert shapes["conv1_1"] == (30, 30, 64)
        assert shapes["pool1"] == (14, 14, 64)
        assert shapes["conv2_2"] == (10, 10, 128)
        assert shapes["pool2"] == (5, 5, 128)
        assert shapes["conv3_2"] == (1, 1, 256)
        assert shapes["flatten"] == (256,)

    def test_gradcam_layer_exists_everywhere(self):
        for name in ARCHITECTURES:
            model = build_architecture(name)
            assert GRADCAM_LAYER in model.layer_names


class TestFolding:
    @pytest.mark.parametrize("name", ["cnv", "n-cnv", "u-cnv"])
    def test_table1_folding_is_legal(self, name):
        """PE divides rows and SIMD divides cols for every MVTU —
        verified by actually compiling with Table I dimensioning."""
        model = build_architecture(name, rng=0)
        randomize_bn_stats(model)
        model.eval()
        acc = compile_model(model, table1_folding(name))
        assert acc.folding() == table1_folding(name)

    def test_cnv_folding_values(self):
        f = table1_folding("cnv")
        assert f.pe == (16, 32, 16, 16, 4, 1, 1, 1, 4)
        assert f.simd == (3, 32, 32, 32, 32, 32, 4, 8, 1)

    def test_unknown_architecture(self):
        with pytest.raises(ValueError, match="unknown"):
            build_architecture("resnet")
        with pytest.raises(ValueError, match="folding"):
            table1_folding("fp32-cnv")
        with pytest.raises(ValueError, match="unknown"):
            architecture_summary("vgg")


class TestLayerKinds:
    def test_bnn_uses_binary_layers(self):
        model = build_architecture("cnv")
        convs = [l for l in model.layers if isinstance(l, Conv2D)]
        denses = [l for l in model.layers if isinstance(l, Dense)]
        assert all(isinstance(l, BinaryConv2D) for l in convs)
        assert all(isinstance(l, BinaryDense) for l in denses)

    def test_fp32_uses_float_layers(self):
        model = build_fp32_cnv()
        convs = [l for l in model.layers if isinstance(l, Conv2D)]
        assert convs and not any(isinstance(l, BinaryConv2D) for l in convs)

    def test_fp32_width_scale(self):
        model = build_fp32_cnv(width_scale=0.25)
        assert dict(model.shapes())["conv1_1"] == (30, 30, 16)
        # Output classes unaffected by scaling.
        assert dict(model.shapes())[model.layer_names[-1]] == (4,)

    def test_parameter_counts(self):
        """CNV ≈ 1.54M binary weights (~188 KiB packed)."""
        cnv_bits = architecture_summary("cnv")["weight_bits"]
        assert cnv_bits == 1_539_776
        assert architecture_summary("n-cnv")["weight_bits"] == 96_944
        assert architecture_summary("u-cnv")["weight_bits"] == 109_232

    def test_forward_shapes(self):
        x = np.zeros((2, 32, 32, 3), dtype=np.float32)
        for name in ARCHITECTURES:
            model = build_architecture(name)
            if any(hasattr(l, "running_mean") for l in model.layers):
                randomize_bn_stats(model)
            model.eval()
            assert model.forward(x).shape == (2, 4), name

    def test_deterministic_init(self):
        a = build_architecture("n-cnv", rng=3)
        b = build_architecture("n-cnv", rng=3)
        np.testing.assert_array_equal(
            a["conv1_1"].weight.data, b["conv1_1"].weight.data
        )
