"""On-chip activation buffering — the §III-B memory-transfer claim.

"The pipelined architecture offers several advantages on embedded
devices, most importantly, the reduction in on-chip to off-chip memory
transfers of the BNN parameters and intermediate activations. This is
mainly feasible due to the binary format, which results in highly
compact neural networks that can fit on the on-chip memory units."

This bench quantifies the claim for all three prototypes: total on-chip
state (weights + line buffers + FIFOs) against the devices' BRAM budget,
and against the off-chip traffic a non-streaming design would need.
"""

import pytest

from repro.hw.buffers import plan_buffers
from repro.hw.devices import Z7020
from repro.utils.tables import render_table


@pytest.fixture(scope="module")
def buffer_plans(all_bnn):
    out = {}
    for name, clf in all_bnn.items():
        acc = clf.deploy()
        out[name] = (acc, plan_buffers(acc))
    return out


def test_regenerate_buffer_table(buffer_plans, capsys):
    rows = []
    for name, (acc, plan) in buffer_plans.items():
        weight_kib = acc.weight_bits() / 8192
        act_kib = plan.total_bits() / 8192
        total_kib = weight_kib + act_kib
        z7020_kib = Z7020.bram36 * 36 * 1024 / 8192
        rows.append(
            [
                name,
                f"{weight_kib:.1f}",
                f"{act_kib:.2f}",
                f"{total_kib:.1f}",
                f"{total_kib / z7020_kib:.1%}",
            ]
        )
    with capsys.disabled():
        print()
        print(
            render_table(
                [
                    "config",
                    "weights KiB",
                    "act buffers KiB",
                    "total on-chip KiB",
                    "of Z7020 BRAM",
                ],
                rows,
                title="On-chip state (SS III-B: everything stays on chip)",
            )
        )
        print()
        for name, (_, plan) in buffer_plans.items():
            print(f"-- {name} --")
            print(plan.report())
            print()


def test_everything_fits_on_chip(buffer_plans):
    """The §III-B feasibility claim: weights + activations fit Z7020 BRAM."""
    budget_bits = Z7020.bram36 * 36 * 1024
    for name, (acc, plan) in buffer_plans.items():
        total = acc.weight_bits() + plan.total_bits()
        assert total < budget_bits, name


def test_activation_state_is_small(buffer_plans):
    """Streaming needs only line buffers + FIFOs — a tiny fraction of
    what a store-the-whole-feature-map design would buffer."""
    for name, (acc, plan) in buffer_plans.items():
        # Full feature-map of conv1_1's output alone (binary): 30*30*C.
        conv1 = acc.stages[0]
        full_map_bits = (
            conv1.swu.config.out_hw[0]
            * conv1.swu.config.out_hw[1]
            * conv1.mvtu.config.rows
        )
        line_bits = plan.buffers[1].line_buffer_bits  # conv1_2's line buffer
        assert line_bits < full_map_bits / 3, name


def test_off_chip_traffic_avoided(buffer_plans, capsys):
    """Off-chip traffic per image if activations spilled: sum of all
    inter-stage maps — the number the streaming design reduces to zero."""
    lines = []
    for name, (acc, plan) in buffer_plans.items():
        spill_bits = 0
        for stage in acc.stages[:-1]:
            if stage.kind == "conv":
                oh, ow = (
                    stage.pool.config.out_hw
                    if stage.pool is not None
                    else stage.swu.config.out_hw
                )
                spill_bits += oh * ow * stage.mvtu.config.rows
            else:
                spill_bits += stage.mvtu.config.rows
        lines.append(
            f"{name}: {2 * spill_bits / 8192:.1f} KiB/image off-chip traffic "
            f"avoided (write+read of every intermediate map)"
        )
        assert spill_bits > plan.total_bits() / 4  # streaming is the win
    with capsys.disabled():
        print()
        for line in lines:
            print(line)


def test_buffer_planning_speed(benchmark, all_bnn):
    acc = all_bnn["cnv"].deploy()
    plan = benchmark(plan_buffers, acc)
    assert plan.total_bits() > 0
