"""End-to-end accelerator throughput (the PR 3 perf-regression harness).

Runs the same measurement ``repro bench`` records into
``BENCH_throughput.json``: bit-pack kernel latencies, XNOR GEMM at
Table I layer shapes, per-stage wall time and end-to-end FPS for each
prototype — plus a packed-vs-boolean datapath comparison that prints the
speedup the pack-once fast path buys.

Marked ``perf`` so tier-1 never pays for wall-clock measurement; run
with ``pytest benchmarks/bench_e2e.py -m perf`` (or just use the CLI:
``PYTHONPATH=src python -m repro.cli bench``).
"""

import time

import numpy as np
import pytest

from repro.benchmarking import BENCH_ARCHS, render_run, run_bench
from repro.core.architectures import build_architecture, table1_folding
from repro.hw.compiler import compile_model
from repro.testing import randomize_bn_stats

pytestmark = pytest.mark.perf


def test_e2e_throughput(capsys):
    """One full harness run, rendered the way ``repro bench`` prints it."""
    run = run_bench(archs=BENCH_ARCHS, images=16, repeats=2)
    with capsys.disabled():
        print()
        print(render_run(run))
    for arch in BENCH_ARCHS:
        assert run["e2e"][arch]["fps"] > 0


def test_packed_vs_bool_datapath(capsys):
    """The pack-once fast path against the boolean reference, CNV."""
    model = build_architecture("cnv", rng=0)
    randomize_bn_stats(model)
    model.eval()
    acc = compile_model(model, table1_folding("cnv"))
    images = np.random.default_rng(0).random((16, 32, 32, 3)).astype(np.float32)

    def timed(**kwargs):
        best = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            logits = acc.execute(images, **kwargs)
            best = min(best, time.perf_counter() - t0)
        return logits, best

    packed_logits, packed_s = timed(use_packed=True)
    bool_logits, bool_s = timed(use_packed=False)
    np.testing.assert_array_equal(packed_logits, bool_logits)
    with capsys.disabled():
        print()
        print(
            f"cnv 16-image batch: packed {16 / packed_s:.1f} FPS vs "
            f"bool {16 / bool_s:.1f} FPS (x{bool_s / packed_s:.2f})"
        )
