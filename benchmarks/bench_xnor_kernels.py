"""Ablation 6 — bit-packed XNOR+popcount GEMM vs float GEMM.

The paper's efficiency argument rests on replacing float MACs with XNOR
and popcount on 1-bit operands: ×32 less weight storage and trivial
logic per MAC — the reason the whole network fits in on-chip memory and
one FPGA LUT implements a lane. This bench measures what *does* carry
over to the software simulator (the exact ×32 storage reduction, and the
packed kernel's absolute throughput) and records the honest caveat: on a
CPU, vendor BLAS float GEMM beats our numpy-level XNOR kernel at these
sizes, because the 1-bit arithmetic advantage only materialises on
hardware without wide float multipliers. Both timings are reported side
by side so the trade-off is visible rather than implied.
"""

import numpy as np
import pytest

from repro.hw.bitpack import WORD_BITS, PackedBits, pack_bits
from repro.hw.xnor_kernels import bipolar_from_popcount, xnor_matmul_popcount
from repro.nn.binary_ops import sign

# (name, vectors, fan_in, neurons): Table I CNV layer shapes — the wide
# first conv (many vectors), the bottleneck conv2_2, and the first FC.
SHAPES = [
    ("cnv-conv1_2", 900, 576, 64),
    ("cnv-conv2_2", 144, 1152, 128),
    ("cnv-fc1", 64, 256, 512),
]


def _operands(vectors, fan_in, neurons, seed=0):
    rng = np.random.default_rng(seed)
    a = sign(rng.standard_normal((vectors, fan_in))).astype(np.float32)
    w = sign(rng.standard_normal((neurons, fan_in))).astype(np.float32)
    return a, w


@pytest.mark.parametrize("name,vectors,fan_in,neurons", SHAPES)
def test_float_gemm(benchmark, name, vectors, fan_in, neurons):
    a, w = _operands(vectors, fan_in, neurons)
    out = benchmark(lambda: a @ w.T)
    assert out.shape == (vectors, neurons)


@pytest.mark.parametrize("name,vectors,fan_in,neurons", SHAPES)
def test_xnor_gemm(benchmark, name, vectors, fan_in, neurons):
    a, w = _operands(vectors, fan_in, neurons)
    pa, pw = pack_bits(a), pack_bits(w)
    out = benchmark(xnor_matmul_popcount, pa, pw)
    # Cross-check against the float result while we are here.
    np.testing.assert_array_equal(
        bipolar_from_popcount(out, fan_in), (a @ w.T).astype(np.int64)
    )


def test_memory_footprint_reduction(capsys):
    """The ×32 storage claim, at CNV scale."""
    a, w = _operands(*SHAPES[0][1:])
    packed = pack_bits(w)
    ratio = w.nbytes / packed.nbytes()
    with capsys.disabled():
        print()
        print(
            f"conv2_2 weights: float32 {w.nbytes / 1024:.1f} KiB -> "
            f"packed {packed.nbytes() / 1024:.1f} KiB (x{ratio:.0f})"
        )
    assert ratio == pytest.approx(32.0)


def test_packing_overhead(benchmark):
    """Packing cost itself (paid once per tensor, amortised)."""
    a, _ = _operands(*SHAPES[0][1:])
    packed = benchmark(pack_bits, a)
    assert packed.nbits == SHAPES[0][2]


def _pack_bits_reference(values: np.ndarray) -> PackedBits:
    """The pre-PR3 pack kernel: 64-wide grouping + weighted sum.

    Kept as a benchmark reference for the np.packbits rewrite — it
    materialises a ``(..., n_words, 64)`` uint64 intermediate the new
    kernel avoids.
    """
    bits = values > 0
    nbits = bits.shape[-1]
    n_words = -(-nbits // WORD_BITS)
    pad = n_words * WORD_BITS - nbits
    padded = np.concatenate(
        [bits, np.zeros(bits.shape[:-1] + (pad,), dtype=bool)], axis=-1
    )
    grouped = padded.reshape(bits.shape[:-1] + (n_words, WORD_BITS))
    weights = np.uint64(1) << np.arange(WORD_BITS, dtype=np.uint64)
    words = (grouped.astype(np.uint64) * weights).sum(axis=-1, dtype=np.uint64)
    return PackedBits(words=words, nbits=nbits)


def test_pack_bits_old_kernel(benchmark):
    """Baseline: the weighted-sum pack the np.packbits rewrite replaced."""
    a, _ = _operands(*SHAPES[0][1:])
    packed = benchmark(_pack_bits_reference, a)
    np.testing.assert_array_equal(packed.words, pack_bits(a).words)


def test_pack_bits_new_kernel(benchmark):
    """The np.packbits-based pack, same operand as the old-kernel bench."""
    a, _ = _operands(*SHAPES[0][1:])
    packed = benchmark(pack_bits, a)
    np.testing.assert_array_equal(packed.words, _pack_bits_reference(a).words)
