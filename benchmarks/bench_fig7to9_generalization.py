"""Figs 7–9 — generalization panels: age, hair/head-gear, manipulation.

Runs the three controlled Grad-CAM panels of the paper on CNV, n-CNV and
the FP32 baseline and prints per-case accuracy and dominant attention
band. Shape assertions follow the paper's conclusions: the BNNs keep
classifying correctly across ages, mask-colored hair/head-gear, and face
manipulations (double mask, paint, sunglasses).
"""

import numpy as np
import pytest

from repro.core.generalization import GENERALIZATION_PANELS, run_study

PANELS = tuple(GENERALIZATION_PANELS)
SAMPLES = 10


@pytest.fixture(scope="module")
def studies(cnv, n_cnv, fp32_cnv):
    out = {}
    for mname, clf in (("cnv", cnv), ("n-cnv", n_cnv), ("fp32", fp32_cnv)):
        for panel in PANELS:
            out[(mname, panel)] = run_study(
                clf.model,
                panel,
                model_name=mname,
                samples_per_case=SAMPLES,
                rng=7,
            )
    return out


def test_regenerate_fig7_to_fig9(studies, capsys):
    with capsys.disabled():
        print()
        for panel in PANELS:
            for mname in ("cnv", "n-cnv", "fp32"):
                print(studies[(mname, panel)].report())
            print()


def test_age_generalization(studies):
    """Fig. 7: correct-mask classification holds for infants & elderly."""
    for mname in ("cnv", "n-cnv"):
        result = studies[(mname, "fig7_age")]
        for case in result.cases:
            assert result.accuracy[case] >= 0.5, (mname, case)


def test_hair_headgear_generalization(studies):
    """Fig. 8: mask-blue hair / head-gear do not break the BNNs."""
    for mname in ("cnv", "n-cnv"):
        result = studies[(mname, "fig8_hair_headgear")]
        assert result.overall_accuracy() >= 0.5, mname
        # The adversarial case specifically.
        assert result.accuracy["mask_blue_hair"] >= 0.4, mname


def test_manipulation_generalization(studies):
    """Fig. 9: double mask / paint / sunglasses tolerated on average."""
    for mname in ("cnv", "n-cnv"):
        result = studies[(mname, "fig9_manipulation")]
        assert result.overall_accuracy() >= 0.4, mname


def test_attention_stays_on_face(studies):
    """Across panels, correctly-classified attention is face-centred."""
    for (mname, panel), result in studies.items():
        for case in result.cases:
            profile = result.band_profiles[case]
            total = sum(profile.values())
            if total == 0.0:
                continue  # no correct classifications for this case
            assert profile["background"] / total < 0.5, (mname, panel, case)


def test_study_speed(benchmark, n_cnv):
    """Timed kernel: one 3-sample age-panel study on n-CNV."""
    result = benchmark.pedantic(
        run_study,
        args=(n_cnv.model, "fig7_age"),
        kwargs={"samples_per_case": 3, "rng": 0},
        rounds=2,
        iterations=1,
    )
    assert result.cases == ["infant", "adult", "elderly"]
