"""Shared fixtures for the benchmark suite.

Benchmarks regenerate the paper's tables and figures, so they need fully
trained models. Training happens once per (architecture, budget) via the
model zoo and is cached on disk under ``.binarycop_cache/`` — the first
benchmark run trains (minutes per model on one core); subsequent runs
load instantly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classifier import BinaryCoP
from repro.core.zoo import dataset_cached, trained_classifier
from repro.data.dataset import DatasetSplits


@pytest.hookimpl(trylast=True)
def pytest_collection_modifyitems(config, items):
    """Keep the table/figure-regeneration tests alive under
    ``--benchmark-only``.

    pytest-benchmark marks every test without the ``benchmark`` fixture
    as skipped when ``--benchmark-only`` is active. In this suite the
    non-fixture tests are not incidental unit tests — they *regenerate
    the paper's tables and figures* (the benchmark deliverable), so the
    canonical ``pytest benchmarks/ --benchmark-only`` invocation must run
    them. This hook (running after the plugin's) strips exactly that skip
    marker from items in this directory.
    """
    if not config.getoption("--benchmark-only", default=False):
        return
    for item in items:
        item.own_markers = [
            m
            for m in item.own_markers
            if not (
                m.name == "skip"
                and "--benchmark-only active" in m.kwargs.get("reason", "")
            )
        ]


@pytest.fixture(scope="session")
def splits() -> DatasetSplits:
    """The default benchmark dataset (the §IV-A pipeline, laptop scale)."""
    return dataset_cached()


@pytest.fixture(scope="session")
def cnv(splits) -> BinaryCoP:
    return trained_classifier("cnv", splits=splits, dataset_key={"default_dataset": True})


@pytest.fixture(scope="session")
def n_cnv(splits) -> BinaryCoP:
    return trained_classifier("n-cnv", splits=splits, dataset_key={"default_dataset": True})


@pytest.fixture(scope="session")
def u_cnv(splits) -> BinaryCoP:
    return trained_classifier("u-cnv", splits=splits, dataset_key={"default_dataset": True})


@pytest.fixture(scope="session")
def fp32_cnv(splits) -> BinaryCoP:
    return trained_classifier(
        "fp32-cnv", splits=splits, dataset_key={"default_dataset": True}
    )


@pytest.fixture(scope="session")
def all_bnn(cnv, n_cnv, u_cnv):
    return {"cnv": cnv, "n-cnv": n_cnv, "u-cnv": u_cnv}
