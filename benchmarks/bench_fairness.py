"""Demographic parity — §I's "equivalent classification accuracy" claim.

The paper's stated design goal: "maintain equivalent classification
accuracy for all face structures, skin-tones, hair types, and mask
types". The Grad-CAM panels argue this qualitatively; this benchmark
measures it: controlled cohorts per protected factor (identical class
schedule and nuisance seeds, varying only the factor), accuracy per
cohort, and the worst-case disparity.
"""

import pytest

from repro.core.fairness import FACTOR_COHORTS, evaluate_fairness

FACTORS = tuple(FACTOR_COHORTS)
SAMPLES = 32


@pytest.fixture(scope="module")
def fairness_reports(cnv):
    return {
        factor: evaluate_fairness(
            cnv.model, factor, samples_per_cohort=SAMPLES, rng=11
        )
        for factor in FACTORS
    }


def test_regenerate_fairness_tables(fairness_reports, capsys):
    with capsys.disabled():
        print()
        for factor in FACTORS:
            print(fairness_reports[factor].render())
            print()


@pytest.mark.parametrize("factor", FACTORS)
def test_every_cohort_far_above_chance(fairness_reports, factor):
    """No cohort collapses: worst-case accuracy well above 25% chance."""
    report = fairness_reports[factor]
    assert report.worst[1] > 0.5, report.worst


@pytest.mark.parametrize("factor", FACTORS)
def test_disparity_bounded(fairness_reports, factor):
    """Accuracy is 'equivalent' across cohorts: bounded disparity."""
    report = fairness_reports[factor]
    assert report.disparity < 0.35, (
        factor,
        report.cohort_accuracy,
    )


def test_mean_accuracy_matches_overall(fairness_reports, cnv, splits):
    """Cohort-mean accuracy is consistent with the test-set accuracy
    (the controlled cohorts are not systematically easier/harder)."""
    overall = cnv.evaluate(splits.test)["accuracy"]
    for factor, report in fairness_reports.items():
        assert abs(report.mean_accuracy() - overall) < 0.2, factor


def test_fairness_speed(benchmark, n_cnv):
    """Timed kernel: one small age-group parity evaluation."""
    report = benchmark.pedantic(
        evaluate_fairness,
        args=(n_cnv.model, "age_group"),
        kwargs={"samples_per_cohort": 8, "rng": 0},
        rounds=2,
        iterations=1,
    )
    assert set(report.cohort_accuracy) == {"infant", "adult", "elderly"}
