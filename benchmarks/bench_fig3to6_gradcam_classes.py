"""Figs 3–6 — Grad-CAM per wear class for CNV, n-CNV and FP32-CNV.

The paper shows heat-map panels per class (correct / nose / nose+mouth /
chin) across three models. This bench regenerates them quantitatively:
for each class and model it renders controlled subjects, computes
Grad-CAM on correctly-classified ones, and prints the attention
distribution over anatomical bands (forehead+eyes / nose / mouth /
chin+neck / background).

Shape assertions mirror the paper's qualitative findings:

* attention concentrates on the face, not the background (all figures);
* for the chin-exposed class, BNN attention shifts downward (toward the
  mouth/chin/neck bands) relative to the correctly-masked class — the
  Fig. 6 observation that the networks "focus on the neck and chin".
"""

from typing import Dict

import numpy as np
import pytest

from repro.core.gradcam import GradCAM, attention_band_profile
from repro.data.generator import FaceSampleGenerator, SampleSpec
from repro.data.mask_model import CLASS_NAMES, WearClass
from repro.utils.tables import render_table

SAMPLES_PER_CLASS = 12
BANDS = ("background", "forehead_eyes", "nose", "mouth", "chin_neck")


@pytest.fixture(scope="module")
def gradcam_profiles(cnv, n_cnv, fp32_cnv):
    """Mean band profile per (model, class), over correct classifications."""
    models = {"cnv": cnv, "n-cnv": n_cnv, "fp32": fp32_cnv}
    generator = FaceSampleGenerator()
    profiles: Dict[str, Dict[int, Dict[str, float]]] = {}
    hit_rates: Dict[str, Dict[int, float]] = {}
    for mname, clf in models.items():
        cam = GradCAM(clf.model, layer="conv2_2")
        profiles[mname] = {}
        hit_rates[mname] = {}
        for wear in WearClass:
            rng = np.random.default_rng(1000 + int(wear))
            collected = []
            correct = 0
            for _ in range(SAMPLES_PER_CLASS):
                sample = generator.generate_one(
                    rng, SampleSpec(wear_class=wear)
                )
                result = cam.compute(sample.image, target_class=int(wear))
                if result.predicted_class == int(wear):
                    correct += 1
                    collected.append(attention_band_profile(result, sample))
            hit_rates[mname][int(wear)] = correct / SAMPLES_PER_CLASS
            if collected:
                profiles[mname][int(wear)] = {
                    b: float(np.mean([p[b] for p in collected])) for b in BANDS
                }
            else:
                profiles[mname][int(wear)] = {b: float("nan") for b in BANDS}
    return profiles, hit_rates


def test_regenerate_fig3_to_fig6(gradcam_profiles, capsys):
    profiles, hit_rates = gradcam_profiles
    with capsys.disabled():
        for wear in WearClass:
            fig = 3 + int(wear)
            rows = []
            for mname in ("cnv", "n-cnv", "fp32"):
                p = profiles[mname][int(wear)]
                rows.append(
                    [
                        mname,
                        f"{hit_rates[mname][int(wear)]:.2f}",
                        *[f"{p[b]:.2f}" for b in BANDS],
                    ]
                )
            print()
            print(
                render_table(
                    ["model", "acc", *BANDS],
                    rows,
                    title=(
                        f"Fig. {fig} (regenerated): Grad-CAM attention bands, "
                        f"class = {CLASS_NAMES[int(wear)]}"
                    ),
                )
            )


def test_attention_on_face_not_background(gradcam_profiles):
    """Across all models/classes, most mass lies on facial bands."""
    profiles, _ = gradcam_profiles
    for mname, per_class in profiles.items():
        for wear, p in per_class.items():
            if np.isnan(p["background"]):
                continue
            face_mass = 1.0 - p["background"]
            assert face_mass > 0.5, (mname, wear)


def test_chin_class_attention_lower_than_correct(gradcam_profiles):
    """Fig. 6: for the chin-exposed class the BNNs look lower on the
    face than for the correctly-masked class."""
    profiles, _ = gradcam_profiles

    def lower_mass(p):
        return p["mouth"] + p["chin_neck"]

    for mname in ("cnv", "n-cnv"):
        correct = profiles[mname][int(WearClass.CORRECT)]
        chin = profiles[mname][int(WearClass.CHIN_EXPOSED)]
        if np.isnan(lower_mass(chin)) or np.isnan(lower_mass(correct)):
            pytest.skip(f"{mname}: no correctly classified panel samples")
        assert lower_mass(chin) > lower_mass(correct) - 0.05, mname


def test_panel_classification_far_above_chance(gradcam_profiles):
    _, hit_rates = gradcam_profiles
    for mname, per_class in hit_rates.items():
        mean_acc = np.mean(list(per_class.values()))
        assert mean_acc > 0.5, mname


def test_gradcam_speed(benchmark, cnv):
    """Timed kernel: one Grad-CAM computation on the CNV model."""
    sample = FaceSampleGenerator().generate_one(0)
    cam = GradCAM(cnv.model, layer="conv2_2")
    result = benchmark(cam.compute, sample.image)
    assert result.heatmap.shape == (10, 10)
