"""Fig. 2 — confusion matrix of Binary-CoP-CNV on the test set.

Regenerates the 4x4 confusion matrix with counts and row-normalised
percentages (the paper's presentation) and asserts its shape properties:
heavy diagonal, small off-diagonal mass, and the paper's observed error
structure (nose-class confusions concentrated on the adjacent N+M class).
"""

import numpy as np
import pytest


@pytest.fixture(scope="module")
def cm(cnv, splits):
    return cnv.confusion(splits.test)


def test_regenerate_fig2(cm, capsys):
    with capsys.disabled():
        print()
        print(cm.render(title="Fig. 2 (regenerated): CNV confusion matrix"))
        print(f"overall accuracy: {cm.overall_accuracy():.4f} (paper: 0.9810)")
        recalls = ", ".join(
            f"{k}={v:.2f}" for k, v in cm.per_class_recall().items()
        )
        print(f"per-class recall: {recalls} (paper: ~0.98 each)")


def test_diagonal_dominates(cm):
    """Every class's recall must far exceed every off-diagonal rate."""
    rn = cm.row_normalised()
    for i in range(cm.num_classes):
        off = np.delete(rn[i], i)
        assert rn[i, i] > 0.5
        assert rn[i, i] > off.max() * 2


def test_overall_accuracy_high(cm):
    assert cm.overall_accuracy() > 0.75


def test_all_classes_predicted(cm):
    """No class collapses (the balancing worked)."""
    assert (cm.counts.sum(axis=0) > 0).all()
    assert (cm.counts.sum(axis=1) > 0).all()


def test_confusion_speed(benchmark, cnv, splits):
    """Timed kernel: full test-set prediction + matrix construction."""
    images = splits.test.images[:64]
    labels = splits.test.labels[:64]

    def predict_and_tally():
        from repro.core.evaluation import confusion_matrix

        return confusion_matrix(cnv.predict(images), labels)

    result = benchmark(predict_and_tally)
    assert result.counts.sum() == 64
