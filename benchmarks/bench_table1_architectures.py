"""Table I — network architectures and hardware dimensioning.

Regenerates the paper's Table I: per-layer [C_i, C_o] for CNV / n-CNV /
µ-CNV plus the PE-count and SIMD-lane rows, and verifies structural
claims (folding legality, µ-CNV's larger post-conv parameter count). The
timed kernel is a full software forward pass of each prototype.
"""

import numpy as np
import pytest

from repro.core.architectures import (
    architecture_summary,
    build_architecture,
    table1_folding,
)
from repro.utils.tables import render_table
from repro.testing import randomize_bn_stats

ARCHS = ("cnv", "n-cnv", "u-cnv")


def test_regenerate_table1(capsys):
    """Print Table I and assert its structural properties."""
    summaries = {name: architecture_summary(name) for name in ARCHS}
    max_layers = max(len(s["layers"]) for s in summaries.values())
    rows = []
    for i in range(max_layers):
        row = [f"layer {i + 1}"]
        for name in ARCHS:
            layers = summaries[name]["layers"]
            if i < len(layers):
                lname, c_in, c_out = layers[i]
                row.append(f"{lname} [{c_in}, {c_out}]")
            else:
                row.append("-")
        rows.append(row)
    for field, label in (("pe", "PE count"), ("simd", "SIMD lanes")):
        row = [label]
        for name in ARCHS:
            row.append(", ".join(str(v) for v in getattr(summaries[name]["folding"], field)))
        rows.append(row)
    with capsys.disabled():
        print()
        print(render_table(["", *ARCHS], rows, title="Table I (regenerated)"))
        for name in ARCHS:
            bits = summaries[name]["weight_bits"]
            print(f"{name}: {bits:,} weight bits ({bits / 8192:.1f} KiB packed)")

    # Structural assertions from the paper.
    assert len(summaries["cnv"]["layers"]) == 9
    assert len(summaries["n-cnv"]["layers"]) == 9
    assert len(summaries["u-cnv"]["layers"]) == 7
    # §IV-B: µ-CNV trades LUTs for a slightly larger memory footprint.
    assert summaries["u-cnv"]["weight_bits"] > summaries["n-cnv"]["weight_bits"]
    # All Table I foldings are legal (PE | rows, SIMD | cols) — checked by
    # compiling; compile_model raises otherwise.
    from repro.hw.compiler import compile_model

    for name in ARCHS:
        model = build_architecture(name, rng=0)
        randomize_bn_stats(model)
        model.eval()
        compile_model(model, table1_folding(name))


@pytest.mark.parametrize("name", ARCHS)
def test_forward_pass_speed(benchmark, name):
    """Software (float) forward-pass throughput of each prototype."""
    model = build_architecture(name, rng=0)
    randomize_bn_stats(model)
    model.eval()
    x = np.random.default_rng(0).random((16, 32, 32, 3)).astype(np.float32)

    result = benchmark(model.forward, x)
    assert result.shape == (16, 4)
