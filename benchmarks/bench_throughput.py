"""§IV-B throughput — per-layer IIs, pipeline FPS, streaming trace.

Reproduces the paper's performance claims:

* n-CNV reaches ~6400 classifications/second at 100 MHz when its
  pipeline is full (the calibrated model; the analytic bound is printed
  alongside);
* CNV and µ-CNV are slower (their dimensioning targets area, not rate);
* the streaming trace (Fig. 1's pipeline behaviour) converges to the
  analytic rate as the stream grows.

The timed kernel is the accelerator's functional datapath on a batch —
the simulator's own classification throughput.
"""

import numpy as np
import pytest

from repro.hw.pipeline import MEASURED_EFFICIENCY, analyze_pipeline, simulate_stream
from repro.testing import grid_images
from repro.utils.tables import render_table


@pytest.fixture(scope="module")
def accelerators(all_bnn):
    return {name: clf.deploy() for name, clf in all_bnn.items()}


def test_regenerate_throughput_table(accelerators, capsys):
    rows = []
    for name, acc in accelerators.items():
        timing = analyze_pipeline(acc, clock_mhz=100.0)
        rows.append(
            [
                name,
                f"{timing.bottleneck[0]} ({timing.bottleneck[1]:,} cyc)",
                f"{timing.fps_analytic:,.0f}",
                f"{timing.fps_calibrated:,.0f}",
                f"{timing.latency_us:.0f}",
            ]
        )
    with capsys.disabled():
        print()
        print(
            render_table(
                ["config", "bottleneck", "FPS analytic", "FPS calibrated", "latency us"],
                rows,
                title=(
                    "Throughput @ 100 MHz (paper: n-CNV ~6400 FPS; "
                    f"calibration eta={MEASURED_EFFICIENCY})"
                ),
            )
        )
        print()
        for name, acc in accelerators.items():
            print(analyze_pipeline(acc).report())
            print()


def test_ncnv_hits_6400_fps(accelerators):
    timing = analyze_pipeline(accelerators["n-cnv"], clock_mhz=100.0)
    assert timing.fps_calibrated == pytest.approx(6400, rel=0.07)


def test_ncnv_is_fastest(accelerators):
    fps = {
        name: analyze_pipeline(acc).fps_analytic
        for name, acc in accelerators.items()
    }
    assert fps["n-cnv"] > fps["cnv"]
    assert fps["n-cnv"] > fps["u-cnv"]


def test_stream_trace_fig1(accelerators, capsys):
    """Fig. 1's dataflow behaviour: per-stage occupancy over a stream."""
    acc = accelerators["n-cnv"]
    sim = simulate_stream(acc, num_images=50)
    timing = analyze_pipeline(acc)
    with capsys.disabled():
        print()
        print(
            f"n-CNV stream of 50 images: {int(sim['total_cycles']):,} cycles "
            f"-> {float(sim['fps']):,.0f} FPS "
            f"(analytic steady-state {timing.fps_analytic:,.0f})"
        )
        first = sim["start"][0]
        print(
            "image 0 enters stages at cycles: "
            + ", ".join(f"{int(c):,}" for c in first)
        )
    # The stream rate approaches the analytic rate (within pipeline fill).
    assert float(sim["fps"]) > 0.8 * timing.fps_analytic


def test_throughput_grows_with_clock(accelerators):
    acc = accelerators["n-cnv"]
    assert (
        analyze_pipeline(acc, 200.0).fps_analytic
        > analyze_pipeline(acc, 100.0).fps_analytic
    )


@pytest.mark.parametrize("name", ["cnv", "n-cnv", "u-cnv"])
def test_simulator_classification_speed(benchmark, accelerators, name):
    """Functional-datapath throughput of the simulator itself."""
    images = grid_images(32)
    preds = benchmark(accelerators[name].predict, images)
    assert preds.shape == (32,)
