"""§IV-A training — accuracy vs. the paper, training throughput.

The paper trains BNNs "up to 300 epochs, unless learning saturates
earlier" and reports up to ~98% (CNV), 93.94% (n-CNV), 93.78% (µ-CNV)
and 98.6% (FP32). Our substrate (synthetic faces, numpy on one core)
reproduces the *shape*: FP32 >= CNV > n-CNV ~ µ-CNV, all far above the
25% chance level. The timed kernel is one optimisation step.
"""

import numpy as np
import pytest

from repro.core.classifier import BinaryCoP, TrainingBudget
from repro.nn.losses import cross_entropy
from repro.nn.optim import Adam
from repro.utils.tables import render_table

PAPER_ACCURACY = {"cnv": 0.9810, "n-cnv": 0.9394, "u-cnv": 0.9378, "fp32-cnv": 0.986}


@pytest.fixture(scope="module")
def accuracy_rows(all_bnn, fp32_cnv, splits):
    rows = {}
    models = dict(all_bnn)
    models["fp32-cnv"] = fp32_cnv
    for name, clf in models.items():
        rows[name] = {
            "test": clf.evaluate(splits.test)["accuracy"],
            "val": clf.history.best_val_accuracy() if clf.history else float("nan"),
        }
    return rows


def test_regenerate_accuracy_table(accuracy_rows, capsys):
    table = [
        [
            name,
            f"{row['test']:.4f}",
            f"{row['val']:.4f}",
            f"{PAPER_ACCURACY[name]:.4f}",
        ]
        for name, row in accuracy_rows.items()
    ]
    with capsys.disabled():
        print()
        print(
            render_table(
                ["config", "test acc (ours)", "best val (ours)", "paper acc"],
                table,
                title="Classification accuracy (synthetic data, laptop budget)",
            )
        )


def test_accuracy_shape_holds(accuracy_rows):
    """FP32 >= CNV > {n-CNV, µ-CNV}; everything far above chance."""
    acc = {name: row["test"] for name, row in accuracy_rows.items()}
    assert acc["fp32-cnv"] >= acc["cnv"] - 0.03
    assert acc["cnv"] >= acc["n-cnv"] - 0.01
    assert acc["cnv"] >= acc["u-cnv"] - 0.01
    assert min(acc.values()) > 0.6


def test_binarization_gap_is_small(accuracy_rows):
    """The BNN gives up only a few points vs FP32 (the paper's premise)."""
    gap = accuracy_rows["fp32-cnv"]["test"] - accuracy_rows["cnv"]["test"]
    assert gap < 0.15


def test_learning_saturates(n_cnv):
    """Validation accuracy improves substantially from the first epochs
    (the history exists and shows learning, per §IV-A's protocol)."""
    history = n_cnv.history
    if history is None:
        pytest.skip("model loaded from cache without history")
    early = np.mean(history.val_accuracy[:3])
    late = max(history.val_accuracy)
    assert late > early + 0.1


@pytest.mark.parametrize("name", ["n-cnv", "u-cnv"])
def test_training_step_speed(benchmark, splits, name):
    """Timed kernel: one forward+backward+update step (batch of 32)."""
    clf = BinaryCoP(name, rng=0)
    model = clf.model
    model.train()
    optimizer = Adam(model.parameters(), lr=1e-3)
    x = splits.train.images[:32]
    y = splits.train.labels[:32]

    def step():
        optimizer.zero_grad()
        logits = model.forward(x)
        _, grad = cross_entropy(logits, y)
        model.backward(grad)
        optimizer.step()
        return logits

    logits = benchmark(step)
    assert logits.shape == (32, 4)
