"""Serving-layer benchmarks — dynamic batching, backpressure, latency.

Demonstrates the three properties the serving layer exists for:

* **Batching wins throughput**: at saturation the micro-batcher's
  coalesced batches push the numpy backend >= 3x past batch-size-1
  service (the per-image fixed costs — dispatch, im2col setup — amortise
  across the batch);
* **Overload is explicit**: past saturation the bounded admission queue
  rejects/sheds with machine-readable reasons, the queue depth never
  exceeds its capacity, and the server drains cleanly — no deadlock, no
  unbounded growth;
* **A lone request stays fast**: its p95 latency is bounded by the
  batcher's ``max_wait_ms`` deadline trigger plus one single-image
  inference.

The models are *untrained*: serving throughput depends on the
architecture's FLOPs, not the weight values, so skipping the minutes of
zoo training keeps this suite self-contained and fast. The batching-
speedup measurement uses the full CNV prototype (largest per-image
compute, cleanest amortisation); the open-loop traffic tests use the
faster n-CNV so saturation is reached at modest request counts.
"""

import time

import numpy as np
import pytest

from repro.core.classifier import BinaryCoP
from repro.serving import (
    InferenceServer,
    ServingConfig,
    face_tile_pool,
    run_open_loop,
)
from repro.utils.tables import render_table

SATURATING_RATE = 4000.0  # req/s, far past the numpy backend's service rate
MAX_WAIT_MS = 5.0


@pytest.fixture(scope="module")
def classifier() -> BinaryCoP:
    return BinaryCoP("n-cnv", rng=0)


@pytest.fixture(scope="module")
def cnv_classifier() -> BinaryCoP:
    return BinaryCoP("cnv", rng=0)


@pytest.fixture(scope="module")
def tiles() -> np.ndarray:
    return face_tile_pool(16, rng=0)


def _serve_open_loop(classifier, tiles, rate_hz, duration_s, config):
    server = InferenceServer.from_classifier(classifier, config)
    with server:
        result = run_open_loop(
            server, tiles, rate_hz=rate_hz, duration_s=duration_s, rng=1
        )
        stats = server.stats()
    return result, stats


def _drain_backlog(classifier, tiles, config, n_requests):
    """QPS draining a pre-submitted backlog (a saturated queue, no load-
    generator thread competing with the workers for the GIL during the
    measurement — the cleanest view of pure serving throughput)."""
    server = InferenceServer.from_classifier(classifier, config)
    handles = [
        server.submit(tiles[i % len(tiles)]) for i in range(n_requests)
    ]
    start = time.perf_counter()
    with server:  # workers start here, facing a full queue
        for h in handles:
            h.result(timeout=120.0)
        elapsed = time.perf_counter() - start
        stats = server.stats()
    return n_requests / elapsed, stats.mean_batch_size


def test_dynamic_batching_beats_batch1_3x(cnv_classifier, tiles, capsys):
    """ISSUE acceptance: coalesced batches >= 3x batch-1 QPS at saturation."""
    n = 192
    batched_qps, mean_batch = _drain_backlog(
        cnv_classifier, tiles,
        ServingConfig(
            max_batch_size=32, max_wait_ms=MAX_WAIT_MS, queue_capacity=256,
            num_workers=1,
        ),
        n,
    )
    batch1_qps, _ = _drain_backlog(
        cnv_classifier, tiles,
        ServingConfig(
            max_batch_size=1, max_wait_ms=0.0, queue_capacity=256,
            num_workers=1,
        ),
        n,
    )
    speedup = batched_qps / max(batch1_qps, 1e-9)
    with capsys.disabled():
        print()
        print(
            render_table(
                ["mode", "QPS", "mean batch"],
                [
                    ["batch-1", f"{batch1_qps:,.0f}", "1.0"],
                    ["dynamic", f"{batched_qps:,.0f}", f"{mean_batch:.1f}"],
                ],
                title=(
                    f"CNV: draining a {n}-request backlog — "
                    f"dynamic batching {speedup:.1f}x batch-1"
                ),
            )
        )
    assert mean_batch > 4.0  # coalescing actually happened
    assert speedup >= 3.0


def test_batch_size_grows_with_offered_load(classifier, tiles, capsys):
    """The coalescing sweep: higher offered load -> bigger micro-batches."""
    config = ServingConfig(
        max_batch_size=32, max_wait_ms=MAX_WAIT_MS, queue_capacity=256,
        num_workers=2,
    )
    rows, mean_batches = [], []
    for rate in (100.0, 800.0, SATURATING_RATE):
        result, stats = _serve_open_loop(classifier, tiles, rate, 1.0, config)
        mean_batches.append(stats.mean_batch_size)
        p95 = (
            result.latency_percentile(95) * 1e3
            if result.latencies_s else float("nan")
        )
        rows.append(
            [
                f"{rate:,.0f}",
                f"{result.achieved_qps:,.0f}",
                f"{stats.mean_batch_size:.1f}",
                f"{p95:.1f}",
                f"{result.rejected + result.shed}",
            ]
        )
    with capsys.disabled():
        print()
        print(
            render_table(
                ["offered/s", "QPS", "mean batch", "p95 ms", "rejected+shed"],
                rows,
                title="offered-load sweep (dynamic batching)",
            )
        )
    assert mean_batches[-1] > mean_batches[0]


def test_overload_sheds_explicitly_and_stays_bounded(classifier, tiles, capsys):
    """ISSUE acceptance: bounded queue under overload -> explicit rejections,
    every request resolved, clean drain (no deadlock, no silent growth)."""
    config = ServingConfig(
        max_batch_size=32, max_wait_ms=MAX_WAIT_MS, queue_capacity=64,
        num_workers=2,
    )
    server = InferenceServer.from_classifier(classifier, config)
    with server:
        result = run_open_loop(
            server, tiles, rate_hz=SATURATING_RATE, duration_s=1.0, rng=2
        )
        stats = server.stats()
    resolved = (
        result.completed + result.rejected + result.shed + result.timed_out
    )
    with capsys.disabled():
        print()
        print(
            f"overload (capacity 64, {SATURATING_RATE:,.0f} req/s): "
            f"{result.offered} offered -> {result.completed} completed, "
            f"{result.rejected} rejected, {result.shed} shed "
            f"({result.achieved_qps:,.0f} QPS served)"
        )
    assert result.rejected + result.shed > 0  # backpressure engaged
    assert resolved == result.offered  # nothing dangling
    assert server.queue_depth == 0  # drained on stop
    assert stats.completed > 0  # kept serving throughout


def test_lone_request_p95_bounded(classifier, tiles, capsys):
    """ISSUE acceptance: lone-request p95 <= max_wait_ms + one inference."""
    # Single-image inference cost, measured directly (after warm-up).
    classifier.predict(tiles[:1])
    t0 = time.perf_counter()
    reps = 5
    for _ in range(reps):
        classifier.predict(tiles[:1])
    single_infer_s = (time.perf_counter() - t0) / reps

    config = ServingConfig(
        max_batch_size=32, max_wait_ms=MAX_WAIT_MS, queue_capacity=16,
        num_workers=2,
    )
    latencies = []
    with InferenceServer.from_classifier(classifier, config) as server:
        handle = server.submit(tiles[0])  # warm the worker path
        handle.result(timeout=10.0)
        for i in range(40):
            handle = server.submit(tiles[i % len(tiles)])
            handle.result(timeout=10.0)
            latencies.append(handle.latency_s)
            time.sleep(0.002)  # keep requests lone (no coalescing)
    p95 = float(np.percentile(latencies, 95))
    # Deadline trigger + one inference, with margin for thread scheduling.
    budget = MAX_WAIT_MS / 1e3 + 2 * single_infer_s + 0.020
    with capsys.disabled():
        print()
        print(
            f"lone request p95 {p95 * 1e3:.1f} ms "
            f"(budget {budget * 1e3:.1f} ms = {MAX_WAIT_MS:.0f} ms wait "
            f"+ 2x {single_infer_s * 1e3:.1f} ms inference + 20 ms margin)"
        )
    assert p95 <= budget


@pytest.mark.parametrize("batch_size", [1, 8, 32])
def test_backend_batch_throughput(benchmark, classifier, tiles, batch_size):
    """Raw backend rate per batch size — the amortisation batching exploits."""
    batch = np.stack([tiles[i % len(tiles)] for i in range(batch_size)])
    labels = benchmark(classifier.predict, batch)
    assert labels.shape == (batch_size,)
