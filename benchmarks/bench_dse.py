"""Design-space exploration — matched-throughput folding and device fit.

Covers §IV-B's DSE narrative beyond the three published points: sweeps
matched-throughput foldings of n-CNV, prints the resource/throughput
Pareto frontier, and reproduces the µ-CNV-on-Z7010 feasibility result
(experiment X1 in DESIGN.md).
"""

import pytest

from repro.hw.devices import Z7010, Z7020, fit_report
from repro.hw.dse import balance_folding, explore, pareto_frontier
from repro.hw.pipeline import analyze_pipeline
from repro.hw.resources import estimate_resources
from repro.utils.tables import render_table

TARGET_GRID = (2_000, 8_000, 32_000, 128_000, 512_000)


@pytest.fixture(scope="module")
def ncnv_points(n_cnv):
    return explore(n_cnv.model, TARGET_GRID, clock_mhz=100.0, device=Z7020)


def test_regenerate_dse_frontier(ncnv_points, capsys):
    frontier = pareto_frontier(ncnv_points)
    rows = [
        [
            f"{p.fps_analytic:,.0f}",
            f"{p.lut:,.0f}",
            f"{p.bram36:.1f}",
            p.bottleneck[0],
            "yes" if p.fits_device else "no",
        ]
        for p in frontier
    ]
    with capsys.disabled():
        print()
        print(
            render_table(
                ["FPS analytic", "LUT", "BRAM", "bottleneck", "fits Z7020"],
                rows,
                title="n-CNV matched-throughput Pareto frontier",
            )
        )


def test_frontier_tradeoff_is_monotone(ncnv_points):
    """Faster frontier points cost more LUTs — the §IV-B trade-off."""
    frontier = pareto_frontier(ncnv_points)
    assert len(frontier) >= 2
    luts = [p.lut for p in frontier]  # frontier sorted fps-descending
    assert all(a >= b for a, b in zip(luts, luts[1:]))


def test_all_points_functional(n_cnv, ncnv_points):
    """Every explored folding compiles and classifies identically."""
    from repro.hw.compiler import compile_model
    from repro.testing import grid_images

    images = grid_images(4)
    reference = n_cnv.deploy().predict(images)
    for point in ncnv_points[:3]:
        acc = compile_model(n_cnv.model, point.folding)
        assert (acc.predict(images) == reference).all()


def test_ucnv_z7010_feasibility(u_cnv, capsys):
    """Experiment X1: µ-CNV fits the Z7010 with DSP-offloaded XNOR."""
    acc = u_cnv.deploy()
    plain = estimate_resources(acc, dsp_offload=False)
    offload = estimate_resources(acc, dsp_offload=True)
    with capsys.disabled():
        print()
        print("u-CNV without offload:", plain.report())
        for line in fit_report(plain.lut, plain.bram36, plain.dsp):
            print(" ", line)
        print("u-CNV with OrthrusPE XNOR->DSP offload:", offload.report())
        for line in fit_report(offload.lut, offload.bram36, offload.dsp):
            print(" ", line)
    assert Z7010.fits(offload.lut, offload.bram36, offload.dsp)
    assert offload.dsp > plain.dsp  # the offload trades DSPs in


def test_balanced_folding_beats_naive_uniform(n_cnv):
    """§III-B: 'a single under-dimensioned MVTU could throttle the
    entire pipeline' — matched-throughput folding at the same lane
    budget is strictly faster than uniform folding."""
    from repro.hw.compiler import FoldingConfig, compile_model

    balanced = balance_folding(n_cnv.model, target_cycles=8_100)
    acc_balanced = compile_model(n_cnv.model, balanced)
    lanes = sum(p * s for p, s in zip(balanced.pe, balanced.simd))

    # Naive: spend a comparable lane budget uniformly (PE=2/SIMD wide on
    # every layer regardless of its workload).
    naive = FoldingConfig(
        pe=(2, 2, 2, 2, 2, 2, 1, 1, 1),
        simd=(3, 16, 16, 32, 32, 32, 4, 8, 1),
    )
    acc_naive = compile_model(n_cnv.model, naive)
    fps_balanced = analyze_pipeline(acc_balanced).fps_analytic
    fps_naive = analyze_pipeline(acc_naive).fps_analytic
    assert fps_balanced > fps_naive


def test_dse_speed(benchmark, n_cnv):
    """Timed kernel: one balanced-folding solve."""
    folding = benchmark(balance_folding, n_cnv.model, 32_000)
    assert len(folding) == 9
