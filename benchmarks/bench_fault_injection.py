"""Fault-injection study: BNN robustness to weight/threshold upsets.

An extension experiment motivated by the paper's deployment setting
(unattended edge devices, §I): how gracefully does the deployed
accelerator degrade under single-event upsets? BNN folklore says binary
networks are comparatively robust — a weight SEU is the smallest
possible perturbation (one sign flip) and there are no exponent bits to
corrupt. This bench measures the degradation curve for the n-CNV
accelerator on the test split and asserts its qualitative shape.
"""

import numpy as np
import pytest

from repro.hw.faults import accuracy_under_faults

RATES = (1e-4, 1e-3, 1e-2, 5e-2)


@pytest.fixture(scope="module")
def fault_reports(n_cnv, splits):
    acc = n_cnv.deploy()
    images = splits.test.images[:128]
    labels = splits.test.labels[:128]
    return {
        kind: accuracy_under_faults(
            acc, images, labels, rates=RATES, fault_kind=kind, trials=2, rng=3
        )
        for kind in ("weight", "threshold")
    }


def test_regenerate_fault_curves(fault_reports, capsys):
    with capsys.disabled():
        print()
        for kind, report in fault_reports.items():
            print(report.render())
            print()


@pytest.mark.parametrize("kind", ["weight", "threshold"])
def test_low_rates_nearly_harmless(fault_reports, kind):
    """At 1e-4 upset rate accuracy stays within a few points of baseline."""
    report = fault_reports[kind]
    assert report.accuracies[0] > report.baseline_accuracy - 0.08


@pytest.mark.parametrize("kind", ["weight", "threshold"])
def test_degradation_monotone_tendency(fault_reports, kind):
    """More faults never help (up to trial noise)."""
    report = fault_reports[kind]
    assert report.accuracies[0] >= report.accuracies[-1] - 0.05


def test_heavy_weight_faults_degrade(fault_reports):
    """5% synapse flips must visibly hurt — the sweep is not a no-op."""
    report = fault_reports["weight"]
    assert report.accuracies[-1] < report.baseline_accuracy


def test_fault_injection_speed(benchmark, n_cnv, splits):
    """Timed kernel: one weight-fault clone + 32-image evaluation."""
    from repro.hw.faults import flip_weight_bits

    acc = n_cnv.deploy()
    images = splits.test.images[:32]

    def inject_and_classify():
        return flip_weight_bits(acc, 1e-3, rng=0).predict(images)

    preds = benchmark.pedantic(inject_and_classify, rounds=2, iterations=1)
    assert preds.shape == (32,)
