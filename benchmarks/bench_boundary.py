"""Decision-boundary sharpness — the geometric reading of Fig. 2.

The confusion matrix's off-diagonal mass concentrates on geometrically
adjacent classes; this bench resolves *why*: deterministic placement
sweeps from each class's interior toward its boundary show accuracy
staying high in the interior and dropping only as the mask edge
approaches the landmark that defines the next class. (Class-interior
placements correspond to the unambiguous samples the paper's dataset
mostly contains; the boundary end is where MaskedFace-Net's own labels
get debatable.)
"""

import numpy as np
import pytest

from repro.core.error_analysis import boundary_sweep, render_sweep_table
from repro.data.mask_model import WearClass

POSITIONS = (0.0, 0.25, 0.5, 0.75, 1.0)
SUBJECTS = 14


@pytest.fixture(scope="module")
def sweeps(cnv):
    return {
        wear: boundary_sweep(
            cnv, wear, positions=POSITIONS, subjects_per_point=SUBJECTS, rng=5
        )
        for wear in WearClass
    }


def test_regenerate_boundary_table(sweeps, capsys):
    with capsys.disabled():
        print()
        print(render_sweep_table(list(sweeps.values())))


def test_interiors_are_confident(sweeps):
    """Deep inside every class the classifier is far above chance."""
    for wear, sweep in sweeps.items():
        interior = np.mean(sweep.accuracy[:2])
        assert interior > 0.5, (wear, sweep.accuracy)


def test_some_boundary_softness_exists(sweeps):
    """At least one class loses accuracy toward its boundary — the
    adjacency structure Fig. 2's off-diagonals summarise."""
    drops = [s.sharpness() for s in sweeps.values()]
    assert max(drops) > 0.2


def test_mean_interior_beats_mean_boundary(sweeps):
    interior = np.mean([s.interior_accuracy() for s in sweeps.values()])
    boundary = np.mean([s.boundary_accuracy() for s in sweeps.values()])
    assert interior > boundary


def test_boundary_sweep_speed(benchmark, n_cnv):
    sweep = benchmark.pedantic(
        boundary_sweep,
        args=(n_cnv, WearClass.CORRECT),
        kwargs={"positions": (0.0, 1.0), "subjects_per_point": 4, "rng": 0},
        rounds=2,
        iterations=1,
    )
    assert len(sweep.accuracy) == 2
