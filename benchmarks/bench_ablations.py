"""Ablations of the design choices DESIGN.md §5 calls out.

1. STE variant (clipped vs identity) — training stability;
2. batch-norm -> threshold folding — must be exact (asserted, not timed);
3. max-pool-as-OR — requires pool-after-sign ordering;
4. dataset balancing — minority-class recall with and without;
5. matched-throughput folding — covered in bench_dse;
6. bit-packed XNOR GEMM vs float GEMM — covered in bench_xnor_kernels;
7. XNOR-Net scaling factors (§II-B) — the capacity-vs-complexity
   trade-off the paper cites for choosing plain BinaryNet;
8. threshold storage width — how many bits the MVTU's comparison stage
   actually needs (the "typically costly batch-norm" of §III-A costs a
   handful of bits per channel once folded).
"""

import numpy as np
import pytest

from repro.core.classifier import BinaryCoP, TrainingBudget
from repro.data.dataset import build_masked_face_dataset
from repro.data.mask_model import CLASS_NAMES
from repro.nn.binary_ops import sign
from repro.utils.tables import render_table


@pytest.fixture(scope="module")
def ablation_splits():
    """A dedicated mid-size dataset so ablation runs stay quick."""
    return build_masked_face_dataset(raw_size=2500, rng=21, augmented_copies=1)


class TestSTEVariant:
    """Ablation 1: clipped vs identity STE on a short n-CNV training run."""

    @pytest.fixture(scope="class")
    def ste_results(self, ablation_splits):
        from repro.nn.layers import BinaryConv2D, BinaryDense

        results = {}
        for variant in ("clipped", "identity"):
            clf = BinaryCoP("u-cnv", rng=0)
            for layer in clf.model.layers:
                if isinstance(layer, (BinaryConv2D, BinaryDense)):
                    layer.ste = variant
                if hasattr(layer, "ste") and layer.__class__.__name__ == "SignActivation":
                    layer.ste = variant
            clf.fit(
                ablation_splits,
                TrainingBudget(epochs=8, early_stopping_patience=None),
            )
            results[variant] = clf.evaluate(ablation_splits.test)["accuracy"]
        return results

    def test_report(self, ste_results, capsys):
        with capsys.disabled():
            print()
            print(
                render_table(
                    ["STE variant", "test accuracy (8 epochs, u-cnv)"],
                    [[k, f"{v:.4f}"] for k, v in ste_results.items()],
                    title="Ablation 1: straight-through estimator variant",
                )
            )

    def test_both_learn(self, ste_results):
        for variant, acc in ste_results.items():
            assert acc > 0.4, variant


class TestThresholdFoldingExactness:
    """Ablation 2: folded integer thresholds vs float BN+sign — exact."""

    def test_exact_over_full_accumulator_range(self):
        from repro.hw.thresholding import apply_thresholds, fold_popcount_domain

        rng = np.random.default_rng(0)
        fan_in = 576
        scale = rng.uniform(-2, 2, 128)
        shift = rng.normal(0, 10, 128)
        spec = fold_popcount_domain(scale, shift, fan_in)
        p = np.arange(fan_in + 1)[:, None].repeat(128, axis=1)
        folded = apply_thresholds(p, spec)
        reference = scale * (2 * p - fan_in).astype(np.float64) + shift >= 0
        mismatches = int((folded != reference).sum())
        assert mismatches == 0  # not approximately: exactly


class TestPoolOrdering:
    """Ablation 3: OR-pooling is only correct after binarisation."""

    def test_or_after_sign_equals_max(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 8, 8, 4)).astype(np.float32)
        from repro.nn.functional import pool_windows

        bits = sign(x) > 0
        or_pooled = pool_windows(bits.astype(np.uint8), (2, 2), (2, 2)).any(axis=3)
        max_then_sign = (
            sign(pool_windows(x, (2, 2), (2, 2)).max(axis=3)) > 0
        )
        np.testing.assert_array_equal(or_pooled, max_then_sign)

    def test_sign_after_mean_pool_differs(self):
        """A counter-example: OR does NOT commute with e.g. average
        pooling — binarisation order genuinely matters."""
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 4, 4, 8)).astype(np.float32)
        from repro.nn.functional import pool_windows

        or_pooled = pool_windows((sign(x) > 0).astype(np.uint8), (2, 2), (2, 2)).any(axis=3)
        mean_then_sign = sign(pool_windows(x, (2, 2), (2, 2)).mean(axis=3)) > 0
        assert (or_pooled != mean_then_sign).any()


class TestXnorNetScaling:
    """Ablation 7: XNOR-Net per-filter scales vs plain BinaryNet.

    §II-B: scaling factors "improve the information capacity of the
    network at the cost of more trainable parameters"; the paper argues
    the simpler form suffices for this task. We train a µ-CNV-shaped
    model both ways at equal budget; hidden-layer scales still deploy
    for free (folded into thresholds — asserted in
    tests/test_nn_xnor_stochastic.py).
    """

    @pytest.fixture(scope="class")
    def xnor_results(self, ablation_splits):
        from repro.core.architectures import build_u_cnv
        from repro.nn.layers import BinaryConv2D, BinaryDense
        from repro.nn.layers.xnor import XnorConv2D, XnorDense

        results = {}
        for variant in ("binarynet", "xnor-net"):
            clf = BinaryCoP("u-cnv", rng=0)
            if variant == "xnor-net":
                # Swap hidden binary layers for their scaled versions;
                # the logits layer stays plain (hardware constraint).
                for name in clf.model.layer_names:
                    layer = clf.model[name]
                    if isinstance(layer, BinaryConv2D):
                        layer.__class__ = XnorConv2D
                    elif isinstance(layer, BinaryDense) and name != "fc2":
                        layer.__class__ = XnorDense
            clf.fit(
                ablation_splits,
                TrainingBudget(epochs=8, early_stopping_patience=None),
            )
            results[variant] = clf.evaluate(ablation_splits.test)["accuracy"]
        return results

    def test_report(self, xnor_results, capsys):
        with capsys.disabled():
            print()
            print(
                render_table(
                    ["weight binarisation", "test accuracy (8 epochs, u-cnv)"],
                    [[k, f"{v:.4f}"] for k, v in xnor_results.items()],
                    title="Ablation 7: BinaryNet vs XNOR-Net scaling",
                )
            )

    def test_both_variants_learn(self, xnor_results):
        for variant, acc in xnor_results.items():
            assert acc > 0.4, variant

    def test_gap_is_small(self, xnor_results):
        """The paper's §II-B judgement: for this low-scene-complexity
        task, scaling factors do not buy a decisive advantage."""
        gap = abs(xnor_results["xnor-net"] - xnor_results["binarynet"])
        assert gap < 0.25


class TestThresholdWidth:
    """Ablation 8: accuracy vs threshold storage width."""

    @pytest.fixture(scope="class")
    def width_sweep(self, ablation_splits):
        import copy

        from repro.hw.thresholding import quantize_spec

        clf = BinaryCoP("u-cnv", rng=0)
        clf.fit(
            ablation_splits, TrainingBudget(epochs=8, early_stopping_patience=None)
        )
        acc = clf.deploy()
        images = ablation_splits.test.images
        labels = ablation_splits.test.labels
        baseline = float((acc.predict(images) == labels).mean())
        results = {"exact": baseline}
        for bits in (4, 6, 8, 12, 16):
            quantised = copy.deepcopy(acc)
            for stage in quantised.stages:
                if stage.mvtu.thresholds is not None:
                    stage.mvtu.thresholds = quantize_spec(
                        stage.mvtu.thresholds, bits
                    )
            results[f"{bits}-bit"] = float(
                (quantised.predict(images) == labels).mean()
            )
        return results

    def test_report(self, width_sweep, capsys):
        with capsys.disabled():
            print()
            print(
                render_table(
                    ["threshold storage", "test accuracy (u-cnv)"],
                    [[k, f"{v:.4f}"] for k, v in width_sweep.items()],
                    title="Ablation 8: threshold bit-width",
                )
            )

    def test_wide_thresholds_lossless(self, width_sweep):
        """16-bit thresholds cover even the first layer's ±255·27
        accumulator range exactly; 12-bit is within a couple of points
        (only the 14-bit-range first layer gets snapped)."""
        assert width_sweep["16-bit"] == pytest.approx(width_sweep["exact"])
        assert width_sweep["12-bit"] >= width_sweep["exact"] - 0.03

    def test_narrow_thresholds_degrade_gracefully(self, width_sweep):
        assert width_sweep["6-bit"] > 0.3  # still usable
        assert width_sweep["4-bit"] <= width_sweep["8-bit"] + 0.05


class TestBalancingAblation:
    """Ablation 4: raw 51/39/5/5 training vs balanced training."""

    @pytest.fixture(scope="class")
    def balancing_results(self):
        results = {}
        for balanced in (True, False):
            splits = build_masked_face_dataset(
                raw_size=2500,
                rng=31,
                balance=balanced,
                augmented_copies=0,
            )
            clf = BinaryCoP("u-cnv", rng=0)
            clf.fit(
                splits, TrainingBudget(epochs=10, early_stopping_patience=None)
            )
            cm = clf.confusion(splits.test)
            results["balanced" if balanced else "raw"] = cm.per_class_recall()
        return results

    def test_report(self, balancing_results, capsys):
        rows = []
        for mode, recalls in balancing_results.items():
            rows.append([mode, *[f"{recalls[c]:.2f}" for c in CLASS_NAMES]])
        with capsys.disabled():
            print()
            print(
                render_table(
                    ["training data", *CLASS_NAMES],
                    rows,
                    title="Ablation 4: per-class recall, balanced vs raw data",
                )
            )

    def test_balanced_helps_minority_classes(self, balancing_results):
        """§IV-A: the raw distribution 'would heavily bias the training
        towards the two dominant classes' — balanced training must give
        better worst-class (minority) recall."""
        minority = CLASS_NAMES[2], CLASS_NAMES[3]  # N+M, Chin (5% each raw)

        def worst_minority(recalls):
            return min(recalls[c] for c in minority if not np.isnan(recalls[c]))

        assert worst_minority(balancing_results["balanced"]) >= worst_minority(
            balancing_results["raw"]
        ) - 0.05

    def test_raw_biases_dominant_classes(self, balancing_results):
        raw = balancing_results["raw"]
        dominant = np.nanmean([raw[CLASS_NAMES[0]], raw[CLASS_NAMES[1]]])
        minority = np.nanmean([raw[CLASS_NAMES[2]], raw[CLASS_NAMES[3]]])
        assert dominant > minority - 0.05
