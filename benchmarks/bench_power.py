"""§IV-B power — 1.6 W idle single-gate mode vs. active crowd mode.

Reproduces the paper's power claims: "all prototypes have an idle power
of around 1.6W" in single-entrance deployments (a classification fires
only when a subject passes), while crowd mode runs the pipeline at full
utilisation. Prints the idle/active/gate-average figures and the energy
per classification.
"""

import pytest

from repro.hw.pipeline import analyze_pipeline
from repro.hw.power import IDLE_POWER_W, PowerModel
from repro.hw.resources import estimate_resources
from repro.utils.tables import render_table


@pytest.fixture(scope="module")
def power_rows(all_bnn):
    model = PowerModel()
    rows = {}
    for name, clf in all_bnn.items():
        acc = clf.deploy()
        res = estimate_resources(acc, dsp_offload=(name == "u-cnv"))
        timing = analyze_pipeline(acc)
        active = model.estimate(res, clock_mhz=100.0, utilization=1.0)
        gate_avg = model.gate_mode_average_w(
            res,
            classifications_per_hour=1200,  # one subject every 3 s
            classification_us=timing.latency_us,
        )
        rows[name] = {
            "report": active,
            "gate_avg": gate_avg,
            "energy_mj": active.energy_per_classification_mj(timing.fps_calibrated),
            "fps": timing.fps_calibrated,
        }
    return rows


def test_regenerate_power_table(power_rows, capsys):
    table = []
    for name, row in power_rows.items():
        r = row["report"]
        table.append(
            [
                name,
                f"{r.idle_w:.2f}",
                f"{row['gate_avg']:.3f}",
                f"{r.active_w:.2f}",
                f"{r.dynamic_w:.2f}",
                f"{row['energy_mj']:.3f}",
            ]
        )
    with capsys.disabled():
        print()
        print(
            render_table(
                [
                    "config",
                    "idle W (paper ~1.6)",
                    "gate avg W",
                    "active W",
                    "dynamic W",
                    "mJ/classification",
                ],
                table,
                title="Power model @ 100 MHz",
            )
        )


def test_idle_power_is_paper_value(power_rows):
    for name, row in power_rows.items():
        assert row["report"].idle_w == pytest.approx(1.6), name


def test_gate_mode_average_near_idle(power_rows):
    """§IV-B: the single-gate deployment effectively draws idle power."""
    for name, row in power_rows.items():
        assert row["gate_avg"] == pytest.approx(IDLE_POWER_W, abs=0.02), name


def test_active_power_ordering(power_rows):
    """CNV (largest fabric) draws the most dynamic power."""
    dyn = {name: row["report"].dynamic_w for name, row in power_rows.items()}
    assert dyn["cnv"] > dyn["n-cnv"]
    assert dyn["cnv"] > dyn["u-cnv"]


def test_sub_millijoule_per_frame(power_rows):
    """High-rate mode classifies at well under a millijoule per face."""
    assert power_rows["n-cnv"]["energy_mj"] < 1.0


def test_power_model_speed(benchmark, all_bnn):
    acc = all_bnn["n-cnv"].deploy()
    res = estimate_resources(acc)
    model = PowerModel()
    report = benchmark(model.estimate, res)
    assert report.active_w > report.idle_w
