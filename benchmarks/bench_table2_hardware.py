"""Table II — hardware results of the design-space exploration.

Regenerates the paper's Table II (LUT / BRAM / DSP / accuracy per
prototype) from trained models: each prototype is compiled with its
Table I folding, costed by the resource model and evaluated on the test
split. Model outputs are printed next to the published values.

Shape assertions (per DESIGN.md): the LUT figures are exact (the model
was solved on them); BRAM is within tolerance; CNV has the highest
accuracy and LUT count; µ-CNV uses the fewest LUTs and fits the Z7010.
The absolute accuracies differ from the paper (synthetic data, laptop
training budget) — the ordering is what must hold.
"""

import pytest

from repro.hw.devices import Z7010
from repro.hw.pipeline import analyze_pipeline
from repro.hw.resources import TABLE2_CALIBRATION, estimate_resources
from repro.utils.tables import render_table


@pytest.fixture(scope="module")
def table2_rows(all_bnn, splits):
    rows = {}
    for name, clf in all_bnn.items():
        accelerator = clf.deploy()
        resources = estimate_resources(accelerator, dsp_offload=(name == "u-cnv"))
        hw_accuracy = float(
            (accelerator.predict(splits.test.images) == splits.test.labels).mean()
        )
        rows[name] = {
            "resources": resources,
            "hw_accuracy": hw_accuracy,
            "sw_accuracy": clf.evaluate(splits.test)["accuracy"],
        }
    return rows


def test_regenerate_table2(table2_rows, capsys):
    """Print the regenerated Table II with paper values side by side."""
    table = []
    for name in ("cnv", "n-cnv", "u-cnv"):
        row = table2_rows[name]
        res = row["resources"]
        paper = TABLE2_CALIBRATION[name]
        table.append(
            [
                name,
                f"{res.lut:,.0f}",
                f"{paper['lut']:,}",
                f"{res.bram36:.1f}",
                f"{paper['bram']}",
                res.dsp,
                int(paper["dsp"]),
                f"{100 * row['hw_accuracy']:.2f}",
                {"cnv": "98.10", "n-cnv": "93.94", "u-cnv": "93.78"}[name],
            ]
        )
    with capsys.disabled():
        print()
        print(
            render_table(
                [
                    "config",
                    "LUT (model)",
                    "LUT (paper)",
                    "BRAM (model)",
                    "BRAM (paper)",
                    "DSP (model)",
                    "DSP (paper)",
                    "Acc (ours)",
                    "Acc (paper)",
                ],
                table,
                title="Table II (regenerated; accuracy on synthetic test set)",
            )
        )


def test_lut_values_exact(table2_rows):
    for name, row in table2_rows.items():
        assert row["resources"].lut == pytest.approx(
            TABLE2_CALIBRATION[name]["lut"], abs=1.0
        )


def test_accuracy_ordering(table2_rows):
    """CNV is the most accurate prototype; all are far above chance."""
    acc = {name: row["hw_accuracy"] for name, row in table2_rows.items()}
    assert acc["cnv"] >= acc["n-cnv"] - 0.02
    assert acc["cnv"] >= acc["u-cnv"] - 0.02
    assert min(acc.values()) > 0.6


def test_hw_accuracy_tracks_sw_accuracy(table2_rows):
    """The deployed integer datapath loses (almost) nothing vs software."""
    for name, row in table2_rows.items():
        assert abs(row["hw_accuracy"] - row["sw_accuracy"]) < 0.02, name


def test_ucnv_fits_z7010(table2_rows):
    res = table2_rows["u-cnv"]["resources"]
    assert Z7010.fits(res.lut, res.bram36, res.dsp)
    for other in ("cnv", "n-cnv"):
        res = table2_rows[other]["resources"]
        assert not Z7010.fits(res.lut, res.bram36, res.dsp)


def test_compile_and_cost_speed(benchmark, cnv):
    """Timed kernel: full compile + resource estimate of CNV."""

    def compile_and_cost():
        acc = cnv.deploy()
        return estimate_resources(acc)

    res = benchmark(compile_and_cost)
    assert res.lut > 0
