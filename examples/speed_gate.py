#!/usr/bin/env python
"""Speed-gate stream demo: trigger-driven classification on approach video.

§I: BinaryCoP's throughput "easily enables multi-camera, speed-gate
settings". This example streams synthetic approach sequences (a subject
walking toward the gate camera) through the size+centredness trigger;
only the trigger frame wakes the accelerator — the duty-cycle figure at
the end is why the gate deployment runs at idle power (§IV-B).

Usage:
    python examples/speed_gate.py [--subjects 20] [--frames 12]
"""

import argparse

import numpy as np

from repro.core.zoo import dataset_cached, trained_classifier
from repro.data.mask_model import CLASS_NAMES
from repro.data.stream import GateTrigger, SpeedGateSimulator
from repro.hw.pipeline import analyze_pipeline
from repro.hw.power import PowerModel
from repro.hw.resources import estimate_resources


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--subjects", type=int, default=20)
    parser.add_argument("--frames", type=int, default=12,
                        help="camera frames per approach")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("loading (or training) n-CNV from the model zoo ...")
    clf = trained_classifier("n-cnv", splits=dataset_cached(),
                             dataset_key={"default_dataset": True})
    accelerator = clf.deploy()
    sim = SpeedGateSimulator(accelerator, GateTrigger())

    print(f"\nstreaming {args.subjects} approaches "
          f"({args.frames} frames each):\n")
    for i in range(args.subjects):
        d = sim.process_subject(rng=args.seed * 10_000 + i, n_frames=args.frames)
        if d.triggered:
            verdict = "ok  " if d.correct else "MISS"
            print(f"  subject {i + 1:3d}: triggered at frame "
                  f"{d.trigger_frame + 1:2d}/{args.frames}  "
                  f"true={CLASS_NAMES[int(d.truth)]:<8s}"
                  f"pred={CLASS_NAMES[int(d.predicted)]:<8s} [{verdict}]")
        else:
            print(f"  subject {i + 1:3d}: no trigger "
                  f"(never close/centred enough)")

    print(f"\ntrigger rate:           {sim.trigger_rate():.1%}")
    print(f"triggered accuracy:     {sim.accuracy():.1%}")
    duty = sim.duty_cycle()
    print(f"accelerator duty cycle: {duty:.1%} of streamed frames")
    res = estimate_resources(accelerator)
    power = PowerModel()
    active = power.estimate(res).active_w
    avg = duty * active + (1 - duty) * power.idle_w
    print(f"average power at this duty cycle: {avg:.2f} W "
          f"(idle {power.idle_w:.1f} W, active {active:.2f} W)")
    timing = analyze_pipeline(accelerator)
    print(f"headroom: one gate uses {1 / timing.fps_calibrated * 1e6:.0f} us "
          f"per classification; the same accelerator could serve "
          f"{timing.fps_calibrated:,.0f} gates/second in a multi-camera hub")


if __name__ == "__main__":
    main()
