#!/usr/bin/env python
"""Grad-CAM interpretability explorer (Figs 3–9 of the paper).

Renders controlled subjects for each wear class and generalization
factor, computes Grad-CAM at conv2_2 and prints:

* an ASCII heat map of the attention over the face,
* the attention distribution over anatomical bands,
* optionally writes PPM images of the overlays (``--save-dir``).

Usage:
    python examples/gradcam_explorer.py [--panel classes|age|hair|manipulation]
                                        [--save-dir out/]
"""

import argparse
from pathlib import Path

import numpy as np

from repro.core.gradcam import GradCAM, attention_band_profile
from repro.core.generalization import GENERALIZATION_PANELS
from repro.core.zoo import dataset_cached, trained_classifier
from repro.data.generator import FaceSampleGenerator, SampleSpec
from repro.data.mask_model import CLASS_NAMES, WearClass
from repro.utils import imaging

ASCII_RAMP = " .:-=+*#%@"


def ascii_heatmap(heatmap: np.ndarray, width: int = 32) -> str:
    """Render a [0,1] heat map as ASCII art."""
    hm = imaging.resize_bilinear(heatmap, (width // 2, width))
    hm = imaging.normalize01(hm)
    idx = (hm * (len(ASCII_RAMP) - 1)).astype(int)
    return "\n".join("".join(ASCII_RAMP[v] for v in row) for row in idx)


def save_ppm(path: Path, image: np.ndarray) -> None:
    """Write an RGB [0,1] image as a binary PPM (no external deps)."""
    data = imaging.to_uint8(image)
    with open(path, "wb") as fh:
        fh.write(f"P6 {data.shape[1]} {data.shape[0]} 255\n".encode())
        fh.write(data.tobytes())


def class_panel_cases():
    return [
        (CLASS_NAMES[int(wc)], SampleSpec(wear_class=wc)) for wc in WearClass
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--panel",
        default="classes",
        choices=["classes", "age", "hair", "manipulation"],
    )
    parser.add_argument("--save-dir", type=Path, default=None)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    print("loading (or training) CNV from the model zoo ...")
    clf = trained_classifier("cnv", splits=dataset_cached(),
                             dataset_key={"default_dataset": True})
    cam = GradCAM(clf.model, layer="conv2_2")
    generator = FaceSampleGenerator()

    if args.panel == "classes":
        cases = class_panel_cases()
    else:
        panel_key = {
            "age": "fig7_age",
            "hair": "fig8_hair_headgear",
            "manipulation": "fig9_manipulation",
        }[args.panel]
        cases = [(c.name, c.spec) for c in GENERALIZATION_PANELS[panel_key]]

    if args.save_dir:
        args.save_dir.mkdir(parents=True, exist_ok=True)

    rng = np.random.default_rng(args.seed)
    for name, spec in cases:
        sample = generator.generate_one(rng, spec)
        result = cam.compute(sample.image, target_class=int(sample.label))
        verdict = (
            "correct" if result.predicted_class == int(sample.label) else
            f"MISCLASSIFIED as {CLASS_NAMES[result.predicted_class]}"
        )
        profile = attention_band_profile(result, sample)
        top = max(profile, key=profile.get)
        print(f"\n=== {name}  (label {CLASS_NAMES[int(sample.label)]}, "
              f"prediction {verdict}) ===")
        print(ascii_heatmap(result.heatmap))
        print("attention bands: "
              + ", ".join(f"{k}={v:.0%}" for k, v in profile.items()))
        print(f"dominant region: {top}")
        if args.save_dir:
            base = args.save_dir / name.replace(" ", "_").lower()
            save_ppm(base.with_suffix(".raw.ppm"), sample.image)
            save_ppm(base.with_suffix(".cam.ppm"), result.overlay(sample.image))
            print(f"wrote {base}.raw.ppm and {base}.cam.ppm")


if __name__ == "__main__":
    main()
