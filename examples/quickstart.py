#!/usr/bin/env python
"""Quickstart: train a BinaryCoP prototype, evaluate it, deploy it.

Runs the full pipeline of the paper end-to-end at laptop scale:

1. generate a synthetic MaskedFace-Net-style dataset (§IV-A pipeline:
   raw imbalance -> balancing -> augmentation -> splits);
2. train the n-CNV binary network (latent weights + STE, §III-A);
3. evaluate (accuracy + confusion matrix, Fig. 2 style);
4. compile to the FINN-style accelerator with Table I folding and verify
   that the integer XNOR/threshold datapath agrees with software;
5. report the accelerator's throughput, resources and power (§IV-B).

Usage:
    python examples/quickstart.py [--arch n-cnv] [--raw-size 3000]
                                  [--epochs 15]
"""

import argparse
import time

import numpy as np

from repro import (
    BinaryCoP,
    TrainingBudget,
    analyze_pipeline,
    build_masked_face_dataset,
    estimate_resources,
)
from repro.hw.power import PowerModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--arch", default="n-cnv", choices=["cnv", "n-cnv", "u-cnv"])
    parser.add_argument("--raw-size", type=int, default=3000,
                        help="raw (pre-balancing) synthetic samples")
    parser.add_argument("--epochs", type=int, default=15)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"[1/5] generating synthetic MaskedFace-Net data "
          f"(raw_size={args.raw_size}) ...")
    t0 = time.perf_counter()
    splits = build_masked_face_dataset(raw_size=args.raw_size, rng=args.seed)
    print(f"      done in {time.perf_counter() - t0:.1f}s")
    print(splits.summary())

    print(f"\n[2/5] training BinaryCoP-{args.arch} for {args.epochs} epochs ...")
    clf = BinaryCoP(args.arch, rng=args.seed)
    budget = TrainingBudget(epochs=args.epochs, early_stopping_patience=None)
    t0 = time.perf_counter()
    clf.fit(splits, budget, verbose=True)
    print(f"      trained in {time.perf_counter() - t0:.1f}s")

    print("\n[3/5] evaluating on the held-out test split ...")
    cm = clf.confusion(splits.test)
    print(cm.render())
    print(f"test accuracy: {cm.overall_accuracy():.4f}")

    print("\n[4/5] compiling to the FINN-style accelerator (Table I folding) ...")
    accelerator = clf.deploy()
    sample = splits.test.images[:64]
    agreement = (accelerator.predict(sample) == clf.predict(sample)).mean()
    print(f"hardware/software prediction agreement on 64 images: {agreement:.1%}")

    print("\n[5/5] accelerator performance model @ 100 MHz:")
    timing = analyze_pipeline(accelerator)
    print(timing.report())
    resources = estimate_resources(accelerator)
    print(f"resources: {resources.report()}")
    power = PowerModel().estimate(resources)
    print(f"power: {power.report()}")


if __name__ == "__main__":
    main()
