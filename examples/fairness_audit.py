#!/usr/bin/env python
"""Fairness audit: accuracy parity across demographics and mask types.

§I of the paper: "To maintain equivalent classification accuracy for all
face structures, skin-tones, hair types, and mask types, the algorithms
must be able to generalize the relevant features over all subjects."

This example audits a trained prototype against that claim using
controlled cohorts: for each protected factor, subjects are rendered
with identical class schedules and nuisance seeds, differing *only* in
the audited attribute, so any accuracy gap is attributable to the
attribute itself.

Usage:
    python examples/fairness_audit.py [--arch cnv] [--samples 40]
"""

import argparse

from repro.core.fairness import FACTOR_COHORTS, evaluate_fairness
from repro.core.zoo import dataset_cached, trained_classifier


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--arch", default="cnv",
                        choices=["cnv", "n-cnv", "u-cnv", "fp32-cnv"])
    parser.add_argument("--samples", type=int, default=40,
                        help="subjects per cohort")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    print(f"loading (or training) {args.arch} from the model zoo ...")
    clf = trained_classifier(args.arch, splits=dataset_cached(),
                             dataset_key={"default_dataset": True})

    worst_overall = None
    for factor in FACTOR_COHORTS:
        report = evaluate_fairness(
            clf.model, factor, samples_per_cohort=args.samples, rng=args.seed
        )
        print()
        print(report.render())
        name, acc = report.worst
        print(f"-> worst cohort: {name} at {acc:.1%} "
              f"(disparity {report.disparity:.1%})")
        if worst_overall is None or acc < worst_overall[2]:
            worst_overall = (factor, name, acc)

    factor, name, acc = worst_overall
    print(f"\naudit summary: weakest cohort overall is {name} "
          f"({factor}) at {acc:.1%}")
    if acc > 0.5:
        print("verdict: no cohort collapses; the equivalence claim holds "
              "within the measured disparity bounds on synthetic data.")
    else:
        print("verdict: at least one cohort degrades substantially — "
              "consider rebalancing the generator toward it (the paper's "
              "remedy for class imbalance applies to attributes as well).")


if __name__ == "__main__":
    main()
