#!/usr/bin/env python
"""Telemetry demo: trace a served workload end to end, then read it back.

Walks the whole `repro.telemetry` surface in one sitting:

* activate a `Tracer` over a `SpanJournal` and serve gate-camera
  traffic — every request produces a connected span tree
  (`serving.request → serving.batch → serving.infer → hw.<stage>` when
  the accelerator backend runs);
* print the trace summary: per-kind latency percentiles, the
  slowest-stage table with the *modelled* (II-cycles argmax, what the
  board would bottleneck on) next to the *measured* (simulator wall
  time) bottleneck, and the critical path of the slowest request;
* export the same observations as Prometheus text and JSON metrics;
* run the health/readiness probes the server exposes for orchestration.

Usage:
    python examples/telemetry_demo.py [--rate 200] [--duration 2.0]
                                      [--sample-every 1] [--out trace.json]
"""

import argparse
from pathlib import Path

from repro.core.zoo import dataset_cached, trained_classifier
from repro.serving import (
    AcceleratorBackend,
    InferenceServer,
    ServingConfig,
    face_tile_pool,
    run_open_loop,
)
from repro.telemetry import (
    SpanJournal,
    TelemetryExporter,
    Tracer,
    activate,
    deactivate,
    summarize_spans,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=200.0,
                        help="offered load, requests/second")
    parser.add_argument("--duration", type=float, default=2.0,
                        help="seconds of open-loop traffic")
    parser.add_argument("--sample-every", type=int, default=1,
                        help="record every Nth request trace")
    parser.add_argument("--out", type=Path, default=None,
                        help="save the journal for `repro trace <out>`")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("loading (or training) n-CNV from the model zoo ...")
    clf = trained_classifier("n-cnv", splits=dataset_cached(),
                             dataset_key={"default_dataset": True})
    backend = AcceleratorBackend(clf.deploy())
    config = ServingConfig(max_batch_size=16, max_wait_ms=5.0,
                           queue_capacity=128, num_workers=2)
    tiles = face_tile_pool(16, rng=args.seed)

    # 1. Activate tracing. Everything downstream — server, workers, the
    # accelerator datapath — picks the tracer up ambiently.
    journal = SpanJournal()
    activate(Tracer(sample_every=args.sample_every, journal=journal))

    server = InferenceServer([backend], config)
    with server:
        # 2. Health probes: what an orchestrator would poll.
        print(server.health(smoke=True).render())
        print(f"\noffering {args.rate:,.0f} req/s for {args.duration:.1f}s ...")
        result = run_open_loop(server, tiles, rate_hz=args.rate,
                               duration_s=args.duration, rng=args.seed + 1)
        print(result.report())
        stats_source = server.stats

    deactivate()

    # 3. The trace summary: percentiles per span kind, the hardware
    # stage table (modelled vs measured bottleneck), the critical path.
    spans = journal.snapshot()
    print()
    print(summarize_spans(spans).render())

    # 4. The same observations as scrape-able metrics.
    exporter = TelemetryExporter(stats_source=stats_source, journal=journal)
    print("\n--- Prometheus exposition (first 12 lines) " + "-" * 20)
    print("\n".join(exporter.to_prometheus().splitlines()[:12]))

    if args.out is not None:
        path = journal.save(args.out)
        print(f"\nwrote {len(spans)} spans to {path} "
              f"(inspect with: python -m repro trace {path})")


if __name__ == "__main__":
    main()
