#!/usr/bin/env python
"""Generate the full reproduction report as a markdown document.

Collects everything a reviewer would ask for — accuracy vs the paper,
the regenerated Table II, confusion matrix, deployment profile
(throughput/resources/buffers/power/device fit) and the fairness audit —
into one file, using zoo-cached models (training them on first run).

Usage:
    python examples/generate_report.py [--out report.md]
                                       [--archs cnv n-cnv u-cnv fp32-cnv]
"""

import argparse
from pathlib import Path

from repro.core.reporting import build_report
from repro.core.zoo import dataset_cached, trained_classifier


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("report.md"))
    parser.add_argument(
        "--archs",
        nargs="+",
        default=["cnv", "n-cnv", "u-cnv", "fp32-cnv"],
        choices=["cnv", "n-cnv", "u-cnv", "fp32-cnv"],
    )
    parser.add_argument("--fairness-samples", type=int, default=24)
    args = parser.parse_args()

    splits = dataset_cached()
    classifiers = {}
    for arch in args.archs:
        print(f"loading (or training) {arch} ...")
        classifiers[arch] = trained_classifier(
            arch, splits=splits, dataset_key={"default_dataset": True}
        )

    print("assembling report ...")
    report = build_report(
        classifiers, splits, fairness_samples=args.fairness_samples
    )
    path = report.save(args.out)
    print(f"wrote {path} ({path.stat().st_size:,} bytes, "
          f"{len(report.sections)} sections)")


if __name__ == "__main__":
    main()
