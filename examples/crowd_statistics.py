#!/usr/bin/env python
"""Crowd mask-compliance statistics — the paper's high-throughput mode.

"This high-performance can be used to split large crowd images and
classify them at a high-rate to detect uncovered faces in a scene"
(§IV-B, ~6400 FPS on n-CNV). This example streams batches of face tiles
from simulated crowd scenes through the accelerator and aggregates
compliance statistics per scene.

Usage:
    python examples/crowd_statistics.py [--scenes 5] [--faces 64]
"""

import argparse

import numpy as np

from repro.core.deployment import CrowdAnalyzer
from repro.core.zoo import dataset_cached, trained_classifier
from repro.data.generator import FaceSampleGenerator
from repro.hw.pipeline import analyze_pipeline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenes", type=int, default=5)
    parser.add_argument("--faces", type=int, default=64,
                        help="face tiles per crowd scene")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("loading (or training) the n-CNV classifier from the model zoo ...")
    clf = trained_classifier("n-cnv", splits=dataset_cached(),
                             dataset_key={"default_dataset": True})
    accelerator = clf.deploy()
    crowd = CrowdAnalyzer(accelerator)
    timing = analyze_pipeline(accelerator)
    print(f"accelerator: {timing.fps_calibrated:,.0f} FPS calibrated "
          f"({timing.fps_analytic:,.0f} analytic) @ 100 MHz\n")

    generator = FaceSampleGenerator()
    rng = np.random.default_rng(args.seed)
    overall_counts = None
    for scene in range(args.scenes):
        # Each scene has its own (drifting) compliance level.
        compliance = float(rng.uniform(0.3, 0.9))
        probs = np.array([compliance] + [(1 - compliance) / 3] * 3)
        tiles, truth = generator.generate_batch(
            args.faces, rng, class_probabilities=probs
        )
        stats = crowd.analyze(tiles)
        true_rate = float((truth == 0).mean())
        print(f"scene {scene + 1}: {stats.report()}")
        print(f"         ground-truth compliance {true_rate:.1%} "
              f"(estimate error {abs(stats.compliance_rate - true_rate):.1%})")
        if overall_counts is None:
            overall_counts = dict(stats.class_counts)
        else:
            for k, v in stats.class_counts.items():
                overall_counts[k] += v

    total = sum(overall_counts.values())
    print("\naggregate over all scenes:")
    for name, count in overall_counts.items():
        print(f"  {name:<8s} {count:5d}  ({count / total:.1%})")


if __name__ == "__main__":
    main()
