#!/usr/bin/env python
"""Single-entrance gate deployment — the paper's low-power scenario.

"When deployed on a single entrance or gate, the idle power consumption
is reduced to 1.6W, improving the battery-life of the device" (§IV-B).

This example simulates a working day at an office entrance: subjects
arrive at random intervals, each triggering exactly one classification;
incorrectly masked subjects are asked to adjust. The power ledger shows
why the event-driven mode is effectively idle-power.

Usage:
    python examples/gate_monitor.py [--subjects 40] [--compliance 0.7]
"""

import argparse

import numpy as np

from repro.core.deployment import GateMonitor
from repro.core.zoo import dataset_cached, trained_classifier
from repro.data.generator import FaceSampleGenerator, SampleSpec
from repro.data.mask_model import CLASS_NAMES, WearClass


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--subjects", type=int, default=40)
    parser.add_argument("--compliance", type=float, default=0.7,
                        help="fraction of subjects wearing the mask correctly")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("loading (or training) the n-CNV classifier from the model zoo ...")
    clf = trained_classifier("n-cnv", splits=dataset_cached(),
                             dataset_key={"default_dataset": True})
    gate = GateMonitor(clf.deploy())

    rng = np.random.default_rng(args.seed)
    generator = FaceSampleGenerator()
    t = 0.0
    print(f"\nsimulating {args.subjects} subjects at the gate "
          f"(true compliance {args.compliance:.0%}):\n")
    correct_decisions = 0
    for i in range(args.subjects):
        t += float(rng.exponential(3.0))  # a subject every ~3 s
        if rng.random() < args.compliance:
            wear = WearClass.CORRECT
        else:
            wear = WearClass(int(rng.integers(1, 4)))
        sample = generator.generate_one(rng, SampleSpec(wear_class=wear))
        event = gate.process_subject(sample.image, timestamp_s=t)
        verdict = "ADMIT " if event.admitted else "ADJUST"
        truth = CLASS_NAMES[int(wear)]
        predicted = CLASS_NAMES[int(event.predicted_class)]
        ok = "ok " if predicted == truth else "MISS"
        correct_decisions += predicted == truth
        print(f"  t={t:7.1f}s  subject {i + 1:3d}  true={truth:<8s} "
              f"pred={predicted:<8s} -> {verdict} [{ok}]")

    print(f"\nadmission rate:        {gate.admission_rate():.1%}")
    print(f"classifier agreement:  {correct_decisions / args.subjects:.1%}")
    subjects_per_hour = args.subjects / (t / 3600.0)
    avg_power = gate.average_power_w(subjects_per_hour)
    print(f"traffic:               {subjects_per_hour:,.0f} subjects/hour")
    print(f"classification wake:   {gate.classification_us:,.0f} us per subject")
    print(f"average power draw:    {avg_power:.3f} W "
          f"(paper idle figure: ~1.6 W)")


if __name__ == "__main__":
    main()
