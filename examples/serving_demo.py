#!/usr/bin/env python
"""Serving demo: dynamic micro-batching under an open-loop arrival process.

The paper's deployment story — entrances serving crowds at up to
~6400 FPS — needs a request path, not just `predict()`. This example
stands up `repro.serving.InferenceServer` over a trained classifier,
replays synthetic gate-camera traffic (Poisson arrivals of face tiles
from `repro.data.stream`) at increasing offered loads, and prints what
the serving layer is for:

* throughput scales with offered load while the micro-batcher coalesces
  traffic (watch the mean batch size grow);
* a lone request still answers within ~`max_wait_ms` + one inference;
* past saturation the bounded queue *sheds load explicitly* instead of
  growing without bound — every rejection is counted, nothing blocks.

Usage:
    python examples/serving_demo.py [--rates 100 500 2000] [--duration 2.0]
"""

import argparse
import time

from repro.core.zoo import dataset_cached, trained_classifier
from repro.serving import InferenceServer, ServingConfig, face_tile_pool, run_open_loop


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rates", type=float, nargs="+",
                        default=[100.0, 500.0, 2000.0],
                        help="offered loads to sweep, requests/second")
    parser.add_argument("--duration", type=float, default=2.0,
                        help="seconds of traffic per offered load")
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=5.0)
    parser.add_argument("--queue-capacity", type=int, default=128)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("loading (or training) n-CNV from the model zoo ...")
    clf = trained_classifier("n-cnv", splits=dataset_cached(),
                             dataset_key={"default_dataset": True})
    config = ServingConfig(
        max_batch_size=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_capacity=args.queue_capacity,
        num_workers=2,
    )
    print(f"rendering a pool of gate-camera face tiles (seed {args.seed}) ...")
    tiles = face_tile_pool(24, rng=args.seed)

    # A lone request: latency is bounded by max_wait_ms + one inference.
    with InferenceServer.from_classifier(clf, config) as server:
        time.sleep(0.1)  # let workers reach their idle poll
        handle = server.submit(tiles[0])
        label = handle.result(timeout=5.0)
        print(f"\nlone request -> class {label} in {handle.latency_s * 1e3:.1f} ms "
              f"(deadline trigger: waited the full {args.max_wait_ms:.0f} ms window)")

    print("\nopen-loop sweep (Poisson arrivals, server may shed past saturation):")
    for rate in args.rates:
        with InferenceServer.from_classifier(clf, config) as server:
            result = run_open_loop(server, tiles, rate_hz=rate,
                                   duration_s=args.duration, rng=args.seed + 1)
            stats = server.stats()
        print(f"\n--- offered {rate:,.0f} req/s " + "-" * 30)
        print(result.report())
        print(f"mean batch size: {stats.mean_batch_size:.1f}")

    print("\nsame saturating load, batching disabled (max_batch_size=1):")
    config1 = ServingConfig(
        max_batch_size=1, max_wait_ms=0.0,
        queue_capacity=args.queue_capacity, num_workers=2,
    )
    with InferenceServer.from_classifier(clf, config1) as server:
        result1 = run_open_loop(server, tiles, rate_hz=max(args.rates),
                                duration_s=args.duration, rng=args.seed + 1)
    print(result1.report())
    print("\ndynamic batching vs batch-1 at saturation: "
          f"{result1.achieved_qps:,.0f} -> {result.achieved_qps:,.0f} QPS "
          f"({result.achieved_qps / max(result1.achieved_qps, 1e-9):.1f}x)")


if __name__ == "__main__":
    main()
