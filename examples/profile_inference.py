#!/usr/bin/env python
"""Per-layer profiling: software wall-clock vs hardware pipeline IIs.

Profiles a prototype's software forward pass layer by layer and places
the result next to the compiled accelerator's per-stage initiation
intervals — showing how differently the two substrates distribute their
time (BLAS loves the wide conv layers; the streaming pipeline is bounded
by whichever MVTU the folding under-provisioned).

Usage:
    python examples/profile_inference.py [--arch n-cnv] [--batch 16]
"""

import argparse

import numpy as np

from repro.core.zoo import dataset_cached, trained_classifier
from repro.hw.pipeline import analyze_pipeline
from repro.nn.profiler import LayerProfiler
from repro.utils.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--arch", default="n-cnv", choices=["cnv", "n-cnv", "u-cnv"])
    parser.add_argument("--batch", type=int, default=16)
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args()

    print(f"loading (or training) {args.arch} from the model zoo ...")
    clf = trained_classifier(args.arch, splits=dataset_cached(),
                             dataset_key={"default_dataset": True})
    clf.model.eval()

    rng = np.random.default_rng(0)
    x = (rng.integers(0, 256, (args.batch, 32, 32, 3)) / 255.0).astype(np.float32)

    print(f"\nsoftware forward profile (batch={args.batch}):")
    result = LayerProfiler(clf.model).profile(x, repeats=args.repeats)
    print(result.render())
    bottleneck = result.bottleneck()
    print(f"software bottleneck: {bottleneck.name} "
          f"({bottleneck.total_s / result.total_seconds():.0%} of time)")
    print(f"software MAC rate: {result.macs_per_second() * args.batch / 1e9:.2f} "
          f"GMAC/s (float path)")

    print("\nhardware pipeline (Table I folding, 100 MHz):")
    accelerator = clf.deploy()
    timing = analyze_pipeline(accelerator)
    rows = [
        [name, f"{ii:,}", f"{ii / timing.pipeline_interval:.0%}"]
        for name, ii in timing.stage_intervals
    ]
    print(render_table(["stage", "II (cycles)", "vs bottleneck"], rows))
    print(f"hardware bottleneck: {timing.bottleneck[0]} "
          f"-> {timing.fps_calibrated:,.0f} FPS calibrated")
    print("\nNote how the two substrates disagree: numpy spends its time "
          "where the GEMMs are largest, while the dataflow pipeline is "
          "bounded by the stage with the least parallel hardware.")


if __name__ == "__main__":
    main()
