#!/usr/bin/env python
"""Design-space exploration for a device budget (§IV-B).

Explores matched-throughput PE/SIMD foldings of a prototype, prints the
resource/throughput Pareto frontier with device-fit annotations, and
compares against the paper's Table I operating point — the workflow a
designer targeting a different Zynq part would follow.

Usage:
    python examples/design_space_exploration.py [--arch n-cnv]
                                                [--device XC7Z020]
"""

import argparse

from repro.core.zoo import dataset_cached, trained_classifier
from repro.core.architectures import table1_folding
from repro.hw.compiler import compile_model
from repro.hw.devices import DEVICES
from repro.hw.dse import explore, pareto_frontier
from repro.hw.pipeline import analyze_pipeline
from repro.hw.resources import estimate_resources
from repro.utils.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--arch", default="n-cnv", choices=["cnv", "n-cnv", "u-cnv"])
    parser.add_argument("--device", default="XC7Z020", choices=sorted(DEVICES))
    parser.add_argument("--clock-mhz", type=float, default=100.0)
    args = parser.parse_args()
    device = DEVICES[args.device]

    print(f"loading (or training) {args.arch} from the model zoo ...")
    clf = trained_classifier(args.arch, splits=dataset_cached(),
                             dataset_key={"default_dataset": True})

    targets = [1_000, 4_000, 16_000, 64_000, 256_000, 1_000_000]
    print(f"exploring matched-throughput foldings over {len(targets)} targets ...")
    points = explore(clf.model, targets, clock_mhz=args.clock_mhz, device=device)
    frontier = pareto_frontier(points)

    rows = [
        [
            f"{p.fps_analytic:,.0f}",
            f"{p.lut:,.0f}",
            f"{p.bram36:.1f}",
            p.dsp,
            p.bottleneck[0],
            "yes" if p.fits_device else "NO",
        ]
        for p in frontier
    ]
    print()
    print(render_table(
        ["FPS", "LUT", "BRAM", "DSP", "bottleneck", f"fits {device.name}"],
        rows,
        title=f"{args.arch} Pareto frontier @ {args.clock_mhz:.0f} MHz",
    ))

    # The paper's own operating point for comparison.
    acc = compile_model(clf.model, table1_folding(args.arch), name="table1")
    timing = analyze_pipeline(acc, args.clock_mhz)
    res = estimate_resources(acc, dsp_offload=(args.arch == "u-cnv"))
    print(f"\nTable I dimensioning: {timing.fps_analytic:,.0f} FPS analytic "
          f"({timing.fps_calibrated:,.0f} calibrated), {res.report()}")
    util = device.utilisation(res.lut, res.bram36, res.dsp)
    print(f"{device.name} utilisation: "
          + ", ".join(f"{k}={v:.0%}" for k, v in util.items()))


if __name__ == "__main__":
    main()
