"""Perf-regression harness: kernel, stage, and end-to-end throughput.

The paper's efficiency claim is only checkable if the simulator's speed
is *tracked*: this module times the bit-pack kernels, the XNOR+popcount
GEMM, the per-stage datapath, and end-to-end classification FPS for the
Table I prototypes, and records the results as a machine-readable
trajectory in ``BENCH_throughput.json``. Every ``repro bench`` run
appends one entry and compares it against the previous run with a
configurable tolerance, so a datapath change that silently regresses
throughput fails loudly instead of rotting.

The harness deliberately uses *untrained* models with randomised
batch-norm statistics (:func:`repro.testing.randomize_bn_stats`):
datapath throughput does not depend on the weight values, and skipping
training keeps the bench runnable in seconds.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.architectures import build_architecture, table1_folding
from repro.hw.bitpack import pack_bits, unpack_bits
from repro.hw.compiler import FinnAccelerator, compile_model
from repro.hw.xnor_kernels import xnor_matmul_popcount
from repro.testing import randomize_bn_stats

__all__ = [
    "SCHEMA",
    "BENCH_ARCHS",
    "BENCH_SECTIONS",
    "GEMM_SHAPES",
    "run_bench",
    "load_doc",
    "append_run",
    "save_doc",
    "validate_run",
    "validate_doc",
    "compare_runs",
    "compare_to_best",
    "render_run",
    "render_comparison",
]

#: Version tag written into (and required from) ``BENCH_throughput.json``.
SCHEMA = "repro-bench-throughput/v1"

#: Architectures benchmarked by a full run, in Table I order.
BENCH_ARCHS: Tuple[str, ...] = ("cnv", "n-cnv", "u-cnv")

#: Selectable benchmark sections (``repro bench --sections``), in the
#: order a full run records them. ``stages`` and ``e2e`` share the
#: compiled accelerators, but each can be requested alone.
BENCH_SECTIONS: Tuple[str, ...] = (
    "kernels",
    "stages",
    "e2e",
    "plan",
    "parallel",
    "telemetry",
    "generation",
    "training",
)

#: XNOR GEMM operand shapes: (name, vectors, fan_in, neurons). conv2_2
#: and fc1 of CNV (the bench_xnor_kernels shapes) plus conv1_2 at a
#: realistic batch — the widest and the most vector-heavy layers.
GEMM_SHAPES: Tuple[Tuple[str, int, int, int], ...] = (
    ("cnv-conv1_2", 900, 576, 64),
    ("cnv-conv2_2", 144, 1152, 128),
    ("cnv-fc1", 64, 256, 512),
)

#: Bit tensor shape for the pack/unpack kernel bench (CNV conv2_2 rows).
BITPACK_SHAPE: Tuple[int, int] = (4096, 1152)

#: Training benchmark config: CNV at the paper's 32x32 input resolution.
TRAIN_BENCH: Dict = {"arch": "cnv", "batch_size": 32, "steps": 8}

#: Generation benchmark sizing (samples rendered, raw size for the cache
#: round-trip). Worker count is ``min(4, cpu_count)`` at run time.
GEN_BENCH: Dict = {"samples": 48, "cache_raw_size": 200}

#: Telemetry-overhead benchmark config: the arch whose datapath is timed
#: under each tracing mode, and the sparse sampling rate measured.
TELEMETRY_BENCH: Dict = {"arch": "u-cnv", "sample_every": 64}

#: Process-pool benchmark config: worker cap (actual count is
#: ``min(max_workers, host cores)``) and how many batches are kept in
#: flight per worker while timing.
PARALLEL_BENCH: Dict = {"arch": "u-cnv", "max_workers": 4, "inflight_per_worker": 2}


def _best_seconds(fn, repeats: int, warmup: int = 1) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` after ``warmup`` calls."""
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_bitpack(rng: np.ndarray, shape: Tuple[int, int], repeats: int) -> Dict:
    bits = rng.random(shape) < 0.5
    packed = pack_bits(bits)
    pack_s = _best_seconds(lambda: pack_bits(bits), repeats)
    unpack_s = _best_seconds(lambda: unpack_bits(packed), repeats)
    nbits = float(np.prod(shape))
    return {
        "pack_bits": {
            "shape": list(shape),
            "seconds": pack_s,
            "gbits_per_s": nbits / pack_s / 1e9,
        },
        "unpack_bits": {
            "shape": list(shape),
            "seconds": unpack_s,
            "gbits_per_s": nbits / unpack_s / 1e9,
        },
    }


def _bench_gemm(
    rng, shapes: Sequence[Tuple[str, int, int, int]], repeats: int
) -> Dict:
    out = {}
    for name, vectors, fan_in, neurons in shapes:
        a = pack_bits(rng.random((vectors, fan_in)) < 0.5)
        w = pack_bits(rng.random((neurons, fan_in)) < 0.5)
        seconds = _best_seconds(lambda: xnor_matmul_popcount(a, w), repeats)
        ops = 2.0 * vectors * fan_in * neurons  # XNOR + accumulate
        out[name] = {
            "vectors": vectors,
            "fan_in": fan_in,
            "neurons": neurons,
            "seconds": seconds,
            "gops_per_s": ops / seconds / 1e9,
        }
    return out


def _bench_accelerator(
    accelerator: FinnAccelerator, images: np.ndarray, repeats: int
) -> Tuple[List[Dict], Dict]:
    """(per-stage timings, end-to-end summary) for one compiled design."""
    n = images.shape[0]
    e2e_s = _best_seconds(lambda: accelerator.execute(images), repeats)
    stage_seconds: List[Tuple[str, float]] = []
    accelerator.execute(images, stage_seconds=stage_seconds)
    stages = [
        {"name": name, "seconds": seconds} for name, seconds in stage_seconds
    ]
    e2e = {"images": n, "seconds": e2e_s, "fps": n / e2e_s}
    return stages, e2e


def _bench_generation(seed: int, samples: int, cache_raw_size: int) -> Dict:
    """Dataset-generation throughput: serial vs pooled render, cold vs
    warm cache round-trip through :func:`build_masked_face_dataset`."""
    import tempfile

    from repro.data.dataset import build_masked_face_dataset
    from repro.data.generator import FaceSampleGenerator

    workers = min(4, os.cpu_count() or 1)
    generator = FaceSampleGenerator()

    start = time.perf_counter()
    generator.generate_batch(samples, np.random.default_rng(seed))
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    generator.generate_batch(samples, np.random.default_rng(seed), num_workers=workers)
    parallel_s = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        start = time.perf_counter()
        build_masked_face_dataset(raw_size=cache_raw_size, rng=seed, cache_dir=tmp)
        cold_s = time.perf_counter() - start
        # Warm load is a few ms of filesystem work — single-shot numbers
        # drift with page-cache state, so take best-of-3 like the other
        # timed sections.
        warm_s = _best_seconds(
            lambda: build_masked_face_dataset(
                raw_size=cache_raw_size, rng=seed, cache_dir=tmp
            ),
            repeats=3,
            warmup=1,
        )

    return {
        "samples": samples,
        "serial": {"seconds": serial_s, "samples_per_s": samples / serial_s},
        "parallel": {
            "workers": workers,
            "seconds": parallel_s,
            "samples_per_s": samples / parallel_s,
            "speedup_vs_serial": serial_s / parallel_s,
        },
        "cache": {
            "raw_size": cache_raw_size,
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "warm_speedup": cold_s / warm_s,
        },
    }


def _bench_training(seed: int, arch: str, batch_size: int, steps: int) -> Dict:
    """Training-step throughput, with and without the buffer arena.

    The two configurations are bit-identical in their numerics (pinned by
    tests), so ``arena_speedup`` isolates exactly what buffer reuse buys.
    """
    from repro.nn import Adam, Trainer

    n = batch_size * steps
    gen = np.random.default_rng(seed)
    x = gen.normal(size=(n, 32, 32, 3)).astype(np.float32)
    y = gen.integers(0, 4, size=n).astype(np.int64)

    result: Dict = {"arch": arch, "batch_size": batch_size, "steps": steps}
    for key, use_arena in (("baseline", False), ("arena", True)):
        model = build_architecture(arch, rng=seed)
        trainer = Trainer(
            model, Adam(model.parameters(), lr=0.01), use_arena=use_arena
        )
        epoch_rng = np.random.default_rng(seed + 1)
        warm = min(n, 2 * batch_size)
        trainer.train_epoch(x[:warm], y[:warm], batch_size, epoch_rng)
        start = time.perf_counter()
        trainer.train_epoch(x, y, batch_size, epoch_rng)
        epoch_s = time.perf_counter() - start
        result[key] = {
            "epoch_seconds": epoch_s,
            "steps_per_s": steps / epoch_s,
            "samples_per_s": n / epoch_s,
        }
    result["arena_speedup"] = (
        result["arena"]["steps_per_s"] / result["baseline"]["steps_per_s"]
    )
    return result


def _bench_telemetry(
    accelerator: FinnAccelerator,
    images: np.ndarray,
    repeats: int,
    sample_every: int,
) -> Dict:
    """Datapath throughput under each tracing mode: off / sampled / full.

    ``baseline`` and ``off`` are both measured with no tracer active —
    their gap is pure run-to-run noise, which is exactly the claim being
    pinned: instrumented-but-disabled code costs nothing beyond noise.
    ``sampled`` and ``full`` then quantify what turning tracing on buys
    you into.
    """
    from repro.telemetry import SpanJournal, Tracer, activate, deactivate

    n = images.shape[0]
    # One mode run is a single ~tens-of-ms execute; a couple of repeats
    # is pure noise at the 2-5% resolution this section pins down.
    repeats = max(repeats, 10)
    deactivate()  # make sure no ambient tracer leaks into the baseline
    baseline_s = _best_seconds(lambda: accelerator.execute(images), repeats)
    off_s = _best_seconds(lambda: accelerator.execute(images), repeats)
    result: Dict = {
        "arch": accelerator.name,
        "images": n,
        "baseline": {"seconds": baseline_s, "fps": n / baseline_s},
        "off": {
            "seconds": off_s,
            "fps": n / off_s,
            "overhead_vs_baseline": off_s / baseline_s - 1.0,
        },
    }
    for key, every in (("sampled", sample_every), ("full", 1)):
        journal = SpanJournal()
        activate(Tracer(sample_every=every, journal=journal))
        try:
            mode_s = _best_seconds(lambda: accelerator.execute(images), repeats)
        finally:
            deactivate()
        result[key] = {
            "sample_every": every,
            "seconds": mode_s,
            "fps": n / mode_s,
            "overhead_vs_off": mode_s / off_s - 1.0,
            "spans": len(journal),
        }
    return result


def _bench_plan(
    accelerator: FinnAccelerator, images: np.ndarray, repeats: int
) -> Dict:
    """Planned vs interpreted datapath for one compiled design.

    ``steady_state_alloc_blocks`` is the tracemalloc-measured heap
    allocation count per planned call after warm-up — the tentpole's
    zero-allocation claim, recorded in the trajectory so it gates.

    Both timings dispatch through the :mod:`repro.runtime` registry, so
    the trajectory comparison (``compare_to_best``) also gates the
    registry's dispatch overhead: planned FPS through ``run()`` must
    stay within tolerance of the raw-plan runs recorded before the
    runtime layer existed. ``raw_plan`` keeps the no-dispatch kernel
    time so the overhead itself is visible in the record.
    """
    from repro.hw.plan import measure_steady_state, plan_unsupported_reason
    from repro.runtime import ExecutionConfig

    reason = plan_unsupported_reason(accelerator)
    if reason is not None:
        return {"supported": False, "reason": reason}
    n = images.shape[0]
    interpreted = ExecutionConfig(use_plan=False)
    planned = ExecutionConfig()
    unplanned_s = _best_seconds(
        lambda: accelerator.run(images, interpreted), repeats
    )
    plan, _ = accelerator.plans.get(n)
    out = np.empty_like(plan.execute(images))
    raw_s = _best_seconds(lambda: plan.execute(images, out=out), repeats)
    planned_s = _best_seconds(
        lambda: accelerator.run(images, planned), repeats
    )
    report = measure_steady_state(lambda: plan.execute(images, out=out))
    return {
        "supported": True,
        "images": n,
        "unplanned": {"seconds": unplanned_s, "fps": n / unplanned_s},
        "planned": {"seconds": planned_s, "fps": n / planned_s},
        "raw_plan": {
            "seconds": raw_s,
            "fps": n / raw_s,
            "dispatch_overhead": planned_s / raw_s - 1.0,
        },
        "speedup": unplanned_s / planned_s,
        "steady_state_alloc_blocks": report.per_call_blocks,
        "arena_kib": round(plan.arena_nbytes / 1024, 3),
        "fused_stages": plan.fused_stages,
    }


def _bench_parallel(
    accelerator: FinnAccelerator,
    images: np.ndarray,
    repeats: int,
    max_workers: int,
    inflight_per_worker: int,
) -> Dict:
    """Single-process planned FPS vs. the multi-process pool.

    The pool is timed with ``inflight_per_worker`` batches in flight per
    worker (an open-loop feed, so slot hand-off overlaps compute — how
    the serving layer drives it). Logits are checked bit-exact against
    the single-process plan before any timing is trusted. On a 1-core
    host the section still records (workers degrade to 1) but
    ``compare_to_best`` only gates it between runs on identical hosts.
    """
    from repro.hw.plan import plan_unsupported_reason
    from repro.parallel import logical_cpu_count
    from repro.runtime import ExecutionConfig, create_engine

    reason = plan_unsupported_reason(accelerator)
    if reason is not None:
        return {"supported": False, "reason": reason}
    n = images.shape[0]
    workers = max(1, min(max_workers, logical_cpu_count()))
    inflight = workers * inflight_per_worker

    plan, _ = accelerator.plans.get(n)
    ref = plan.execute(images)
    out = np.empty_like(ref)
    single_s = _best_seconds(lambda: plan.execute(images, out=out), repeats)

    engine = create_engine(
        accelerator,
        ExecutionConfig(
            isolation="process", workers=workers, max_batch=n,
            bucket_sizes=(n,), slots=inflight,
        ),
    )
    try:
        pool = engine.pool
        if not np.array_equal(pool.submit(images).result(timeout=120.0), ref):
            raise RuntimeError(
                "process pool logits diverge from the single-process plan"
            )

        def feed() -> None:
            tasks = [pool.submit(images) for _ in range(inflight)]
            for task in tasks:
                task.result(timeout=120.0)

        pool_s = _best_seconds(feed, repeats)
    finally:
        engine.close()
    return {
        "supported": True,
        "images": n,
        "workers": workers,
        "inflight": inflight,
        "single": {"seconds": single_s, "fps": n / single_s},
        "pool": {
            "seconds": pool_s,
            "fps": n * inflight / pool_s,
        },
        "speedup_vs_single": single_s * inflight / pool_s,
        "bit_exact": True,
    }


def run_bench(
    archs: Sequence[str] = BENCH_ARCHS,
    images: int = 16,
    repeats: int = 2,
    seed: int = 0,
    smoke: bool = False,
    sections: Optional[Sequence[str]] = None,
) -> Dict:
    """One benchmark run; returns the run record (see :data:`SCHEMA`).

    ``smoke`` shrinks every workload to sanity-gate scale (one small
    architecture, two images, single repeat) — fast enough for CI, still
    exercising every timed code path. ``sections`` restricts the run to a
    subset of :data:`BENCH_SECTIONS` (default: all); unknown names raise
    ``ValueError``. Partial runs are for iterating on one section — the
    CLI refuses to append them to the trajectory.
    """
    if images <= 0:
        raise ValueError(f"images must be positive, got {images}")
    if sections is None:
        selected = set(BENCH_SECTIONS)
    else:
        selected = set(sections)
        unknown = selected - set(BENCH_SECTIONS)
        if unknown:
            raise ValueError(
                f"unknown bench section(s) {sorted(unknown)!r}; "
                f"known: {', '.join(BENCH_SECTIONS)}"
            )
        if not selected:
            raise ValueError("sections must name at least one section")
    if smoke:
        archs = ("u-cnv",)
        images = min(images, 2)
        repeats = 1
        gemm_shapes = (("smoke-fc", 8, 256, 32),)
        bitpack_shape = (64, 256)
        gen_cfg = {"samples": 6, "cache_raw_size": 40}
        train_cfg = {"arch": "u-cnv", "batch_size": 8, "steps": 2}
    else:
        gemm_shapes = GEMM_SHAPES
        bitpack_shape = BITPACK_SHAPE
        gen_cfg = dict(GEN_BENCH)
        train_cfg = dict(TRAIN_BENCH)
    for arch in archs:
        if arch not in BENCH_ARCHS:
            raise ValueError(f"unknown bench architecture {arch!r}")

    rng = np.random.default_rng(seed)
    run: Dict = {
        "timestamp": time.time(),
        "label": "smoke" if smoke else "full",
        "sections": [s for s in BENCH_SECTIONS if s in selected],
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }
    from repro.parallel import host_info

    run["host"] = host_info()
    if "kernels" in selected:
        run["kernels"] = _bench_bitpack(rng, bitpack_shape, repeats)
        run["kernels"]["xnor_gemm"] = _bench_gemm(rng, gemm_shapes, repeats)

    batch = rng.random((images, 32, 32, 3)).astype(np.float32)
    datapath = selected & {"stages", "e2e", "plan"}
    if datapath:
        if "stages" in selected:
            run["stages"] = {}
        if "e2e" in selected:
            run["e2e"] = {}
        if "plan" in selected:
            run["plan"] = {}
        for arch in archs:
            model = build_architecture(arch, rng=seed)
            randomize_bn_stats(model, seed=seed + 1)
            model.eval()
            accelerator = compile_model(model, table1_folding(arch), name=arch)
            if selected & {"stages", "e2e"}:
                stages, e2e = _bench_accelerator(accelerator, batch, repeats)
                if "stages" in selected:
                    run["stages"][arch] = stages
                if "e2e" in selected:
                    run["e2e"][arch] = e2e
            if "plan" in selected:
                run["plan"][arch] = _bench_plan(accelerator, batch, repeats)

    if "parallel" in selected:
        par_cfg = dict(PARALLEL_BENCH)
        par_arch = par_cfg.pop("arch")
        model = build_architecture(par_arch, rng=seed)
        randomize_bn_stats(model, seed=seed + 1)
        model.eval()
        par_acc = compile_model(model, table1_folding(par_arch), name=par_arch)
        run["parallel"] = _bench_parallel(par_acc, batch, repeats, **par_cfg)

    if "telemetry" in selected:
        tel_cfg = dict(TELEMETRY_BENCH)
        tel_arch = tel_cfg.pop("arch")
        model = build_architecture(tel_arch, rng=seed)
        randomize_bn_stats(model, seed=seed + 1)
        model.eval()
        tel_acc = compile_model(model, table1_folding(tel_arch), name=tel_arch)
        run["telemetry"] = _bench_telemetry(tel_acc, batch, repeats, **tel_cfg)

    if "generation" in selected:
        run["generation"] = _bench_generation(seed, **gen_cfg)
    if "training" in selected:
        run["training"] = _bench_training(seed, **train_cfg)
    validate_run(run)
    return run


# -- schema ------------------------------------------------------------------
def validate_run(run: Dict) -> None:
    """Raise ``ValueError`` unless ``run`` has the expected shape.

    Runs without a ``sections`` list (trajectory entries predating
    section selection) must carry the classic kernels/stages/e2e core;
    sectioned runs must carry exactly what their ``sections`` name, and
    every present section is validated either way.
    """
    if not isinstance(run, dict):
        raise ValueError("run must be a mapping")
    required = ("timestamp", "label")
    if "sections" in run:
        if not isinstance(run["sections"], list) or not run["sections"]:
            raise ValueError("run.sections must be a non-empty list")
        unknown = set(run["sections"]) - set(BENCH_SECTIONS)
        if unknown:
            raise ValueError(f"run.sections has unknown names {sorted(unknown)!r}")
        required += tuple(run["sections"])
    else:
        required += ("kernels", "stages", "e2e")
    for key in required:
        if key not in run:
            raise ValueError(f"run is missing {key!r}")
    if "kernels" in run:
        for kernel in ("pack_bits", "unpack_bits", "xnor_gemm"):
            if kernel not in run["kernels"]:
                raise ValueError(f"run.kernels is missing {kernel!r}")
        for name in ("pack_bits", "unpack_bits"):
            if not run["kernels"][name].get("seconds", 0) > 0:
                raise ValueError(f"kernel {name!r} has no positive 'seconds'")
        for name, entry in run["kernels"]["xnor_gemm"].items():
            if not entry.get("seconds", 0) > 0:
                raise ValueError(f"xnor_gemm {name!r} has no positive 'seconds'")
    if "e2e" in run:
        if not run["e2e"]:
            raise ValueError("run.e2e is empty")
        for arch, entry in run["e2e"].items():
            for key in ("images", "seconds", "fps"):
                if key not in entry:
                    raise ValueError(f"e2e[{arch!r}] is missing {key!r}")
            if not entry["fps"] > 0:
                raise ValueError(f"e2e[{arch!r}].fps must be positive")
            if "stages" in run and arch not in run["stages"]:
                raise ValueError(f"run.stages is missing {arch!r}")
    if "stages" in run:
        for arch, stages in run["stages"].items():
            for stage in stages:
                if "name" not in stage or not stage.get("seconds", -1) >= 0:
                    raise ValueError(f"malformed stage entry in {arch!r}")
    if "plan" in run:
        if not run["plan"]:
            raise ValueError("run.plan is empty")
        for arch, entry in run["plan"].items():
            if not entry.get("supported", False):
                if "reason" not in entry:
                    raise ValueError(f"plan[{arch!r}] unsupported without reason")
                continue
            for section in ("planned", "unplanned"):
                if not entry.get(section, {}).get("fps", 0) > 0:
                    raise ValueError(
                        f"plan[{arch!r}].{section} has no positive 'fps'"
                    )
            if "steady_state_alloc_blocks" not in entry:
                raise ValueError(
                    f"plan[{arch!r}] is missing 'steady_state_alloc_blocks'"
                )
    if "parallel" in run:
        par = run["parallel"]
        if not par.get("supported", False):
            if "reason" not in par:
                raise ValueError("run.parallel unsupported without reason")
        else:
            for section in ("single", "pool"):
                if not par.get(section, {}).get("fps", 0) > 0:
                    raise ValueError(
                        f"parallel.{section} has no positive 'fps'"
                    )
            if not par.get("workers", 0) > 0:
                raise ValueError("parallel has no positive 'workers'")
            if par.get("bit_exact") is not True:
                raise ValueError(
                    "parallel.bit_exact must be True — the pool FPS of a "
                    "diverging datapath is meaningless"
                )
    # Generation/training sections are optional (older trajectory entries
    # predate them) but validated whenever present.
    if "generation" in run:
        gen = run["generation"]
        for section in ("serial", "parallel"):
            if not gen.get(section, {}).get("samples_per_s", 0) > 0:
                raise ValueError(
                    f"generation.{section} has no positive 'samples_per_s'"
                )
        cache = gen.get("cache", {})
        for key in ("cold_seconds", "warm_seconds"):
            if not cache.get(key, 0) > 0:
                raise ValueError(f"generation.cache has no positive {key!r}")
    if "training" in run:
        train = run["training"]
        for section in ("baseline", "arena"):
            if not train.get(section, {}).get("steps_per_s", 0) > 0:
                raise ValueError(
                    f"training.{section} has no positive 'steps_per_s'"
                )
    if "telemetry" in run:
        tel = run["telemetry"]
        for section in ("baseline", "off", "sampled", "full"):
            if not tel.get(section, {}).get("fps", 0) > 0:
                raise ValueError(
                    f"telemetry.{section} has no positive 'fps'"
                )
        for section in ("sampled", "full"):
            if "overhead_vs_off" not in tel[section]:
                raise ValueError(
                    f"telemetry.{section} is missing 'overhead_vs_off'"
                )


def validate_doc(doc: Dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a valid trajectory file."""
    if not isinstance(doc, dict):
        raise ValueError("document must be a mapping")
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"schema mismatch: expected {SCHEMA!r}, got {doc.get('schema')!r}"
        )
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        raise ValueError("document has no runs")
    for run in runs:
        validate_run(run)


def load_doc(path: Path) -> Optional[Dict]:
    """The existing trajectory at ``path`` (validated), or ``None``."""
    path = Path(path)
    if not path.exists():
        return None
    doc = json.loads(path.read_text())
    validate_doc(doc)
    return doc


def append_run(doc: Optional[Dict], run: Dict) -> Dict:
    """Append ``run`` to ``doc`` (creating a fresh trajectory if None)."""
    validate_run(run)
    if doc is None:
        doc = {"schema": SCHEMA, "runs": []}
    doc["runs"].append(run)
    return doc


def save_doc(doc: Dict, path: Path) -> Path:
    validate_doc(doc)
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


# -- comparison --------------------------------------------------------------
def compare_runs(prev: Dict, cur: Dict, tolerance: float = 0.25) -> List[Dict]:
    """Metric-by-metric comparison of two runs.

    Returns one record per shared metric with the speedup ratio
    (``> 1`` means the current run is faster) and a ``regressed`` flag
    set when the current run is more than ``tolerance`` slower (for
    timed kernels) or lower-throughput (for end-to-end FPS).
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    out: List[Dict] = []

    def add(metric: str, prev_val: float, cur_val: float, higher_is_better: bool):
        ratio = (cur_val / prev_val) if higher_is_better else (prev_val / cur_val)
        out.append(
            {
                "metric": metric,
                "previous": prev_val,
                "current": cur_val,
                "speedup": ratio,
                "regressed": ratio < 1.0 - tolerance,
            }
        )

    prev_kernels = prev.get("kernels", {})
    cur_kernels = cur.get("kernels", {})
    for name in ("pack_bits", "unpack_bits"):
        if name in prev_kernels and name in cur_kernels:
            add(
                f"kernel.{name}.seconds",
                prev_kernels[name]["seconds"],
                cur_kernels[name]["seconds"],
                higher_is_better=False,
            )
    prev_gemm = prev_kernels.get("xnor_gemm", {})
    cur_gemm = cur_kernels.get("xnor_gemm", {})
    for name in sorted(set(prev_gemm) & set(cur_gemm)):
        add(
            f"kernel.xnor_gemm.{name}.seconds",
            prev_gemm[name]["seconds"],
            cur_gemm[name]["seconds"],
            higher_is_better=False,
        )
    for arch in sorted(set(prev.get("e2e", {})) & set(cur.get("e2e", {}))):
        add(
            f"e2e.{arch}.fps",
            prev["e2e"][arch]["fps"],
            cur["e2e"][arch]["fps"],
            higher_is_better=True,
        )
    prev_plan, cur_plan = prev.get("plan", {}), cur.get("plan", {})
    for arch in sorted(set(prev_plan) & set(cur_plan)):
        p, c = prev_plan[arch], cur_plan[arch]
        if p.get("supported") and c.get("supported"):
            add(
                f"plan.{arch}.planned.fps",
                p["planned"]["fps"],
                c["planned"]["fps"],
                higher_is_better=True,
            )
    prev_par, cur_par = prev.get("parallel"), cur.get("parallel")
    if (
        prev_par
        and cur_par
        and prev_par.get("supported")
        and cur_par.get("supported")
        # Pool FPS only compares like-for-like: the same worker count on
        # the same host class (compare_to_best additionally refuses
        # cross-core-count gating at the run level).
        and prev_par.get("workers") == cur_par.get("workers")
    ):
        add(
            "parallel.pool.fps",
            prev_par["pool"]["fps"],
            cur_par["pool"]["fps"],
            higher_is_better=True,
        )
        add(
            "parallel.single.fps",
            prev_par["single"]["fps"],
            cur_par["single"]["fps"],
            higher_is_better=True,
        )
    prev_gen, cur_gen = prev.get("generation"), cur.get("generation")
    if prev_gen and cur_gen:
        for section in ("serial", "parallel"):
            add(
                f"generation.{section}.samples_per_s",
                prev_gen[section]["samples_per_s"],
                cur_gen[section]["samples_per_s"],
                higher_is_better=True,
            )
        add(
            "generation.cache.warm_seconds",
            prev_gen["cache"]["warm_seconds"],
            cur_gen["cache"]["warm_seconds"],
            higher_is_better=False,
        )
    prev_train, cur_train = prev.get("training"), cur.get("training")
    if prev_train and cur_train and prev_train.get("arch") == cur_train.get("arch"):
        for section in ("baseline", "arena"):
            add(
                f"training.{section}.steps_per_s",
                prev_train[section]["steps_per_s"],
                cur_train[section]["steps_per_s"],
                higher_is_better=True,
            )
    prev_tel, cur_tel = prev.get("telemetry"), cur.get("telemetry")
    if prev_tel and cur_tel and prev_tel.get("arch") == cur_tel.get("arch"):
        for section in ("off", "sampled", "full"):
            add(
                f"telemetry.{section}.fps",
                prev_tel[section]["fps"],
                cur_tel[section]["fps"],
                higher_is_better=True,
            )
    return out


def compare_to_best(
    prior_runs: Sequence[Dict], cur: Dict, tolerance: float = 0.25
) -> List[Dict]:
    """Compare ``cur`` against the *best* prior value of each metric.

    Only prior runs with the same ``label`` as ``cur`` are considered —
    a full run must never be gated against a smoke run's tiny workloads
    (or vice versa), which is exactly the bug the old last-run comparison
    had after a smoke run landed in the trajectory. For every metric the
    record kept is the one with the lowest speedup, i.e. the toughest
    prior run wins, so a slow outlier run can never mask a regression.

    Prior runs from a host with a *different CPU count* are likewise
    refused wholesale: every throughput number in a run (not just the
    pool section) reflects the host's core budget, so gating a 1-core
    run against a 4-core best — or vice versa — would manufacture
    regressions out of hardware differences. A run with no recorded
    ``cpu_count`` never gates a run that has one.
    """
    label = cur.get("label")
    cores = cur.get("cpu_count")
    peers = [
        r
        for r in prior_runs
        if r.get("label") == label
        and r.get("cpu_count") == cores
        and r is not cur
    ]
    best: Dict[str, Dict] = {}
    order: List[str] = []
    for prev in peers:
        for rec in compare_runs(prev, cur, tolerance):
            key = rec["metric"]
            if key not in best:
                order.append(key)
                best[key] = rec
            elif rec["speedup"] < best[key]["speedup"]:
                best[key] = rec
    return [best[key] for key in order]


def render_run(run: Dict) -> str:
    """Human-readable summary of one run."""
    lines = [f"bench run ({run['label']}, numpy {run.get('numpy', '?')})"]
    kernels = run.get("kernels")
    if kernels:
        for name in ("pack_bits", "unpack_bits"):
            entry = kernels[name]
            lines.append(
                f"  {name:<24s} {entry['seconds'] * 1e3:8.2f} ms "
                f"({entry['gbits_per_s']:.2f} Gbit/s)"
            )
        for name, entry in kernels["xnor_gemm"].items():
            lines.append(
                f"  xnor_gemm {name:<14s} {entry['seconds'] * 1e3:8.2f} ms "
                f"({entry['gops_per_s']:.2f} Gop/s)"
            )
    for arch, entry in run.get("e2e", {}).items():
        line = (
            f"  e2e {arch:<8s} {entry['fps']:8.1f} FPS "
            f"({entry['images']} images in {entry['seconds'] * 1e3:.1f} ms"
        )
        if arch in run.get("stages", {}):
            slowest = max(run["stages"][arch], key=lambda s: s["seconds"])
            line += (
                f"; slowest stage {slowest['name']} "
                f"{slowest['seconds'] * 1e3:.1f} ms"
            )
        lines.append(line + ")")
    for arch, entry in run.get("plan", {}).items():
        if not entry.get("supported"):
            lines.append(f"  plan {arch:<7s} unsupported: {entry.get('reason')}")
            continue
        lines.append(
            f"  plan {arch:<7s} {entry['planned']['fps']:8.1f} FPS "
            f"(x{entry['speedup']:.2f} vs interpreted "
            f"{entry['unplanned']['fps']:.1f} FPS; "
            f"{entry['steady_state_alloc_blocks']} allocs/call, "
            f"arena {entry['arena_kib']:.0f} KiB, "
            f"{entry['fused_stages']} fused stages)"
        )
    par = run.get("parallel")
    if par:
        if not par.get("supported"):
            lines.append(f"  parallel unsupported: {par.get('reason')}")
        else:
            host = run.get("host", {})
            lines.append(
                f"  parallel single      {par['single']['fps']:8.1f} FPS "
                f"(planned, batch {par['images']})"
            )
            lines.append(
                f"  parallel pool        {par['pool']['fps']:8.1f} FPS "
                f"({par['workers']} workers on "
                f"{host.get('cpu_count', '?')} CPUs, "
                f"{par['inflight']} in flight, "
                f"x{par['speedup_vs_single']:.2f} vs single, bit-exact)"
            )
    gen = run.get("generation")
    if gen:
        lines.append(
            f"  generation serial    {gen['serial']['samples_per_s']:8.1f} "
            f"samples/s ({gen['samples']} samples)"
        )
        lines.append(
            f"  generation parallel  {gen['parallel']['samples_per_s']:8.1f} "
            f"samples/s ({gen['parallel']['workers']} workers, "
            f"x{gen['parallel']['speedup_vs_serial']:.2f} vs serial)"
        )
        cache = gen["cache"]
        lines.append(
            f"  dataset cache        cold {cache['cold_seconds']:.2f} s, "
            f"warm {cache['warm_seconds'] * 1e3:.1f} ms "
            f"(x{cache['warm_speedup']:.0f} warm speedup, "
            f"raw_size {cache['raw_size']})"
        )
    train = run.get("training")
    if train:
        for section in ("baseline", "arena"):
            entry = train[section]
            lines.append(
                f"  train {section:<14s} {entry['steps_per_s']:8.2f} steps/s "
                f"({train['arch']}, batch {train['batch_size']}, "
                f"epoch {entry['epoch_seconds']:.2f} s)"
            )
        lines.append(f"  train arena_speedup  x{train['arena_speedup']:.2f}")
    tel = run.get("telemetry")
    if tel:
        lines.append(
            f"  telemetry off        {tel['off']['fps']:8.1f} FPS "
            f"({tel['arch']}, {tel['off']['overhead_vs_baseline']:+.1%} "
            f"vs baseline)"
        )
        for section in ("sampled", "full"):
            entry = tel[section]
            lines.append(
                f"  telemetry {section:<10s} {entry['fps']:8.1f} FPS "
                f"(1/{entry['sample_every']} traces, "
                f"{entry['overhead_vs_off']:+.1%} vs off, "
                f"{entry['spans']} spans)"
            )
    return "\n".join(lines)


def render_comparison(records: Sequence[Dict]) -> str:
    """Human-readable comparison table (from :func:`compare_runs` or
    :func:`compare_to_best`)."""
    if not records:
        return "no previous run to compare against"
    lines = ["comparison vs best prior same-label run (speedup > 1 is faster):"]
    for rec in records:
        flag = "  REGRESSED" if rec["regressed"] else ""
        lines.append(
            f"  {rec['metric']:<34s} x{rec['speedup']:.2f}{flag}"
        )
    return "\n".join(lines)
