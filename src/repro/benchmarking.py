"""Perf-regression harness: kernel, stage, and end-to-end throughput.

The paper's efficiency claim is only checkable if the simulator's speed
is *tracked*: this module times the bit-pack kernels, the XNOR+popcount
GEMM, the per-stage datapath, and end-to-end classification FPS for the
Table I prototypes, and records the results as a machine-readable
trajectory in ``BENCH_throughput.json``. Every ``repro bench`` run
appends one entry and compares it against the previous run with a
configurable tolerance, so a datapath change that silently regresses
throughput fails loudly instead of rotting.

The harness deliberately uses *untrained* models with randomised
batch-norm statistics (:func:`repro.testing.randomize_bn_stats`):
datapath throughput does not depend on the weight values, and skipping
training keeps the bench runnable in seconds.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.architectures import build_architecture, table1_folding
from repro.hw.bitpack import pack_bits, unpack_bits
from repro.hw.compiler import FinnAccelerator, compile_model
from repro.hw.xnor_kernels import xnor_matmul_popcount
from repro.testing import randomize_bn_stats

__all__ = [
    "SCHEMA",
    "BENCH_ARCHS",
    "GEMM_SHAPES",
    "run_bench",
    "load_doc",
    "append_run",
    "save_doc",
    "validate_run",
    "validate_doc",
    "compare_runs",
    "render_run",
    "render_comparison",
]

#: Version tag written into (and required from) ``BENCH_throughput.json``.
SCHEMA = "repro-bench-throughput/v1"

#: Architectures benchmarked by a full run, in Table I order.
BENCH_ARCHS: Tuple[str, ...] = ("cnv", "n-cnv", "u-cnv")

#: XNOR GEMM operand shapes: (name, vectors, fan_in, neurons). conv2_2
#: and fc1 of CNV (the bench_xnor_kernels shapes) plus conv1_2 at a
#: realistic batch — the widest and the most vector-heavy layers.
GEMM_SHAPES: Tuple[Tuple[str, int, int, int], ...] = (
    ("cnv-conv1_2", 900, 576, 64),
    ("cnv-conv2_2", 144, 1152, 128),
    ("cnv-fc1", 64, 256, 512),
)

#: Bit tensor shape for the pack/unpack kernel bench (CNV conv2_2 rows).
BITPACK_SHAPE: Tuple[int, int] = (4096, 1152)

#: Training benchmark config: CNV at the paper's 32x32 input resolution.
TRAIN_BENCH: Dict = {"arch": "cnv", "batch_size": 32, "steps": 8}

#: Generation benchmark sizing (samples rendered, raw size for the cache
#: round-trip). Worker count is ``min(4, cpu_count)`` at run time.
GEN_BENCH: Dict = {"samples": 48, "cache_raw_size": 200}

#: Telemetry-overhead benchmark config: the arch whose datapath is timed
#: under each tracing mode, and the sparse sampling rate measured.
TELEMETRY_BENCH: Dict = {"arch": "u-cnv", "sample_every": 64}


def _best_seconds(fn, repeats: int, warmup: int = 1) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` after ``warmup`` calls."""
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_bitpack(rng: np.ndarray, shape: Tuple[int, int], repeats: int) -> Dict:
    bits = rng.random(shape) < 0.5
    packed = pack_bits(bits)
    pack_s = _best_seconds(lambda: pack_bits(bits), repeats)
    unpack_s = _best_seconds(lambda: unpack_bits(packed), repeats)
    nbits = float(np.prod(shape))
    return {
        "pack_bits": {
            "shape": list(shape),
            "seconds": pack_s,
            "gbits_per_s": nbits / pack_s / 1e9,
        },
        "unpack_bits": {
            "shape": list(shape),
            "seconds": unpack_s,
            "gbits_per_s": nbits / unpack_s / 1e9,
        },
    }


def _bench_gemm(
    rng, shapes: Sequence[Tuple[str, int, int, int]], repeats: int
) -> Dict:
    out = {}
    for name, vectors, fan_in, neurons in shapes:
        a = pack_bits(rng.random((vectors, fan_in)) < 0.5)
        w = pack_bits(rng.random((neurons, fan_in)) < 0.5)
        seconds = _best_seconds(lambda: xnor_matmul_popcount(a, w), repeats)
        ops = 2.0 * vectors * fan_in * neurons  # XNOR + accumulate
        out[name] = {
            "vectors": vectors,
            "fan_in": fan_in,
            "neurons": neurons,
            "seconds": seconds,
            "gops_per_s": ops / seconds / 1e9,
        }
    return out


def _bench_accelerator(
    accelerator: FinnAccelerator, images: np.ndarray, repeats: int
) -> Tuple[List[Dict], Dict]:
    """(per-stage timings, end-to-end summary) for one compiled design."""
    n = images.shape[0]
    e2e_s = _best_seconds(lambda: accelerator.execute(images), repeats)
    stage_seconds: List[Tuple[str, float]] = []
    accelerator.execute(images, stage_seconds=stage_seconds)
    stages = [
        {"name": name, "seconds": seconds} for name, seconds in stage_seconds
    ]
    e2e = {"images": n, "seconds": e2e_s, "fps": n / e2e_s}
    return stages, e2e


def _bench_generation(seed: int, samples: int, cache_raw_size: int) -> Dict:
    """Dataset-generation throughput: serial vs pooled render, cold vs
    warm cache round-trip through :func:`build_masked_face_dataset`."""
    import tempfile

    from repro.data.dataset import build_masked_face_dataset
    from repro.data.generator import FaceSampleGenerator

    workers = min(4, os.cpu_count() or 1)
    generator = FaceSampleGenerator()

    start = time.perf_counter()
    generator.generate_batch(samples, np.random.default_rng(seed))
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    generator.generate_batch(samples, np.random.default_rng(seed), num_workers=workers)
    parallel_s = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        start = time.perf_counter()
        build_masked_face_dataset(raw_size=cache_raw_size, rng=seed, cache_dir=tmp)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        build_masked_face_dataset(raw_size=cache_raw_size, rng=seed, cache_dir=tmp)
        warm_s = time.perf_counter() - start

    return {
        "samples": samples,
        "serial": {"seconds": serial_s, "samples_per_s": samples / serial_s},
        "parallel": {
            "workers": workers,
            "seconds": parallel_s,
            "samples_per_s": samples / parallel_s,
            "speedup_vs_serial": serial_s / parallel_s,
        },
        "cache": {
            "raw_size": cache_raw_size,
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "warm_speedup": cold_s / warm_s,
        },
    }


def _bench_training(seed: int, arch: str, batch_size: int, steps: int) -> Dict:
    """Training-step throughput, with and without the buffer arena.

    The two configurations are bit-identical in their numerics (pinned by
    tests), so ``arena_speedup`` isolates exactly what buffer reuse buys.
    """
    from repro.nn import Adam, Trainer

    n = batch_size * steps
    gen = np.random.default_rng(seed)
    x = gen.normal(size=(n, 32, 32, 3)).astype(np.float32)
    y = gen.integers(0, 4, size=n).astype(np.int64)

    result: Dict = {"arch": arch, "batch_size": batch_size, "steps": steps}
    for key, use_arena in (("baseline", False), ("arena", True)):
        model = build_architecture(arch, rng=seed)
        trainer = Trainer(
            model, Adam(model.parameters(), lr=0.01), use_arena=use_arena
        )
        epoch_rng = np.random.default_rng(seed + 1)
        warm = min(n, 2 * batch_size)
        trainer.train_epoch(x[:warm], y[:warm], batch_size, epoch_rng)
        start = time.perf_counter()
        trainer.train_epoch(x, y, batch_size, epoch_rng)
        epoch_s = time.perf_counter() - start
        result[key] = {
            "epoch_seconds": epoch_s,
            "steps_per_s": steps / epoch_s,
            "samples_per_s": n / epoch_s,
        }
    result["arena_speedup"] = (
        result["arena"]["steps_per_s"] / result["baseline"]["steps_per_s"]
    )
    return result


def _bench_telemetry(
    accelerator: FinnAccelerator,
    images: np.ndarray,
    repeats: int,
    sample_every: int,
) -> Dict:
    """Datapath throughput under each tracing mode: off / sampled / full.

    ``baseline`` and ``off`` are both measured with no tracer active —
    their gap is pure run-to-run noise, which is exactly the claim being
    pinned: instrumented-but-disabled code costs nothing beyond noise.
    ``sampled`` and ``full`` then quantify what turning tracing on buys
    you into.
    """
    from repro.telemetry import SpanJournal, Tracer, activate, deactivate

    n = images.shape[0]
    # One mode run is a single ~tens-of-ms execute; a couple of repeats
    # is pure noise at the 2-5% resolution this section pins down.
    repeats = max(repeats, 10)
    deactivate()  # make sure no ambient tracer leaks into the baseline
    baseline_s = _best_seconds(lambda: accelerator.execute(images), repeats)
    off_s = _best_seconds(lambda: accelerator.execute(images), repeats)
    result: Dict = {
        "arch": accelerator.name,
        "images": n,
        "baseline": {"seconds": baseline_s, "fps": n / baseline_s},
        "off": {
            "seconds": off_s,
            "fps": n / off_s,
            "overhead_vs_baseline": off_s / baseline_s - 1.0,
        },
    }
    for key, every in (("sampled", sample_every), ("full", 1)):
        journal = SpanJournal()
        activate(Tracer(sample_every=every, journal=journal))
        try:
            mode_s = _best_seconds(lambda: accelerator.execute(images), repeats)
        finally:
            deactivate()
        result[key] = {
            "sample_every": every,
            "seconds": mode_s,
            "fps": n / mode_s,
            "overhead_vs_off": mode_s / off_s - 1.0,
            "spans": len(journal),
        }
    return result


def run_bench(
    archs: Sequence[str] = BENCH_ARCHS,
    images: int = 16,
    repeats: int = 2,
    seed: int = 0,
    smoke: bool = False,
) -> Dict:
    """One benchmark run; returns the run record (see :data:`SCHEMA`).

    ``smoke`` shrinks every workload to sanity-gate scale (one small
    architecture, two images, single repeat) — fast enough for CI, still
    exercising every timed code path.
    """
    if images <= 0:
        raise ValueError(f"images must be positive, got {images}")
    if smoke:
        archs = ("u-cnv",)
        images = min(images, 2)
        repeats = 1
        gemm_shapes = (("smoke-fc", 8, 256, 32),)
        bitpack_shape = (64, 256)
        gen_cfg = {"samples": 6, "cache_raw_size": 40}
        train_cfg = {"arch": "u-cnv", "batch_size": 8, "steps": 2}
    else:
        gemm_shapes = GEMM_SHAPES
        bitpack_shape = BITPACK_SHAPE
        gen_cfg = dict(GEN_BENCH)
        train_cfg = dict(TRAIN_BENCH)
    for arch in archs:
        if arch not in BENCH_ARCHS:
            raise ValueError(f"unknown bench architecture {arch!r}")

    rng = np.random.default_rng(seed)
    run: Dict = {
        "timestamp": time.time(),
        "label": "smoke" if smoke else "full",
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "kernels": {},
        "stages": {},
        "e2e": {},
    }
    run["kernels"].update(_bench_bitpack(rng, bitpack_shape, repeats))
    run["kernels"]["xnor_gemm"] = _bench_gemm(rng, gemm_shapes, repeats)

    batch = rng.random((images, 32, 32, 3)).astype(np.float32)
    for arch in archs:
        model = build_architecture(arch, rng=seed)
        randomize_bn_stats(model, seed=seed + 1)
        model.eval()
        accelerator = compile_model(model, table1_folding(arch), name=arch)
        stages, e2e = _bench_accelerator(accelerator, batch, repeats)
        run["stages"][arch] = stages
        run["e2e"][arch] = e2e

    tel_cfg = dict(TELEMETRY_BENCH)
    tel_arch = tel_cfg.pop("arch")
    model = build_architecture(tel_arch, rng=seed)
    randomize_bn_stats(model, seed=seed + 1)
    model.eval()
    tel_acc = compile_model(model, table1_folding(tel_arch), name=tel_arch)
    run["telemetry"] = _bench_telemetry(tel_acc, batch, repeats, **tel_cfg)

    run["generation"] = _bench_generation(seed, **gen_cfg)
    run["training"] = _bench_training(seed, **train_cfg)
    validate_run(run)
    return run


# -- schema ------------------------------------------------------------------
def validate_run(run: Dict) -> None:
    """Raise ``ValueError`` unless ``run`` has the expected shape."""
    if not isinstance(run, dict):
        raise ValueError("run must be a mapping")
    for key in ("timestamp", "label", "kernels", "stages", "e2e"):
        if key not in run:
            raise ValueError(f"run is missing {key!r}")
    for kernel in ("pack_bits", "unpack_bits", "xnor_gemm"):
        if kernel not in run["kernels"]:
            raise ValueError(f"run.kernels is missing {kernel!r}")
    for name in ("pack_bits", "unpack_bits"):
        if not run["kernels"][name].get("seconds", 0) > 0:
            raise ValueError(f"kernel {name!r} has no positive 'seconds'")
    for name, entry in run["kernels"]["xnor_gemm"].items():
        if not entry.get("seconds", 0) > 0:
            raise ValueError(f"xnor_gemm {name!r} has no positive 'seconds'")
    if not run["e2e"]:
        raise ValueError("run.e2e is empty")
    for arch, entry in run["e2e"].items():
        for key in ("images", "seconds", "fps"):
            if key not in entry:
                raise ValueError(f"e2e[{arch!r}] is missing {key!r}")
        if not entry["fps"] > 0:
            raise ValueError(f"e2e[{arch!r}].fps must be positive")
        if arch not in run["stages"]:
            raise ValueError(f"run.stages is missing {arch!r}")
        for stage in run["stages"][arch]:
            if "name" not in stage or not stage.get("seconds", -1) >= 0:
                raise ValueError(f"malformed stage entry in {arch!r}")
    # Generation/training sections are optional (older trajectory entries
    # predate them) but validated whenever present.
    if "generation" in run:
        gen = run["generation"]
        for section in ("serial", "parallel"):
            if not gen.get(section, {}).get("samples_per_s", 0) > 0:
                raise ValueError(
                    f"generation.{section} has no positive 'samples_per_s'"
                )
        cache = gen.get("cache", {})
        for key in ("cold_seconds", "warm_seconds"):
            if not cache.get(key, 0) > 0:
                raise ValueError(f"generation.cache has no positive {key!r}")
    if "training" in run:
        train = run["training"]
        for section in ("baseline", "arena"):
            if not train.get(section, {}).get("steps_per_s", 0) > 0:
                raise ValueError(
                    f"training.{section} has no positive 'steps_per_s'"
                )
    if "telemetry" in run:
        tel = run["telemetry"]
        for section in ("baseline", "off", "sampled", "full"):
            if not tel.get(section, {}).get("fps", 0) > 0:
                raise ValueError(
                    f"telemetry.{section} has no positive 'fps'"
                )
        for section in ("sampled", "full"):
            if "overhead_vs_off" not in tel[section]:
                raise ValueError(
                    f"telemetry.{section} is missing 'overhead_vs_off'"
                )


def validate_doc(doc: Dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a valid trajectory file."""
    if not isinstance(doc, dict):
        raise ValueError("document must be a mapping")
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"schema mismatch: expected {SCHEMA!r}, got {doc.get('schema')!r}"
        )
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        raise ValueError("document has no runs")
    for run in runs:
        validate_run(run)


def load_doc(path: Path) -> Optional[Dict]:
    """The existing trajectory at ``path`` (validated), or ``None``."""
    path = Path(path)
    if not path.exists():
        return None
    doc = json.loads(path.read_text())
    validate_doc(doc)
    return doc


def append_run(doc: Optional[Dict], run: Dict) -> Dict:
    """Append ``run`` to ``doc`` (creating a fresh trajectory if None)."""
    validate_run(run)
    if doc is None:
        doc = {"schema": SCHEMA, "runs": []}
    doc["runs"].append(run)
    return doc


def save_doc(doc: Dict, path: Path) -> Path:
    validate_doc(doc)
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


# -- comparison --------------------------------------------------------------
def compare_runs(prev: Dict, cur: Dict, tolerance: float = 0.25) -> List[Dict]:
    """Metric-by-metric comparison of two runs.

    Returns one record per shared metric with the speedup ratio
    (``> 1`` means the current run is faster) and a ``regressed`` flag
    set when the current run is more than ``tolerance`` slower (for
    timed kernels) or lower-throughput (for end-to-end FPS).
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    out: List[Dict] = []

    def add(metric: str, prev_val: float, cur_val: float, higher_is_better: bool):
        ratio = (cur_val / prev_val) if higher_is_better else (prev_val / cur_val)
        out.append(
            {
                "metric": metric,
                "previous": prev_val,
                "current": cur_val,
                "speedup": ratio,
                "regressed": ratio < 1.0 - tolerance,
            }
        )

    for name in ("pack_bits", "unpack_bits"):
        if name in prev["kernels"] and name in cur["kernels"]:
            add(
                f"kernel.{name}.seconds",
                prev["kernels"][name]["seconds"],
                cur["kernels"][name]["seconds"],
                higher_is_better=False,
            )
    prev_gemm = prev["kernels"].get("xnor_gemm", {})
    cur_gemm = cur["kernels"].get("xnor_gemm", {})
    for name in sorted(set(prev_gemm) & set(cur_gemm)):
        add(
            f"kernel.xnor_gemm.{name}.seconds",
            prev_gemm[name]["seconds"],
            cur_gemm[name]["seconds"],
            higher_is_better=False,
        )
    for arch in sorted(set(prev["e2e"]) & set(cur["e2e"])):
        add(
            f"e2e.{arch}.fps",
            prev["e2e"][arch]["fps"],
            cur["e2e"][arch]["fps"],
            higher_is_better=True,
        )
    prev_gen, cur_gen = prev.get("generation"), cur.get("generation")
    if prev_gen and cur_gen:
        for section in ("serial", "parallel"):
            add(
                f"generation.{section}.samples_per_s",
                prev_gen[section]["samples_per_s"],
                cur_gen[section]["samples_per_s"],
                higher_is_better=True,
            )
        add(
            "generation.cache.warm_seconds",
            prev_gen["cache"]["warm_seconds"],
            cur_gen["cache"]["warm_seconds"],
            higher_is_better=False,
        )
    prev_train, cur_train = prev.get("training"), cur.get("training")
    if prev_train and cur_train and prev_train.get("arch") == cur_train.get("arch"):
        for section in ("baseline", "arena"):
            add(
                f"training.{section}.steps_per_s",
                prev_train[section]["steps_per_s"],
                cur_train[section]["steps_per_s"],
                higher_is_better=True,
            )
    prev_tel, cur_tel = prev.get("telemetry"), cur.get("telemetry")
    if prev_tel and cur_tel and prev_tel.get("arch") == cur_tel.get("arch"):
        for section in ("off", "sampled", "full"):
            add(
                f"telemetry.{section}.fps",
                prev_tel[section]["fps"],
                cur_tel[section]["fps"],
                higher_is_better=True,
            )
    return out


def render_run(run: Dict) -> str:
    """Human-readable summary of one run."""
    lines = [f"bench run ({run['label']}, numpy {run.get('numpy', '?')})"]
    kernels = run["kernels"]
    for name in ("pack_bits", "unpack_bits"):
        entry = kernels[name]
        lines.append(
            f"  {name:<24s} {entry['seconds'] * 1e3:8.2f} ms "
            f"({entry['gbits_per_s']:.2f} Gbit/s)"
        )
    for name, entry in kernels["xnor_gemm"].items():
        lines.append(
            f"  xnor_gemm {name:<14s} {entry['seconds'] * 1e3:8.2f} ms "
            f"({entry['gops_per_s']:.2f} Gop/s)"
        )
    for arch, entry in run["e2e"].items():
        slowest = max(run["stages"][arch], key=lambda s: s["seconds"])
        lines.append(
            f"  e2e {arch:<8s} {entry['fps']:8.1f} FPS "
            f"({entry['images']} images in {entry['seconds'] * 1e3:.1f} ms; "
            f"slowest stage {slowest['name']} "
            f"{slowest['seconds'] * 1e3:.1f} ms)"
        )
    gen = run.get("generation")
    if gen:
        lines.append(
            f"  generation serial    {gen['serial']['samples_per_s']:8.1f} "
            f"samples/s ({gen['samples']} samples)"
        )
        lines.append(
            f"  generation parallel  {gen['parallel']['samples_per_s']:8.1f} "
            f"samples/s ({gen['parallel']['workers']} workers, "
            f"x{gen['parallel']['speedup_vs_serial']:.2f} vs serial)"
        )
        cache = gen["cache"]
        lines.append(
            f"  dataset cache        cold {cache['cold_seconds']:.2f} s, "
            f"warm {cache['warm_seconds'] * 1e3:.1f} ms "
            f"(x{cache['warm_speedup']:.0f} warm speedup, "
            f"raw_size {cache['raw_size']})"
        )
    train = run.get("training")
    if train:
        for section in ("baseline", "arena"):
            entry = train[section]
            lines.append(
                f"  train {section:<14s} {entry['steps_per_s']:8.2f} steps/s "
                f"({train['arch']}, batch {train['batch_size']}, "
                f"epoch {entry['epoch_seconds']:.2f} s)"
            )
        lines.append(f"  train arena_speedup  x{train['arena_speedup']:.2f}")
    tel = run.get("telemetry")
    if tel:
        lines.append(
            f"  telemetry off        {tel['off']['fps']:8.1f} FPS "
            f"({tel['arch']}, {tel['off']['overhead_vs_baseline']:+.1%} "
            f"vs baseline)"
        )
        for section in ("sampled", "full"):
            entry = tel[section]
            lines.append(
                f"  telemetry {section:<10s} {entry['fps']:8.1f} FPS "
                f"(1/{entry['sample_every']} traces, "
                f"{entry['overhead_vs_off']:+.1%} vs off, "
                f"{entry['spans']} spans)"
            )
    return "\n".join(lines)


def render_comparison(records: Sequence[Dict]) -> str:
    """Human-readable comparison table (from :func:`compare_runs`)."""
    if not records:
        return "no previous run to compare against"
    lines = ["comparison vs previous run (speedup > 1 is faster):"]
    for rec in records:
        flag = "  REGRESSED" if rec["regressed"] else ""
        lines.append(
            f"  {rec['metric']:<34s} x{rec['speedup']:.2f}{flag}"
        )
    return "\n".join(lines)
