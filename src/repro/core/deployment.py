"""Deployment scenarios: single-gate (low-power) and crowd (high-rate).

§IV-B / Fig. 1 describe two operating modes for the same accelerator:

* **Gate mode** — one entrance; a classification is triggered only when
  a subject passes, so the device draws ~idle power (1.6 W) almost
  always. :class:`GateMonitor` models the event-driven duty cycle.
* **Crowd mode** — large crowd frames are split into face tiles and
  classified at the full pipeline rate (~6400 FPS on n-CNV) for
  statistics collection. :class:`CrowdAnalyzer` drives batches through
  the accelerator and aggregates per-class counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.evaluation import confusion_matrix
from repro.data.mask_model import CLASS_NAMES, WearClass
from repro.hw.compiler import FinnAccelerator
from repro.hw.pipeline import MEASURED_EFFICIENCY, analyze_pipeline
from repro.hw.power import PowerModel
from repro.hw.resources import estimate_resources

__all__ = [
    "GateEvent",
    "GateMonitor",
    "CrowdAnalyzer",
    "CrowdStatistics",
    "MultiCameraHub",
    "HubReport",
]


@dataclass
class GateEvent:
    """One subject passing the gate."""

    timestamp_s: float
    predicted_class: WearClass
    admitted: bool


class GateMonitor:
    """Event-driven single-entrance deployment (low-power mode).

    Only :data:`WearClass.CORRECT` subjects are admitted; everything else
    triggers a (simulated) re-position request. Power accounting follows
    the duty-cycle model of :class:`repro.hw.power.PowerModel`.
    """

    def __init__(
        self,
        accelerator: FinnAccelerator,
        clock_mhz: float = 100.0,
        power_model: Optional[PowerModel] = None,
    ) -> None:
        self.accelerator = accelerator
        self.clock_mhz = float(clock_mhz)
        self.power_model = power_model or PowerModel()
        self.events: List[GateEvent] = []
        timing = analyze_pipeline(accelerator, clock_mhz)
        #: Wall time to classify one triggered subject (pipeline fill).
        self.classification_us = timing.latency_us / MEASURED_EFFICIENCY

    def process_subject(self, image: np.ndarray, timestamp_s: float) -> GateEvent:
        """Classify one subject at the gate; returns the logged event."""
        pred = WearClass(int(self.accelerator.predict(image[None])[0]))
        event = GateEvent(
            timestamp_s=float(timestamp_s),
            predicted_class=pred,
            admitted=(pred == WearClass.CORRECT),
        )
        self.events.append(event)
        return event

    def admission_rate(self) -> float:
        """Fraction of processed subjects admitted."""
        if not self.events:
            raise ValueError("no subjects processed yet")
        return float(np.mean([e.admitted for e in self.events]))

    def average_power_w(self, subjects_per_hour: float) -> float:
        """Average draw at a given gate traffic level (≈ 1.6 W idle)."""
        resources = estimate_resources(self.accelerator)
        return self.power_model.gate_mode_average_w(
            resources,
            classifications_per_hour=subjects_per_hour,
            classification_us=self.classification_us,
            clock_mhz=self.clock_mhz,
        )


@dataclass
class CrowdStatistics:
    """Aggregate mask-wear statistics over a crowd stream."""

    class_counts: Dict[str, int]
    frames_processed: int
    wall_seconds_modelled: float

    @property
    def compliance_rate(self) -> float:
        """Share of correctly-masked faces in the crowd."""
        total = sum(self.class_counts.values())
        if total == 0:
            raise ValueError("no faces processed")
        return self.class_counts[CLASS_NAMES[WearClass.CORRECT]] / total

    @property
    def effective_fps(self) -> float:
        return self.frames_processed / self.wall_seconds_modelled

    def report(self) -> str:
        counts = ", ".join(f"{k}={v}" for k, v in self.class_counts.items())
        return (
            f"{self.frames_processed} faces in {self.wall_seconds_modelled * 1e3:.1f} ms "
            f"modelled ({self.effective_fps:,.0f} FPS): {counts} "
            f"-> compliance {self.compliance_rate:.1%}"
        )


@dataclass
class HubReport:
    """Service statistics of a shared accelerator serving many gates."""

    num_gates: int
    arrivals_per_gate_per_hour: float
    utilization: float  # fraction of accelerator capacity consumed
    mean_wait_us: float  # mean queueing delay before classification
    p99_wait_us: float
    saturated: bool

    def render(self) -> str:
        status = "SATURATED" if self.saturated else "ok"
        return (
            f"{self.num_gates} gates x "
            f"{self.arrivals_per_gate_per_hour:,.0f} subjects/h: "
            f"utilization {self.utilization:.2%}, "
            f"wait mean {self.mean_wait_us:,.0f} us / "
            f"p99 {self.p99_wait_us:,.0f} us [{status}]"
        )


class MultiCameraHub:
    """One accelerator multiplexed across many gates (§I).

    "Classification can take place at up to ~6400 frames-per-second,
    easily enabling multi-camera, speed-gate settings" — this class
    quantifies *easily*: an M/D/1 queue with Poisson arrivals from
    ``num_gates`` independent gates and the deterministic service time
    set by the calibrated pipeline rate. The analytic mean wait is the
    Pollaczek–Khinchine formula; a discrete simulation cross-checks it
    and supplies the p99.
    """

    def __init__(self, accelerator: FinnAccelerator, clock_mhz: float = 100.0) -> None:
        self.accelerator = accelerator
        self.timing = analyze_pipeline(accelerator, clock_mhz)
        self.service_us = 1e6 / self.timing.fps_calibrated

    def capacity_gates(self, arrivals_per_gate_per_hour: float) -> int:
        """How many gates one accelerator sustains below saturation."""
        if arrivals_per_gate_per_hour <= 0:
            raise ValueError("arrival rate must be positive")
        per_gate_us = 3600.0 * 1e6 / arrivals_per_gate_per_hour
        return int(per_gate_us / self.service_us)

    def analyze(
        self,
        num_gates: int,
        arrivals_per_gate_per_hour: float,
        simulate_subjects: int = 2000,
        rng=0,
    ) -> HubReport:
        """Queueing behaviour of ``num_gates`` sharing this accelerator."""
        if num_gates <= 0:
            raise ValueError(f"num_gates must be positive, got {num_gates}")
        if arrivals_per_gate_per_hour <= 0:
            raise ValueError("arrival rate must be positive")
        lam = num_gates * arrivals_per_gate_per_hour / 3600.0  # 1/s
        service_s = self.service_us * 1e-6
        rho = lam * service_s
        if rho >= 1.0:
            return HubReport(
                num_gates=num_gates,
                arrivals_per_gate_per_hour=arrivals_per_gate_per_hour,
                utilization=float(rho),
                mean_wait_us=float("inf"),
                p99_wait_us=float("inf"),
                saturated=True,
            )
        # Discrete event simulation (single server, FIFO, deterministic
        # service) for the wait distribution.
        gen = np.random.default_rng(rng if isinstance(rng, int) else None)
        inter = gen.exponential(1.0 / lam, size=simulate_subjects)
        arrivals = np.cumsum(inter)
        waits = np.empty(simulate_subjects)
        server_free = 0.0
        for i, t in enumerate(arrivals):
            start = max(t, server_free)
            waits[i] = start - t
            server_free = start + service_s
        return HubReport(
            num_gates=num_gates,
            arrivals_per_gate_per_hour=arrivals_per_gate_per_hour,
            utilization=float(rho),
            mean_wait_us=float(waits.mean() * 1e6),
            p99_wait_us=float(np.percentile(waits, 99) * 1e6),
            saturated=False,
        )


class CrowdAnalyzer:
    """High-throughput crowd-statistics deployment.

    Splits crowd input into per-face tiles (here the tiles are provided
    directly — face detection is out of the paper's scope), streams them
    through the accelerator, and reports class statistics plus the wall
    time the hardware model assigns to the batch.
    """

    def __init__(self, accelerator: FinnAccelerator, clock_mhz: float = 100.0) -> None:
        self.accelerator = accelerator
        self.timing = analyze_pipeline(accelerator, clock_mhz)

    def analyze(self, face_tiles: np.ndarray) -> CrowdStatistics:
        """Classify a batch of ``(N, 32, 32, 3)`` face tiles."""
        if face_tiles.ndim != 4:
            raise ValueError(f"expected a batch of tiles, got {face_tiles.shape}")
        preds = self.accelerator.predict(face_tiles)
        counts = {name: int((preds == i).sum()) for i, name in enumerate(CLASS_NAMES)}
        n = len(face_tiles)
        # Modelled wall time: pipeline fill + one interval per extra tile,
        # at the calibrated (measured-like) rate.
        fps = self.timing.fps_calibrated
        fill_s = self.timing.latency_us * 1e-6 / MEASURED_EFFICIENCY
        wall = fill_s + max(0, n - 1) / fps
        return CrowdStatistics(
            class_counts=counts,
            frames_processed=n,
            wall_seconds_modelled=float(wall),
        )
