"""Grad-CAM interpretability for BinaryCoP (§III-C).

The BNNs work at 32×32 with no global-average-pooling head, so plain CAM
does not apply; Grad-CAM does, with no model modification or retraining.
Per the paper we take activations and gradients at the output of
``conv2_2`` (spatial size 5×5), average-pool the gradients per channel
into weights α_c and reduce channels by Einstein summation, followed by
ReLU:

    L^c = ReLU( Σ_k α_k · A^k )        (Selvaraju et al. [25])

The tap mechanics ride on :class:`repro.nn.Sequential`'s forward/backward
taps, so the *same* code paths used for training produce the maps.

Beyond raw heat maps this module computes the region-of-interest (RoI)
statistics used by the benchmark reproductions of Figs 3–9: how the
model's attention distributes over face bands (above-mask, mask, chin,
…) defined by the sample's ground-truth key-points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.generator import GeneratedSample
from repro.data.mask_model import WearClass
from repro.nn.sequential import Sequential
from repro.utils import imaging

__all__ = ["GradCAM", "GradCAMResult", "attention_band_profile"]


@dataclass
class GradCAMResult:
    """Grad-CAM output for one image/class pair."""

    heatmap: np.ndarray  # (h, w) float32, >= 0, max-normalised
    target_class: int
    predicted_class: int
    logits: np.ndarray
    layer: str

    def overlay(self, image: np.ndarray, alpha: float = 0.45) -> np.ndarray:
        """The paper's visualisation: heat map blended over the raw image."""
        return imaging.overlay_heatmap(image, self.heatmap, alpha)


class GradCAM:
    """Grad-CAM driver bound to one model and one tap layer.

    Parameters
    ----------
    model:
        A :class:`Sequential` classifier (binary or FP32 — Grad-CAM is
        applied identically to both in the paper's comparisons).
    layer:
        Tap layer name. The paper uses the output of ``conv2_2``; we tap
        the layer itself (pre-batch-norm), matching "the activations and
        gradients for the output of the conv2_2 layer".
    """

    def __init__(self, model: Sequential, layer: str = "conv2_2") -> None:
        if layer not in model.layer_names:
            raise KeyError(
                f"layer {layer!r} not in model; available: {model.layer_names}"
            )
        self.model = model
        self.layer = layer

    def compute(
        self, image: np.ndarray, target_class: Optional[int] = None
    ) -> GradCAMResult:
        """Class-discriminative localisation map for one image.

        ``target_class`` defaults to the model's own prediction (the
        paper's panels use correctly-classified samples, where the two
        coincide).
        """
        if image.ndim != 3:
            raise ValueError(f"expected a single (H, W, C) image, got {image.shape}")
        model = self.model
        was_training = model.training
        # Gradients require layer caches -> training-mode forward, but
        # batch-norm must use running statistics (batch of 1), so freeze
        # them by running eval-mode statistics through a training graph:
        # we temporarily flip only batch-norm layers to eval.
        model.train(True)
        bn_layers = [m for m in model.modules() if hasattr(m, "running_mean")]
        for bn in bn_layers:
            bn.training = False
        try:
            logits = model.forward(image[None], taps=(self.layer,))[0]
            pred = int(np.argmax(logits))
            cls = pred if target_class is None else int(target_class)
            if not 0 <= cls < logits.shape[0]:
                raise ValueError(
                    f"target_class {cls} out of range for {logits.shape[0]} classes"
                )
            seed = np.zeros((1, logits.shape[0]), dtype=np.float32)
            seed[0, cls] = 1.0
            model.backward(seed, taps=(self.layer,))
            activations = model.tap_activations[self.layer][0]  # (h, w, c)
            gradients = model.tap_gradients[self.layer][0]
        finally:
            model.train(was_training)
            model.clear_cache()
        # α_k: global-average-pooled gradients; channel reduction by einsum.
        alphas = gradients.mean(axis=(0, 1))
        cam = np.einsum("hwk,k->hw", activations, alphas)
        cam = np.maximum(cam, 0.0)
        peak = cam.max()
        if peak > 0:
            cam = cam / peak
        return GradCAMResult(
            heatmap=cam.astype(np.float32),
            target_class=cls,
            predicted_class=pred,
            logits=np.asarray(logits),
            layer=self.layer,
        )


# Face bands used for RoI statistics, top to bottom.
_BANDS = ("background", "forehead_eyes", "nose", "mouth", "chin_neck")


def attention_band_profile(
    result: GradCAMResult, sample: GeneratedSample
) -> Dict[str, float]:
    """Distribute Grad-CAM mass over anatomical bands of the face.

    Bands are derived from the sample's ground-truth key-points (scaled
    from render to image resolution) and the profile is normalised to sum
    to 1. This turns the paper's qualitative Figs 3–9 into quantitative,
    assertable statements, e.g. "for the nose-exposed class the nose band
    receives the largest share of attention".
    """
    img_hw = sample.image.shape[:2]
    hm = imaging.resize_bilinear(result.heatmap, img_hw)
    hm = np.maximum(hm, 0.0)
    total = hm.sum()
    if total <= 0:
        return {band: 0.0 for band in _BANDS}
    kp = sample.keypoints
    scale = img_hw[0] / kp.canvas
    rows = np.arange(img_hw[0]) + 0.5
    # Band boundaries in image rows. "background" is only what lies above
    # the forehead top (sky / top of hair) — forehead, hair line and eyes
    # share the first facial band, since models legitimately attend there
    # (e.g. mask-colored hair in Fig. 8).
    face_top = kp.forehead_top[1] * scale
    nose_top = kp.nose_bridge[1] * scale
    mouth_top = kp.below_nose_y(0.5) * scale
    chin_top = kp.below_mouth_y(0.5) * scale
    band_of_row = np.full(img_hw[0], 0, dtype=np.intp)  # background
    band_of_row[rows >= face_top] = 1
    band_of_row[rows >= nose_top] = 2
    band_of_row[rows >= mouth_top] = 3
    band_of_row[rows >= chin_top] = 4
    row_mass = hm.sum(axis=1)
    profile = {}
    for idx, band in enumerate(_BANDS):
        profile[band] = float(row_mass[band_of_row == idx].sum() / total)
    return profile
