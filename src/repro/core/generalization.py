"""Generalization study harness (Figs 7–9).

The paper probes Binary-CoP's attention under controlled factor shifts:
ages (Fig. 7), hair colors and head-gear — including mask-colored ones
(Fig. 8) — and face manipulations: double masks, face paint, sunglasses
(Fig. 9). This module generates those controlled panels with the
synthetic generator, runs each model's Grad-CAM, and aggregates the
band-profile statistics so the qualitative claims become measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.gradcam import GradCAM, attention_band_profile
from repro.data.attributes import HAIR_COLORS
from repro.data.generator import FaceSampleGenerator, GeneratedSample, SampleSpec
from repro.data.mask_model import WearClass
from repro.nn.sequential import Sequential
from repro.utils.rng import RngLike, derive

__all__ = ["PanelCase", "StudyResult", "GENERALIZATION_PANELS", "run_study"]


@dataclass(frozen=True)
class PanelCase:
    """One controlled row of a generalization panel."""

    name: str
    spec: SampleSpec


#: The paper's generalization panels, keyed by figure.
GENERALIZATION_PANELS: Dict[str, List[PanelCase]] = {
    # Fig. 7: age generalization on the correctly-masked class.
    "fig7_age": [
        PanelCase("infant", SampleSpec(wear_class=WearClass.CORRECT, age_group="infant")),
        PanelCase("adult", SampleSpec(wear_class=WearClass.CORRECT, age_group="adult")),
        PanelCase("elderly", SampleSpec(wear_class=WearClass.CORRECT, age_group="elderly")),
    ],
    # Fig. 8: hair color / head-gear, incl. mask-colored light blue.
    "fig8_hair_headgear": [
        PanelCase(
            "dark_hair",
            SampleSpec(wear_class=WearClass.CORRECT, hair_color=HAIR_COLORS[0]),
        ),
        PanelCase(
            "mask_blue_hair",
            SampleSpec(wear_class=WearClass.CORRECT, hair_color=HAIR_COLORS[6]),
        ),
        PanelCase(
            "headgear_cap",
            SampleSpec(wear_class=WearClass.CORRECT, headgear="cap"),
        ),
        PanelCase(
            "headgear_beanie",
            SampleSpec(wear_class=WearClass.CORRECT, headgear="beanie"),
        ),
    ],
    # Fig. 9: face manipulation — double mask, paint, sunglasses.
    "fig9_manipulation": [
        PanelCase(
            "double_mask",
            SampleSpec(wear_class=WearClass.CORRECT, double_mask=True),
        ),
        PanelCase(
            "face_paint",
            SampleSpec(wear_class=WearClass.NOSE_EXPOSED, face_paint=True),
        ),
        PanelCase(
            "sunglasses",
            SampleSpec(wear_class=WearClass.CHIN_EXPOSED, sunglasses=True),
        ),
    ],
}


@dataclass
class StudyResult:
    """Aggregated outcome of one panel for one model."""

    panel: str
    model_name: str
    cases: List[str]
    accuracy: Dict[str, float]  # per case
    band_profiles: Dict[str, Dict[str, float]]  # per case, mean profile

    def overall_accuracy(self) -> float:
        return float(np.mean(list(self.accuracy.values())))

    def report(self) -> str:
        lines = [f"panel {self.panel} / model {self.model_name}"]
        for case in self.cases:
            profile = self.band_profiles[case]
            top_band = max(profile, key=profile.get)
            lines.append(
                f"  {case:<16s} acc={self.accuracy[case]:.2f}  "
                f"top-attention={top_band} ({profile[top_band]:.0%})"
            )
        return "\n".join(lines)


def run_study(
    model: Sequential,
    panel: str,
    model_name: str = "model",
    samples_per_case: int = 8,
    rng: RngLike = 0,
    gradcam_layer: str = "conv2_2",
    image_size: int = 32,
) -> StudyResult:
    """Run one generalization panel.

    For each case, renders ``samples_per_case`` controlled subjects,
    classifies them, and averages the Grad-CAM band profile over the
    correctly-classified ones (the paper's panels only interpret correct
    classifications, "for fair interpretation of feature-to-prediction
    correlation").
    """
    if panel not in GENERALIZATION_PANELS:
        raise ValueError(
            f"unknown panel {panel!r}; known: {sorted(GENERALIZATION_PANELS)}"
        )
    if samples_per_case <= 0:
        raise ValueError(f"samples_per_case must be positive, got {samples_per_case}")
    generator = FaceSampleGenerator(image_size=image_size)
    cam = GradCAM(model, layer=gradcam_layer)
    cases: List[str] = []
    accuracy: Dict[str, float] = {}
    band_profiles: Dict[str, Dict[str, float]] = {}
    for case in GENERALIZATION_PANELS[panel]:
        gen = derive(rng, f"{panel}/{case.name}")
        correct = 0
        profiles: List[Dict[str, float]] = []
        for _ in range(samples_per_case):
            sample = generator.generate_one(gen, case.spec)
            result = cam.compute(sample.image, target_class=int(sample.label))
            if result.predicted_class == int(sample.label):
                correct += 1
                profiles.append(attention_band_profile(result, sample))
        cases.append(case.name)
        accuracy[case.name] = correct / samples_per_case
        if profiles:
            keys = profiles[0].keys()
            band_profiles[case.name] = {
                k: float(np.mean([p[k] for p in profiles])) for k in keys
            }
        else:
            band_profiles[case.name] = {
                k: 0.0
                for k in ("background", "forehead_eyes", "nose", "mouth", "chin_neck")
            }
    return StudyResult(
        panel=panel,
        model_name=model_name,
        cases=cases,
        accuracy=accuracy,
        band_profiles=band_profiles,
    )
