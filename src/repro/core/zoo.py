"""Model zoo: train-once, cache, reuse.

Benchmarks, examples and the test suite all need trained BinaryCoP
instances; training on a single CPU core is the expensive step, so this
module provides a deterministic train-or-load cache keyed by
(architecture, dataset seed/size, budget). Artifacts live under
``.binarycop_cache/`` next to the repository root (or a caller-supplied
directory) as ordinary model checkpoints.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Tuple

from repro.core.classifier import BinaryCoP, TrainingBudget
from repro.data.dataset import DatasetSplits, build_masked_face_dataset

__all__ = [
    "default_cache_dir",
    "dataset_cached",
    "trained_classifier",
    "verify_zoo",
]

_ENV_VAR = "BINARYCOP_CACHE"


def default_cache_dir() -> Path:
    """Cache root: ``$BINARYCOP_CACHE`` or ``./.binarycop_cache``."""
    return Path(os.environ.get(_ENV_VAR, ".binarycop_cache"))


def _key(payload: dict) -> str:
    """Stable short hash of a configuration dict."""
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


_DATASET_MEMO: dict = {}


def dataset_cached(
    raw_size: int = 6000,
    rng: int = 42,
    augmented_copies: int = 1,
    balance: bool = True,
    augment: bool = True,
) -> DatasetSplits:
    """Build (or reuse, in-process) a dataset with the given pipeline knobs.

    The generator is deterministic in its arguments, so an in-process
    memo is sufficient — no on-disk image cache needed.
    """
    key = (raw_size, rng, augmented_copies, balance, augment)
    if key not in _DATASET_MEMO:
        _DATASET_MEMO[key] = build_masked_face_dataset(
            raw_size=raw_size,
            rng=rng,
            augmented_copies=augmented_copies,
            balance=balance,
            augment=augment,
        )
    return _DATASET_MEMO[key]


def trained_classifier(
    architecture: str,
    splits: Optional[DatasetSplits] = None,
    budget: Optional[TrainingBudget] = None,
    rng: int = 0,
    cache_dir: Optional[Path] = None,
    dataset_key: Optional[dict] = None,
    verbose: bool = False,
) -> BinaryCoP:
    """Return a trained classifier, training only on cache miss.

    ``dataset_key`` describes the dataset when ``splits`` came from a
    custom pipeline; when ``splits`` is omitted, the default
    :func:`dataset_cached` configuration is used (and keyed
    automatically).
    """
    budget = budget or TrainingBudget.laptop()
    if splits is None:
        splits = dataset_cached()
        dataset_key = {"default_dataset": True}
    if dataset_key is None:
        dataset_key = {
            "train": len(splits.train),
            "val": len(splits.val),
            "test": len(splits.test),
        }
    cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    key = _key(
        {
            "architecture": architecture,
            "rng": rng,
            "budget": asdict(budget),
            "dataset": dataset_key,
        }
    )
    path = cache_dir / f"{architecture}-{key}.npz"
    if path.exists():
        return BinaryCoP.load(path)
    clf = BinaryCoP(architecture, rng=rng)
    clf.fit(splits, budget, verbose=verbose)
    clf.save(path)
    return clf


def verify_zoo(architectures: Optional[Tuple[str, ...]] = None) -> dict:
    """Statically verify every registered binary prototype.

    Builds each architecture (no training — verification is static) and
    runs the model-graph verifier against its Table I folding. Returns
    ``{architecture: DiagnosticReport}``; the zoo-wide invariant, locked
    in by tests and ``repro verify-model``, is that every report is
    error-free.
    """
    from repro.analysis import verify_model
    from repro.core.architectures import (
        _TABLE1_FOLDING,
        build_architecture,
        table1_folding,
    )

    names = architectures if architectures is not None else tuple(
        sorted(_TABLE1_FOLDING)
    )
    return {
        name: verify_model(
            build_architecture(name), table1_folding(name), name=name
        )
        for name in names
    }
