"""BinaryCoP — the end-to-end face-mask wear/positioning classifier.

The high-level API a downstream user touches: pick a prototype, train it
on the (synthetic) MaskedFace-Net pipeline, evaluate, explain with
Grad-CAM, and deploy onto the FINN-style accelerator simulator with the
paper's Table I dimensioning.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.architectures import (
    ARCHITECTURES,
    GRADCAM_LAYER,
    build_architecture,
    table1_folding,
)
from repro.core.evaluation import ConfusionMatrix, confusion_matrix
from repro.core.gradcam import GradCAM, GradCAMResult
from repro.data.dataset import Dataset, DatasetSplits
from repro.hw.compiler import FinnAccelerator, FoldingConfig, compile_model
from functools import partial

from repro.nn.losses import cross_entropy
from repro.nn.optim import Adam
from repro.nn.schedules import cosine_decay
from repro.nn.sequential import Sequential
from repro.nn.trainer import EarlyStopping, History, Trainer, predict_classes
from repro.utils.rng import RngLike, derive

__all__ = ["TrainingBudget", "BinaryCoP"]


@dataclass(frozen=True)
class TrainingBudget:
    """How much compute to spend training (§IV-A trains up to 300 epochs).

    The paper's budget (``paper()``) is reachable on this pure-numpy
    substrate but slow on one core; ``laptop()`` is the default used by
    tests and benchmarks and reaches within a few points of saturation.
    """

    epochs: int = 30
    batch_size: int = 64
    learning_rate: float = 3e-3
    early_stopping_patience: Optional[int] = 8
    label_smoothing: float = 0.05
    #: Softmax temperature on the raw binary logits. A BNN's final layer
    #: emits integer logits with magnitude up to its fan-in (±128 for
    #: n-CNV, ±512 for CNV), which saturates softmax and kills gradients;
    #: the loss therefore sees ``logits * logit_scale / sqrt(fan_in)``.
    #: A constant positive scale never changes the argmax, so the
    #: deployed (hardware) semantics are untouched.
    logit_scale: float = 2.0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if self.learning_rate <= 0:
            raise ValueError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )

    @staticmethod
    def paper() -> "TrainingBudget":
        """§IV-A: up to 300 epochs, early stop when learning saturates."""
        return TrainingBudget(epochs=300, early_stopping_patience=20)

    @staticmethod
    def laptop() -> "TrainingBudget":
        """Single-core-friendly budget used throughout tests/benchmarks."""
        return TrainingBudget(epochs=30, early_stopping_patience=10)

    @staticmethod
    def smoke() -> "TrainingBudget":
        """A few epochs — just enough to exercise every code path."""
        return TrainingBudget(epochs=3, early_stopping_patience=None)


class BinaryCoP:
    """A (binary) face-mask wear classifier with training and deployment.

    Parameters
    ----------
    architecture:
        ``"cnv"`` | ``"n-cnv"`` | ``"u-cnv"`` | ``"fp32-cnv"``.
    rng:
        Seed controlling weight initialisation (and training shuffles via
        derived streams).
    """

    def __init__(self, architecture: str = "cnv", rng: RngLike = 0) -> None:
        if architecture not in ARCHITECTURES:
            raise ValueError(
                f"unknown architecture {architecture!r}; "
                f"known: {sorted(ARCHITECTURES)}"
            )
        self.architecture = architecture
        self.model: Sequential = build_architecture(architecture, rng=rng)
        self._rng_seed = rng
        self.history: Optional[History] = None
        self._accelerator: Optional[FinnAccelerator] = None

    @property
    def is_binary(self) -> bool:
        """Whether the prototype is a BNN (deployable to the accelerator)."""
        return self.architecture != "fp32-cnv"

    # -- training ----------------------------------------------------------
    def fit(
        self,
        splits: DatasetSplits,
        budget: Optional[TrainingBudget] = None,
        verbose: bool = False,
    ) -> History:
        """Train on ``splits.train``, early-stopping on ``splits.val``."""
        budget = budget or TrainingBudget.laptop()
        optimizer = Adam(self.model.parameters(), lr=budget.learning_rate)
        final_layer = self.model.layers[-1]
        fan_in = getattr(final_layer, "in_features", 128)
        temperature = budget.logit_scale / float(np.sqrt(fan_in))

        def loss(logits, targets):
            value, grad = cross_entropy(
                logits * temperature,
                targets,
                label_smoothing=budget.label_smoothing,
            )
            return value, grad * temperature

        trainer = Trainer(
            self.model,
            optimizer,
            loss=loss,
            schedule=cosine_decay(budget.epochs, floor=0.05),
        )
        stopper = (
            EarlyStopping(patience=budget.early_stopping_patience)
            if budget.early_stopping_patience
            else None
        )
        self.history = trainer.fit(
            splits.train.images,
            splits.train.labels,
            epochs=budget.epochs,
            batch_size=budget.batch_size,
            x_val=splits.val.images if len(splits.val) else None,
            y_val=splits.val.labels if len(splits.val) else None,
            rng=derive(self._rng_seed, "training-shuffle"),
            early_stopping=stopper,
            verbose=verbose,
        )
        # Any accelerator compiled for process-mode predict captured the
        # pre-training weights; drop it so the next use recompiles.
        if self._accelerator is not None:
            self._accelerator.close_pool()
            self._accelerator = None
        return self.history

    # -- inference -----------------------------------------------------------
    def predict(
        self,
        images: np.ndarray,
        chunk_size: int = 256,
        num_workers: Optional[int] = None,
        mode: Optional[str] = None,
        execution=None,
    ) -> np.ndarray:
        """Argmax class predictions (software float path).

        Arbitrary-size inputs are evaluated in chunks of ``chunk_size``
        images so a huge batch (e.g. coalesced by the serving layer)
        cannot blow up memory in one forward pass. ``num_workers`` runs
        the chunks thread-parallel: numpy's GEMM/im2col kernels release
        the GIL, and an inference-mode forward writes no model state the
        next forward reads, so concurrent chunks give identical results
        to serial (note the layers' autograd caches are not meaningful
        afterwards — irrelevant for prediction).

        ``execution`` switches to the compiled integer datapath: the
        Table I accelerator is compiled (and cached) and the batch
        dispatched through the :mod:`repro.runtime` engine the config
        resolves to — predictions agree with the float path wherever the
        quantised input does. ``mode="process"`` is the **deprecated**
        spelling of ``execution=ExecutionConfig(isolation="process")``.
        """
        if mode is not None:
            from repro.runtime import deprecated_kwargs_config

            execution = deprecated_kwargs_config(
                "BinaryCoP.predict", execution, mode=mode,
            )
            if execution.isolation != "process":
                # Legacy mode="thread" named the default float path.
                execution = None
        if execution is not None:
            if self._accelerator is None:
                self._accelerator = self.deploy()
            return self._accelerator.predict(
                images, num_workers=num_workers, execution=execution
            )
        if images.ndim == 3:
            images = images[None]
        if num_workers is not None and num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if num_workers is None or num_workers == 1 or len(images) <= chunk_size:
            return predict_classes(self.model, images, chunk_size)
        was_training = self.model.training
        self.model.eval()
        try:
            chunks = [
                images[start : start + chunk_size]
                for start in range(0, len(images), chunk_size)
            ]
            with ThreadPoolExecutor(
                max_workers=min(num_workers, len(chunks))
            ) as pool:
                parts = list(
                    pool.map(
                        lambda chunk: self.model.forward(chunk).argmax(axis=1),
                        chunks,
                    )
                )
            return np.concatenate(parts)
        finally:
            self.model.train(was_training)

    def evaluate(self, dataset: Dataset) -> Dict[str, float]:
        """Accuracy + per-class recall on a dataset split."""
        cm = self.confusion(dataset)
        out = {"accuracy": cm.overall_accuracy()}
        for name, recall in cm.per_class_recall().items():
            out[f"recall_{name}"] = recall
        return out

    def confusion(self, dataset: Dataset) -> ConfusionMatrix:
        """Confusion matrix on a dataset split (Fig. 2)."""
        preds = self.predict(dataset.images)
        return confusion_matrix(preds, dataset.labels)

    # -- interpretability --------------------------------------------------
    def gradcam(
        self, image: np.ndarray, target_class: Optional[int] = None
    ) -> GradCAMResult:
        """Grad-CAM heat map at the paper's tap layer (conv2_2)."""
        return GradCAM(self.model, layer=GRADCAM_LAYER).compute(image, target_class)

    # -- deployment -----------------------------------------------------------
    def deploy(
        self, folding: Optional[FoldingConfig] = None, name: Optional[str] = None
    ) -> FinnAccelerator:
        """Compile the trained BNN into the accelerator simulator.

        Defaults to the paper's Table I dimensioning for the prototype.
        """
        if not self.is_binary:
            raise ValueError(
                "the FP32 baseline is not deployable on the binary accelerator"
            )
        folding = folding or table1_folding(self.architecture)
        self.model.eval()
        return compile_model(
            self.model, folding, name=name or f"binarycop-{self.architecture}"
        )

    # -- persistence -----------------------------------------------------------
    def save(self, path) -> Path:
        """Checkpoint weights + running stats + architecture metadata."""
        return self.model.save(path, metadata={"architecture": self.architecture})

    @classmethod
    def load(cls, path) -> "BinaryCoP":
        """Restore a checkpointed classifier (architecture read from file)."""
        from repro.utils.serialization import load_arrays

        arrays, meta = load_arrays(path)
        architecture = meta.get("architecture")
        if architecture not in ARCHITECTURES:
            raise ValueError(
                f"checkpoint does not name a known architecture "
                f"(got {architecture!r})"
            )
        clf = cls(architecture=architecture)
        clf.model.load_state_dict(arrays)
        clf.model.eval()
        return clf
