"""``repro.core`` — the BinaryCoP contribution: models, training,
Grad-CAM interpretability, evaluation and deployment scenarios."""

from repro.core.architectures import (
    ARCHITECTURES,
    GRADCAM_LAYER,
    architecture_summary,
    build_architecture,
    build_cnv,
    build_fp32_cnv,
    build_n_cnv,
    build_u_cnv,
    table1_folding,
)
from repro.core.classifier import BinaryCoP, TrainingBudget
from repro.core.deployment import CrowdAnalyzer, CrowdStatistics, GateEvent, GateMonitor
from repro.core.error_analysis import BoundarySweep, boundary_sweep, render_sweep_table
from repro.core.evaluation import ConfusionMatrix, accuracy, confusion_matrix
from repro.core.generalization import (
    GENERALIZATION_PANELS,
    PanelCase,
    StudyResult,
    run_study,
)
from repro.core.fairness import FACTOR_COHORTS, FairnessReport, evaluate_fairness
from repro.core.gradcam import GradCAM, GradCAMResult, attention_band_profile
from repro.core.reporting import ExperimentReport, build_report
from repro.core.zoo import dataset_cached, default_cache_dir, trained_classifier

__all__ = [
    "ARCHITECTURES",
    "BinaryCoP",
    "BoundarySweep",
    "ConfusionMatrix",
    "ExperimentReport",
    "CrowdAnalyzer",
    "CrowdStatistics",
    "GENERALIZATION_PANELS",
    "GRADCAM_LAYER",
    "GateEvent",
    "GateMonitor",
    "FACTOR_COHORTS",
    "FairnessReport",
    "GradCAM",
    "GradCAMResult",
    "PanelCase",
    "StudyResult",
    "TrainingBudget",
    "accuracy",
    "architecture_summary",
    "attention_band_profile",
    "boundary_sweep",
    "build_architecture",
    "build_cnv",
    "build_report",
    "build_fp32_cnv",
    "build_n_cnv",
    "build_u_cnv",
    "confusion_matrix",
    "dataset_cached",
    "evaluate_fairness",
    "default_cache_dir",
    "render_sweep_table",
    "run_study",
    "table1_folding",
    "trained_classifier",
]
