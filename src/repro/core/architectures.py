"""The BinaryCoP network architectures and hardware dimensioning (Table I).

Three BNN prototypes are evaluated in the paper:

* **CNV** — the FINN CNV topology (VGG-16 / BinaryNet inspired): three
  conv groups of two 3×3 conv layers each (64/128/256 channels), max-pool
  after groups 1 and 2, then three fully-connected layers (512/512/4);
* **n-CNV** — the same depth at a quarter of the width (16/32/64 channels,
  128-wide FC) for a smaller memory footprint;
* **µ-CNV** — n-CNV with the last conv layer removed, to shrink the
  synthesised design (the trade-off §IV-B notes: the shallower network
  has a larger spatial dimension before the FC layers, so *more*
  parameters after the last conv — reproduced by
  :func:`architecture_summary`).

Every conv/FC layer is followed by batch-norm and a sign activation
except the final layer (§IV-A); pooling follows binarisation so the
hardware can pool with boolean OR. Table I's PE/SIMD dimensioning for
each prototype is exposed via :func:`table1_folding`.

Note: Table I prints FC.3 as "[44]" for CNV — a typesetting artifact of
the 4-class problem; all prototypes end in 4 logits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.hw.compiler import FoldingConfig
from repro.nn.layers import (
    BatchNorm,
    BinaryConv2D,
    BinaryDense,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    SignActivation,
)
from repro.nn.sequential import Sequential
from repro.utils.rng import RngLike, derive

__all__ = [
    "ARCHITECTURES",
    "build_cnv",
    "build_n_cnv",
    "build_u_cnv",
    "build_fp32_cnv",
    "build_architecture",
    "table1_folding",
    "architecture_summary",
    "GRADCAM_LAYER",
]

#: The layer whose activations/gradients Grad-CAM uses (§III-C): conv2_2,
#: whose output spatial size is 5×5 after the second pooling stage.
GRADCAM_LAYER = "conv2_2"

INPUT_SHAPE: Tuple[int, int, int] = (32, 32, 3)
NUM_CLASSES = 4

# (conv channels per layer, pool-after flags, fc widths) per prototype.
_SPECS: Dict[str, Dict] = {
    "cnv": {
        "convs": [(3, 64), (64, 64), (64, 128), (128, 128), (128, 256), (256, 256)],
        "pool_after": {1, 3},
        "fcs": [512, 512],
    },
    "n-cnv": {
        "convs": [(3, 16), (16, 16), (16, 32), (32, 32), (32, 64), (64, 64)],
        "pool_after": {1, 3},
        "fcs": [128, 128],
    },
    "u-cnv": {
        "convs": [(3, 16), (16, 16), (16, 32), (32, 32), (32, 64)],
        "pool_after": {1, 3},
        "fcs": [128],
    },
}

#: Table I PE/SIMD dimensioning, in MVTU pipeline order.
_TABLE1_FOLDING: Dict[str, FoldingConfig] = {
    "cnv": FoldingConfig(
        pe=(16, 32, 16, 16, 4, 1, 1, 1, 4),
        simd=(3, 32, 32, 32, 32, 32, 4, 8, 1),
    ),
    "n-cnv": FoldingConfig(
        pe=(16, 16, 16, 16, 4, 1, 1, 1, 1),
        simd=(3, 16, 16, 32, 32, 32, 4, 8, 1),
    ),
    "u-cnv": FoldingConfig(
        pe=(4, 4, 4, 4, 1, 1, 1),
        simd=(3, 16, 16, 32, 32, 16, 1),
    ),
}

_CONV_NAMES = ["conv1_1", "conv1_2", "conv2_1", "conv2_2", "conv3_1", "conv3_2"]


def _flat_features(spec: Dict) -> int:
    """Fan-in of the first FC layer, tracking the valid-conv spatial math."""
    size = INPUT_SHAPE[0]
    for i, _ in enumerate(spec["convs"]):
        size -= 2  # 3x3 valid conv
        if i in spec["pool_after"]:
            size //= 2
    channels = spec["convs"][-1][1]
    return size * size * channels


def _build_bnn(spec: Dict, rng: RngLike) -> Sequential:
    """Assemble a binary prototype following the paper's layer grammar."""
    model = Sequential(input_shape=INPUT_SHAPE)
    for i, (c_in, c_out) in enumerate(spec["convs"]):
        name = _CONV_NAMES[i]
        model.add(
            BinaryConv2D(c_in, c_out, kernel_size=3, rng=derive(rng, name)),
            name=name,
        )
        model.add(BatchNorm(c_out), name=f"bn_{name}")
        model.add(SignActivation(), name=f"sign_{name}")
        if i in spec["pool_after"]:
            model.add(MaxPool2D(2), name=f"pool{i // 2 + 1}")
    model.add(Flatten(), name="flatten")
    in_features = _flat_features(spec)
    for j, width in enumerate(spec["fcs"], start=1):
        name = f"fc{j}"
        model.add(
            BinaryDense(in_features, width, rng=derive(rng, name)), name=name
        )
        model.add(BatchNorm(width), name=f"bn_{name}")
        model.add(SignActivation(), name=f"sign_{name}")
        in_features = width
    final = f"fc{len(spec['fcs']) + 1}"
    model.add(
        BinaryDense(in_features, NUM_CLASSES, rng=derive(rng, final)), name=final
    )
    return model


def build_cnv(rng: RngLike = 0) -> Sequential:
    """The full-size CNV prototype (FINN CNV topology, Table I col. 1)."""
    return _build_bnn(_SPECS["cnv"], rng)


def build_n_cnv(rng: RngLike = 0) -> Sequential:
    """The narrow n-CNV prototype (Table I col. 2)."""
    return _build_bnn(_SPECS["n-cnv"], rng)


def build_u_cnv(rng: RngLike = 0) -> Sequential:
    """The shallow µ-CNV prototype (Table I col. 3)."""
    return _build_bnn(_SPECS["u-cnv"], rng)


def build_fp32_cnv(rng: RngLike = 0, width_scale: float = 1.0) -> Sequential:
    """The float-32 CNV used as the Grad-CAM comparison baseline (§IV-A).

    Same topology as CNV with full-precision conv/dense layers and ReLU
    activations. ``width_scale`` shrinks channel counts uniformly (handy
    for fast tests; 1.0 = the paper's model).
    """
    spec = _SPECS["cnv"]
    model = Sequential(input_shape=INPUT_SHAPE)
    scaled = [
        (c_in if i == 0 else max(1, int(c_in * width_scale)),
         max(1, int(c_out * width_scale)))
        for i, (c_in, c_out) in enumerate(spec["convs"])
    ]
    for i, (c_in, c_out) in enumerate(scaled):
        name = _CONV_NAMES[i]
        model.add(
            Conv2D(c_in, c_out, kernel_size=3, rng=derive(rng, name)), name=name
        )
        model.add(BatchNorm(c_out), name=f"bn_{name}")
        model.add(ReLU(), name=f"relu_{name}")
        if i in spec["pool_after"]:
            model.add(MaxPool2D(2), name=f"pool{i // 2 + 1}")
    model.add(Flatten(), name="flatten")
    size = INPUT_SHAPE[0]
    for i, _ in enumerate(scaled):
        size -= 2
        if i in spec["pool_after"]:
            size //= 2
    in_features = size * size * scaled[-1][1]
    for j, width in enumerate(spec["fcs"], start=1):
        width = max(NUM_CLASSES, int(width * width_scale))
        name = f"fc{j}"
        model.add(Dense(in_features, width, rng=derive(rng, name)), name=name)
        model.add(BatchNorm(width), name=f"bn_{name}")
        model.add(ReLU(), name=f"relu_{name}")
        in_features = width
    model.add(
        Dense(in_features, NUM_CLASSES, rng=derive(rng, "fc_final")),
        name=f"fc{len(spec['fcs']) + 1}",
    )
    return model


ARCHITECTURES = {
    "cnv": build_cnv,
    "n-cnv": build_n_cnv,
    "u-cnv": build_u_cnv,
    "fp32-cnv": build_fp32_cnv,
}


def build_architecture(name: str, rng: RngLike = 0) -> Sequential:
    """Build a prototype by name (``cnv`` / ``n-cnv`` / ``u-cnv`` / ``fp32-cnv``)."""
    try:
        builder = ARCHITECTURES[name]
    except KeyError:
        raise ValueError(
            f"unknown architecture {name!r}; known: {sorted(ARCHITECTURES)}"
        ) from None
    return builder(rng)


def table1_folding(name: str) -> FoldingConfig:
    """The paper's Table I PE/SIMD dimensioning for a binary prototype."""
    try:
        return _TABLE1_FOLDING[name]
    except KeyError:
        raise ValueError(
            f"no Table I folding for {name!r}; known: {sorted(_TABLE1_FOLDING)}"
        ) from None


def architecture_summary(name: str) -> Dict[str, object]:
    """Layer dims, parameter (weight-bit) counts and FC fan-in for a prototype.

    Used by the Table I benchmark and by the µ-CNV memory-footprint check
    (µ-CNV stores *more* weight bits than n-CNV despite being shallower).
    """
    if name not in _SPECS:
        raise ValueError(f"unknown binary architecture {name!r}")
    spec = _SPECS[name]
    layers: List[Tuple[str, int, int]] = []  # (name, C_in/fan-in, C_out)
    bits = 0
    for i, (c_in, c_out) in enumerate(spec["convs"]):
        layers.append((_CONV_NAMES[i], c_in, c_out))
        bits += 9 * c_in * c_out
    in_features = _flat_features(spec)
    for j, width in enumerate(spec["fcs"], start=1):
        layers.append((f"fc{j}", in_features, width))
        bits += in_features * width
        in_features = width
    layers.append((f"fc{len(spec['fcs']) + 1}", in_features, NUM_CLASSES))
    bits += in_features * NUM_CLASSES
    return {
        "name": name,
        "layers": layers,
        "weight_bits": bits,
        "fc_fan_in": _flat_features(spec),
        "folding": _TABLE1_FOLDING[name],
    }
