"""Demographic-parity evaluation across the generator's nuisance factors.

§I of the paper states the design goal directly: "To maintain equivalent
classification accuracy for all face structures, skin-tones, hair types,
and mask types, the algorithms must be able to generalize the relevant
features over all subjects." The Grad-CAM panels (Figs 7–9) probe that
qualitatively; this module measures it: for every *protected factor*
(skin tone, age group, hair color, mask type) it generates controlled
cohorts that differ **only** in that factor (same class mix, same seed
schedule), evaluates the classifier per cohort, and reports the accuracy
disparity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.attributes import HAIR_COLORS, SKIN_TONES
from repro.data.generator import FaceSampleGenerator, SampleSpec
from repro.data.mask_model import WearClass
from repro.nn.sequential import Sequential
from repro.nn.trainer import predict_classes
from repro.utils.rng import RngLike, derive
from repro.utils.tables import render_table

__all__ = ["FairnessReport", "FACTOR_COHORTS", "evaluate_fairness"]


def _skin_cohorts() -> List[Tuple[str, SampleSpec]]:
    return [
        (f"skin_tone_{i}", SampleSpec(skin_tone=tone))
        for i, tone in enumerate(SKIN_TONES)
    ]


def _age_cohorts() -> List[Tuple[str, SampleSpec]]:
    return [
        (age, SampleSpec(age_group=age)) for age in ("infant", "adult", "elderly")
    ]


def _hair_cohorts() -> List[Tuple[str, SampleSpec]]:
    names = ("black", "dark_brown", "brown", "blond", "red", "grey", "blue", "pink")
    return [
        (f"hair_{name}", SampleSpec(hair_color=color))
        for name, color in zip(names, HAIR_COLORS)
    ]


def _mask_type_cohorts() -> List[Tuple[str, SampleSpec]]:
    return [
        (f"mask_{t}", SampleSpec(mask_type=t))
        for t in ("surgical", "cloth", "ffp2")
    ]


#: Protected factors and their cohort constructors.
FACTOR_COHORTS: Dict[str, Callable[[], List[Tuple[str, SampleSpec]]]] = {
    "skin_tone": _skin_cohorts,
    "age_group": _age_cohorts,
    "hair_color": _hair_cohorts,
    "mask_type": _mask_type_cohorts,
}


@dataclass
class FairnessReport:
    """Per-cohort accuracies for one protected factor."""

    factor: str
    cohort_accuracy: Dict[str, float]
    samples_per_cohort: int

    def __post_init__(self) -> None:
        if not self.cohort_accuracy:
            raise ValueError("report needs at least one cohort")

    @property
    def worst(self) -> Tuple[str, float]:
        name = min(self.cohort_accuracy, key=self.cohort_accuracy.get)
        return name, self.cohort_accuracy[name]

    @property
    def best(self) -> Tuple[str, float]:
        name = max(self.cohort_accuracy, key=self.cohort_accuracy.get)
        return name, self.cohort_accuracy[name]

    @property
    def disparity(self) -> float:
        """Max accuracy gap between any two cohorts (0 = perfect parity)."""
        return self.best[1] - self.worst[1]

    def mean_accuracy(self) -> float:
        return float(np.mean(list(self.cohort_accuracy.values())))

    def render(self) -> str:
        rows = [
            [name, f"{acc:.3f}"]
            for name, acc in sorted(self.cohort_accuracy.items())
        ]
        rows.append(["(disparity)", f"{self.disparity:.3f}"])
        return render_table(
            ["cohort", "accuracy"],
            rows,
            title=f"Fairness over {self.factor} "
            f"(n={self.samples_per_cohort}/cohort)",
        )


def evaluate_fairness(
    model: Sequential,
    factor: str,
    samples_per_cohort: int = 40,
    rng: RngLike = 0,
    image_size: int = 32,
) -> FairnessReport:
    """Measure accuracy parity of ``model`` across one protected factor.

    Cohorts share the class schedule (balanced across the four wear
    classes, same per-index seeds) and differ only in the protected
    attribute, so accuracy gaps are attributable to the factor itself
    rather than to sampling noise in the other attributes.
    """
    if factor not in FACTOR_COHORTS:
        raise ValueError(
            f"unknown factor {factor!r}; known: {sorted(FACTOR_COHORTS)}"
        )
    if samples_per_cohort < 4:
        raise ValueError(
            f"samples_per_cohort must be >= 4 (one per class), got "
            f"{samples_per_cohort}"
        )
    generator = FaceSampleGenerator(image_size=image_size)
    cohorts = FACTOR_COHORTS[factor]()
    # One wear class per index, cycled — identical for every cohort.
    labels = np.arange(samples_per_cohort) % 4
    accuracies: Dict[str, float] = {}
    for name, spec in cohorts:
        images = np.empty(
            (samples_per_cohort, image_size, image_size, 3), dtype=np.float32
        )
        for i in range(samples_per_cohort):
            # Seed by index only: cohorts see the same subjects modulo
            # the protected attribute.
            sample_rng = derive(rng, f"{factor}/{i}")
            from dataclasses import replace

            sample = generator.generate_one(
                sample_rng, replace(spec, wear_class=WearClass(int(labels[i])))
            )
            images[i] = sample.image
        preds = predict_classes(model, images)
        accuracies[name] = float((preds == labels).mean())
    return FairnessReport(
        factor=factor,
        cohort_accuracy=accuracies,
        samples_per_cohort=samples_per_cohort,
    )
