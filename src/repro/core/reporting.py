"""Programmatic experiment report generation.

Builds a single markdown document covering the full reproduction for one
trained-model set: Table I/II regenerations, the Fig. 2 confusion
matrix, throughput/power/buffer summaries, fairness audits and (when
models come with training history) the accuracy table — the artifact a
downstream user hands to a reviewer. Used by
``examples/generate_report.py`` and exercised by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.architectures import architecture_summary
from repro.core.classifier import BinaryCoP
from repro.core.evaluation import ConfusionMatrix
from repro.core.fairness import FACTOR_COHORTS, evaluate_fairness
from repro.data.dataset import DatasetSplits
from repro.hw.buffers import plan_buffers
from repro.hw.devices import fit_report
from repro.hw.pipeline import analyze_pipeline
from repro.hw.power import PowerModel
from repro.hw.resources import TABLE2_CALIBRATION, estimate_resources

__all__ = ["ReportSection", "ExperimentReport", "build_report"]

PAPER_ACCURACY = {
    "cnv": 0.9810,
    "n-cnv": 0.9394,
    "u-cnv": 0.9378,
    "fp32-cnv": 0.986,
}


@dataclass
class ReportSection:
    """One titled markdown block."""

    title: str
    body: str

    def render(self, level: int = 2) -> str:
        return f"{'#' * level} {self.title}\n\n{self.body.rstrip()}\n"


@dataclass
class ExperimentReport:
    """A full reproduction report, renderable to markdown."""

    title: str
    sections: List[ReportSection] = field(default_factory=list)

    def add(self, title: str, body: str) -> "ExperimentReport":
        self.sections.append(ReportSection(title=title, body=body))
        return self

    def render(self) -> str:
        parts = [f"# {self.title}\n"]
        parts.extend(section.render() for section in self.sections)
        return "\n".join(parts)

    def save(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render(), encoding="utf-8")
        return path


def _accuracy_section(
    classifiers: Dict[str, BinaryCoP], splits: DatasetSplits
) -> str:
    lines = [
        "| config | test acc (ours) | paper acc |",
        "|--------|----------------:|----------:|",
    ]
    for name, clf in classifiers.items():
        acc = clf.evaluate(splits.test)["accuracy"]
        paper = PAPER_ACCURACY.get(name)
        paper_str = f"{paper:.4f}" if paper is not None else "-"
        lines.append(f"| {name} | {acc:.4f} | {paper_str} |")
    return "\n".join(lines)


def _hardware_section(classifiers: Dict[str, BinaryCoP]) -> str:
    lines = [
        "| config | LUT | BRAM | DSP | FPS (calibrated) | active W |",
        "|--------|----:|-----:|----:|-----------------:|---------:|",
    ]
    power = PowerModel()
    for name, clf in classifiers.items():
        if not clf.is_binary:
            continue
        acc = clf.deploy()
        res = estimate_resources(acc, dsp_offload=(name == "u-cnv"))
        timing = analyze_pipeline(acc)
        watts = power.estimate(res).active_w
        lines.append(
            f"| {name} | {res.lut:,.0f} | {res.bram36:.1f} | {res.dsp} "
            f"| {timing.fps_calibrated:,.0f} | {watts:.2f} |"
        )
    lines.append("")
    lines.append(
        "Paper Table II: "
        + "; ".join(
            f"{k}: {v['lut']:,} LUT / {v['bram']} BRAM / {int(v['dsp'])} DSP"
            for k, v in TABLE2_CALIBRATION.items()
        )
        + "."
    )
    return "\n".join(lines)


def _confusion_section(cm: ConfusionMatrix) -> str:
    return (
        "```\n"
        + cm.render()
        + "\n```\n\n"
        + f"Overall accuracy {cm.overall_accuracy():.4f}; dominant "
        + "confusion {0} -> {1} ({2} samples).".format(*cm.dominant_confusion())
    )


def _deployment_section(clf: BinaryCoP) -> str:
    acc = clf.deploy()
    res = estimate_resources(acc)
    buffers = plan_buffers(acc)
    lines = ["```", analyze_pipeline(acc).report(), "```", ""]
    lines.append(f"Resources: {res.report()}")
    lines.append("")
    lines.append("```")
    lines.append(buffers.report())
    lines.append("```")
    lines.append("")
    lines.extend(f"- {line}" for line in fit_report(res.lut, res.bram36, res.dsp))
    return "\n".join(lines)


def _fairness_section(clf: BinaryCoP, samples: int, rng: int) -> str:
    parts = []
    for factor in FACTOR_COHORTS:
        report = evaluate_fairness(
            clf.model, factor, samples_per_cohort=samples, rng=rng
        )
        worst_name, worst_acc = report.worst
        parts.append(
            f"- **{factor}**: mean {report.mean_accuracy():.3f}, worst "
            f"cohort `{worst_name}` at {worst_acc:.3f} "
            f"(disparity {report.disparity:.3f})"
        )
    return "\n".join(parts)


def build_report(
    classifiers: Dict[str, BinaryCoP],
    splits: DatasetSplits,
    fairness_samples: int = 16,
    fairness_model: str = "cnv",
    rng: int = 0,
) -> ExperimentReport:
    """Assemble the reproduction report for a set of trained classifiers.

    ``classifiers`` maps architecture names to trained
    :class:`BinaryCoP` instances (e.g. from the model zoo).
    """
    if not classifiers:
        raise ValueError("need at least one trained classifier")
    report = ExperimentReport(title="BinaryCoP reproduction report")
    report.add(
        "Dataset",
        "Synthetic MaskedFace-Net substitute, SS IV-A pipeline.\n\n```\n"
        + splits.summary()
        + "\n```",
    )
    report.add("Classification accuracy (vs paper)", _accuracy_section(classifiers, splits))
    report.add("Hardware (Table II regeneration)", _hardware_section(classifiers))

    # Confusion matrix for the strongest binary prototype available.
    for preferred in ("cnv", "n-cnv", "u-cnv"):
        if preferred in classifiers:
            cm = classifiers[preferred].confusion(splits.test)
            report.add(
                f"Confusion matrix ({preferred}, Fig. 2)", _confusion_section(cm)
            )
            break

    deploy_name = next(
        (n for n in ("n-cnv", "cnv", "u-cnv") if n in classifiers), None
    )
    if deploy_name is not None:
        report.add(
            f"Deployment profile ({deploy_name})",
            _deployment_section(classifiers[deploy_name]),
        )

    if fairness_model in classifiers:
        report.add(
            f"Fairness audit ({fairness_model})",
            _fairness_section(classifiers[fairness_model], fairness_samples, rng),
        )

    # Architecture inventory (Table I facts).
    inventory = []
    for name in ("cnv", "n-cnv", "u-cnv"):
        summary = architecture_summary(name)
        inventory.append(
            f"- **{name}**: {len(summary['layers'])} layers, "
            f"{summary['weight_bits']:,} weight bits "
            f"({summary['weight_bits'] / 8192:.1f} KiB packed)"
        )
    report.add("Architectures (Table I)", "\n".join(inventory))
    return report
