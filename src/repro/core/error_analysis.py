"""Decision-boundary sharpness analysis.

The four wear classes are *geometric* (mask edges relative to nose,
mouth and chin landmarks), so a classifier that learned the task should
degrade only near the class boundaries, not in the class interiors.
This module sweeps deterministic mask placements from the deep interior
of each class toward its boundary
(:func:`repro.data.mask_model.place_mask_interpolated`) and measures
accuracy along the sweep — an error-analysis lens the paper's confusion
matrix (Fig. 2) summarises into its adjacent-class off-diagonals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.data.attributes import sample_attributes
from repro.data.face_renderer import render_face
from repro.data.keypoints import sample_keypoints
from repro.data.mask_model import (
    CLASS_NAMES,
    WearClass,
    composite_mask,
    place_mask_interpolated,
)
from repro.utils import imaging
from repro.utils.rng import RngLike, derive
from repro.utils.tables import render_table

__all__ = ["BoundarySweep", "boundary_sweep", "render_sweep_table"]


@dataclass
class BoundarySweep:
    """Accuracy vs boundary proximity for one wear class."""

    wear_class: WearClass
    positions: List[float]  # 0 = deep interior, 1 = at the boundary
    accuracy: List[float]
    subjects_per_point: int

    def interior_accuracy(self) -> float:
        """Accuracy at the deepest sampled placement."""
        return self.accuracy[0]

    def boundary_accuracy(self) -> float:
        """Accuracy at the placement closest to the class boundary."""
        return self.accuracy[-1]

    def sharpness(self) -> float:
        """Interior minus boundary accuracy (>= 0 for a geometric learner)."""
        return self.interior_accuracy() - self.boundary_accuracy()


def _render_at(position: float, wear: WearClass, rng, image_size: int) -> np.ndarray:
    """One subject with the mask pinned at ``position`` inside its class."""
    attrs = sample_attributes(rng, sunglasses=False, face_paint=False,
                              double_mask=False)
    kp = sample_keypoints(rng, canvas=64, age_group=attrs.age_group)
    img = render_face(kp, attrs, rng)
    placement = place_mask_interpolated(kp, wear, position)
    composite_mask(img, kp, placement, attrs.mask, rng)
    small = imaging.resize_bilinear(img, (image_size, image_size))
    return imaging.quantize_to_uint8_grid(small)


def boundary_sweep(
    classifier,
    wear_class: WearClass,
    positions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 0.9, 1.0),
    subjects_per_point: int = 16,
    rng: RngLike = 0,
    image_size: int = 32,
) -> BoundarySweep:
    """Measure accuracy along the interior→boundary axis of one class.

    ``classifier`` is anything with ``predict(images) -> labels``. The
    same subjects (identical nuisance seeds) are rendered at every
    position, so the curve isolates placement from subject variation.
    """
    if not hasattr(classifier, "predict"):
        raise TypeError("classifier must expose predict(images)")
    if subjects_per_point < 1:
        raise ValueError(
            f"subjects_per_point must be >= 1, got {subjects_per_point}"
        )
    positions = [float(p) for p in positions]
    for p in positions:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"positions must lie in [0, 1], got {p}")
    wear_class = WearClass(wear_class)
    accuracy: List[float] = []
    for position in positions:
        images = np.empty((subjects_per_point, image_size, image_size, 3),
                          dtype=np.float32)
        for i in range(subjects_per_point):
            subject_rng = derive(rng, f"boundary/{int(wear_class)}/{i}")
            images[i] = _render_at(position, wear_class, subject_rng, image_size)
        preds = np.asarray(classifier.predict(images))
        accuracy.append(float((preds == int(wear_class)).mean()))
    return BoundarySweep(
        wear_class=wear_class,
        positions=positions,
        accuracy=accuracy,
        subjects_per_point=subjects_per_point,
    )


def render_sweep_table(sweeps: Sequence[BoundarySweep]) -> str:
    """One row per class, one column per position."""
    if not sweeps:
        raise ValueError("need at least one sweep")
    positions = sweeps[0].positions
    for s in sweeps:
        if s.positions != positions:
            raise ValueError("sweeps must share the same position grid")
    rows = []
    for s in sweeps:
        rows.append(
            [CLASS_NAMES[int(s.wear_class)]]
            + [f"{a:.2f}" for a in s.accuracy]
            + [f"{s.sharpness():+.2f}"]
        )
    headers = ["class"] + [f"t={p:.2f}" for p in positions] + ["drop"]
    return render_table(
        headers,
        rows,
        title="Decision-boundary sweep (t: class interior -> boundary)",
    )
