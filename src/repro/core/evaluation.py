"""Evaluation utilities: confusion matrix (Fig. 2), per-class metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.mask_model import CLASS_NAMES
from repro.utils.tables import render_matrix

__all__ = ["ConfusionMatrix", "confusion_matrix", "accuracy"]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of predictions against labels."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape}, labels {labels.shape}"
        )
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of an empty prediction set")
    return float((predictions == labels).mean())


@dataclass
class ConfusionMatrix:
    """A labelled confusion matrix with the paper's Fig. 2 presentation."""

    counts: np.ndarray  # (C, C) int64, rows = true class
    class_names: Sequence[str] = CLASS_NAMES

    def __post_init__(self) -> None:
        self.counts = np.asarray(self.counts, dtype=np.int64)
        if self.counts.ndim != 2 or self.counts.shape[0] != self.counts.shape[1]:
            raise ValueError(f"counts must be square, got {self.counts.shape}")
        if self.counts.shape[0] != len(self.class_names):
            raise ValueError(
                f"{len(self.class_names)} names for {self.counts.shape[0]} classes"
            )

    @property
    def num_classes(self) -> int:
        return self.counts.shape[0]

    def overall_accuracy(self) -> float:
        total = self.counts.sum()
        if total == 0:
            raise ValueError("empty confusion matrix")
        return float(np.trace(self.counts) / total)

    def per_class_recall(self) -> Dict[str, float]:
        """Diagonal / row sum — the percentages printed in Fig. 2."""
        out = {}
        for i, name in enumerate(self.class_names):
            row = self.counts[i].sum()
            out[name] = float(self.counts[i, i] / row) if row else float("nan")
        return out

    def per_class_precision(self) -> Dict[str, float]:
        """Diagonal / column sum."""
        out = {}
        for j, name in enumerate(self.class_names):
            col = self.counts[:, j].sum()
            out[name] = float(self.counts[j, j] / col) if col else float("nan")
        return out

    def per_class_f1(self) -> Dict[str, float]:
        """Harmonic mean of precision and recall per class.

        Classes with no support and no predictions get ``nan`` (undefined
        rather than silently zero).
        """
        recall = self.per_class_recall()
        precision = self.per_class_precision()
        out = {}
        for name in self.class_names:
            r, p = recall[name], precision[name]
            if np.isnan(r) or np.isnan(p) or (r + p) == 0:
                out[name] = float("nan")
            else:
                out[name] = 2 * p * r / (p + r)
        return out

    def macro_f1(self) -> float:
        """Unweighted mean of per-class F1 (nan-aware)."""
        values = list(self.per_class_f1().values())
        return float(np.nanmean(values))

    def row_normalised(self) -> np.ndarray:
        """Rows as probabilities (zeros where a class is absent)."""
        sums = self.counts.sum(axis=1, keepdims=True).astype(np.float64)
        with np.errstate(invalid="ignore", divide="ignore"):
            out = np.where(sums > 0, self.counts / sums, 0.0)
        return out

    def dominant_confusion(self) -> tuple:
        """The largest off-diagonal cell: (true name, predicted name, count)."""
        off = self.counts.copy()
        np.fill_diagonal(off, -1)
        i, j = np.unravel_index(int(off.argmax()), off.shape)
        return (self.class_names[i], self.class_names[j], int(self.counts[i, j]))

    def render(self, title: Optional[str] = None) -> str:
        """ASCII rendering in the paper's count-plus-row-percent format."""
        return render_matrix(
            self.counts,
            list(self.class_names),
            list(self.class_names),
            title=title or "Confusion matrix (rows: true class)",
            percent=True,
        )


def confusion_matrix(
    predictions: np.ndarray,
    labels: np.ndarray,
    num_classes: int = len(CLASS_NAMES),
    class_names: Sequence[str] = CLASS_NAMES,
) -> ConfusionMatrix:
    """Build a :class:`ConfusionMatrix` from predictions and labels."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape}, labels {labels.shape}"
        )
    for arr, name in ((predictions, "predictions"), (labels, "labels")):
        if arr.size and (arr.min() < 0 or arr.max() >= num_classes):
            raise ValueError(f"{name} out of range [0, {num_classes})")
    counts = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(counts, (labels, predictions), 1)
    return ConfusionMatrix(counts=counts, class_names=class_names)
