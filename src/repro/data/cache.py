"""Persistent on-disk dataset cache: memmap-backed ``.npy`` shards.

Rendering the synthetic MaskedFace-Net-style dataset is the slow half of
the §IV-A training pipeline (~6 ms per image on one core, single
threaded); the paper trains "up to 300 epochs", but every run of the
reproduction used to re-render the whole set first. This module gives
:func:`~repro.data.dataset.build_masked_face_dataset` a content-addressed
cache so repeat training runs skip rendering entirely:

* **Key** — a SHA-256 over the canonical JSON of the full pipeline
  configuration (raw size, image/render size, class mix, derived seed
  entropies, balance/augment switches, split fractions) plus
  :data:`DATA_VERSION`, the library's data-format version. Any change to
  the config, the seed, or the renderer (via a ``DATA_VERSION`` bump)
  produces a different key — invalidation is automatic.
* **Layout** — one directory per key holding a ``meta.json`` manifest and
  one ``.npy`` shard per split/field (``train-images.npy`` …). The
  manifest records each shard's shape, dtype, byte size and SHA-256.
* **Load** — labels load eagerly (tiny); image shards open with
  ``mmap_mode="r"``, so epochs stream mini-batches straight off the
  memmap without materialising the full set in RAM.
* **Integrity** — a missing, truncated or bit-flipped shard fails the
  manifest check and the entry reads as a miss; the caller regenerates
  and overwrites instead of silently training on corrupt data.

Writes go through a temporary directory renamed into place, so a crashed
writer never leaves a half-entry that passes validation.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import time
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.data.dataset import Dataset, DatasetSplits

__all__ = ["DATA_VERSION", "DatasetCache", "dataset_cache_key"]

#: Version of the generated data format. Bump whenever the renderer, the
#: per-sample seeding scheme or the pipeline semantics change in a way
#: that alters pixels for an unchanged configuration — every cached entry
#: keyed under the old version then reads as a miss.
DATA_VERSION = 1

_MANIFEST = "meta.json"
_KIND = "binarycop-dataset-cache"
_FIELDS = tuple(
    f"{split}-{field}"
    for split in ("train", "val", "test")
    for field in ("images", "labels")
)


def dataset_cache_key(config: Dict) -> str:
    """Stable hex key for a pipeline configuration.

    ``config`` must be JSON-serialisable; the key covers every entry plus
    :data:`DATA_VERSION`, hashed over a canonical (sorted, compact) JSON
    encoding so dict ordering cannot perturb it.
    """
    payload = {"data_version": DATA_VERSION, "config": config}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def _file_sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


class DatasetCache:
    """Content-addressed store of rendered :class:`DatasetSplits`.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first store).
    mmap:
        When True (default), cache hits return image arrays opened with
        ``mmap_mode="r"`` — batches are paged in on demand instead of
        loading the whole split up front.
    """

    def __init__(self, root, mmap: bool = True) -> None:
        self.root = Path(root)
        self.mmap = bool(mmap)

    def entry_dir(self, key: str) -> Path:
        """Directory holding the shards for ``key``."""
        return self.root / key

    # -- read ------------------------------------------------------------------
    def load(self, config: Dict) -> Optional[DatasetSplits]:
        """The cached splits for ``config``, or ``None`` on miss.

        Any validation failure — absent entry, manifest/key mismatch,
        missing shard, size or checksum mismatch — reads as a miss so the
        caller falls back to regeneration.
        """
        key = dataset_cache_key(config)
        entry = self.entry_dir(key)
        manifest = self._read_manifest(entry, key)
        if manifest is None:
            return None
        arrays = {}
        for name in _FIELDS:
            record = manifest["files"][name]
            path = entry / f"{name}.npy"
            if not self._shard_ok(path, record):
                return None
            mmap_mode = "r" if (self.mmap and name.endswith("images")) else None
            arrays[name] = np.load(path, mmap_mode=mmap_mode)
        return DatasetSplits(
            train=Dataset(arrays["train-images"], arrays["train-labels"]),
            val=Dataset(arrays["val-images"], arrays["val-labels"]),
            test=Dataset(arrays["test-images"], arrays["test-labels"]),
        )

    def _read_manifest(self, entry: Path, key: str) -> Optional[Dict]:
        path = entry / _MANIFEST
        if not path.exists():
            return None
        try:
            manifest = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (
            manifest.get("kind") != _KIND
            or manifest.get("data_version") != DATA_VERSION
            or manifest.get("key") != key
            or set(manifest.get("files", {})) != set(_FIELDS)
        ):
            return None
        return manifest

    def _shard_ok(self, path: Path, record: Dict) -> bool:
        """Validate one shard against its manifest record."""
        if not path.exists() or path.stat().st_size != record["nbytes"]:
            return False
        return _file_sha256(path) == record["sha256"]

    # -- write -----------------------------------------------------------------
    def store(self, config: Dict, splits: DatasetSplits) -> Path:
        """Write ``splits`` under the key of ``config``; returns the entry dir.

        The entry is assembled in a sibling temp directory and renamed
        into place, replacing any existing (possibly corrupt) entry.
        """
        key = dataset_cache_key(config)
        entry = self.entry_dir(key)
        tmp = entry.with_name(f"{key}.tmp-{time.time_ns()}")
        tmp.mkdir(parents=True)
        try:
            files = {}
            for split in ("train", "val", "test"):
                ds: Dataset = getattr(splits, split)
                for field, array, dtype in (
                    ("images", ds.images, np.float32),
                    ("labels", ds.labels, np.int64),
                ):
                    name = f"{split}-{field}"
                    path = tmp / f"{name}.npy"
                    np.save(path, np.ascontiguousarray(array, dtype=dtype))
                    files[name] = {
                        "shape": list(array.shape),
                        "dtype": str(np.dtype(dtype)),
                        "nbytes": path.stat().st_size,
                        "sha256": _file_sha256(path),
                    }
            manifest = {
                "kind": _KIND,
                "data_version": DATA_VERSION,
                "key": key,
                "config": config,
                "created": time.time(),
                "files": files,
            }
            (tmp / _MANIFEST).write_text(json.dumps(manifest, indent=2) + "\n")
            if entry.exists():
                shutil.rmtree(entry)
            tmp.rename(entry)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        return entry
