"""Deformable mask model and the four wear classes.

Following Cabani et al. [6], a mask is a deformable polygon whose control
points are matched to facial key-points. The wear class is purely a
question of which landmarks the mask spans:

===================  =============================  ==========================
class                top edge                       bottom edge
===================  =============================  ==========================
``CORRECT``          at/above the nose bridge        below the chin tip
``NOSE_EXPOSED``     between nose tip and mouth      below the chin tip
``NOSE_MOUTH``       between mouth and chin          below the chin tip
``CHIN_EXPOSED``     at/above the nose bridge        above the chin tip
===================  =============================  ==========================

Placement within each class is jittered so the classifier must learn the
landmark-relative geometry, not a fixed pixel row.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Tuple

import numpy as np

from repro.data.attributes import MaskAttributes
from repro.data.keypoints import FaceKeypoints
from repro.utils import imaging
from repro.utils.rng import RngLike, as_generator

__all__ = [
    "WearClass",
    "CLASS_NAMES",
    "MaskPlacement",
    "place_mask",
    "place_mask_interpolated",
    "composite_mask",
]


class WearClass(IntEnum):
    """The 4-class split of MaskedFace-Net used by the paper (§IV-A)."""

    CORRECT = 0  # CMFD
    NOSE_EXPOSED = 1  # IMFD Nose
    NOSE_MOUTH_EXPOSED = 2  # IMFD Nose and Mouth
    CHIN_EXPOSED = 3  # IMFD Chin


#: Display names in the order of :class:`WearClass` (Fig. 2 axis labels).
CLASS_NAMES: Tuple[str, ...] = ("Correct", "Nose", "N+M", "Chin")


@dataclass
class MaskPlacement:
    """Resolved mask geometry for one face: vertical span plus widths."""

    top_y: float
    bottom_y: float
    top_half_width: float
    bottom_half_width: float
    center_x: float
    wear_class: WearClass

    def __post_init__(self) -> None:
        if self.bottom_y <= self.top_y:
            raise ValueError(
                f"mask bottom ({self.bottom_y}) must be below top ({self.top_y})"
            )
        if self.top_half_width <= 0 or self.bottom_half_width <= 0:
            raise ValueError("mask widths must be positive")


def place_mask(
    kp: FaceKeypoints, wear_class: WearClass, rng: RngLike = None
) -> MaskPlacement:
    """Fit the deformable mask to key-points for the requested class.

    The vertical span is sampled within the class's admissible band (see
    module docstring); widths follow the face ellipse at the respective
    heights so the mask visually hugs the jaw.
    """
    gen = as_generator(rng)
    wear_class = WearClass(wear_class)
    nose_bridge_y = kp.nose_bridge[1]
    chin_y = kp.chin_tip[1]

    if wear_class == WearClass.CORRECT:
        top = nose_bridge_y + gen.uniform(-0.06, 0.25) * (kp.nose_tip[1] - nose_bridge_y)
        bottom = chin_y + gen.uniform(0.05, 0.22) * kp.face_ry
    elif wear_class == WearClass.NOSE_EXPOSED:
        top = kp.below_nose_y(float(gen.uniform(0.25, 0.6)))
        bottom = chin_y + gen.uniform(0.05, 0.22) * kp.face_ry
    elif wear_class == WearClass.NOSE_MOUTH_EXPOSED:
        top = kp.below_mouth_y(float(gen.uniform(0.3, 0.6)))
        bottom = chin_y + gen.uniform(0.08, 0.25) * kp.face_ry
    else:  # CHIN_EXPOSED: pulled up, chin out
        top = nose_bridge_y + gen.uniform(-0.06, 0.25) * (kp.nose_tip[1] - nose_bridge_y)
        bottom = kp.above_chin_y(float(gen.uniform(0.3, 0.65)))

    cx = kp.face_center[0]
    cy = kp.face_center[1]

    def half_width_at(y: float) -> float:
        rel = np.clip((y - cy) / kp.face_ry, -0.95, 0.95)
        return kp.face_rx * float(np.sqrt(1.0 - rel**2))

    top_hw = half_width_at(top) * float(gen.uniform(1.0, 1.12))
    bottom_hw = max(half_width_at(min(bottom, chin_y)) * 0.9, kp.face_rx * 0.3)
    return MaskPlacement(
        top_y=float(top),
        bottom_y=float(bottom),
        top_half_width=float(top_hw),
        bottom_half_width=float(bottom_hw),
        center_x=float(cx),
        wear_class=wear_class,
    )


def place_mask_interpolated(
    kp: FaceKeypoints, wear_class: WearClass, position: float
) -> MaskPlacement:
    """Deterministic placement at a point inside the class's admissible band.

    ``position`` in ``[0, 1]`` interpolates the class-defining edge from
    the *deep* end of the class (0, far from any boundary) to the
    *boundary* end (1, where the next class begins). Used by the
    decision-boundary sharpness analysis: a classifier that learned the
    landmark geometry should stay confident at low positions and lose
    confidence only as the placement approaches the class boundary.
    """
    if not 0.0 <= position <= 1.0:
        raise ValueError(f"position must be in [0, 1], got {position}")
    wear_class = WearClass(wear_class)
    nose_bridge_y = kp.nose_bridge[1]
    nose_tip_y = kp.nose_tip[1]
    mouth_y = kp.mouth_center[1]
    chin_y = kp.chin_tip[1]
    below_chin = chin_y + 0.12 * kp.face_ry

    if wear_class == WearClass.CORRECT:
        # Top edge travels from the nose bridge (deep) toward the nose
        # tip (boundary with NOSE_EXPOSED).
        top = nose_bridge_y + position * (nose_tip_y - nose_bridge_y) * 0.98
        bottom = below_chin
    elif wear_class == WearClass.NOSE_EXPOSED:
        # Top edge travels from midway nose->mouth (deep) up toward the
        # nose tip (boundary with CORRECT).
        deep = nose_tip_y + 0.5 * (mouth_y - nose_tip_y)
        top = deep + position * (nose_tip_y + 1e-3 - deep)
        bottom = below_chin
    elif wear_class == WearClass.NOSE_MOUTH_EXPOSED:
        # Top edge travels from midway mouth->chin (deep) up toward the
        # mouth (boundary with NOSE_EXPOSED).
        deep = mouth_y + 0.5 * (chin_y - mouth_y)
        top = deep + position * (mouth_y + 1e-3 - deep)
        bottom = chin_y + 0.18 * kp.face_ry
    else:  # CHIN_EXPOSED
        # Bottom edge travels from well above the chin (deep) down toward
        # the chin tip (boundary with CORRECT).
        top = nose_bridge_y
        deep = chin_y - 0.5 * (chin_y - mouth_y)
        bottom = deep + position * (chin_y - 1e-3 - deep)

    cx = kp.face_center[0]
    cy = kp.face_center[1]

    def half_width_at(y: float) -> float:
        rel = np.clip((y - cy) / kp.face_ry, -0.95, 0.95)
        return kp.face_rx * float(np.sqrt(1.0 - rel**2))

    return MaskPlacement(
        top_y=float(top),
        bottom_y=float(bottom),
        top_half_width=float(half_width_at(top) * 1.05),
        bottom_half_width=float(
            max(half_width_at(min(bottom, chin_y)) * 0.9, kp.face_rx * 0.3)
        ),
        center_x=float(cx),
        wear_class=wear_class,
    )


def _mask_polygon(p: MaskPlacement, bulge: float) -> np.ndarray:
    """Six-point mask outline: flat-ish top edge, rounded bottom."""
    mid_y = 0.5 * (p.top_y + p.bottom_y)
    mid_hw = 0.5 * (p.top_half_width + p.bottom_half_width) * (1.0 + bulge)
    return np.array(
        [
            (p.center_x - p.top_half_width, p.top_y),
            (p.center_x + p.top_half_width, p.top_y),
            (p.center_x + mid_hw, mid_y),
            (p.center_x + p.bottom_half_width, p.bottom_y),
            (p.center_x - p.bottom_half_width, p.bottom_y),
            (p.center_x - mid_hw, mid_y),
        ]
    )


def composite_mask(
    img: np.ndarray,
    kp: FaceKeypoints,
    placement: MaskPlacement,
    mask_attrs: MaskAttributes,
    rng: RngLike = None,
    double_mask: bool = False,
    second_color=None,
) -> np.ndarray:
    """Composite the mask (straps, body, pleats, shading) onto ``img``.

    Mutates and returns ``img``. With ``double_mask`` a second, slightly
    smaller mask of ``second_color`` is layered on top (Fig. 9).
    """
    gen = as_generator(rng)
    # Ear straps first (they run under the mask body).
    if mask_attrs.strap_visible:
        strap = tuple(float(np.clip(c * 0.9, 0, 1)) for c in mask_attrs.color)
        ear_y = kp.eye_line_y + kp.face_ry * 0.15
        for sx, x_edge in ((-1, placement.center_x - placement.top_half_width),
                           (1, placement.center_x + placement.top_half_width)):
            ear_x = kp.face_center[0] + sx * kp.face_rx * 1.0
            verts = np.array(
                [
                    (x_edge, placement.top_y + 1.0),
                    (ear_x, ear_y),
                    (ear_x, ear_y + 1.5),
                    (x_edge, placement.top_y + 2.5),
                ]
            )
            imaging.fill_polygon(img, verts, strap, opacity=0.9)

    bulge = float(gen.uniform(0.02, 0.12)) if mask_attrs.mask_type != "ffp2" else 0.2
    poly = _mask_polygon(placement, bulge)
    imaging.fill_polygon(img, poly, mask_attrs.color, opacity=1.0)

    # Pleats (surgical) or a centre seam (ffp2).
    darker = tuple(float(np.clip(c * 0.82, 0, 1)) for c in mask_attrs.color)
    span = placement.bottom_y - placement.top_y
    if mask_attrs.pleats > 0:
        for k in range(1, mask_attrs.pleats + 1):
            py = placement.top_y + span * k / (mask_attrs.pleats + 1)
            hw = placement.top_half_width * (1.0 - 0.15 * k / (mask_attrs.pleats + 1))
            verts = np.array(
                [
                    (placement.center_x - hw, py - 0.4),
                    (placement.center_x + hw, py - 0.4),
                    (placement.center_x + hw, py + 0.4),
                    (placement.center_x - hw, py + 0.4),
                ]
            )
            imaging.fill_polygon(img, verts, darker, opacity=0.8)
    elif mask_attrs.mask_type == "ffp2":
        verts = np.array(
            [
                (placement.center_x - 0.6, placement.top_y + span * 0.1),
                (placement.center_x + 0.6, placement.top_y + span * 0.1),
                (placement.center_x + 0.6, placement.bottom_y - span * 0.1),
                (placement.center_x - 0.6, placement.bottom_y - span * 0.1),
            ]
        )
        imaging.fill_polygon(img, verts, darker, opacity=0.7)

    # Fabric texture noise, confined to the mask area.
    if mask_attrs.texture_noise > 0:
        region = imaging.polygon_mask(img.shape[:2], poly)
        noise = gen.normal(0.0, mask_attrs.texture_noise, size=img.shape[:2]).astype(
            np.float32
        )
        img += (region * noise)[..., None]
        np.clip(img, 0.0, 1.0, out=img)

    if double_mask:
        second = MaskPlacement(
            top_y=placement.top_y + span * 0.12,
            bottom_y=placement.bottom_y - span * 0.08,
            top_half_width=placement.top_half_width * 0.92,
            bottom_half_width=placement.bottom_half_width * 0.92,
            center_x=placement.center_x,
            wear_class=placement.wear_class,
        )
        color = second_color if second_color is not None else (0.92, 0.92, 0.94)
        imaging.fill_polygon(img, _mask_polygon(second, bulge * 0.8), color, opacity=0.95)
    return img
