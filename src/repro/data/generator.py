"""Class-conditional synthetic sample generation.

Ties the pieces together: sample attributes and a key-point skeleton,
render the subject, fit and composite the mask for the requested
:class:`~repro.data.mask_model.WearClass`, and downsample to the working
resolution (32×32, "similar to the CIFAR-10 dataset", §IV-A).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.data.attributes import FaceAttributes, sample_attributes
from repro.data.face_renderer import render_face
from repro.data.keypoints import FaceKeypoints, sample_keypoints
from repro.data.mask_model import WearClass, composite_mask, place_mask
from repro.telemetry.tracing import get_tracer
from repro.utils import imaging
from repro.utils.rng import RngLike, as_generator, sample_seeds

__all__ = ["SampleSpec", "GeneratedSample", "FaceSampleGenerator"]


@dataclass
class SampleSpec:
    """Pinned factors for controlled generation (Grad-CAM panels)."""

    wear_class: Optional[WearClass] = None
    age_group: Optional[str] = None
    hair_color: Optional[Tuple[float, float, float]] = None
    headgear: Optional[str] = None
    sunglasses: Optional[bool] = None
    face_paint: Optional[bool] = None
    double_mask: Optional[bool] = None
    skin_tone: Optional[Tuple[float, float, float]] = None
    mask_type: Optional[str] = None


@dataclass
class GeneratedSample:
    """One rendered sample with its provenance."""

    image: np.ndarray  # (size, size, 3) float32 in [0, 1]
    label: WearClass
    attributes: FaceAttributes
    keypoints: FaceKeypoints


class FaceSampleGenerator:
    """Renders labelled masked-face samples.

    Parameters
    ----------
    image_size:
        Output resolution (32 per the paper).
    render_size:
        Internal rendering resolution; rendering larger and downsampling
        provides anti-aliasing that 32×32 rasterisation alone cannot.
    """

    def __init__(self, image_size: int = 32, render_size: int = 64) -> None:
        if image_size < 8:
            raise ValueError(f"image_size must be >= 8, got {image_size}")
        if render_size < image_size:
            raise ValueError(
                f"render_size ({render_size}) must be >= image_size ({image_size})"
            )
        self.image_size = int(image_size)
        self.render_size = int(render_size)

    def generate_one(
        self, rng: RngLike = None, spec: Optional[SampleSpec] = None
    ) -> GeneratedSample:
        """Render a single sample; ``spec`` pins selected factors."""
        gen = as_generator(rng)
        spec = spec or SampleSpec()
        if spec.wear_class is None:
            label = WearClass(int(gen.integers(4)))
        else:
            label = WearClass(spec.wear_class)
        attrs = sample_attributes(
            gen,
            age_group=spec.age_group,
            hair_color=spec.hair_color,
            headgear=spec.headgear,
            sunglasses=spec.sunglasses,
            face_paint=spec.face_paint,
            double_mask=spec.double_mask,
            skin_tone=spec.skin_tone,
            mask_type=spec.mask_type,
        )
        kp = sample_keypoints(gen, canvas=self.render_size, age_group=attrs.age_group)
        img = render_face(kp, attrs, gen)
        placement = place_mask(kp, label, gen)
        composite_mask(
            img,
            kp,
            placement,
            attrs.mask,
            gen,
            double_mask=attrs.double_mask,
            second_color=attrs.second_mask_color,
        )
        small = imaging.resize_bilinear(img, (self.image_size, self.image_size))
        small = imaging.quantize_to_uint8_grid(small)
        return GeneratedSample(
            image=small.astype(np.float32), label=label, attributes=attrs, keypoints=kp
        )

    def generate_batch(
        self,
        n: int,
        rng: RngLike = None,
        class_probabilities: Optional[Sequence[float]] = None,
        spec: Optional[SampleSpec] = None,
        num_workers: int = 1,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Render ``n`` samples; returns ``(images, labels)``.

        ``class_probabilities`` draws labels from a categorical
        distribution over the four classes — used to reproduce the raw
        MaskedFace-Net imbalance (51/39/5/5, §IV-A) before balancing.

        ``num_workers > 1`` fans the rendering across a process pool.
        Each sample is rendered from its own
        :class:`~numpy.random.SeedSequence` child (spawned from a single
        entropy draw on ``rng``), so the output is **bit-identical** for
        every worker count — parallelism changes wall time, never data.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if num_workers < 1:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        gen = as_generator(rng)
        if class_probabilities is not None:
            p = np.asarray(class_probabilities, dtype=np.float64)
            if p.shape != (4,) or np.any(p < 0) or not np.isclose(p.sum(), 1.0):
                raise ValueError(
                    "class_probabilities must be 4 non-negative values "
                    f"summing to 1, got {class_probabilities}"
                )
            labels = gen.choice(4, size=n, p=p)
        elif spec is not None and spec.wear_class is not None:
            labels = np.full(n, int(spec.wear_class))
        else:
            labels = gen.integers(0, 4, size=n)
        labels = labels.astype(np.int64)
        seeds = sample_seeds(gen, n)
        base_spec = spec or SampleSpec()
        workers = min(int(num_workers), n)
        with get_tracer().span(
            "data.generate_batch",
            kind="datagen",
            attributes={"samples": n, "workers": workers},
        ):
            if workers == 1:
                images = _render_samples(
                    self.image_size, self.render_size, labels, seeds, base_spec
                )
            else:
                bounds = np.linspace(0, n, workers + 1).astype(int)
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        pool.submit(
                            _render_samples,
                            self.image_size,
                            self.render_size,
                            labels[lo:hi],
                            seeds[lo:hi],
                            base_spec,
                        )
                        for lo, hi in zip(bounds[:-1], bounds[1:])
                        if hi > lo
                    ]
                    images = np.concatenate([f.result() for f in futures])
        return images, labels


def _render_samples(
    image_size: int,
    render_size: int,
    labels: np.ndarray,
    seeds: Sequence[np.random.SeedSequence],
    spec: SampleSpec,
) -> np.ndarray:
    """Render one contiguous chunk of per-seeded samples (pool worker).

    Module-level (picklable) and pure in its arguments: the chunk's pixels
    depend only on (sizes, labels, seeds, spec), which is what makes the
    serial and process-parallel paths of :meth:`generate_batch` agree bit
    for bit.
    """
    generator = FaceSampleGenerator(image_size=image_size, render_size=render_size)
    images = np.empty((len(labels), image_size, image_size, 3), dtype=np.float32)
    for i, (label, seed) in enumerate(zip(labels, seeds)):
        per_sample = replace(spec, wear_class=WearClass(int(label)))
        images[i] = generator.generate_one(seed, per_sample).image
    return images
