"""Dataset container, splits and the end-to-end pipeline of §IV-A.

:func:`build_masked_face_dataset` reproduces the paper's data pipeline on
the synthetic generator:

1. generate raw samples with the real dataset's class imbalance
   (51/39/5/5),
2. balance by subsampling the dominant classes,
3. augment the balanced set (contrast/brightness/noise/flip/rotate),
4. split into train / validation / test.

The paper's absolute scale (110K train+val, 28K test) is reachable by
raising ``raw_size``; the default is laptop-scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.data.augmentation import Augmenter
from repro.data.balancing import (
    RAW_CLASS_PROBABILITIES,
    balance_by_subsampling,
    class_distribution,
)
from repro.data.generator import FaceSampleGenerator
from repro.data.mask_model import CLASS_NAMES, WearClass
from repro.utils.rng import RngLike, as_generator, derive_entropy

__all__ = ["Dataset", "DatasetSplits", "build_masked_face_dataset", "iterate_minibatches"]


@dataclass
class Dataset:
    """An image-classification dataset slice."""

    images: np.ndarray  # (N, H, W, 3) float32 in [0, 1]
    labels: np.ndarray  # (N,) int64 in [0, 4)

    def __post_init__(self) -> None:
        if len(self.images) != len(self.labels):
            raise ValueError(
                f"images ({len(self.images)}) / labels ({len(self.labels)}) mismatch"
            )
        if self.images.ndim != 4 or self.images.shape[3] != 3:
            raise ValueError(f"images must be (N, H, W, 3), got {self.images.shape}")

    def __len__(self) -> int:
        return len(self.images)

    def class_counts(self) -> Dict[int, int]:
        """Samples per class."""
        return class_distribution(self.labels)

    def subset(self, indices: np.ndarray) -> "Dataset":
        """A view-backed subset at the given indices."""
        return Dataset(self.images[indices], self.labels[indices])


@dataclass
class DatasetSplits:
    """Train/validation/test partition."""

    train: Dataset
    val: Dataset
    test: Dataset

    def summary(self) -> str:
        """One line per split with class counts."""
        lines = []
        for name in ("train", "val", "test"):
            ds: Dataset = getattr(self, name)
            counts = ds.class_counts()
            per_class = ", ".join(
                f"{CLASS_NAMES[c]}={counts[c]}" for c in range(len(CLASS_NAMES))
            )
            lines.append(f"{name:<6s} n={len(ds):<7d} [{per_class}]")
        return "\n".join(lines)


def _split_indices(
    n: int, fractions: Tuple[float, float, float], gen: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split ``range(n)`` by the given fractions."""
    f_train, f_val, f_test = fractions
    total = f_train + f_val + f_test
    if not np.isclose(total, 1.0):
        raise ValueError(f"split fractions must sum to 1, got {fractions}")
    order = gen.permutation(n)
    n_train = int(round(n * f_train))
    n_val = int(round(n * f_val))
    return (
        order[:n_train],
        order[n_train : n_train + n_val],
        order[n_train + n_val :],
    )


def build_masked_face_dataset(
    raw_size: int = 4000,
    image_size: int = 32,
    rng: RngLike = 0,
    augment: bool = True,
    balance: bool = True,
    augmented_copies: int = 1,
    split_fractions: Tuple[float, float, float] = (0.70, 0.10, 0.20),
    raw_class_probabilities: Tuple[float, float, float, float] = RAW_CLASS_PROBABILITIES,
    augmenter: Optional[Augmenter] = None,
    num_workers: int = 1,
    cache_dir=None,
) -> DatasetSplits:
    """Run the full §IV-A data pipeline on the synthetic generator.

    Parameters
    ----------
    raw_size:
        Number of raw (imbalanced) samples to generate. After balancing,
        roughly ``4 * raw_size * min(p)`` samples survive.
    augment, balance:
        Pipeline stage switches (both on in the paper; the balancing
        ablation turns ``balance`` off).
    augmented_copies:
        How many augmented replicas to append per training image (the
        originals are always kept). Augmentation is train-split only —
        val/test stay clean, as in the paper's evaluation protocol.
    num_workers:
        Process-pool width for the rendering stage. Per-sample seeding
        makes the output bit-identical for every worker count.
    cache_dir:
        Directory for the persistent dataset cache
        (:class:`~repro.data.cache.DatasetCache`). A hit skips rendering
        and streams images from memmap-backed shards; a miss (or a
        corrupted entry) regenerates and stores. ``None`` disables
        caching.
    """
    from repro.data.cache import DatasetCache  # local: cache imports this module

    entropies = {
        name: derive_entropy(rng, name)
        for name in ("generate", "balance", "augment", "split")
    }
    gen_data = np.random.default_rng(entropies["generate"])
    gen_balance = np.random.default_rng(entropies["balance"])
    gen_augment = np.random.default_rng(entropies["augment"])
    gen_split = np.random.default_rng(entropies["split"])

    generator = FaceSampleGenerator(image_size=image_size)
    cache = config = None
    if cache_dir is not None:
        config = {
            "raw_size": int(raw_size),
            "image_size": int(generator.image_size),
            "render_size": int(generator.render_size),
            "entropies": entropies,
            "augment": bool(augment),
            "balance": bool(balance),
            "augmented_copies": int(augmented_copies),
            "split_fractions": [float(f) for f in split_fractions],
            "raw_class_probabilities": [float(p) for p in raw_class_probabilities],
            "augmenter": repr(augmenter) if augmenter is not None else None,
        }
        cache = DatasetCache(cache_dir)
        cached = cache.load(config)
        if cached is not None:
            return cached

    images, labels = generator.generate_batch(
        raw_size,
        gen_data,
        class_probabilities=raw_class_probabilities,
        num_workers=num_workers,
    )
    if balance:
        images, labels = balance_by_subsampling(images, labels, gen_balance)

    idx_train, idx_val, idx_test = _split_indices(
        len(images), split_fractions, gen_split
    )
    x_train, y_train = images[idx_train], labels[idx_train]
    x_val, y_val = images[idx_val], labels[idx_val]
    x_test, y_test = images[idx_test], labels[idx_test]

    if augment and augmented_copies > 0 and len(x_train):
        aug = augmenter or Augmenter()
        extra_x = []
        extra_y = []
        for _ in range(augmented_copies):
            extra_x.append(aug.augment_batch(x_train, gen_augment))
            extra_y.append(y_train)
        x_train = np.concatenate([x_train, *extra_x])
        y_train = np.concatenate([y_train, *extra_y])

    splits = DatasetSplits(
        train=Dataset(x_train, y_train),
        val=Dataset(x_val, y_val),
        test=Dataset(x_test, y_test),
    )
    if cache is not None:
        cache.store(config, splits)
    return splits


def iterate_minibatches(
    dataset: Dataset,
    batch_size: int,
    rng: RngLike = None,
    shuffle: bool = True,
    drop_last: bool = False,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(images, labels)`` mini-batches."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    n = len(dataset)
    order = np.arange(n)
    if shuffle:
        as_generator(rng).shuffle(order)
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        if drop_last and len(idx) < batch_size:
            return
        yield dataset.images[idx], dataset.labels[idx]
