"""Procedural face rendering.

Renders a synthetic subject (no mask — the mask is composited afterwards
by :mod:`repro.data.mask_model`) onto a square canvas from a key-point
skeleton plus appearance attributes. The renderer is intentionally simple
— ellipses, polygons, soft shading — but places every feature *at its
key-point*, so the class-discriminative geometry (nose, mouth, chin
positions) is metrically faithful even at 32×32 after downsampling.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.attributes import FaceAttributes
from repro.data.keypoints import FaceKeypoints
from repro.utils import imaging
from repro.utils.rng import RngLike, as_generator

__all__ = ["render_face"]


def _shade(color, factor: float):
    """Darken (<1) or lighten (>1) a color."""
    return tuple(float(np.clip(c * factor, 0.0, 1.0)) for c in color)


def _render_background(img: np.ndarray, attrs: FaceAttributes, gen) -> None:
    h, w = img.shape[:2]
    img[:] = np.asarray(attrs.background, dtype=np.float32)
    if attrs.background_noise > 0:
        img += gen.normal(0.0, attrs.background_noise, size=(h, w, 1)).astype(
            np.float32
        )
        np.clip(img, 0.0, 1.0, out=img)


def _render_neck_and_shoulders(img: np.ndarray, kp: FaceKeypoints, attrs) -> None:
    cx, cy = kp.face_center
    neck_w = kp.face_rx * 0.45
    chin_y = kp.chin_tip[1]
    h = img.shape[0]
    # Neck: rectangle-ish polygon from the chin down.
    verts = np.array(
        [
            (cx - neck_w, chin_y - 2.0),
            (cx + neck_w, chin_y - 2.0),
            (cx + neck_w * 1.1, h),
            (cx - neck_w * 1.1, h),
        ]
    )
    imaging.fill_polygon(img, verts, _shade(attrs.skin_tone, 0.92))
    # Shoulders: a wide dark band at the bottom.
    sh_y = min(h - 1.0, chin_y + kp.face_ry * 0.45)
    verts = np.array(
        [
            (cx - kp.face_rx * 1.9, h),
            (cx - kp.face_rx * 1.5, sh_y),
            (cx + kp.face_rx * 1.5, sh_y),
            (cx + kp.face_rx * 1.9, h),
        ]
    )
    imaging.fill_polygon(img, verts, (0.25, 0.27, 0.33))


def _render_head(img: np.ndarray, kp: FaceKeypoints, attrs) -> None:
    cx, cy = kp.face_center
    # Ears (behind the face ellipse).
    ear_y = kp.eye_line_y + kp.face_ry * 0.12
    ear_r = kp.face_rx * 0.16
    for sx in (-1, 1):
        imaging.draw_ellipse(
            img,
            (cx + sx * kp.face_rx * 0.98, ear_y),
            (ear_r, ear_r * 1.4),
            _shade(attrs.skin_tone, 0.95),
        )
    imaging.draw_ellipse(img, (cx, cy), (kp.face_rx, kp.face_ry), attrs.skin_tone)
    # Soft cheek shading for depth.
    imaging.draw_ellipse(
        img,
        (cx, cy + kp.face_ry * 0.25),
        (kp.face_rx * 0.8, kp.face_ry * 0.5),
        _shade(attrs.skin_tone, 1.05),
        opacity=0.35,
    )


def _render_hair(img: np.ndarray, kp: FaceKeypoints, attrs) -> None:
    if attrs.hair_style == "bald" and attrs.headgear == "none":
        return
    cx, cy = kp.face_center
    if attrs.hair_style != "bald":
        top_y = kp.forehead_top[1]
        if attrs.hair_style == "long":
            # Long hair: curtain behind the face down to the jaw.
            verts = np.array(
                [
                    (cx - kp.face_rx * 1.25, top_y + kp.face_ry * 0.2),
                    (cx + kp.face_rx * 1.25, top_y + kp.face_ry * 0.2),
                    (cx + kp.face_rx * 1.15, kp.jaw_left[1] + kp.face_ry * 0.35),
                    (cx - kp.face_rx * 1.15, kp.jaw_left[1] + kp.face_ry * 0.35),
                ]
            )
            imaging.fill_polygon(img, verts, attrs.hair_color)
            imaging.draw_ellipse(
                img, (cx, cy), (kp.face_rx * 0.98, kp.face_ry * 0.98), attrs.skin_tone
            )
        # Hair cap over the top of the head.
        imaging.draw_ellipse(
            img,
            (cx, top_y + kp.face_ry * 0.22),
            (kp.face_rx * 1.04, kp.face_ry * 0.42),
            attrs.hair_color,
        )


def _render_headgear(img: np.ndarray, kp: FaceKeypoints, attrs) -> None:
    if attrs.headgear == "none":
        return
    cx, _ = kp.face_center
    top_y = kp.forehead_top[1]
    color = attrs.headgear_color
    if attrs.headgear == "cap":
        imaging.draw_ellipse(
            img,
            (cx, top_y + kp.face_ry * 0.18),
            (kp.face_rx * 1.08, kp.face_ry * 0.34),
            color,
        )
        brim = np.array(
            [
                (cx - kp.face_rx * 0.9, top_y + kp.face_ry * 0.30),
                (cx + kp.face_rx * 1.35, top_y + kp.face_ry * 0.30),
                (cx + kp.face_rx * 1.35, top_y + kp.face_ry * 0.42),
                (cx - kp.face_rx * 0.9, top_y + kp.face_ry * 0.42),
            ]
        )
        imaging.fill_polygon(img, brim, _shade(color, 0.85))
    else:  # beanie
        imaging.draw_ellipse(
            img,
            (cx, top_y + kp.face_ry * 0.26),
            (kp.face_rx * 1.1, kp.face_ry * 0.5),
            color,
        )


def _render_eyes(img: np.ndarray, kp: FaceKeypoints, attrs, gen) -> None:
    eye_scale = {"infant": 1.25, "adult": 1.0, "elderly": 0.8}[attrs.age_group]
    eye_rx = kp.face_rx * 0.16 * eye_scale
    eye_ry = eye_rx * 0.6
    iris_color = (
        float(gen.uniform(0.1, 0.5)),
        float(gen.uniform(0.2, 0.5)),
        float(gen.uniform(0.2, 0.6)),
    )
    for ex, ey in (kp.left_eye, kp.right_eye):
        if attrs.sunglasses:
            continue
        imaging.draw_ellipse(img, (ex, ey), (eye_rx, eye_ry), (0.97, 0.97, 0.97))
        imaging.draw_ellipse(img, (ex, ey), (eye_rx * 0.45, eye_ry * 0.85), iris_color)
        imaging.draw_ellipse(img, (ex, ey), (eye_rx * 0.2, eye_ry * 0.4), (0.05, 0.05, 0.05))
    if attrs.has_eyebrows and not attrs.sunglasses:
        brow_color = _shade(attrs.hair_color, 0.8)
        for ex, ey in (kp.left_eye, kp.right_eye):
            imaging.draw_ellipse(
                img,
                (ex, ey - eye_ry * 2.2),
                (eye_rx * 1.1, eye_ry * 0.35),
                brow_color,
            )
    if attrs.sunglasses:
        lens_rx = kp.face_rx * 0.24
        lens_ry = lens_rx * 0.75
        for ex, ey in (kp.left_eye, kp.right_eye):
            imaging.draw_ellipse(img, (ex, ey), (lens_rx, lens_ry), (0.05, 0.05, 0.07))
        # Bridge between lenses.
        bx0 = kp.left_eye[0] + lens_rx * 0.8
        bx1 = kp.right_eye[0] - lens_rx * 0.8
        ey = kp.eye_line_y
        bridge = np.array(
            [(bx0, ey - 1.0), (bx1, ey - 1.0), (bx1, ey + 1.0), (bx0, ey + 1.0)]
        )
        imaging.fill_polygon(img, bridge, (0.05, 0.05, 0.07))


def _render_nose(img: np.ndarray, kp: FaceKeypoints, attrs) -> None:
    nx, n_tip_y = kp.nose_tip
    _, n_bridge_y = kp.nose_bridge
    nose_w = kp.face_rx * 0.18
    verts = np.array(
        [
            (nx, n_bridge_y),
            (nx - nose_w, n_tip_y),
            (nx + nose_w, n_tip_y),
        ]
    )
    imaging.fill_polygon(img, verts, _shade(attrs.skin_tone, 0.88))
    # Nostrils — the strongest "exposed nose" cue.
    for sx in (-1, 1):
        imaging.draw_ellipse(
            img,
            (nx + sx * nose_w * 0.5, n_tip_y - 0.5),
            (nose_w * 0.28, nose_w * 0.2),
            _shade(attrs.skin_tone, 0.45),
        )


def _render_mouth(img: np.ndarray, kp: FaceKeypoints, attrs, gen) -> None:
    mx, my = kp.mouth_center
    mouth_w = kp.face_rx * float(gen.uniform(0.38, 0.5))
    mouth_h = kp.face_ry * 0.07
    lip = (0.62, 0.28, 0.28) if attrs.age_group != "infant" else (0.75, 0.42, 0.42)
    imaging.draw_ellipse(img, (mx, my), (mouth_w, mouth_h), lip)
    # Lip split line.
    imaging.draw_ellipse(img, (mx, my), (mouth_w * 0.9, mouth_h * 0.25), _shade(lip, 0.6))


def _render_age_marks(img: np.ndarray, kp: FaceKeypoints, attrs) -> None:
    if attrs.age_group != "elderly":
        return
    cx, _ = kp.face_center
    wrinkle = _shade(attrs.skin_tone, 0.75)
    # Forehead lines.
    fy = kp.forehead_top[1] + (kp.eye_line_y - kp.forehead_top[1]) * 0.5
    for k in range(2):
        imaging.draw_ellipse(
            img,
            (cx, fy + k * kp.face_ry * 0.08),
            (kp.face_rx * 0.55, kp.face_ry * 0.012),
            wrinkle,
            opacity=0.7,
        )
    # Nasolabial folds.
    for sx in (-1, 1):
        imaging.draw_ellipse(
            img,
            (cx + sx * kp.face_rx * 0.38, kp.nose_tip[1] + kp.face_ry * 0.08),
            (kp.face_rx * 0.05, kp.face_ry * 0.12),
            wrinkle,
            angle=sx * 0.4,
            opacity=0.6,
        )


def _render_face_paint(img: np.ndarray, kp: FaceKeypoints, attrs) -> None:
    if attrs.face_paint is None:
        return
    cx, cy = kp.face_center
    # Painted band across the upper face (Fig. 9-style manipulation).
    imaging.draw_ellipse(
        img,
        (cx, kp.eye_line_y),
        (kp.face_rx * 0.95, kp.face_ry * 0.28),
        attrs.face_paint,
        opacity=0.5,
    )


def render_face(
    kp: FaceKeypoints,
    attrs: FaceAttributes,
    rng: RngLike = None,
) -> np.ndarray:
    """Render the un-masked subject; returns ``(canvas, canvas, 3)`` float32.

    Draw order is back-to-front: background, shoulders/neck, head, hair,
    facial features, age marks, paint, sunglasses, head-gear. The mask is
    composited separately so the same subject can be rendered under all
    four wear classes (useful for controlled Grad-CAM panels).
    """
    gen = as_generator(rng)
    c = kp.canvas
    img = np.empty((c, c, 3), dtype=np.float32)
    _render_background(img, attrs, gen)
    _render_neck_and_shoulders(img, kp, attrs)
    _render_head(img, kp, attrs)
    _render_hair(img, kp, attrs)
    _render_eyes(img, kp, attrs, gen)
    _render_nose(img, kp, attrs)
    _render_mouth(img, kp, attrs, gen)
    _render_age_marks(img, kp, attrs)
    _render_face_paint(img, kp, attrs)
    _render_headgear(img, kp, attrs)
    return imaging.clip01(img)
