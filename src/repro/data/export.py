"""Dataset persistence and inspection exports.

Generating the synthetic dataset is deterministic but not free (~6 ms
per image on one core); these helpers let pipelines snapshot a generated
:class:`~repro.data.dataset.DatasetSplits` to one ``.npz`` and reload it
instantly, and dump individual samples as PPM images for eyeballing
(no image-library dependency).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset, DatasetSplits
from repro.data.mask_model import CLASS_NAMES
from repro.utils import imaging
from repro.utils.serialization import load_arrays, save_arrays

__all__ = ["save_splits", "load_splits", "export_ppm_samples"]

SPLITS_KIND = "binarycop-dataset-splits"


def save_splits(splits: DatasetSplits, path, metadata: Optional[dict] = None) -> Path:
    """Snapshot train/val/test splits into one ``.npz``."""
    arrays = {}
    for name in ("train", "val", "test"):
        ds: Dataset = getattr(splits, name)
        arrays[f"{name}.images"] = ds.images
        arrays[f"{name}.labels"] = ds.labels
    meta = dict(metadata or {})
    meta["kind"] = SPLITS_KIND
    meta["class_names"] = list(CLASS_NAMES)
    return save_arrays(path, arrays, meta)


def load_splits(path) -> DatasetSplits:
    """Restore splits saved by :func:`save_splits`."""
    arrays, meta = load_arrays(path)
    if meta.get("kind") != SPLITS_KIND:
        raise ValueError(
            f"{path} is not a dataset snapshot (kind={meta.get('kind')!r})"
        )
    parts = {}
    for name in ("train", "val", "test"):
        parts[name] = Dataset(
            np.asarray(arrays[f"{name}.images"], dtype=np.float32),
            np.asarray(arrays[f"{name}.labels"], dtype=np.int64),
        )
    return DatasetSplits(**parts)


def export_ppm_samples(
    dataset: Dataset,
    out_dir,
    indices: Optional[Sequence[int]] = None,
    limit: int = 16,
) -> list:
    """Dump samples as binary PPM files named ``<idx>_<class>.ppm``.

    Returns the written paths. PPM is chosen because every image viewer
    opens it and writing one needs twelve lines of stdlib code.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    if indices is None:
        indices = range(min(limit, len(dataset)))
    written = []
    for idx in indices:
        if not 0 <= idx < len(dataset):
            raise IndexError(f"sample index {idx} out of range [0, {len(dataset)})")
        image = imaging.to_uint8(dataset.images[idx])
        label = CLASS_NAMES[int(dataset.labels[idx])].lower().replace("+", "")
        path = out_dir / f"{idx:05d}_{label}.ppm"
        with open(path, "wb") as fh:
            fh.write(f"P6 {image.shape[1]} {image.shape[0]} 255\n".encode())
            fh.write(image.tobytes())
        written.append(path)
    return written
