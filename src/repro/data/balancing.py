"""Dataset balancing.

§IV-A: the raw MaskedFace-Net split is ~51% CMFD, ~39% IMFD Nose, ~5%
IMFD Chin, ~5% IMFD Nose+Mouth — heavily biased toward the two dominant
classes. The paper's remedy is to *randomly subsample the larger classes*
down to a comparable count. :func:`balance_by_subsampling` implements
exactly that; :func:`class_distribution` and
:data:`RAW_CLASS_PROBABILITIES` reproduce the raw statistics for the
balancing ablation.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.mask_model import WearClass
from repro.utils.rng import RngLike, as_generator

__all__ = [
    "RAW_CLASS_PROBABILITIES",
    "RAW_DATASET_SIZE",
    "class_distribution",
    "balance_by_subsampling",
]

#: Raw MaskedFace-Net class shares reported in §IV-A, in WearClass order
#: (Correct, Nose, Nose+Mouth, Chin).
RAW_CLASS_PROBABILITIES: Tuple[float, float, float, float] = (0.51, 0.39, 0.05, 0.05)

#: Total sample count of the real dataset (for scale context in reports).
RAW_DATASET_SIZE: int = 133_783


def class_distribution(labels: np.ndarray, num_classes: int = 4) -> Dict[int, int]:
    """Per-class sample counts (all classes present in the dict, even if 0)."""
    labels = np.asarray(labels)
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels out of range [0, {num_classes}): "
            f"min={labels.min()}, max={labels.max()}"
        )
    counts = np.bincount(labels, minlength=num_classes)
    return {c: int(counts[c]) for c in range(num_classes)}


def balance_by_subsampling(
    images: np.ndarray,
    labels: np.ndarray,
    rng: RngLike = None,
    target_per_class: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Randomly subsample over-represented classes to a common count.

    ``target_per_class`` defaults to the size of the smallest class (the
    paper samples "the larger classes CMFD and IMFD Nose to collect a
    comparable number of examples to the two remaining classes"). The
    result is shuffled.
    """
    labels = np.asarray(labels)
    if len(images) != len(labels):
        raise ValueError(
            f"images ({len(images)}) and labels ({len(labels)}) length mismatch"
        )
    counts = class_distribution(labels)
    present = [c for c, n in counts.items() if n > 0]
    if len(present) < 2:
        raise ValueError("balancing needs at least two non-empty classes")
    min_count = min(counts[c] for c in present)
    target = int(target_per_class) if target_per_class is not None else min_count
    if target <= 0:
        raise ValueError(f"target_per_class must be positive, got {target}")
    if target > min_count:
        raise ValueError(
            f"target_per_class ({target}) exceeds the smallest class "
            f"({min_count}); cannot balance by subsampling alone"
        )
    gen = as_generator(rng)
    keep = []
    for c in present:
        idx = np.flatnonzero(labels == c)
        keep.append(gen.choice(idx, size=target, replace=False))
    keep_idx = np.concatenate(keep)
    gen.shuffle(keep_idx)
    return images[keep_idx], labels[keep_idx]
