"""Gate-camera streams: subjects approaching a speed gate.

§I/§IV-B deploy BinaryCoP at "entrances to corporate buildings,
airports, shopping areas" and "speed-gate settings": a fixed camera sees
a subject approach, and a classification is *triggered* once the face is
close and centred enough. This module synthesises those streams:

* :func:`render_approach_sequence` — frames of one subject walking
  toward the camera (the rendered face grows and drifts laterally, with
  background clutter);
* :class:`GateTrigger` — the classic size+centredness trigger rule that
  decides which frame is worth classifying (the mechanism that lets the
  §IV-B gate deployment idle at 1.6 W);
* :class:`SpeedGateSimulator` — end-to-end: stream in, one triggered
  classification per subject out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.generator import FaceSampleGenerator, GeneratedSample, SampleSpec
from repro.data.mask_model import WearClass
from repro.utils import imaging
from repro.utils.rng import RngLike, as_generator

__all__ = [
    "StreamFrame",
    "ApproachSequence",
    "render_approach_sequence",
    "GateTrigger",
    "SpeedGateSimulator",
    "GateDecision",
]


@dataclass
class StreamFrame:
    """One camera frame plus ground-truth geometry."""

    image: np.ndarray  # (frame, frame, 3) float32
    face_fraction: float  # face tile edge / frame edge, in (0, 1]
    center_offset: float  # |face centre - frame centre| / frame edge
    frame_index: int
    face_box: Tuple[int, int, int] = (0, 0, 0)  # (x0, y0, edge) of the tile

    def face_crop(self, out_size: int = 32) -> np.ndarray:
        """The detected face tile, resized to the classifier input size.

        Models the face-detection front-end the paper assumes upstream of
        BinaryCoP (detection itself is out of the paper's scope).
        """
        x0, y0, edge = self.face_box
        if edge <= 0:
            raise ValueError("frame has no face box")
        tile = self.image[y0 : y0 + edge, x0 : x0 + edge]
        return imaging.quantize_to_uint8_grid(
            imaging.resize_bilinear(tile, (out_size, out_size))
        )


@dataclass
class ApproachSequence:
    """A subject's full approach: frames plus the underlying sample."""

    frames: List[StreamFrame]
    sample: GeneratedSample

    @property
    def label(self) -> WearClass:
        return self.sample.label

    def __len__(self) -> int:
        return len(self.frames)


def render_approach_sequence(
    rng: RngLike = None,
    spec: Optional[SampleSpec] = None,
    n_frames: int = 12,
    frame_size: int = 32,
    start_fraction: float = 0.25,
    end_fraction: float = 1.0,
    lateral_jitter: float = 0.2,
    generator: Optional[FaceSampleGenerator] = None,
) -> ApproachSequence:
    """Synthesise one subject approaching the gate camera.

    The subject's face tile is rendered once at full resolution and then
    composited into each frame at a growing scale (``start_fraction`` →
    ``end_fraction`` of the frame edge) with decaying lateral drift
    (people centre themselves as they reach a gate).

    ``generator`` lets stream drivers (e.g. :class:`SpeedGateSimulator`)
    reuse one renderer across many subjects instead of rebuilding it per
    approach; its ``image_size`` must equal ``frame_size``.
    """
    if n_frames < 2:
        raise ValueError(f"n_frames must be >= 2, got {n_frames}")
    if not 0.0 < start_fraction < end_fraction <= 1.0:
        raise ValueError(
            f"need 0 < start_fraction < end_fraction <= 1, got "
            f"{start_fraction}, {end_fraction}"
        )
    if generator is None:
        generator = FaceSampleGenerator(image_size=frame_size)
    elif generator.image_size != frame_size:
        raise ValueError(
            f"generator renders {generator.image_size}x{generator.image_size} "
            f"tiles but frame_size is {frame_size}"
        )
    gen = as_generator(rng)
    sample = generator.generate_one(gen, spec)
    background = gen.uniform(0.3, 0.8, 3).astype(np.float32)
    frames: List[StreamFrame] = []
    for i in range(n_frames):
        t = i / (n_frames - 1)
        fraction = start_fraction + t * (end_fraction - start_fraction)
        tile_px = max(4, int(round(fraction * frame_size)))
        tile = imaging.resize_bilinear(sample.image, (tile_px, tile_px))
        frame = np.empty((frame_size, frame_size, 3), dtype=np.float32)
        frame[:] = background
        frame += gen.normal(0.0, 0.02, frame.shape).astype(np.float32)
        np.clip(frame, 0.0, 1.0, out=frame)
        # Lateral drift decays toward the centre as the subject arrives.
        max_off = (frame_size - tile_px) / 2.0
        drift = float(gen.uniform(-1.0, 1.0)) * lateral_jitter * (1.0 - t)
        off_x = int(round(max_off + drift * frame_size))
        off_x = int(np.clip(off_x, 0, frame_size - tile_px))
        off_y = int(round(max_off))
        frame[off_y : off_y + tile_px, off_x : off_x + tile_px] = tile
        center_offset = abs((off_x + tile_px / 2.0) - frame_size / 2.0) / frame_size
        frames.append(
            StreamFrame(
                image=imaging.quantize_to_uint8_grid(frame),
                face_fraction=tile_px / frame_size,
                center_offset=float(center_offset),
                frame_index=i,
                face_box=(off_x, off_y, tile_px),
            )
        )
    return ApproachSequence(frames=frames, sample=sample)


@dataclass
class GateTrigger:
    """Size + centredness trigger: fire once per subject.

    The accelerator is woken only when ``face_fraction >= min_fraction``
    and ``center_offset <= max_offset`` — the event-driven behaviour that
    keeps the §IV-B gate deployment at idle power between subjects.
    """

    min_fraction: float = 0.75
    max_offset: float = 0.12

    def __post_init__(self) -> None:
        if not 0.0 < self.min_fraction <= 1.0:
            raise ValueError(f"min_fraction must be in (0, 1], got {self.min_fraction}")
        if self.max_offset < 0.0:
            raise ValueError(f"max_offset must be >= 0, got {self.max_offset}")

    def should_fire(self, frame: StreamFrame) -> bool:
        """Whether this frame satisfies the trigger rule."""
        return (
            frame.face_fraction >= self.min_fraction
            and frame.center_offset <= self.max_offset
        )

    def first_trigger(self, sequence: ApproachSequence) -> Optional[StreamFrame]:
        """The first qualifying frame of an approach (None if none)."""
        for frame in sequence.frames:
            if self.should_fire(frame):
                return frame
        return None


@dataclass
class GateDecision:
    """Outcome of one subject's pass through the speed gate."""

    triggered: bool
    trigger_frame: Optional[int]
    predicted: Optional[WearClass]
    truth: WearClass
    frames_seen: int

    @property
    def correct(self) -> Optional[bool]:
        if self.predicted is None:
            return None
        return self.predicted == self.truth


class SpeedGateSimulator:
    """End-to-end speed gate: streams -> trigger -> one classification.

    ``classifier`` is anything with a ``predict(images) -> labels``
    method (a :class:`~repro.core.classifier.BinaryCoP` or a compiled
    :class:`~repro.hw.compiler.FinnAccelerator`).
    """

    def __init__(self, classifier, trigger: Optional[GateTrigger] = None) -> None:
        if not hasattr(classifier, "predict"):
            raise TypeError("classifier must expose predict(images)")
        self.classifier = classifier
        self.trigger = trigger or GateTrigger()
        self.decisions: List[GateDecision] = []
        self._generators: dict = {}  # frame_size -> reused renderer

    def process_subject(
        self,
        rng: RngLike = None,
        spec: Optional[SampleSpec] = None,
        n_frames: int = 12,
        frame_size: int = 32,
    ) -> GateDecision:
        """Stream one subject's approach and classify at the trigger."""
        generator = self._generators.get(frame_size)
        if generator is None:
            generator = FaceSampleGenerator(image_size=frame_size)
            self._generators[frame_size] = generator
        sequence = render_approach_sequence(
            rng, spec, n_frames=n_frames, frame_size=frame_size, generator=generator
        )
        frame = self.trigger.first_trigger(sequence)
        if frame is None:
            decision = GateDecision(
                triggered=False,
                trigger_frame=None,
                predicted=None,
                truth=sequence.label,
                frames_seen=len(sequence),
            )
        else:
            crop = frame.face_crop(out_size=frame.image.shape[0])
            pred = WearClass(int(self.classifier.predict(crop[None])[0]))
            decision = GateDecision(
                triggered=True,
                trigger_frame=frame.frame_index,
                predicted=pred,
                truth=sequence.label,
                frames_seen=frame.frame_index + 1,
            )
        self.decisions.append(decision)
        return decision

    def trigger_rate(self) -> float:
        """Fraction of subjects whose approach fired the trigger."""
        if not self.decisions:
            raise ValueError("no subjects processed yet")
        return float(np.mean([d.triggered for d in self.decisions]))

    def accuracy(self) -> float:
        """Classification accuracy over triggered subjects."""
        scored = [d.correct for d in self.decisions if d.correct is not None]
        if not scored:
            raise ValueError("no triggered classifications yet")
        return float(np.mean(scored))

    def duty_cycle(self, classification_frames: int = 1) -> float:
        """Fraction of streamed frames that woke the accelerator.

        The gate-power argument quantified: with one classification per
        subject at trigger time, almost every frame leaves the
        accelerator idle.
        """
        if not self.decisions:
            raise ValueError("no subjects processed yet")
        total_frames = sum(d.frames_seen for d in self.decisions)
        classifications = sum(1 for d in self.decisions if d.triggered)
        return classifications * classification_frames / max(1, total_frames)
