"""``repro.data`` — synthetic MaskedFace-Net-style dataset substrate.

A procedural 32×32 face generator with a deformable, key-point-driven
mask model defining the paper's four wear classes, plus the §IV-A
pipeline: raw imbalance → subsampling balance → augmentation → splits.
"""

from repro.data.attributes import (
    HAIR_COLORS,
    MASK_BLUE,
    MASK_COLORS,
    SKIN_TONES,
    FaceAttributes,
    MaskAttributes,
    sample_attributes,
)
from repro.data.augmentation import Augmenter
from repro.data.cache import DATA_VERSION, DatasetCache, dataset_cache_key
from repro.data.balancing import (
    RAW_CLASS_PROBABILITIES,
    RAW_DATASET_SIZE,
    balance_by_subsampling,
    class_distribution,
)
from repro.data.dataset import (
    Dataset,
    DatasetSplits,
    build_masked_face_dataset,
    iterate_minibatches,
)
from repro.data.export import export_ppm_samples, load_splits, save_splits
from repro.data.generator import FaceSampleGenerator, GeneratedSample, SampleSpec
from repro.data.keypoints import FaceKeypoints, sample_keypoints
from repro.data.mask_model import CLASS_NAMES, WearClass, composite_mask, place_mask
from repro.data.stream import (
    ApproachSequence,
    GateTrigger,
    SpeedGateSimulator,
    StreamFrame,
    render_approach_sequence,
)

__all__ = [
    "ApproachSequence",
    "Augmenter",
    "CLASS_NAMES",
    "DATA_VERSION",
    "Dataset",
    "DatasetCache",
    "DatasetSplits",
    "dataset_cache_key",
    "FaceAttributes",
    "FaceKeypoints",
    "FaceSampleGenerator",
    "GateTrigger",
    "GeneratedSample",
    "HAIR_COLORS",
    "MASK_BLUE",
    "MASK_COLORS",
    "MaskAttributes",
    "RAW_CLASS_PROBABILITIES",
    "RAW_DATASET_SIZE",
    "SKIN_TONES",
    "SampleSpec",
    "SpeedGateSimulator",
    "StreamFrame",
    "WearClass",
    "balance_by_subsampling",
    "build_masked_face_dataset",
    "class_distribution",
    "composite_mask",
    "export_ppm_samples",
    "iterate_minibatches",
    "load_splits",
    "place_mask",
    "render_approach_sequence",
    "save_splits",
    "sample_attributes",
    "sample_keypoints",
]
