"""Facial key-point model.

MaskedFace-Net [6] places a deformable mask model on natural faces by
matching mask key-points to automatically detected facial key-points.
Our synthetic generator works the same way but in reverse order: it first
*samples* a key-point skeleton (whose geometry varies with age group,
face shape and pose jitter), then renders a face consistent with it, and
finally fits the mask polygon to the same key-points. The mask-wear class
is therefore defined *geometrically* — by where the mask's top and bottom
edges sit relative to the nose, mouth and chin key-points — exactly the
property the classifier must learn.

Coordinates are ``(x, y)`` in canvas pixels, y growing downward.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Tuple

import numpy as np

from repro.utils.rng import RngLike, as_generator

__all__ = ["FaceKeypoints", "sample_keypoints"]

Point = Tuple[float, float]


@dataclass
class FaceKeypoints:
    """Landmark skeleton for one synthetic face.

    All coordinates are absolute canvas pixels. ``face_rx``/``face_ry``
    are the face-ellipse radii; landmarks are guaranteed to lie inside
    that ellipse (validated at construction).
    """

    canvas: int
    face_center: Point
    face_rx: float
    face_ry: float
    left_eye: Point
    right_eye: Point
    nose_bridge: Point  # top of the nose, between the eyes
    nose_tip: Point
    mouth_center: Point
    chin_tip: Point  # lowest point of the chin
    jaw_left: Point  # jaw line at mouth height
    jaw_right: Point
    forehead_top: Point

    def __post_init__(self) -> None:
        if self.face_rx <= 0 or self.face_ry <= 0:
            raise ValueError(
                f"face radii must be positive, got {(self.face_rx, self.face_ry)}"
            )
        order = [
            self.forehead_top[1],
            (self.left_eye[1] + self.right_eye[1]) / 2.0,
            self.nose_bridge[1],
            self.nose_tip[1],
            self.mouth_center[1],
            self.chin_tip[1],
        ]
        if not all(a < b for a, b in zip(order, order[1:])):
            raise ValueError(
                "landmarks are vertically disordered (expected forehead < "
                f"eyes < nose bridge < nose tip < mouth < chin): {order}"
            )

    # -- derived geometry ----------------------------------------------------
    @property
    def eye_line_y(self) -> float:
        """Vertical coordinate of the eye line."""
        return (self.left_eye[1] + self.right_eye[1]) / 2.0

    @property
    def face_width_at(self) -> float:
        """Horizontal face radius (used to size the mask)."""
        return self.face_rx

    def below_nose_y(self, fraction: float = 0.45) -> float:
        """A y level between nose tip and mouth (mask top when nose exposed)."""
        return self.nose_tip[1] + fraction * (self.mouth_center[1] - self.nose_tip[1])

    def below_mouth_y(self, fraction: float = 0.45) -> float:
        """A y level between mouth and chin (mask top when nose+mouth exposed)."""
        return self.mouth_center[1] + fraction * (
            self.chin_tip[1] - self.mouth_center[1]
        )

    def above_chin_y(self, fraction: float = 0.35) -> float:
        """A y level above the chin tip (mask bottom when chin exposed)."""
        return self.chin_tip[1] - fraction * (self.chin_tip[1] - self.mouth_center[1])

    def as_dict(self) -> Dict[str, Point]:
        """Landmark name -> (x, y), for diagnostics and tests."""
        out = {}
        for f in fields(self):
            if f.name in ("canvas", "face_rx", "face_ry"):
                continue
            out[f.name] = getattr(self, f.name)
        return out


def sample_keypoints(
    rng: RngLike,
    canvas: int = 64,
    age_group: str = "adult",
) -> FaceKeypoints:
    """Sample a plausible landmark skeleton.

    ``age_group`` modulates the proportions the paper's Fig. 7 probes:
    infants get rounder faces with relatively lower-set, larger-spaced
    features; the elderly get slightly narrower faces.
    """
    gen = as_generator(rng)
    if age_group not in ("infant", "adult", "elderly"):
        raise ValueError(f"unknown age_group {age_group!r}")
    c = float(canvas)
    cx = c / 2.0 + gen.uniform(-0.03, 0.03) * c
    cy = c / 2.0 + gen.uniform(-0.02, 0.02) * c

    if age_group == "infant":
        rx = gen.uniform(0.30, 0.36) * c
        ry = gen.uniform(0.32, 0.38) * c
        eye_frac = gen.uniform(0.02, 0.08)  # eyes near the vertical centre
    elif age_group == "elderly":
        rx = gen.uniform(0.24, 0.30) * c
        ry = gen.uniform(0.34, 0.42) * c
        eye_frac = gen.uniform(-0.12, -0.05)
    else:
        rx = gen.uniform(0.26, 0.33) * c
        ry = gen.uniform(0.33, 0.41) * c
        eye_frac = gen.uniform(-0.10, -0.03)

    # Vertical layout (fractions of the face half-height ry).
    eye_y = cy + eye_frac * ry
    nose_bridge_y = eye_y + gen.uniform(0.08, 0.14) * ry
    nose_tip_y = nose_bridge_y + gen.uniform(0.28, 0.40) * ry
    mouth_y = nose_tip_y + gen.uniform(0.22, 0.34) * ry
    chin_y = cy + ry * gen.uniform(0.96, 1.0)
    if chin_y <= mouth_y + 0.05 * ry:
        chin_y = mouth_y + gen.uniform(0.12, 0.2) * ry
    forehead_y = cy - ry * gen.uniform(0.92, 1.0)

    eye_dx = gen.uniform(0.38, 0.5) * rx
    nose_x = cx + gen.uniform(-0.03, 0.03) * rx
    jaw_y = mouth_y
    # Jaw half-width at mouth height from the ellipse equation.
    rel = np.clip((jaw_y - cy) / ry, -0.99, 0.99)
    jaw_half = rx * float(np.sqrt(1.0 - rel**2))

    return FaceKeypoints(
        canvas=canvas,
        face_center=(cx, cy),
        face_rx=rx,
        face_ry=ry,
        left_eye=(cx - eye_dx, eye_y),
        right_eye=(cx + eye_dx, eye_y),
        nose_bridge=(nose_x, nose_bridge_y),
        nose_tip=(nose_x, nose_tip_y),
        mouth_center=(cx, mouth_y),
        chin_tip=(cx, chin_y),
        jaw_left=(cx - jaw_half, jaw_y),
        jaw_right=(cx + jaw_half, jaw_y),
        forehead_top=(cx, forehead_y),
    )
