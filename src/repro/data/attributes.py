"""Demographic and nuisance attribute sampling for synthetic faces.

The paper stresses that the classifier must generalise "for all face
structures, skin-tones, hair types, and mask types" (§I) and probes this
with Grad-CAM over ages (Fig. 7), hair colors and head-gear — including
head-gear the same light-blue as the masks (Fig. 8) — and manipulated
faces with double masks, face paint and sunglasses (Fig. 9). Every one of
those factors is an explicit sampled attribute here, so the same studies
can be run on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import RngLike, as_generator

__all__ = [
    "FaceAttributes",
    "MaskAttributes",
    "sample_attributes",
    "sample_mask_attributes",
    "SKIN_TONES",
    "HAIR_COLORS",
    "MASK_COLORS",
    "MASK_BLUE",
]

Color = Tuple[float, float, float]

# A broad Fitzpatrick-inspired ramp (RGB in [0,1]), dark to light.
SKIN_TONES: Tuple[Color, ...] = (
    (0.32, 0.20, 0.13),
    (0.45, 0.29, 0.18),
    (0.58, 0.38, 0.25),
    (0.72, 0.50, 0.34),
    (0.83, 0.62, 0.47),
    (0.93, 0.76, 0.62),
    (0.97, 0.84, 0.72),
)

HAIR_COLORS: Tuple[Color, ...] = (
    (0.08, 0.06, 0.05),  # black
    (0.28, 0.17, 0.09),  # dark brown
    (0.48, 0.32, 0.16),  # brown
    (0.76, 0.60, 0.32),  # blond
    (0.55, 0.16, 0.10),  # red
    (0.80, 0.80, 0.82),  # grey/white
    (0.55, 0.75, 0.85),  # dyed light blue (mask-colored, Fig. 8)
    (0.75, 0.45, 0.70),  # dyed pink
)

# The canonical surgical light-blue, plus white/black/patterned cloth.
MASK_BLUE: Color = (0.62, 0.80, 0.88)
MASK_COLORS: Tuple[Color, ...] = (
    MASK_BLUE,
    (0.55, 0.74, 0.84),
    (0.92, 0.92, 0.94),  # white FFP2
    (0.15, 0.15, 0.18),  # black cloth
    (0.45, 0.55, 0.75),  # blue cloth
    (0.75, 0.55, 0.55),  # pink cloth
)

_AGE_GROUPS = ("infant", "adult", "elderly")
_HAIR_STYLES = ("bald", "short", "long")
_HEADGEAR = ("none", "cap", "beanie")
_MASK_TYPES = ("surgical", "cloth", "ffp2")


@dataclass
class MaskAttributes:
    """Appearance of one mask (placement is decided by the class label)."""

    color: Color = MASK_BLUE
    mask_type: str = "surgical"
    pleats: int = 3  # horizontal fold lines on surgical masks
    strap_visible: bool = True
    texture_noise: float = 0.02

    def __post_init__(self) -> None:
        if self.mask_type not in _MASK_TYPES:
            raise ValueError(f"unknown mask_type {self.mask_type!r}")
        if not 0 <= self.pleats <= 5:
            raise ValueError(f"pleats must be in [0, 5], got {self.pleats}")


@dataclass
class FaceAttributes:
    """Everything that defines a synthetic subject except the mask class."""

    skin_tone: Color = SKIN_TONES[4]
    age_group: str = "adult"
    hair_color: Color = HAIR_COLORS[0]
    hair_style: str = "short"
    headgear: str = "none"
    headgear_color: Color = (0.4, 0.4, 0.45)
    sunglasses: bool = False
    face_paint: Optional[Color] = None
    has_eyebrows: bool = True
    background: Color = (0.75, 0.75, 0.78)
    background_noise: float = 0.03
    mask: MaskAttributes = field(default_factory=MaskAttributes)
    double_mask: bool = False
    second_mask_color: Color = (0.92, 0.92, 0.94)

    def __post_init__(self) -> None:
        if self.age_group not in _AGE_GROUPS:
            raise ValueError(f"unknown age_group {self.age_group!r}")
        if self.hair_style not in _HAIR_STYLES:
            raise ValueError(f"unknown hair_style {self.hair_style!r}")
        if self.headgear not in _HEADGEAR:
            raise ValueError(f"unknown headgear {self.headgear!r}")


def _jitter_color(gen: np.random.Generator, color: Color, amount: float = 0.05) -> Color:
    """Perturb a base color, staying in [0, 1]."""
    c = np.clip(np.asarray(color) + gen.uniform(-amount, amount, 3), 0.0, 1.0)
    return (float(c[0]), float(c[1]), float(c[2]))


def sample_mask_attributes(
    rng: RngLike, mask_type: Optional[str] = None
) -> MaskAttributes:
    """Sample mask appearance: type, color, pleats, texture.

    ``mask_type`` pins the type (``surgical``/``cloth``/``ffp2``) for
    controlled cohorts (fairness studies over mask types).
    """
    gen = as_generator(rng)
    if mask_type is None:
        mask_type = _MASK_TYPES[int(gen.choice(3, p=[0.6, 0.25, 0.15]))]
    elif mask_type not in _MASK_TYPES:
        raise ValueError(f"unknown mask_type {mask_type!r}")
    color = _jitter_color(gen, MASK_COLORS[int(gen.integers(len(MASK_COLORS)))])
    pleats = int(gen.integers(2, 4)) if mask_type == "surgical" else 0
    return MaskAttributes(
        color=color,
        mask_type=mask_type,
        pleats=pleats,
        strap_visible=bool(gen.random() < 0.8),
        texture_noise=float(gen.uniform(0.01, 0.04)),
    )


def sample_attributes(
    rng: RngLike,
    age_group: Optional[str] = None,
    hair_color: Optional[Color] = None,
    headgear: Optional[str] = None,
    sunglasses: Optional[bool] = None,
    face_paint: Optional[bool] = None,
    double_mask: Optional[bool] = None,
    skin_tone: Optional[Color] = None,
    mask_type: Optional[str] = None,
) -> FaceAttributes:
    """Sample a subject; keyword overrides pin individual factors.

    Overrides are what the generalization studies (Figs 7–9) and the
    fairness cohorts use to build controlled panels — e.g.
    ``age_group="infant"``, ``hair_color=HAIR_COLORS[6]`` (mask-blue
    hair) or ``skin_tone=SKIN_TONES[0]``.
    """
    gen = as_generator(rng)
    if age_group is None:
        age_group = _AGE_GROUPS[int(gen.choice(3, p=[0.15, 0.7, 0.15]))]
    if skin_tone is None:
        skin = _jitter_color(gen, SKIN_TONES[int(gen.integers(len(SKIN_TONES)))], 0.03)
    else:
        skin = _jitter_color(gen, skin_tone, 0.02)
    if hair_color is None:
        hair_color = _jitter_color(gen, HAIR_COLORS[int(gen.integers(len(HAIR_COLORS)))])
    hair_style = _HAIR_STYLES[int(gen.choice(3, p=[0.15, 0.55, 0.30]))]
    if age_group == "infant" and hair_style == "long":
        hair_style = "short"
    if headgear is None:
        headgear = _HEADGEAR[int(gen.choice(3, p=[0.75, 0.15, 0.10]))]
    # Head-gear sometimes deliberately mask-colored (Fig. 8 rows 2-3).
    if gen.random() < 0.25:
        headgear_color = _jitter_color(gen, MASK_BLUE)
    else:
        headgear_color = (
            float(gen.uniform(0.1, 0.9)),
            float(gen.uniform(0.1, 0.9)),
            float(gen.uniform(0.1, 0.9)),
        )
    if sunglasses is None:
        sunglasses = bool(gen.random() < 0.08)
    paint_color: Optional[Color]
    if face_paint is None:
        face_paint = bool(gen.random() < 0.04)
    paint_color = (
        (float(gen.uniform(0.2, 1.0)), float(gen.uniform(0.2, 1.0)), float(gen.uniform(0.2, 1.0)))
        if face_paint
        else None
    )
    if double_mask is None:
        double_mask = bool(gen.random() < 0.05)
    background = (
        float(gen.uniform(0.35, 0.9)),
        float(gen.uniform(0.35, 0.9)),
        float(gen.uniform(0.35, 0.9)),
    )
    return FaceAttributes(
        skin_tone=skin,
        age_group=age_group,
        hair_color=hair_color,
        hair_style=hair_style,
        headgear=headgear,
        headgear_color=headgear_color,
        sunglasses=sunglasses,
        face_paint=paint_color,
        has_eyebrows=bool(gen.random() < 0.9),
        background=background,
        background_noise=float(gen.uniform(0.01, 0.06)),
        mask=sample_mask_attributes(gen, mask_type=mask_type),
        double_mask=double_mask,
        second_mask_color=_jitter_color(gen, MASK_COLORS[2]),
    )
