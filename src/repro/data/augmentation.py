"""Data augmentation.

§IV-A: "The evenly balanced dataset is then randomly augmented with a
varying combination of contrast, brightness, gaussian noise, flip and
rotate operations." Each op is implemented as a pure function plus an
:class:`Augmenter` that samples a varying combination per image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.utils import imaging
from repro.utils.rng import RngLike, as_generator

__all__ = [
    "adjust_contrast",
    "adjust_brightness",
    "add_gaussian_noise",
    "horizontal_flip",
    "rotate",
    "Augmenter",
]


def adjust_contrast(image: np.ndarray, factor: float) -> np.ndarray:
    """Scale deviations from the mean by ``factor`` (1.0 = identity)."""
    if factor < 0:
        raise ValueError(f"contrast factor must be non-negative, got {factor}")
    mean = image.mean(axis=(0, 1), keepdims=True)
    return imaging.clip01(mean + (image - mean) * factor)


def adjust_brightness(image: np.ndarray, delta: float) -> np.ndarray:
    """Add ``delta`` to every channel (0.0 = identity)."""
    return imaging.clip01(image + delta)


def add_gaussian_noise(
    image: np.ndarray, sigma: float, rng: RngLike = None
) -> np.ndarray:
    """Add i.i.d. gaussian pixel noise with std ``sigma``."""
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    if sigma == 0:
        return image.copy()
    gen = as_generator(rng)
    return imaging.clip01(image + gen.normal(0.0, sigma, image.shape).astype(np.float32))


def horizontal_flip(image: np.ndarray) -> np.ndarray:
    """Mirror left-right (faces and masks are left-right symmetric classes)."""
    return np.ascontiguousarray(image[:, ::-1])


def rotate(image: np.ndarray, degrees: float) -> np.ndarray:
    """Rotate about the centre (small angles; border replicated)."""
    return imaging.rotate_image(image, degrees)


@dataclass
class Augmenter:
    """Samples a varying combination of the five paper augmentations.

    Each op fires independently with its own probability; parameter
    ranges default to values that keep the class signal intact (rotation
    is capped well below the angle that would move the mask's apparent
    position across a landmark).
    """

    p_contrast: float = 0.5
    contrast_range: Tuple[float, float] = (0.7, 1.4)
    p_brightness: float = 0.5
    brightness_range: Tuple[float, float] = (-0.15, 0.15)
    p_noise: float = 0.5
    noise_sigma_range: Tuple[float, float] = (0.01, 0.05)
    p_flip: float = 0.5
    p_rotate: float = 0.35
    rotate_range: Tuple[float, float] = (-12.0, 12.0)

    def __post_init__(self) -> None:
        for name in ("p_contrast", "p_brightness", "p_noise", "p_flip", "p_rotate"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")

    def __call__(self, image: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Return an augmented copy of ``image``."""
        gen = as_generator(rng)
        out = image
        if gen.random() < self.p_rotate:
            out = rotate(out, float(gen.uniform(*self.rotate_range)))
        if gen.random() < self.p_flip:
            out = horizontal_flip(out)
        if gen.random() < self.p_contrast:
            out = adjust_contrast(out, float(gen.uniform(*self.contrast_range)))
        if gen.random() < self.p_brightness:
            out = adjust_brightness(out, float(gen.uniform(*self.brightness_range)))
        if gen.random() < self.p_noise:
            out = add_gaussian_noise(out, float(gen.uniform(*self.noise_sigma_range)), gen)
        if out is image:
            out = image.copy()
        # Keep augmented pixels on the uint8 grid — the deployment input
        # domain (see imaging.quantize_to_uint8_grid).
        return imaging.quantize_to_uint8_grid(out)

    def augment_batch(
        self, images: np.ndarray, rng: RngLike = None
    ) -> np.ndarray:
        """Augment every image in an ``(N, H, W, C)`` batch independently."""
        gen = as_generator(rng)
        return np.stack([self(img, gen) for img in images])
