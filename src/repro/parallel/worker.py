"""The pool worker process: a pre-warmed plan cache over shared slots.

One worker = one process = one :class:`~repro.hw.plan.PlanCache` bound
to one :class:`~repro.parallel.shm.SharedArena`. At startup the worker
attaches the parent-created segments, pre-compiles a plan per configured
bucket size (so the first real request never pays a compile), then loops
on its private task queue:

``("run", task_id, slot, batch, dtype, return_bits)``
    Execute the plan for ``batch`` over the slot's input view, writing
    logits straight into the slot's output view — no array crosses the
    queue. ``return_bits`` additionally ships the per-stage boolean
    traces back pickled (debug mode; allocates by design).
``("stats", req_id)`` / ``("spans", req_id)`` / ``("alloccheck", req_id,
batch, iters)``
    Control plane: plan-cache counters + arena occupancy, the worker's
    span journal (tagged by worker id on the parent side), and an
    in-worker :func:`~repro.hw.plan.measure_steady_state` run — the
    zero-allocation gate executed where it actually matters.
``("stop",)``
    Clean exit (views dropped, segments detached).

Replies all carry ``worker_id`` so the parent can merge telemetry and
track in-flight work per worker for requeue-on-death.
"""

from __future__ import annotations

import os
import signal
from typing import Optional, Sequence, Tuple

from repro.parallel.shm import RingSpec, SharedArena, ShmRing

__all__ = ["worker_main"]


def worker_main(
    worker_id: int,
    accelerator,
    ring_spec: RingSpec,
    ring_name: str,
    arena_name: str,
    buckets: Sequence[int],
    task_queue,
    result_queue,
    trace_sample: Optional[int] = None,
    lowering: str = "auto",
) -> None:
    """Entry point run inside each pool process (see module docstring)."""
    # The parent owns SIGINT (Ctrl-C must drain the pool, not massacre
    # it); workers exit via the "stop" message or SIGTERM.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    from repro.hw.plan import PlanCache, measure_steady_state
    from repro.telemetry import SpanJournal, Tracer

    arena = SharedArena(0, name=arena_name, create=False)
    ring = ShmRing(ring_spec, name=ring_name, create=False)
    journal = SpanJournal()
    tracer = Tracer(journal=journal) if trace_sample else None
    plans = PlanCache(
        accelerator, capacity=len(buckets) + 2, arena=arena,
        lowering=lowering,
    )
    try:
        plans.prewarm(buckets)
    except Exception as exc:  # noqa: BLE001 - shipped to the parent
        result_queue.put(("fatal", worker_id, repr(exc)))
        ring.close()
        arena.close()
        return
    result_queue.put(("started", worker_id, os.getpid()))
    tasks_seen = 0

    # Slot views and plans live only inside these helpers: worker_main's
    # own frame must hold no shared-memory views when the finally block
    # detaches the segments, or close() cannot release the mappings.
    def handle_run(msg: Tuple) -> None:
        _, task_id, slot, batch, dtype_name, return_bits = msg
        sampled = tracer is not None and tasks_seen % trace_sample == 0
        try:
            plan, _ = plans.get(batch)
            in_view = ring.input_view(slot, batch, dtype_name)
            out_view = ring.output_view(slot, batch)
            if return_bits:
                _, bits = plan.execute(
                    in_view,
                    out=out_view,
                    return_bits=True,
                    tracer=tracer if sampled else None,
                )
                payload = bits
            else:
                plan.execute(
                    in_view, out=out_view, tracer=tracer if sampled else None
                )
                payload = None
            result_queue.put(("ok", worker_id, task_id, slot, payload))
        except Exception as exc:  # noqa: BLE001 - reported per task
            result_queue.put(("err", worker_id, task_id, slot, repr(exc)))

    def handle_stats(req_id: int) -> None:
        stats = plans.stats()
        stats["worker_pid"] = os.getpid()
        stats["tasks"] = tasks_seen
        stats["arena_carved_bytes"] = arena.carved_bytes
        stats["arena_overflow_bytes"] = arena.overflow_bytes
        stats["arena_capacity"] = arena.capacity
        result_queue.put(("stats", worker_id, req_id, stats))

    def handle_alloccheck(req_id: int, batch: int, iters: int) -> None:
        try:
            plan, _ = plans.get(batch)
            in_view = ring.input_view(0, batch, "float32")
            in_view[:] = 0.0
            out_view = ring.output_view(0, batch)
            report = measure_steady_state(
                lambda: plan.execute(in_view, out=out_view), iters=iters
            )
            result_queue.put((
                "alloc",
                worker_id,
                req_id,
                {
                    "per_call_blocks": report.per_call_blocks,
                    "net_blocks": report.net_blocks,
                    "growth_blocks": report.growth_blocks,
                },
            ))
        except Exception as exc:  # noqa: BLE001 - reported
            result_queue.put(("alloc", worker_id, req_id, {"error": repr(exc)}))

    try:
        while True:
            msg: Tuple = task_queue.get()
            kind = msg[0]
            if kind == "stop":
                break
            if kind == "run":
                tasks_seen += 1
                handle_run(msg)
            elif kind == "stats":
                handle_stats(msg[1])
            elif kind == "spans":
                result_queue.put(
                    ("spans", worker_id, msg[1], journal.snapshot())
                )
            elif kind == "alloccheck":
                handle_alloccheck(msg[1], msg[2], msg[3])
            # Unknown kinds are ignored: a newer parent may speak a
            # superset, and a worker must never die over a control frame.
    finally:
        # Compiled plans pin arena views (and cached ring views pin the
        # ring); drop them before detaching or close() cannot release
        # the mappings and the interpreter nags at exit.
        del plans, handle_run, handle_stats, handle_alloccheck
        import gc

        gc.collect()
        ring.close()
        arena.close()
