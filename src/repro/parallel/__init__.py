"""Process-parallel planned inference (see ARCHITECTURE.md).

The GIL caps the thread-parallel datapath at roughly one core of XNOR
compute; this package runs :class:`~repro.hw.plan.ExecutionPlan`
inference across *processes* instead. Each worker owns a pre-warmed
:class:`~repro.hw.plan.PlanCache` bound to a shared-memory
:class:`~repro.parallel.shm.SharedArena`; batches and logits move
through shared-memory ring slots, so the hot path pickles nothing
bigger than a task tuple.

Entry points: :class:`~repro.parallel.pool.ProcessPool` directly,
``predict(..., execution=ExecutionConfig(isolation="process"))``
through the :mod:`repro.runtime` registry, or the serving layer's
``ProcessPoolBackend``.
"""

from repro.parallel.bucketing import (
    bucket_for,
    default_buckets,
    pad_to_bucket,
    validate_buckets,
)
from repro.parallel.host import (
    host_info,
    logical_cpu_count,
    physical_cpu_count,
    recommended_workers,
)
from repro.parallel.pool import ProcessPool, PoolTask
from repro.parallel.shm import RingSpec, SharedArena, ShmRing

__all__ = [
    "ProcessPool",
    "PoolTask",
    "SharedArena",
    "ShmRing",
    "RingSpec",
    "bucket_for",
    "default_buckets",
    "pad_to_bucket",
    "validate_buckets",
    "host_info",
    "logical_cpu_count",
    "physical_cpu_count",
    "recommended_workers",
]
