"""Batch-shape bucketing: a fixed set of batch geometries for plan reuse.

An :class:`~repro.hw.plan.ExecutionPlan` is compiled per batch size, so
a serving workload whose micro-batches close at arbitrary sizes (7, 13,
31, ...) churns the per-worker plan LRU and pays a recompile on almost
every request. Bucketing rounds each batch *up* to the nearest size in a
small fixed set (powers of two up to the batcher's ``max_batch_size`` by
default), padding the tail with zero images.

Padding is legal because every planned stage is row-wise in the batch
axis: im2col, the GEMM lowerings, thresholding and pooling all treat
image ``i``'s rows independently of image ``j``'s, so logits
``[:n_valid]`` of a padded batch are bit-identical to the unpadded run
(pinned by ``tests/test_parallel.py``). The pad rows cost compute but
buy plan stability — with ``K`` buckets a worker compiles at most ``K``
plans ever, regardless of traffic shape.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["default_buckets", "validate_buckets", "bucket_for", "pad_to_bucket"]


def default_buckets(max_batch: int) -> Tuple[int, ...]:
    """Powers of two up to ``max_batch``, plus ``max_batch`` itself."""
    if max_batch <= 0:
        raise ValueError(f"max_batch must be positive, got {max_batch}")
    buckets = []
    b = 1
    while b < max_batch:
        buckets.append(b)
        b *= 2
    buckets.append(max_batch)
    return tuple(buckets)


def validate_buckets(buckets: Sequence[int], max_batch: int) -> Tuple[int, ...]:
    """Normalised ``buckets`` (sorted, unique) or a raised ``ValueError``.

    The largest bucket must cover ``max_batch`` — otherwise some formed
    batch would have no geometry to round up to.
    """
    out = sorted({int(b) for b in buckets})
    if not out:
        raise ValueError("buckets must not be empty")
    if out[0] <= 0:
        raise ValueError(f"buckets must be positive, got {out[0]}")
    if out[-1] < max_batch:
        raise ValueError(
            f"largest bucket {out[-1]} does not cover max_batch {max_batch}"
        )
    return tuple(out)


def bucket_for(n: int, buckets: Sequence[int]) -> int:
    """The smallest bucket that holds ``n`` items."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    for b in buckets:
        if b >= n:
            return b
    raise ValueError(f"no bucket in {tuple(buckets)} holds {n} items")


def pad_to_bucket(
    images: np.ndarray, buckets: Sequence[int]
) -> Tuple[np.ndarray, int]:
    """``(padded_batch, n_valid)`` — rounds the batch up with zero rows.

    Returns the input untouched (no copy) when it already sits on a
    bucket boundary. Zero pixels are valid in both input domains the
    datapath accepts (uint8 ``[0, 255]`` and float ``[0, 1]``), so the
    pad rows flow through the plan as ordinary — discarded — images.
    """
    n = images.shape[0]
    bucket = bucket_for(n, buckets)
    if bucket == n:
        return images, n
    pad = np.zeros((bucket - n,) + images.shape[1:], dtype=images.dtype)
    return np.concatenate([images, pad], axis=0), n
