"""The process pool: parent-side orchestration of planned inference.

:class:`ProcessPool` owns the shared segments (one slot ring, one arena
per worker), spawns the workers, and exposes a future-based submit API:

* :meth:`submit` pads a batch to its bucket, writes it into a free ring
  slot, and enqueues a tiny task tuple to the least-loaded worker —
  arrays never cross a pipe (``return_bits`` traces are the deliberate
  pickled exception).
* A collector thread drains the single result queue, copies logits out
  of the slot (sliced back to the valid rows), frees the slot, and
  resolves the future.
* Worker death is detected by the collector's idle heartbeat: the dead
  worker is respawned with a fresh task queue and every task that was
  in flight on it is re-dispatched — inputs still sit untouched in
  their ring slots, and planned inference is deterministic, so a
  re-run after a partial completion is safe. The task queue buffers the
  re-sent work while the replacement prewarms its plans. Restarts and
  requeues are counted and surfaced to ``on_event`` (the serving
  backend forwards them into the server's metrics registry).

The pool is bit-exact vs the single-process planned path by
construction: workers run the *same* ``ExecutionPlan`` code over the
same bytes, and padding only appends rows the batch-axis-row-wise
datapath never mixes into the first ``n_valid`` logits.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as std_queue
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel.bucketing import (
    bucket_for,
    default_buckets,
    validate_buckets,
)
from repro.parallel.host import recommended_workers
from repro.parallel.shm import RingSpec, SharedArena, ShmRing
from repro.parallel.worker import worker_main

__all__ = ["ProcessPool", "PoolTask"]

#: Default shared-arena capacity per worker; the carved working set of a
#: CNV batch-32 plan is a few MiB, and untouched tmpfs pages are free.
DEFAULT_ARENA_BYTES = 64 * 1024 * 1024

_START_TIMEOUT_S = 120.0

#: A task is failed rather than requeued forever after this many resends.
_MAX_RESENDS = 3


class PoolTask:
    """A submitted batch: future-style handle resolved by the collector."""

    def __init__(self, task_id: int, slot: int, batch: int, n_valid: int,
                 dtype: np.dtype, return_bits: bool) -> None:
        self.task_id = task_id
        self.slot = slot
        self.batch = batch
        self.n_valid = n_valid
        self.dtype = np.dtype(dtype)
        self.return_bits = return_bits
        self.worker_id: Optional[int] = None
        self.resends = 0
        self._done = threading.Event()
        self._logits: Optional[np.ndarray] = None
        self._bits = None
        self._error: Optional[BaseException] = None

    def _resolve(self, logits: np.ndarray, bits=None) -> None:
        self._logits = logits
        self._bits = bits
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Valid-row logits ``(n_valid, classes)``; raises on task failure."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"pool task {self.task_id} not done within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._logits

    def bits(self, timeout: Optional[float] = None):
        """Per-stage boolean traces (``return_bits`` submissions only)."""
        self.result(timeout)
        return self._bits


class ProcessPool:
    """``num_workers`` plan-running processes over shared-memory slots."""

    def __init__(
        self,
        accelerator,
        num_workers: Optional[int] = None,
        buckets: Optional[Sequence[int]] = None,
        max_batch: int = 32,
        slots: Optional[int] = None,
        arena_bytes: int = DEFAULT_ARENA_BYTES,
        trace_sample: Optional[int] = None,
        start_method: Optional[str] = None,
        on_event: Optional[Callable[[str, int], None]] = None,
        lowering: str = "auto",
    ) -> None:
        from repro.hw.plan import _resolve_lowering, plan_unsupported_reason

        reason = plan_unsupported_reason(accelerator)
        if reason is not None:
            raise ValueError(f"{accelerator.name}: {reason}")
        # Validate eagerly: a bad lowering should fail here, not as a
        # "fatal" handshake from every spawned worker.
        self.lowering = _resolve_lowering(accelerator, lowering)
        if num_workers is None:
            num_workers = recommended_workers()
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self.accelerator = accelerator
        self.num_workers = int(num_workers)
        self.max_batch = int(max_batch)
        self.buckets = validate_buckets(
            buckets if buckets is not None else default_buckets(max_batch),
            max_batch,
        )
        self.trace_sample = trace_sample
        self._on_event = on_event
        n_slots = slots if slots is not None else 2 * self.num_workers
        if n_slots <= 0:
            raise ValueError(f"slots must be positive, got {n_slots}")
        spec = RingSpec(
            slots=int(n_slots),
            max_batch=self.buckets[-1],
            input_shape=tuple(accelerator.input_shape),
            num_classes=int(accelerator.num_classes),
        )
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self._ring = ShmRing(spec)
        self._arenas: List[SharedArena] = [
            SharedArena(arena_bytes) for _ in range(self.num_workers)
        ]
        self._result_q = self._ctx.Queue()
        self._task_qs: List = [None] * self.num_workers
        self._procs: List = [None] * self.num_workers
        self._lock = threading.Lock()
        self._slot_free = threading.Condition(self._lock)
        self._free_slots = list(range(spec.slots))
        self._pending: Dict[int, PoolTask] = {}
        self._control: Dict[int, Tuple[Dict, threading.Event]] = {}
        self._next_task = 0
        self._next_req = 0
        self._closed = False
        self.counters: Dict[str, int] = {
            "tasks": 0, "worker_restarts": 0, "requeued": 0, "errors": 0,
        }
        for wid in range(self.num_workers):
            self._spawn(wid)
        self._await_started(range(self.num_workers))
        self._collector = threading.Thread(
            target=self._collect, name="pool-collector", daemon=True
        )
        self._collector.start()

    # -- worker lifecycle ----------------------------------------------------
    def _spawn(self, worker_id: int) -> None:
        """(Re)start worker ``worker_id`` with a fresh task queue."""
        q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=worker_main,
            name=f"pool-worker-{worker_id}",
            args=(
                worker_id,
                self.accelerator,
                self._ring.spec,
                self._ring.name,
                self._arenas[worker_id].name,
                self.buckets,
                q,
                self._result_q,
                self.trace_sample,
                self.lowering,
            ),
            daemon=True,
        )
        proc.start()
        self._task_qs[worker_id] = q
        self._procs[worker_id] = proc

    def _await_started(self, worker_ids) -> None:
        """Block until every listed worker handshakes (startup only —
        once the collector runs, it consumes the handshakes itself)."""
        waiting = set(worker_ids)
        deadline = time.monotonic() + _START_TIMEOUT_S
        while waiting:
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                self.close()
                raise RuntimeError(
                    f"pool workers {sorted(waiting)} failed to start within "
                    f"{_START_TIMEOUT_S:.0f}s"
                )
            try:
                msg = self._result_q.get(timeout=min(timeout, 0.5))
            except std_queue.Empty:
                continue
            if msg[0] == "started":
                waiting.discard(msg[1])
            elif msg[0] == "fatal":
                self.close()
                raise RuntimeError(
                    f"pool worker {msg[1]} failed to initialise: {msg[2]}"
                )

    def alive_workers(self) -> int:
        """How many worker processes are currently alive."""
        return sum(1 for p in self._procs if p is not None and p.is_alive())

    def healthy(self) -> bool:
        return not self._closed and self.alive_workers() == self.num_workers

    # -- submission ----------------------------------------------------------
    def _acquire_slot(self) -> int:
        with self._slot_free:
            while not self._free_slots:
                if self._closed:
                    raise RuntimeError("pool is closed")
                self._slot_free.wait(timeout=0.1)
            return self._free_slots.pop()

    def _release_slot(self, slot: int) -> None:
        with self._slot_free:
            self._free_slots.append(slot)
            self._slot_free.notify()

    def _pick_worker_locked(self) -> int:
        """Least-loaded live worker (ties by id); callers hold the lock."""
        load = [0] * self.num_workers
        for task in self._pending.values():
            if task.worker_id is not None:
                load[task.worker_id] += 1
        return min(
            range(self.num_workers),
            key=lambda w: (not self._procs[w].is_alive(), load[w], w),
        )

    def submit(self, images: np.ndarray, return_bits: bool = False) -> PoolTask:
        """Dispatch one batch (≤ largest bucket) to a worker; returns a task.

        The batch is padded up to its bucket inside the ring slot; the
        returned task resolves to the valid rows only.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[None]
        expected_tail = tuple(self.accelerator.input_shape)
        if images.ndim != 4 or images.shape[1:] != expected_tail:
            raise ValueError(
                f"expected (N,) + {expected_tail} images, got {images.shape}"
            )
        n = images.shape[0]
        bucket = bucket_for(n, self.buckets)
        slot = self._acquire_slot()
        view = self._ring.input_view(slot, bucket, images.dtype)
        view[:n] = images
        if bucket > n:
            view[n:] = 0
        with self._lock:
            task = PoolTask(
                self._next_task, slot, bucket, n, images.dtype, return_bits
            )
            self._next_task += 1
            self._pending[task.task_id] = task
            self.counters["tasks"] += 1
            task.worker_id = self._pick_worker_locked()
        self._task_qs[task.worker_id].put(
            ("run", task.task_id, slot, bucket, images.dtype.name, return_bits)
        )
        return task

    def execute(self, images: np.ndarray, timeout: Optional[float] = 120.0
                ) -> np.ndarray:
        """Integer logits for an arbitrary-size batch, chunked over workers."""
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[None]
        chunk = self.buckets[-1]
        tasks = [
            self.submit(images[start:start + chunk])
            for start in range(0, len(images), chunk)
        ]
        return np.concatenate([t.result(timeout=timeout) for t in tasks])

    def predict(self, images: np.ndarray, timeout: Optional[float] = 120.0
                ) -> np.ndarray:
        """Argmax class labels for an arbitrary-size batch."""
        return self.execute(images, timeout=timeout).argmax(axis=1)

    # -- collector -----------------------------------------------------------
    def _collect(self) -> None:
        while not self._closed:
            try:
                msg = self._result_q.get(timeout=0.05)
            except std_queue.Empty:
                self._reap_dead()
                continue
            kind = msg[0]
            if kind == "ok":
                _, worker_id, task_id, slot, payload = msg
                with self._lock:
                    task = self._pending.pop(task_id, None)
                if task is None:
                    continue  # completed by a pre-respawn duplicate
                out = self._ring.output_view(slot, task.batch)
                logits = out[: task.n_valid].copy()
                bits = None
                if task.return_bits and payload is not None:
                    bits = [stage[: task.n_valid] for stage in payload]
                self._release_slot(slot)
                task._resolve(logits, bits)
            elif kind == "err":
                _, worker_id, task_id, slot, detail = msg
                with self._lock:
                    task = self._pending.pop(task_id, None)
                if task is None:
                    continue
                self.counters["errors"] += 1
                self._emit("pool_task_errors", 1)
                self._release_slot(slot)
                task._fail(RuntimeError(
                    f"pool worker {worker_id} failed task {task_id}: {detail}"
                ))
            elif kind in ("stats", "spans", "alloc"):
                _, worker_id, req_id, payload = msg
                with self._lock:
                    entry = self._control.get(req_id)
                if entry is not None:
                    box, event = entry
                    box[worker_id] = payload
                    event.set()
            # "started" handshakes after a respawn need no action; a
            # "fatal" respawn failure leaves the process dead and the
            # next _reap_dead pass handles (or gives up on) it.

    def _reap_dead(self) -> None:
        """Respawn dead workers and re-dispatch their in-flight tasks."""
        for wid, proc in enumerate(self._procs):
            if self._closed or proc is None or proc.is_alive():
                continue
            proc.join(timeout=0)
            with self._lock:
                orphans = [
                    t for t in self._pending.values() if t.worker_id == wid
                ]
            self.counters["worker_restarts"] += 1
            self._emit("pool_worker_restarts", 1)
            # A fresh worker prewarms before serving, but its queue
            # buffers the re-sent tasks meanwhile — no handshake wait
            # here (this thread must keep draining results).
            self._spawn(wid)
            for task in orphans:
                # The inputs still sit in the task's ring slot; planned
                # inference is deterministic, so re-running a task the
                # dead worker may have half-finished is safe.
                if task.resends >= _MAX_RESENDS:
                    with self._lock:
                        self._pending.pop(task.task_id, None)
                    self._release_slot(task.slot)
                    task._fail(RuntimeError(
                        f"task {task.task_id} requeued {task.resends} times "
                        "without completing"
                    ))
                    continue
                task.resends += 1
                with self._lock:
                    task.worker_id = self._pick_worker_locked()
                self.counters["requeued"] += 1
                self._emit("pool_requeued", 1)
                self._task_qs[task.worker_id].put((
                    "run", task.task_id, task.slot, task.batch,
                    task.dtype.name, task.return_bits,
                ))

    def _emit(self, event: str, n: int) -> None:
        if self._on_event is not None:
            try:
                self._on_event(event, n)
            except Exception:  # noqa: BLE001 - observers must not kill the pool
                pass

    def on_event(self, callback: Optional[Callable[[str, int], None]]) -> None:
        """Install the restart/requeue/error observer (e.g. server metrics)."""
        self._on_event = callback

    # -- control plane -------------------------------------------------------
    def _broadcast(self, command: str, timeout: float = 30.0,
                   extra: Tuple = ()) -> Dict[int, Dict]:
        """Send a control command to every live worker, gather replies."""
        box: Dict[int, Dict] = {}
        event = threading.Event()
        with self._lock:
            req_id = self._next_req
            self._next_req += 1
            self._control[req_id] = (box, event)
            live = [
                wid for wid, p in enumerate(self._procs)
                if p is not None and p.is_alive()
            ]
        try:
            for wid in live:
                self._task_qs[wid].put((command, req_id) + extra)
            deadline = time.monotonic() + timeout
            while len(box) < len(live) and time.monotonic() < deadline:
                event.wait(timeout=0.05)
                event.clear()
        finally:
            with self._lock:
                self._control.pop(req_id, None)
        return dict(box)

    def plan_stats(self) -> Dict:
        """Aggregated plan-cache counters with a per-worker breakdown."""
        per_worker = self._broadcast("stats")
        total = {"hits": 0, "misses": 0, "plans": 0, "arena_bytes": 0}
        for stats in per_worker.values():
            for key in total:
                total[key] += stats.get(key, 0)
        return {
            "workers": {int(k): v for k, v in per_worker.items()},
            "total": total,
            "pool": dict(self.counters),
        }

    def drain_spans(self, journal=None) -> List[Dict]:
        """Every worker's spans, tagged with its worker id.

        With ``journal`` given the spans are also recorded into it, so a
        serve run's trace file interleaves worker-side ``hw_stage`` spans
        with the parent's serving spans.
        """
        per_worker = self._broadcast("spans")
        merged: List[Dict] = []
        for wid, spans in sorted(per_worker.items()):
            for span in spans:
                span = dict(span)
                attrs = dict(span.get("attributes") or {})
                attrs["worker"] = int(wid)
                span["attributes"] = attrs
                merged.append(span)
                if journal is not None:
                    journal.record(span)
        return merged

    def alloc_check(self, batch: Optional[int] = None, iters: int = 10
                    ) -> Dict[int, Dict]:
        """Run the steady-state allocation gate *inside* each worker."""
        bucket = bucket_for(batch or self.buckets[0], self.buckets)
        return self._broadcast(
            "alloccheck", timeout=120.0, extra=(bucket, iters)
        )

    # -- shutdown ------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Stop workers, fail leftover tasks, release every shared segment."""
        if self._closed:
            return
        self._closed = True
        for wid, proc in enumerate(self._procs):
            if proc is not None and proc.is_alive():
                try:
                    self._task_qs[wid].put(("stop",))
                except Exception:  # noqa: BLE001 - queue may be broken
                    pass
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=timeout)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
        collector = getattr(self, "_collector", None)
        if collector is not None and collector.is_alive():
            collector.join(timeout=2.0)
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
        for task in leftovers:
            task._fail(RuntimeError("pool closed with task in flight"))
        with self._slot_free:
            self._slot_free.notify_all()
        self._ring.close(unlink=True)
        for arena in self._arenas:
            arena.close(unlink=True)

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
