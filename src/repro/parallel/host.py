"""Host CPU topology: how much process parallelism is actually available.

The bench trajectory and the process pool both need an honest picture of
the machine they run on: logical CPU count, *physical* cores (SMT
siblings share execution ports, so two hyperthreads running the XNOR
GEMM are nowhere near two cores), and a sensible default worker count.
Everything here is best-effort and dependency-free — on hosts where
``/proc`` or ``sched_getaffinity`` is unavailable the logical count is
the fallback.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

__all__ = [
    "logical_cpu_count",
    "physical_cpu_count",
    "recommended_workers",
    "host_info",
]


def logical_cpu_count() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def physical_cpu_count() -> Optional[int]:
    """Physical core count, or ``None`` when the host does not say.

    Parsed from ``/proc/cpuinfo`` by counting distinct
    ``(physical id, core id)`` pairs — the standard Linux recipe. Hosts
    without cpuinfo topology fields (containers, exotic kernels) return
    ``None`` rather than guessing.
    """
    try:
        text = open("/proc/cpuinfo", "r", encoding="ascii").read()
    except OSError:  # pragma: no cover - no procfs
        return None
    cores = set()
    phys_id = core_id = None
    for line in text.splitlines():
        if ":" not in line:
            phys_id = core_id = None
            continue
        key, _, value = line.partition(":")
        key = key.strip()
        if key == "physical id":
            phys_id = value.strip()
        elif key == "core id":
            core_id = value.strip()
        if phys_id is not None and core_id is not None:
            cores.add((phys_id, core_id))
            phys_id = core_id = None
    return len(cores) or None


def recommended_workers(cap: int = 4) -> int:
    """Default process-pool size: physical cores, capped, at least one.

    Capped because the simulator's per-image work is small enough that
    queue/IPC overheads dominate past a handful of workers, and because
    the parent process itself needs a core to feed them.
    """
    if cap <= 0:
        raise ValueError(f"cap must be positive, got {cap}")
    cores = physical_cpu_count() or logical_cpu_count()
    return max(1, min(cap, cores))


def host_info() -> Dict:
    """The host record benchmarks embed next to their timings."""
    return {
        "cpu_count": os.cpu_count(),
        "logical_cpus": logical_cpu_count(),
        "physical_cores": physical_cpu_count(),
    }
