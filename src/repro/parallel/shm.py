"""Shared-memory primitives for the process pool: arenas and ring slots.

Two pieces of POSIX shared memory make the pool's hot path zero-copy:

* :class:`SharedArena` — a :class:`~repro.nn.arena.BufferArena` whose
  buffers are carved bump-allocator-style out of one
  ``multiprocessing.shared_memory`` segment. Each worker binds its
  :class:`~repro.hw.plan.PlanCache` to one, so every planned
  intermediate lives in memory the parent could map (and so the
  worker's steady state allocates nothing: the segment is mapped once).
* :class:`ShmRing` — a ring of fixed-stride slots in a second segment.
  Each slot has an input region (sized for the largest bucket at the
  worst-case element width) and an int64 output region for logits. The
  parent writes a padded batch into a free slot's input view, sends the
  worker a tiny ``(task_id, slot, bucket, dtype)`` tuple over a queue,
  and the worker runs ``plan.execute(in_view, out=out_view)`` — the
  arrays themselves never cross a pipe.

Ownership: the parent creates and unlinks every segment (workers only
attach), so a SIGKILLed worker can never leak kernel objects — cleanup
rides on the parent's lifetime. CPython's ``resource_tracker`` only
registers *creating* processes (3.11 semantics), so attach-side handles
need no tracker bookkeeping of their own.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.arena import BufferArena

__all__ = ["SharedArena", "RingSpec", "ShmRing"]

_ALIGN = 64  # cache-line alignment for every carved buffer / slot region


class SharedArena(BufferArena):
    """A buffer arena backed by one shared-memory segment.

    Drop-in for :class:`~repro.nn.arena.BufferArena` (plans bind it via
    ``PlanCache(..., arena=...)``): :meth:`get` carves cache-line-aligned
    views out of the segment until ``capacity`` is exhausted, then falls
    back to private heap buffers (counted in :attr:`overflow_bytes` —
    a sizing signal, not an error). :meth:`clear` resets the bump
    pointer *and* bumps the epoch, so stale plans refuse to run rather
    than aliasing re-carved storage.
    """

    def __init__(
        self,
        capacity: int,
        name: Optional[str] = None,
        create: bool = True,
    ) -> None:
        if create and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        super().__init__()
        if create:
            self._shm = shared_memory.SharedMemory(create=True, size=capacity)
        else:
            if name is None:
                raise ValueError("attaching requires the segment name")
            self._shm = shared_memory.SharedMemory(name=name)
        self.capacity = self._shm.size
        self._offset = 0
        self.overflow_bytes = 0
        self._closed = False

    @property
    def name(self) -> str:
        """Segment name another process attaches with."""
        return self._shm.name

    @property
    def carved_bytes(self) -> int:
        """Bytes handed out from the segment so far."""
        return self._offset

    def get(self, owner, role, shape, dtype=np.float32) -> np.ndarray:
        key = (id(owner), role, tuple(int(s) for s in shape), np.dtype(dtype))
        buf = self._buffers.get(key)
        if buf is not None:
            return buf
        nbytes = int(np.prod(key[2], dtype=np.int64)) * key[3].itemsize
        aligned = -(-nbytes // _ALIGN) * _ALIGN
        if self._offset + aligned <= self.capacity:
            buf = np.frombuffer(
                self._shm.buf,
                dtype=key[3],
                count=int(np.prod(key[2], dtype=np.int64)),
                offset=self._offset,
            ).reshape(key[2])
            self._offset += aligned
        else:
            buf = np.empty(key[2], dtype=key[3])
            self.overflow_bytes += nbytes
        self._buffers[key] = buf
        return buf

    def clear(self) -> None:
        super().clear()
        self._offset = 0
        self.overflow_bytes = 0

    def close(self, unlink: bool = False) -> None:
        """Release the mapping (and the segment itself when ``unlink``).

        Outstanding numpy views pin the mapping — they are dropped here,
        so any still-bound plan becomes unusable by design.
        """
        if self._closed:
            return
        self._closed = True
        self._buffers.clear()
        self._epoch += 1
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a caller kept a view
            pass
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


@dataclass(frozen=True)
class RingSpec:
    """Geometry of a slot ring: everything needed to (re)attach views.

    ``input_shape`` is the per-image shape; each slot's input region
    holds up to ``max_batch`` images at ``input_bytes_per_image`` (sized
    for the widest dtype the datapath accepts, float64), and its output
    region holds ``max_batch`` int64 logit rows of ``num_classes``.
    """

    slots: int
    max_batch: int
    input_shape: Tuple[int, ...]
    num_classes: int
    input_bytes_per_image: int = 0  # 0 -> derived for float64 in __post_init__

    def __post_init__(self) -> None:
        if self.slots <= 0 or self.max_batch <= 0:
            raise ValueError("slots and max_batch must be positive")
        if self.input_bytes_per_image == 0:
            per_image = int(np.prod(self.input_shape, dtype=np.int64)) * 8
            object.__setattr__(self, "input_bytes_per_image", per_image)

    @property
    def input_region(self) -> int:
        region = self.max_batch * self.input_bytes_per_image
        return -(-region // _ALIGN) * _ALIGN

    @property
    def output_region(self) -> int:
        region = self.max_batch * self.num_classes * 8
        return -(-region // _ALIGN) * _ALIGN

    @property
    def stride(self) -> int:
        return self.input_region + self.output_region

    @property
    def total_bytes(self) -> int:
        return self.slots * self.stride


class ShmRing:
    """Fixed-stride input/output slots in one shared segment.

    Both sides construct views on demand and cache them per
    ``(slot, batch, dtype)`` — view construction is cheap but not free,
    and the steady state should touch no allocator at all. Cached views
    are dropped by :meth:`close` (they pin the mapping otherwise).
    """

    def __init__(
        self, spec: RingSpec, name: Optional[str] = None, create: bool = True
    ) -> None:
        self.spec = spec
        if create:
            self._shm = shared_memory.SharedMemory(
                create=True, size=spec.total_bytes
            )
        else:
            if name is None:
                raise ValueError("attaching requires the segment name")
            self._shm = shared_memory.SharedMemory(name=name)
            if self._shm.size < spec.total_bytes:
                raise ValueError(
                    f"segment {self._shm.name} holds {self._shm.size} bytes, "
                    f"ring spec needs {spec.total_bytes}"
                )
        self._views: Dict[Tuple, np.ndarray] = {}
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    def _check_slot(self, slot: int, batch: int) -> None:
        if not 0 <= slot < self.spec.slots:
            raise IndexError(f"slot {slot} out of range 0..{self.spec.slots - 1}")
        if not 0 < batch <= self.spec.max_batch:
            raise ValueError(
                f"batch {batch} exceeds ring max_batch {self.spec.max_batch}"
            )

    def input_view(self, slot: int, batch: int, dtype) -> np.ndarray:
        """``(batch,) + input_shape`` view over the slot's input region."""
        dtype = np.dtype(dtype)
        self._check_slot(slot, batch)
        key = ("in", slot, batch, dtype)
        view = self._views.get(key)
        if view is None:
            shape = (batch,) + tuple(self.spec.input_shape)
            count = int(np.prod(shape, dtype=np.int64))
            if count * dtype.itemsize > self.spec.input_region:
                raise ValueError(
                    f"batch {batch} of {dtype} does not fit the input region"
                )
            view = np.frombuffer(
                self._shm.buf,
                dtype=dtype,
                count=count,
                offset=slot * self.spec.stride,
            ).reshape(shape)
            self._views[key] = view
        return view

    def output_view(self, slot: int, batch: int) -> np.ndarray:
        """``(batch, num_classes)`` int64 view over the slot's output region."""
        self._check_slot(slot, batch)
        key = ("out", slot, batch)
        view = self._views.get(key)
        if view is None:
            shape = (batch, self.spec.num_classes)
            view = np.frombuffer(
                self._shm.buf,
                dtype=np.int64,
                count=batch * self.spec.num_classes,
                offset=slot * self.spec.stride + self.spec.input_region,
            ).reshape(shape)
            self._views[key] = view
        return view

    def close(self, unlink: bool = False) -> None:
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a caller kept a view
            pass
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
