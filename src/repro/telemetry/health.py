"""Health and readiness probes for the inference server.

Three probes cover the three ways a serving process degrades in
practice:

* **queue saturation** — a queue holding near its capacity means
  admission control is about to reject (DEGRADED at
  :data:`QUEUE_DEGRADED_FRACTION`, FAILING when full);
* **worker liveness** — dead worker threads silently halve throughput
  long before anything errors (DEGRADED when some died, FAILING when
  none survive);
* **backend smoke-predict** — a one-image inference through each
  backend proves the whole compute path still answers (readiness, in
  orchestration terms).

Everything is duck-typed against the server/backends (no
``repro.serving`` import) so the telemetry layer sits *below* serving
in the dependency order.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "ProbeStatus",
    "ProbeResult",
    "HealthReport",
    "QUEUE_DEGRADED_FRACTION",
    "probe_queue",
    "probe_workers",
    "probe_backend_smoke",
]

#: Queue fill fraction at which saturation is reported as DEGRADED.
QUEUE_DEGRADED_FRACTION = 0.8


class ProbeStatus(enum.Enum):
    """Outcome of one probe, ordered by severity."""

    OK = "ok"
    DEGRADED = "degraded"
    FAILING = "failing"

    @property
    def severity(self) -> int:
        return ("ok", "degraded", "failing").index(self.value)


@dataclass(frozen=True)
class ProbeResult:
    """One probe's verdict with a human-readable detail line."""

    name: str
    status: ProbeStatus
    detail: str = ""

    def to_dict(self) -> Dict[str, str]:
        return {"name": self.name, "status": self.status.value, "detail": self.detail}


@dataclass(frozen=True)
class HealthReport:
    """Aggregated probe results; overall status is the worst probe."""

    probes: Tuple[ProbeResult, ...]

    @property
    def status(self) -> ProbeStatus:
        if not self.probes:
            return ProbeStatus.OK
        return max((p.status for p in self.probes), key=lambda s: s.severity)

    @property
    def ok(self) -> bool:
        return self.status is not ProbeStatus.FAILING

    def to_dict(self) -> Dict:
        return {
            "status": self.status.value,
            "probes": [p.to_dict() for p in self.probes],
        }

    def render(self) -> str:
        lines = [f"health: {self.status.value.upper()}"]
        for probe in self.probes:
            lines.append(
                f"  [{probe.status.value:>8s}] {probe.name}: {probe.detail}"
            )
        return "\n".join(lines)


def probe_queue(depth: int, capacity: int, closed: bool = False) -> ProbeResult:
    """Admission-queue saturation probe."""
    if closed:
        return ProbeResult(
            "queue", ProbeStatus.FAILING, "admission queue is closed"
        )
    fraction = depth / capacity if capacity > 0 else 1.0
    detail = f"{depth}/{capacity} slots used ({fraction:.0%})"
    if depth >= capacity:
        return ProbeResult("queue", ProbeStatus.FAILING, "queue full: " + detail)
    if fraction >= QUEUE_DEGRADED_FRACTION:
        return ProbeResult(
            "queue", ProbeStatus.DEGRADED, "nearing capacity: " + detail
        )
    return ProbeResult("queue", ProbeStatus.OK, detail)


def probe_workers(alive: int, expected: int, running: bool) -> ProbeResult:
    """Worker-pool liveness probe."""
    detail = f"{alive}/{expected} worker threads alive"
    if not running:
        return ProbeResult(
            "workers", ProbeStatus.FAILING, "worker pool is not running"
        )
    if alive == 0:
        return ProbeResult("workers", ProbeStatus.FAILING, detail)
    if alive < expected:
        return ProbeResult("workers", ProbeStatus.DEGRADED, detail)
    return ProbeResult("workers", ProbeStatus.OK, detail)


def _smoke_image_shape(backend) -> Tuple[int, int, int]:
    """Best-effort input shape for a backend's smoke image.

    Accelerator backends expose the compiled input shape; classifier
    backends fall back to the paper's 32x32x3 input domain.
    """
    accelerator = getattr(backend, "accelerator", None)
    shape = getattr(accelerator, "input_shape", None)
    if shape is not None and len(shape) == 3:
        return tuple(int(d) for d in shape)
    return (32, 32, 3)


def probe_backend_smoke(
    backend, image: Optional[np.ndarray] = None
) -> ProbeResult:
    """Readiness probe: one-image inference straight through ``backend``.

    Bypasses the queue/batcher deliberately — it answers "can this
    backend still compute", not "is the queue healthy".
    """
    name = f"backend:{getattr(backend, 'name', backend.__class__.__name__)}"
    if image is None:
        image = np.zeros(_smoke_image_shape(backend), dtype=np.float32)
    batch = np.asarray(image)
    if batch.ndim == 3:
        batch = batch[None]
    start = time.perf_counter()
    try:
        labels = np.asarray(backend.infer(batch))
    except Exception as exc:  # noqa: BLE001 — a probe reports, never raises
        return ProbeResult(
            name, ProbeStatus.FAILING, f"smoke inference raised: {exc!r}"
        )
    elapsed_ms = (time.perf_counter() - start) * 1e3
    if labels.shape[0] != batch.shape[0]:
        return ProbeResult(
            name,
            ProbeStatus.FAILING,
            f"smoke inference returned {labels.shape[0]} labels for "
            f"{batch.shape[0]} images",
        )
    return ProbeResult(
        name,
        ProbeStatus.OK,
        f"smoke predict -> label {int(labels[0])} in {elapsed_ms:.1f} ms",
    )


def collect_probes(results: List[ProbeResult]) -> HealthReport:
    """Bundle probe results into a report (helper for server.health)."""
    return HealthReport(probes=tuple(results))
