"""Trace-journal analysis: per-kind percentiles, critical path, bottleneck.

This is the read side of the tracing tentpole — ``repro trace`` renders
one :class:`TraceSummary` over a saved journal. The hardware-stage table
carries *two* rankings on purpose:

* ``bottleneck_modelled`` — the stage with the largest initiation
  interval in **cycles** (each ``hw_stage`` span records its stage's II
  as the ``cycles`` attribute). This is the board-relevant bottleneck
  and matches :func:`repro.hw.pipeline.analyze_pipeline`'s analytic
  argmax exactly, including its first-wins tie-break in pipeline order.
* ``bottleneck_measured`` — the stage with the largest measured
  simulator wall time. The two can disagree (the numpy SWU makes early
  conv stages wall-time heavy while the board's II argmax sits in the
  FC layers); showing both side by side is the point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.utils.tables import render_table

__all__ = [
    "KindStats",
    "PlanStats",
    "StageRow",
    "TraceSummary",
    "summarize_spans",
]


@dataclass(frozen=True)
class KindStats:
    """Duration statistics for one span kind."""

    kind: str
    count: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float


@dataclass(frozen=True)
class PlanStats:
    """Execution-plan usage aggregated over all ``hw_plan`` spans.

    ``cache_hits`` / ``cache_misses`` count the *spans in this journal*
    by their ``cache_hit`` attribute (a miss span compiled its plan
    inline); ``arena_kib`` and ``fused_stages`` describe the last plan
    observed — both are per-plan constants for a given geometry.
    """

    spans: int
    cache_hits: int
    cache_misses: int
    arena_kib: float
    fused_stages: int


@dataclass(frozen=True)
class StageRow:
    """Aggregated view of one hardware stage across all its spans."""

    name: str
    count: int
    total_s: float
    mean_ms: float
    cycles: Optional[int]  # modelled initiation interval (II)


@dataclass(frozen=True)
class TraceSummary:
    """Everything ``repro trace`` prints about one journal."""

    span_count: int
    trace_count: int
    kinds: Tuple[KindStats, ...]
    hw_stages: Tuple[StageRow, ...]  # pipeline (first-seen) order
    bottleneck_modelled: Optional[str]  # argmax II cycles
    bottleneck_measured: Optional[str]  # argmax wall seconds
    critical_path: Tuple[Dict, ...] = field(default=())
    plan: Optional[PlanStats] = field(default=None)

    def render(self, top: int = 10) -> str:
        lines = [
            f"trace journal: {self.span_count} spans across "
            f"{self.trace_count} traces"
        ]
        if self.kinds:
            rows = [
                [
                    k.kind,
                    str(k.count),
                    f"{k.p50_ms:.3f}",
                    f"{k.p95_ms:.3f}",
                    f"{k.p99_ms:.3f}",
                    f"{k.mean_ms:.3f}",
                ]
                for k in self.kinds
            ]
            lines.append(
                render_table(
                    ["kind", "count", "p50 ms", "p95 ms", "p99 ms", "mean ms"],
                    rows,
                    title="per-span-kind latency",
                )
            )
        if self.hw_stages:
            ranked = sorted(
                self.hw_stages, key=lambda s: s.total_s, reverse=True
            )[:top]
            rows = [
                [
                    s.name,
                    str(s.count),
                    f"{s.total_s * 1e3:.2f}",
                    f"{s.mean_ms:.3f}",
                    str(s.cycles) if s.cycles is not None else "-",
                ]
                for s in ranked
            ]
            lines.append(
                render_table(
                    ["stage", "spans", "total ms", "mean ms", "II cycles"],
                    rows,
                    title="slowest hardware stages (by measured wall time)",
                )
            )
            lines.append(
                f"bottleneck (modelled, II argmax): {self.bottleneck_modelled}"
            )
            lines.append(
                f"bottleneck (measured wall time):  {self.bottleneck_measured}"
            )
        if self.plan is not None:
            total = self.plan.cache_hits + self.plan.cache_misses
            rate = self.plan.cache_hits / total if total else 0.0
            lines.append(
                f"execution plans: {self.plan.spans} planned batches, "
                f"cache {self.plan.cache_hits} hit / "
                f"{self.plan.cache_misses} miss ({rate:.0%}), "
                f"arena {self.plan.arena_kib:.1f} KiB, "
                f"{self.plan.fused_stages} fused stages"
            )
        if self.critical_path:
            lines.append("critical path of the slowest trace:")
            for depth, span in enumerate(self.critical_path):
                duration = (span.get("end_s") or 0.0) - span.get("start_s", 0.0)
                indent = "  " * depth
                lines.append(
                    f"  {indent}{span.get('name')} [{span.get('kind')}] "
                    f"{duration * 1e3:.3f} ms"
                )
        return "\n".join(lines)


def _duration(span: Dict) -> float:
    end = span.get("end_s")
    if end is None:
        return 0.0
    return float(end) - float(span.get("start_s", 0.0))


def _kind_stats(spans: List[Dict]) -> Tuple[KindStats, ...]:
    groups: Dict[str, List[float]] = {}
    for span in spans:
        groups.setdefault(span.get("kind", ""), []).append(_duration(span))
    out = []
    for kind in sorted(groups):
        arr = np.asarray(groups[kind], dtype=np.float64) * 1e3
        out.append(
            KindStats(
                kind=kind,
                count=len(arr),
                p50_ms=float(np.percentile(arr, 50)),
                p95_ms=float(np.percentile(arr, 95)),
                p99_ms=float(np.percentile(arr, 99)),
                mean_ms=float(arr.mean()),
            )
        )
    return tuple(out)


def _stage_table(spans: List[Dict]) -> Tuple[StageRow, ...]:
    """hw_stage spans aggregated by stage, in first-seen (pipeline) order."""
    order: List[str] = []
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    cycles: Dict[str, Optional[int]] = {}
    for span in spans:
        if span.get("kind") != "hw_stage":
            continue
        name = span.get("name", "")
        if name.startswith("hw."):
            name = name[3:]
        if name not in totals:
            order.append(name)
            totals[name] = 0.0
            counts[name] = 0
            cycles[name] = None
        totals[name] += _duration(span)
        counts[name] += 1
        ii = span.get("attributes", {}).get("cycles")
        if ii is not None:
            cycles[name] = int(ii)
    return tuple(
        StageRow(
            name=name,
            count=counts[name],
            total_s=totals[name],
            mean_ms=totals[name] / counts[name] * 1e3,
            cycles=cycles[name],
        )
        for name in order
    )


def _plan_stats(spans: List[Dict]) -> Optional[PlanStats]:
    """Aggregate ``hw_plan`` spans; ``None`` when the journal has none."""
    hits = misses = count = 0
    arena_kib = 0.0
    fused = 0
    for span in spans:
        if span.get("kind") != "hw_plan":
            continue
        count += 1
        attrs = span.get("attributes", {})
        if attrs.get("cache_hit"):
            hits += 1
        else:
            misses += 1
        arena_kib = float(attrs.get("arena_kib", arena_kib))
        fused = int(attrs.get("fused_stages", fused))
    if count == 0:
        return None
    return PlanStats(
        spans=count,
        cache_hits=hits,
        cache_misses=misses,
        arena_kib=arena_kib,
        fused_stages=fused,
    )


def _critical_path(spans: List[Dict]) -> Tuple[Dict, ...]:
    """Longest-child chain of the slowest root span.

    Prefers ``request`` roots (a served request's full story) over other
    root kinds when both are present.
    """
    children: Dict[int, List[Dict]] = {}
    roots: List[Dict] = []
    for span in spans:
        parent = span.get("parent_id")
        if parent is None:
            roots.append(span)
        else:
            children.setdefault(parent, []).append(span)
    if not roots:
        return ()
    request_roots = [r for r in roots if r.get("kind") == "request"]
    pool = request_roots or roots
    root = max(pool, key=_duration)
    path = [root]
    current = root
    while True:
        kids = children.get(current.get("span_id"), [])
        if not kids:
            break
        current = max(kids, key=_duration)
        path.append(current)
    return tuple(path)


def summarize_spans(spans: List[Dict]) -> TraceSummary:
    """Aggregate a journal snapshot (or loaded journal file) for display."""
    finished = [s for s in spans if s.get("end_s") is not None]
    stage_rows = _stage_table(finished)
    bottleneck_modelled = None
    bottleneck_measured = None
    with_cycles = [s for s in stage_rows if s.cycles is not None]
    if with_cycles:
        # max() keeps the first maximum — the same first-wins tie-break
        # as analyze_pipeline's argmax over pipeline-ordered stages.
        bottleneck_modelled = max(with_cycles, key=lambda s: s.cycles).name
    if stage_rows:
        bottleneck_measured = max(stage_rows, key=lambda s: s.total_s).name
    return TraceSummary(
        span_count=len(finished),
        trace_count=len({s.get("trace_id") for s in finished}),
        kinds=_kind_stats(finished),
        hw_stages=stage_rows,
        bottleneck_modelled=bottleneck_modelled,
        bottleneck_measured=bottleneck_measured,
        critical_path=_critical_path(finished),
        plan=_plan_stats(finished),
    )
