"""Hierarchical trace spans with ``contextvars`` propagation and sampling.

A :class:`Span` is one timed operation; spans form trees via
``parent_id`` (one request → its micro-batch → the backend call → each
hardware stage). The *current* span is carried in a ``contextvars``
context variable, so nested instrumentation picks up its parent
automatically within a thread; crossing threads (submit thread → worker
thread) is explicit — the serving layer hands the request span over on
the request object, and the datapath copies the context into its chunk
workers.

Design constraints, in order:

1. **Disabled must be free.** Every instrumentation site goes through
   :func:`get_tracer`; with no tracer activated that returns
   :data:`NULL_TRACER`, whose ``span()`` hands back one shared no-op
   context manager — no allocation, no clock read, no journal touch.
2. **Sampling bounds enabled overhead.** A tracer with
   ``sample_every=N`` records every Nth trace *root*; descendants follow
   their root's fate (a sampled-out request records nothing anywhere
   down its tree), so the journal holds complete trees, never fragments.
3. **Recording is lock-free.** Finished spans go to a
   :class:`~repro.telemetry.journal.SpanJournal` per-thread ring buffer.
"""

from __future__ import annotations

import contextvars
import itertools
from typing import Any, Dict, List, Optional, Sequence

from repro.telemetry.journal import SpanJournal
from repro.utils.clock import MONOTONIC, Clock

__all__ = [
    "Span",
    "Tracer",
    "NOOP_SPAN",
    "NULL_TRACER",
    "activate",
    "deactivate",
    "get_tracer",
]

_SPAN_IDS = itertools.count(1)  # next() is atomic under the GIL

_current_span: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_current_span", default=None
)

#: Sentinel distinguishing "no parent given" from "explicitly a root".
_FROM_CONTEXT = object()


class Span:
    """One timed operation in a trace tree.

    ``finish()`` stamps the end time and journals the span; it is
    write-once — later calls are no-ops, so a span resolved from two
    racing paths is recorded exactly once with the first end time.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "kind",
        "start_s",
        "end_s",
        "attributes",
        "links",
        "_tracer",
    )

    #: Real spans record; the no-op span overrides this with ``False``.
    recording = True

    def __init__(
        self,
        name: str,
        kind: str,
        tracer: "Tracer",
        parent: Optional["Span"] = None,
        attributes: Optional[Dict[str, Any]] = None,
        links: Sequence[int] = (),
    ) -> None:
        self.span_id = next(_SPAN_IDS)
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        else:
            self.trace_id = self.span_id
            self.parent_id = None
        self.name = name
        self.kind = kind
        self.start_s = tracer.clock.monotonic()
        self.end_s: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.links: List[int] = list(links)
        self._tracer = tracer

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def finish(self, end_s: Optional[float] = None) -> None:
        """Stamp the end time and journal the span (write-once)."""
        if self.end_s is not None:
            return
        self.end_s = (
            self._tracer.clock.monotonic() if end_s is None else float(end_s)
        )
        self._tracer.journal.record(self.to_dict())

    @property
    def duration_s(self) -> Optional[float]:
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attributes": self.attributes,
            "links": self.links,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, kind={self.kind!r}, id={self.span_id}, "
            f"trace={self.trace_id}, parent={self.parent_id})"
        )


class _NoOpSpan:
    """Shared inert span: sampled-out or disabled instrumentation sites
    hold this instead of ``None`` so call sites never branch."""

    __slots__ = ()
    recording = False
    trace_id = 0
    span_id = 0
    parent_id = None
    name = ""
    kind = ""
    start_s = 0.0
    end_s = 0.0
    links: List[int] = []

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def finish(self, end_s: Optional[float] = None) -> None:
        pass

    @property
    def duration_s(self) -> float:
        return 0.0


NOOP_SPAN = _NoOpSpan()


class _DisabledContext:
    """The context manager a disabled tracer returns: does nothing at
    all — it does not even touch the context variable."""

    __slots__ = ()

    def __enter__(self) -> _NoOpSpan:
        return NOOP_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_DISABLED_CONTEXT = _DisabledContext()


class _ActiveContext:
    """Context manager for one span (real or sampled-out no-op): sets it
    as the current span on entry, finishes and restores on exit."""

    __slots__ = ("_span", "_token")

    def __init__(self, span) -> None:
        self._span = span
        self._token = None

    def __enter__(self):
        self._token = _current_span.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        _current_span.reset(self._token)
        if exc_type is not None:
            self._span.set_attribute("error", exc_type.__name__)
        self._span.finish()
        return False


class Tracer:
    """Creates, samples and journals spans.

    ``sample_every=N`` keeps every Nth *root* span (and, always, the
    full subtree of every kept root); ``1`` keeps everything. A
    disabled tracer (``enabled=False``) records nothing and costs one
    attribute check per instrumentation site.
    """

    def __init__(
        self,
        enabled: bool = True,
        sample_every: int = 1,
        journal: Optional[SpanJournal] = None,
        clock: Clock = MONOTONIC,
    ) -> None:
        if sample_every <= 0:
            raise ValueError(f"sample_every must be positive, got {sample_every}")
        self.enabled = bool(enabled)
        self.sample_every = int(sample_every)
        # Explicit None check: an *empty* journal is falsy (len 0) but
        # still the caller's journal.
        self.journal = SpanJournal() if journal is None else journal
        self.clock = clock
        self._roots_seen = itertools.count()

    # -- sampling ------------------------------------------------------------
    def _sample_root(self) -> bool:
        if self.sample_every == 1:
            return True
        return next(self._roots_seen) % self.sample_every == 0

    # -- span creation -------------------------------------------------------
    def current_span(self) -> Optional[Span]:
        """The context's current span (None outside any traced scope)."""
        return _current_span.get()

    def start_span(
        self,
        name: str,
        kind: str = "span",
        parent=_FROM_CONTEXT,
        attributes: Optional[Dict[str, Any]] = None,
        links: Sequence[int] = (),
    ):
        """A span the caller finishes manually (``span.finish()``).

        Used where a span's lifetime crosses threads (the request span
        starts on the submit thread and finishes on a worker). The span
        is *not* made current. Returns :data:`NOOP_SPAN` when disabled,
        when the parent is sampled out, or when this would start a
        sampled-out root.
        """
        if not self.enabled:
            return NOOP_SPAN
        if parent is _FROM_CONTEXT:
            parent = _current_span.get()
        if parent is not None:
            if not parent.recording:
                return NOOP_SPAN
        elif not self._sample_root():
            return NOOP_SPAN
        return Span(name, kind, self, parent=parent, attributes=attributes, links=links)

    def span(
        self,
        name: str,
        kind: str = "span",
        parent=_FROM_CONTEXT,
        attributes: Optional[Dict[str, Any]] = None,
        links: Sequence[int] = (),
    ):
        """Context manager: the span is current inside the ``with`` body.

        A sampled-out root still installs the no-op span as current, so
        the whole subtree is consistently dropped rather than its
        descendants re-rooting themselves.
        """
        if not self.enabled:
            return _DISABLED_CONTEXT
        span = self.start_span(
            name, kind, parent=parent, attributes=attributes, links=links
        )
        return _ActiveContext(span)

    def record(
        self,
        name: str,
        kind: str,
        start_s: float,
        end_s: float,
        parent=_FROM_CONTEXT,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Journal an externally-timed, already-finished span.

        Lets hot loops that measure their own start/end stamps (the
        datapath's stage loop) emit spans without a ``with`` block.
        """
        if not self.enabled:
            return
        if parent is _FROM_CONTEXT:
            parent = _current_span.get()
        if parent is not None and not parent.recording:
            return
        if parent is None and not self._sample_root():
            return
        span = Span(name, kind, self, parent=parent, attributes=attributes)
        span.start_s = float(start_s)
        span.end_s = float(end_s)
        self.journal.record(span.to_dict())


#: The inert tracer: what :func:`get_tracer` yields when none is active.
NULL_TRACER = Tracer(enabled=False)

_active_tracer: Tracer = NULL_TRACER


def activate(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide ambient tracer.

    The ambient tracer is a module global rather than a context
    variable on purpose: worker threads are created before tracing is
    configured and do not inherit the creating context, but they must
    still see the active tracer.
    """
    global _active_tracer
    _active_tracer = tracer
    return tracer


def deactivate() -> None:
    """Restore the inert :data:`NULL_TRACER`."""
    global _active_tracer
    _active_tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The ambient tracer (never None; disabled by default)."""
    return _active_tracer
