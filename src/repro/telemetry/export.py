"""Metric exporters: one registry, two formats (Prometheus text / JSON).

The exporter renders *both* sources of observability through a single
collected document:

* the serving layer's :class:`~repro.serving.metrics.ServerStats`
  snapshot (counters, queue depth, QPS, latency percentiles, batch
  histogram, stopwatch sections), and
* trace-derived duration statistics aggregated from a
  :class:`~repro.telemetry.journal.SpanJournal` (per span name/kind).

``collect()`` produces a JSON-ready document with schema
:data:`TELEMETRY_SCHEMA`; ``to_prometheus()`` renders the same document
in the Prometheus text exposition format (``# HELP`` / ``# TYPE`` lines,
escaped label values). Neither import anything from ``repro.serving`` —
the stats object is duck-typed — so the telemetry layer stays
dependency-free below the serving layer.
"""

from __future__ import annotations

import json
import re
from typing import Any, Callable, Dict, List, Optional

import numpy as np

__all__ = [
    "TELEMETRY_SCHEMA",
    "TelemetryExporter",
    "escape_label_value",
    "validate_telemetry_doc",
]

#: Version tag of the JSON metrics document.
TELEMETRY_SCHEMA = "repro-telemetry/v1"

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_SPAN_STATS = ("p50", "p95", "p99", "mean")


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


class TelemetryExporter:
    """Collects metric families from server stats and/or a span journal.

    ``stats_source`` is any zero-arg callable returning a ServerStats-like
    object (typically ``server.stats``); ``journal`` is a
    :class:`~repro.telemetry.journal.SpanJournal`. Either may be omitted.
    """

    def __init__(
        self,
        stats_source: Optional[Callable[[], Any]] = None,
        journal=None,
    ) -> None:
        self._stats_source = stats_source
        self._journal = journal

    # -- collection ----------------------------------------------------------
    def collect(self) -> Dict[str, Any]:
        """One JSON-ready document of every known metric family."""
        families: List[Dict[str, Any]] = []
        if self._stats_source is not None:
            families.extend(_stats_families(self._stats_source()))
        if self._journal is not None:
            families.extend(span_families(self._journal.snapshot()))
        doc = {"schema": TELEMETRY_SCHEMA, "metrics": families}
        validate_telemetry_doc(doc)
        return doc

    # -- rendering -----------------------------------------------------------
    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.collect(), indent=indent) + "\n"

    def to_prometheus(self) -> str:
        return render_prometheus(self.collect())


def _family(
    name: str, type_: str, help_: str, samples: List[Dict[str, Any]]
) -> Dict[str, Any]:
    return {"name": name, "type": type_, "help": help_, "samples": samples}


def _sample(value: float, **labels: str) -> Dict[str, Any]:
    return {"labels": {k: str(v) for k, v in labels.items()}, "value": float(value)}


def _stats_families(stats) -> List[Dict[str, Any]]:
    """Metric families from one ServerStats-like snapshot."""
    families = [
        _family(
            "repro_serving_requests_total",
            "counter",
            "Requests by outcome counter.",
            [
                _sample(count, outcome=outcome)
                for outcome, count in sorted(stats.counters.items())
            ],
        ),
        _family(
            "repro_serving_queue_depth",
            "gauge",
            "Requests currently waiting in the admission queue.",
            [_sample(stats.queue_depth)],
        ),
        _family(
            "repro_serving_uptime_seconds",
            "gauge",
            "Seconds since the metrics registry was created.",
            [_sample(stats.uptime_s)],
        ),
        _family(
            "repro_serving_qps",
            "gauge",
            "Completions per second over the sliding window.",
            [_sample(stats.qps)],
        ),
    ]
    for name, values, help_ in (
        ("repro_serving_latency_ms", stats.latency_ms,
         "End-to-end request latency over the sliding window."),
        ("repro_serving_queue_wait_ms", stats.queue_wait_ms,
         "Queue wait before a worker picked the request up."),
    ):
        if values:
            families.append(
                _family(
                    name, "gauge", help_,
                    [_sample(v, stat=k) for k, v in sorted(values.items())],
                )
            )
    if stats.batch_histogram:
        families.append(
            _family(
                "repro_serving_batches_total",
                "counter",
                "Executed micro-batches by batch size.",
                [
                    _sample(count, size=size)
                    for size, count in sorted(stats.batch_histogram.items())
                ],
            )
        )
    if stats.section_totals_s:
        families.append(
            _family(
                "repro_section_seconds_total",
                "counter",
                "Accumulated stopwatch seconds by code section.",
                [
                    _sample(total, section=section)
                    for section, total in sorted(stats.section_totals_s.items())
                ],
            )
        )
    return families


def span_families(spans: List[Dict]) -> List[Dict[str, Any]]:
    """Trace-derived metric families: duration stats per span name/kind."""
    groups: Dict[tuple, List[float]] = {}
    for span in spans:
        end = span.get("end_s")
        if end is None:
            continue
        key = (span.get("name", ""), span.get("kind", ""))
        groups.setdefault(key, []).append(end - span.get("start_s", 0.0))
    if not groups:
        return []
    count_samples, stat_samples = [], []
    for (name, kind), durations in sorted(groups.items()):
        arr = np.asarray(durations, dtype=np.float64)
        count_samples.append(_sample(len(arr), span=name, kind=kind))
        stats = {
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99)),
            "mean": float(arr.mean()),
        }
        stat_samples.extend(
            _sample(stats[stat], span=name, kind=kind, stat=stat)
            for stat in _SPAN_STATS
        )
    return [
        _family(
            "repro_span_total",
            "counter",
            "Finished trace spans by span name and kind.",
            count_samples,
        ),
        _family(
            "repro_span_seconds",
            "gauge",
            "Span duration statistics by span name and kind.",
            stat_samples,
        ),
    ]


# -- validation ---------------------------------------------------------------
def validate_telemetry_doc(doc: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``doc`` is a valid metrics document."""
    if not isinstance(doc, dict):
        raise ValueError("telemetry document must be a mapping")
    if doc.get("schema") != TELEMETRY_SCHEMA:
        raise ValueError(
            f"schema mismatch: expected {TELEMETRY_SCHEMA!r}, "
            f"got {doc.get('schema')!r}"
        )
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        raise ValueError("telemetry document has no metric list")
    for family in metrics:
        name = family.get("name", "")
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if family.get("type") not in ("counter", "gauge"):
            raise ValueError(f"{name}: invalid metric type {family.get('type')!r}")
        if not isinstance(family.get("help"), str):
            raise ValueError(f"{name}: missing help text")
        samples = family.get("samples")
        if not isinstance(samples, list):
            raise ValueError(f"{name}: missing sample list")
        for sample in samples:
            labels = sample.get("labels", {})
            if not isinstance(labels, dict):
                raise ValueError(f"{name}: sample labels must be a mapping")
            for key in labels:
                if not _LABEL_NAME.match(key):
                    raise ValueError(f"{name}: invalid label name {key!r}")
            value = sample.get("value")
            if not isinstance(value, (int, float)) or not np.isfinite(value):
                raise ValueError(f"{name}: sample value {value!r} is not finite")


# -- Prometheus rendering ------------------------------------------------------
def render_prometheus(doc: Dict[str, Any]) -> str:
    """The document in Prometheus text exposition format."""
    validate_telemetry_doc(doc)
    lines: List[str] = []
    for family in doc["metrics"]:
        name = family["name"]
        lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {family['type']}")
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            if labels:
                rendered = ",".join(
                    f'{k}="{escape_label_value(v)}"'
                    for k, v in sorted(labels.items())
                )
                lines.append(f"{name}{{{rendered}}} {sample['value']:g}")
            else:
                lines.append(f"{name} {sample['value']:g}")
    return "\n".join(lines) + "\n"
