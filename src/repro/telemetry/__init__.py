"""Telemetry: trace spans, metric exporters, health probes.

The observability layer the serving/compile/train stack reports
through. Four pieces:

* :mod:`repro.telemetry.tracing` — hierarchical :class:`Span` trees
  with ``contextvars`` propagation, sampling, and an ambient
  process-wide tracer (:func:`activate` / :func:`get_tracer`);
* :mod:`repro.telemetry.journal` — per-thread ring buffers holding the
  most recent finished spans (:class:`SpanJournal`);
* :mod:`repro.telemetry.export` — one collected metrics document
  rendered as Prometheus text exposition or JSON
  (:class:`TelemetryExporter`);
* :mod:`repro.telemetry.health` — queue/worker/backend probes behind
  :class:`HealthReport` (surfaced as ``InferenceServer.health()``).

Instrumented call sites all follow the same pattern::

    tracer = get_tracer()          # NULL_TRACER when nothing is active
    with tracer.span("thing", kind="work"):
        ...

which costs one global read and one attribute check when telemetry is
off — the layer is free unless someone turns it on.
"""

from repro.telemetry.journal import SpanJournal, TRACE_SCHEMA
from repro.telemetry.tracing import (
    NOOP_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    activate,
    deactivate,
    get_tracer,
)
from repro.telemetry.export import (
    TELEMETRY_SCHEMA,
    TelemetryExporter,
    escape_label_value,
    validate_telemetry_doc,
)
from repro.telemetry.health import (
    HealthReport,
    ProbeResult,
    ProbeStatus,
    probe_backend_smoke,
    probe_queue,
    probe_workers,
)
from repro.telemetry.summary import TraceSummary, summarize_spans

__all__ = [
    "SpanJournal",
    "TRACE_SCHEMA",
    "Span",
    "Tracer",
    "NOOP_SPAN",
    "NULL_TRACER",
    "activate",
    "deactivate",
    "get_tracer",
    "TELEMETRY_SCHEMA",
    "TelemetryExporter",
    "escape_label_value",
    "validate_telemetry_doc",
    "HealthReport",
    "ProbeResult",
    "ProbeStatus",
    "probe_queue",
    "probe_workers",
    "probe_backend_smoke",
    "TraceSummary",
    "summarize_spans",
]
