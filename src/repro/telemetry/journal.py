"""The span journal: bounded, per-thread ring buffers of finished spans.

Hot paths (a worker finishing a span per micro-batch, the datapath
finishing one per hardware stage) append to a ``collections.deque`` that
belongs to the *recording thread alone*, so the steady-state cost of an
append is one thread-local lookup plus one deque append — no lock is
taken. The journal's only lock guards the buffer registry, touched once
per thread lifetime (registration) and on snapshot.

``maxlen`` on each deque makes the journal a ring buffer: a long-running
server keeps the most recent ``capacity_per_thread`` spans per thread
and silently drops the oldest, bounding memory forever.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Dict, List

__all__ = ["SpanJournal", "TRACE_SCHEMA"]

#: Version tag written into (and required from) saved journal files.
TRACE_SCHEMA = "repro-trace/v1"


class SpanJournal:
    """Collects finished spans from any number of threads.

    Spans are stored as plain dicts (the :meth:`Span.to_dict
    <repro.telemetry.tracing.Span.to_dict>` form) so a snapshot is
    directly JSON-serialisable.
    """

    def __init__(self, capacity_per_thread: int = 4096) -> None:
        if capacity_per_thread <= 0:
            raise ValueError(
                f"capacity_per_thread must be positive, got {capacity_per_thread}"
            )
        self.capacity_per_thread = int(capacity_per_thread)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._buffers: List[deque] = []

    # -- recording (lock-free steady state) ----------------------------------
    def _buffer(self) -> deque:
        buf = getattr(self._local, "buf", None)
        if buf is None:
            buf = deque(maxlen=self.capacity_per_thread)
            self._local.buf = buf
            with self._lock:
                self._buffers.append(buf)
        return buf

    def record(self, span_dict: Dict) -> None:
        """Append one finished span (called from the recording thread)."""
        self._buffer().append(span_dict)

    # -- reading -------------------------------------------------------------
    def snapshot(self) -> List[Dict]:
        """All retained spans, merged across threads, ordered by start time.

        Buffers that belonged to finished threads are still readable (the
        registry keeps them alive). A buffer being appended to while we
        copy it can raise ``RuntimeError`` (deque mutated during
        iteration); the copy is simply retried — appends are fast, so the
        retry converges immediately.
        """
        with self._lock:
            buffers = list(self._buffers)
        spans: List[Dict] = []
        for buf in buffers:
            while True:
                try:
                    spans.extend(buf)
                    break
                except RuntimeError:
                    continue
        spans.sort(key=lambda s: (s.get("start_s", 0.0), s.get("span_id", 0)))
        return spans

    def clear(self) -> None:
        """Drop all retained spans (buffers stay registered)."""
        with self._lock:
            buffers = list(self._buffers)
        for buf in buffers:
            buf.clear()

    def __len__(self) -> int:
        return len(self.snapshot())

    # -- persistence ---------------------------------------------------------
    def save(self, path) -> Path:
        """Write the current snapshot as a JSON journal file."""
        path = Path(path)
        doc = {"schema": TRACE_SCHEMA, "spans": self.snapshot()}
        path.write_text(json.dumps(doc, indent=2) + "\n")
        return path

    @staticmethod
    def load(path) -> List[Dict]:
        """Spans from a saved journal file (validated schema tag)."""
        doc = json.loads(Path(path).read_text())
        if not isinstance(doc, dict) or doc.get("schema") != TRACE_SCHEMA:
            raise ValueError(
                f"{path}: not a trace journal (expected schema {TRACE_SCHEMA!r})"
            )
        spans = doc.get("spans")
        if not isinstance(spans, list):
            raise ValueError(f"{path}: journal has no span list")
        return spans
