"""The built-in engines: five datapaths, one protocol.

Each engine wraps one of the repo's inference paths behind the
:class:`Engine` protocol — ``prepare`` binds (or compiles) the
accelerator, ``run`` executes a batch, ``capabilities`` declares the
guarantees, ``stats`` surfaces the engine's counters. Every ``run``
opens a ``runtime.<engine>`` telemetry span so traces name the engine
uniformly regardless of which path served the batch.

=================  =========================================================
engine             datapath
=================  =========================================================
``interpreted``    stage-by-stage reference loop (boolean or bit-packed)
``planned-blas``   precompiled plan, exact-float32 GEMM lowering
``planned-packed`` precompiled plan, packed XNOR/popcount lowering
``threaded``       interpreted chunks fanned over a thread pool
``process``        planned buckets over the shared-memory process pool
=================  =========================================================

All five are bit-exact against the interpreted reference — the
cross-engine contract test in ``tests/test_runtime_contract.py`` holds
every registered engine to that, ``return_bits`` traces included.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

import numpy as np

from repro.runtime.config import ExecutionConfig
from repro.runtime.registry import (
    EngineCapabilities,
    EngineSpec,
    register_engine,
)
from repro.telemetry import get_tracer

__all__ = [
    "Engine",
    "InterpretedEngine",
    "PlannedEngine",
    "ThreadedEngine",
    "ProcessEngine",
]


@runtime_checkable
class Engine(Protocol):
    """What the registry requires of an engine."""

    name: str

    def prepare(self, model=None, folding=None, geometry=None) -> "Engine":
        """Bind the engine: compile ``model`` under ``folding`` when no
        accelerator is bound yet, validate, and return self."""
        ...

    def run(self, batch, *, return_bits: bool = False,
            stage_seconds=None) -> np.ndarray:
        """Integer logits ``(N, classes)`` (plus per-stage bit traces
        with ``return_bits``) for a stacked image batch."""
        ...

    def capabilities(self) -> EngineCapabilities:
        ...

    def stats(self) -> dict:
        ...


def _normalize(batch) -> np.ndarray:
    batch = np.asarray(batch)
    if batch.ndim == 3:
        batch = batch[None]
    return batch


class _BaseEngine:
    """Shared prepare/telemetry plumbing for the built-in engines."""

    name = "base"

    def __init__(self, accelerator, config: ExecutionConfig) -> None:
        self.config = config
        self._accelerator = accelerator

    @property
    def accelerator(self):
        if self._accelerator is None:
            raise RuntimeError(
                f"engine {self.name!r} is unbound; call prepare(model, "
                "folding) or construct it with an accelerator"
            )
        return self._accelerator

    def prepare(self, model=None, folding=None, geometry=None):
        if model is not None:
            from repro.core.architectures import table1_folding
            from repro.hw.compiler import compile_model, mvtu_geometry

            if folding is None:
                arch = getattr(model, "architecture", None)
                if arch is None:
                    raise ValueError(
                        "prepare(model) needs a folding (or a model with "
                        "an .architecture for the Table I default)"
                    )
                folding = table1_folding(arch)
            if geometry is not None:
                want = mvtu_geometry(model)
                if list(geometry) != list(want):
                    raise ValueError(
                        "geometry does not match the model's MVTU "
                        f"geometry ({len(geometry)} vs {len(want)} units)"
                    )
            self._accelerator = compile_model(model, folding)
        self.accelerator  # raises when still unbound
        self._bind()
        return self

    def _bind(self) -> None:
        """Engine-specific validation/warm-up hook."""

    def capabilities(self) -> EngineCapabilities:
        from repro.runtime.registry import engine_spec

        return engine_spec(self.name).capabilities

    def stats(self) -> dict:
        return {"engine": self.name}

    def _span(self, tracer, n: int):
        """The uniform ``runtime.<engine>`` span around one run."""
        return tracer.span(
            f"runtime.{self.name}",
            kind="hw",
            attributes={
                "accelerator": self.accelerator.name,
                "images": n,
                "engine": self.name,
            },
        )


class InterpretedEngine(_BaseEngine):
    """The stage-by-stage reference datapath (optionally chunked)."""

    name = "interpreted"

    def run(self, batch, *, return_bits: bool = False, stage_seconds=None):
        batch = _normalize(batch)
        cfg = self.config
        use_packed = cfg.packed_datapath
        chunk = cfg.chunk_size
        if chunk is not None and return_bits:
            raise ValueError("chunk_size cannot be combined with return_bits")
        tracer = get_tracer()
        with self._span(tracer, batch.shape[0]):
            if chunk is not None and batch.shape[0] > chunk:
                parts = [
                    self.accelerator._run_interpreted(
                        batch[start : start + chunk],
                        use_packed=use_packed,
                        stage_seconds=stage_seconds,
                    )
                    for start in range(0, batch.shape[0], chunk)
                ]
                return np.concatenate(parts)
            return self.accelerator._run_interpreted(
                batch,
                return_bits=return_bits,
                use_packed=use_packed,
                stage_seconds=stage_seconds,
            )


class PlannedEngine(_BaseEngine):
    """Precompiled allocation-free plans from the accelerator's cache.

    ``lowering`` is fixed per engine (``blas``/``packed``); plans come
    from the accelerator's shared :class:`~repro.hw.plan.PlanCache`, so
    cache counters aggregate across engines and serving dashboards.
    """

    name = "planned"

    def __init__(self, accelerator, config: ExecutionConfig,
                 lowering: str) -> None:
        super().__init__(accelerator, config)
        self.lowering = lowering
        self.name = f"planned-{lowering}"

    def _bind(self) -> None:
        from repro.hw.plan import plan_unsupported_reason

        reason = plan_unsupported_reason(self.accelerator)
        if reason is not None:
            raise ValueError(
                f"engine {self.name!r} cannot plan this accelerator: "
                f"{reason}"
            )

    def stats(self) -> dict:
        return {
            "engine": self.name,
            "lowering": self.lowering,
            **self.accelerator.plans.stats(),
        }

    def run(self, batch, *, return_bits: bool = False, stage_seconds=None):
        batch = _normalize(batch)
        n = batch.shape[0]
        chunk = self.config.chunk_size
        if chunk is not None and return_bits:
            raise ValueError("chunk_size cannot be combined with return_bits")
        tracer = get_tracer()
        with self._span(tracer, n):
            if chunk is not None and n > chunk:
                parts = [
                    self._run_one(batch[start : start + chunk], False, None)
                    for start in range(0, n, chunk)
                ]
                return np.concatenate(parts)
            return self._run_one(batch, return_bits, stage_seconds)

    def _run_one(self, batch, return_bits, stage_seconds):
        acc = self.accelerator
        n = batch.shape[0]
        if batch.shape[1:] != acc.input_shape:
            raise ValueError(
                f"input {batch.shape[1:]} does not match accelerator "
                f"input {acc.input_shape}"
            )
        if n == 0:
            logits = np.zeros((0, acc.num_classes), dtype=np.int64)
            return (logits, []) if return_bits else logits
        plan, cache_hit = acc.plans.get(n, lowering=self.lowering)
        tracer = get_tracer()
        parent = tracer.current_span() if tracer.enabled else None
        recording = parent is not None and parent.recording
        plan_span = None
        if recording:
            stats = acc.plans.stats()
            plan_span = tracer.start_span(
                "hw.plan",
                kind="hw_plan",
                parent=parent,
                attributes={
                    "accelerator": acc.name,
                    "images": n,
                    "cache_hit": cache_hit,
                    "plan_hits": stats["hits"],
                    "plan_misses": stats["misses"],
                    "arena_kib": round(plan.arena_nbytes / 1024, 3),
                    "fused_stages": plan.fused_stages,
                },
            )
        try:
            return plan.execute(
                batch,
                return_bits=return_bits,
                tracer=tracer if recording else None,
                parent=plan_span,
                stage_seconds=stage_seconds,
            )
        finally:
            if plan_span is not None:
                plan_span.finish()


class ThreadedEngine(_BaseEngine):
    """Interpreted chunks fanned over a thread pool.

    numpy releases the GIL in the pack/XNOR/popcount kernels, so chunks
    genuinely overlap on multi-core hosts. Plans stay off here: pool
    threads are short-lived, and plans are keyed per thread — each would
    be compiled once and never reused.
    """

    name = "threaded"

    def _bind(self) -> None:
        if self.config.workers is None or self.config.workers < 2:
            raise ValueError(
                f"engine {self.name!r} needs workers >= 2, "
                f"got {self.config.workers}"
            )

    def stats(self) -> dict:
        return {"engine": self.name, "workers": self.config.workers}

    def run(self, batch, *, return_bits: bool = False, stage_seconds=None):
        if return_bits:
            raise ValueError(
                "thread-parallel chunks cannot re-stitch return_bits "
                "traces; use the interpreted or planned engine"
            )
        batch = _normalize(batch)
        n = batch.shape[0]
        cfg = self.config
        chunk = cfg.chunk_size
        if chunk is None:
            chunk = max(1, -(-n // cfg.workers))
        tracer = get_tracer()
        with self._span(tracer, n):
            chunks = [batch[s : s + chunk] for s in range(0, max(n, 1), chunk)]
            if len(chunks) == 1:
                return self.accelerator._run_interpreted(
                    batch,
                    use_packed=cfg.packed_datapath,
                    stage_seconds=stage_seconds,
                )
            import contextvars
            from concurrent.futures import ThreadPoolExecutor

            run = lambda part: self.accelerator._run_interpreted(  # noqa: E731
                part, use_packed=cfg.packed_datapath
            )
            # Pool threads do not inherit the caller's context, which
            # carries the current trace span — copy it per chunk so
            # stage spans stay parented under the runtime span. One
            # Context per chunk: a Context can only be entered by one
            # thread at a time.
            contexts = [contextvars.copy_context() for _ in chunks]
            with ThreadPoolExecutor(
                max_workers=min(cfg.workers, len(chunks))
            ) as pool:
                parts = list(
                    pool.map(
                        lambda job: job[0].run(run, job[1]),
                        zip(contexts, chunks),
                    )
                )
            return np.concatenate(parts)


class ProcessEngine(_BaseEngine):
    """Planned buckets over the shared-memory process pool.

    The pool is created lazily on first run (so resolving or listing
    engines never spawns workers) unless one is injected — the serving
    layer's :class:`~repro.serving.backends.ProcessPoolBackend` passes
    its own so the server owns the worker lifecycle.
    """

    name = "process"

    def __init__(self, accelerator, config: ExecutionConfig,
                 pool=None) -> None:
        super().__init__(accelerator, config)
        self._pool = pool

    @property
    def pool(self):
        if self._pool is None or not self._pool.healthy():
            from repro.parallel import ProcessPool

            cfg = self.config
            self._pool = ProcessPool(
                self.accelerator,
                num_workers=cfg.workers,
                buckets=cfg.bucket_sizes,
                max_batch=cfg.max_batch,
                slots=cfg.slots,
                trace_sample=cfg.trace_sample,
                lowering=cfg.lowering,
            )
        return self._pool

    def stats(self) -> dict:
        if self._pool is None:
            return {"engine": self.name, "pool": None}
        return {"engine": self.name, **self._pool.plan_stats()}

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def run(self, batch, *, return_bits: bool = False, stage_seconds=None):
        if stage_seconds is not None:
            raise ValueError(
                "per-stage timing is not collected across process "
                "boundaries; use a single-process engine"
            )
        batch = _normalize(batch)
        tracer = get_tracer()
        with self._span(tracer, batch.shape[0]):
            if return_bits:
                task = self.pool.submit(batch, return_bits=True)
                logits = task.result(timeout=300.0)
                return logits, task.bits()
            return self.pool.execute(batch)


register_engine(EngineSpec(
    name="interpreted",
    factory=InterpretedEngine,
    capabilities=EngineCapabilities(bit_exact=True),
    summary="stage-by-stage reference datapath (the golden semantics)",
))
register_engine(EngineSpec(
    name="planned-blas",
    factory=lambda acc, cfg: PlannedEngine(acc, cfg, "blas"),
    capabilities=EngineCapabilities(bit_exact=True, zero_alloc=True),
    summary="precompiled plans, exact-float32 GEMM lowering",
))
register_engine(EngineSpec(
    name="planned-packed",
    factory=lambda acc, cfg: PlannedEngine(acc, cfg, "packed"),
    capabilities=EngineCapabilities(bit_exact=True, zero_alloc=True),
    summary="precompiled plans, packed XNOR/popcount lowering",
))
register_engine(EngineSpec(
    name="threaded",
    factory=ThreadedEngine,
    capabilities=EngineCapabilities(bit_exact=True),
    summary="interpreted chunks fanned over a thread pool",
))
register_engine(EngineSpec(
    name="process",
    factory=ProcessEngine,
    capabilities=EngineCapabilities(
        bit_exact=True, zero_alloc=True, zero_copy_ipc=True,
        process_isolated=True,
    ),
    summary="planned buckets over the shared-memory process pool",
))
