"""The runtime layer: one config, one registry, five engines.

Usage::

    from repro.runtime import ExecutionConfig

    acc = classifier.deploy()
    labels = acc.predict(images, execution=ExecutionConfig())          # planned
    labels = acc.predict(images, execution=ExecutionConfig(
        isolation="process", workers=4))                               # pool

See :mod:`repro.runtime.config` for the knobs,
:mod:`repro.runtime.registry` for the config → engine resolution rules,
and :mod:`repro.runtime.engines` for the built-in engines.
"""

from repro.runtime.config import ExecutionConfig, deprecated_kwargs_config
from repro.runtime.registry import (
    EngineCapabilities,
    EngineSpec,
    create_engine,
    engine_names,
    engine_spec,
    engine_table,
    register_engine,
    resolve_engine_name,
)

__all__ = [
    "ExecutionConfig",
    "deprecated_kwargs_config",
    "EngineCapabilities",
    "EngineSpec",
    "create_engine",
    "engine_names",
    "engine_spec",
    "engine_table",
    "register_engine",
    "resolve_engine_name",
    "Engine",
]


def __getattr__(name):
    # The Engine protocol lives with the engine implementations, which
    # import the hw layer — resolve it lazily so ``repro.runtime`` stays
    # importable from anywhere in the stack without cycles.
    if name == "Engine":
        from repro.runtime.engines import Engine

        return Engine
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
