"""The one configuration object behind every inference path.

Before this package existed the repo had five ways to run the same BNN
— interpreted ``execute``, the planned ``blas``/``packed`` lowerings,
thread-chunked ``predict`` and the multi-process pool — each reached
through a different flag soup (``use_plan=``, ``mode="process"``,
``chunk_size=``, ``num_workers=``, ``bucket_sizes=``). FINN's lesson is
that one compiled representation should feed every deployment target;
:class:`ExecutionConfig` is the single frozen value that names a target,
and :mod:`repro.runtime.registry` maps it to an engine.

The dataclass is frozen and hashable on purpose: accelerators cache one
engine instance per distinct config, so repeated ``predict`` calls with
the same config reuse plan caches, arenas and worker pools.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Optional, Tuple

__all__ = ["ExecutionConfig", "deprecated_kwargs_config"]

_LOWERINGS = ("auto", "blas", "packed")
_ISOLATIONS = ("none", "thread", "process")


@dataclass(frozen=True)
class ExecutionConfig:
    """Every knob of the inference runtime, in one frozen value.

    * ``engine`` — pin a registered engine by name; ``None`` lets the
      registry resolve one from the remaining fields (the normal case).
    * ``lowering`` — plan lowering: ``"auto"`` picks the exact-float32
      BLAS lowering when the geometry allows, else packed; ``"blas"`` /
      ``"packed"`` force one.
    * ``use_plan`` — route fixed-shape batches through precompiled
      :class:`~repro.hw.plan.ExecutionPlan` objects (default on);
      ``False`` keeps the interpreted reference datapath.
    * ``packed_datapath`` — interpreted-path knob: ``False`` forces the
      boolean reference stages (implies the interpreted engine),
      ``None``/``True`` keep activations bit-packed where word-aligned.
    * ``isolation`` / ``workers`` — worker topology: ``"process"`` fans
      batches over a shared-memory :class:`~repro.parallel.ProcessPool`;
      ``workers > 1`` without process isolation runs chunks
      thread-parallel.
    * ``chunk_size`` — bound how many images flow through the datapath
      at once (memory ceiling for coalesced serving batches).
    * ``bucket_sizes`` / ``max_batch`` / ``slots`` — batch-shape buckets
      and ring sizing for the process pool.
    * ``trace_sample`` — telemetry binding: sample every Nth pool task
      into the worker span journals (``None`` = tracing off in workers).
    """

    engine: Optional[str] = None
    lowering: str = "auto"
    use_plan: bool = True
    packed_datapath: Optional[bool] = None
    isolation: str = "none"
    workers: Optional[int] = None
    chunk_size: Optional[int] = None
    bucket_sizes: Optional[Tuple[int, ...]] = None
    max_batch: int = 32
    slots: Optional[int] = None
    trace_sample: Optional[int] = None

    def __post_init__(self) -> None:
        if self.lowering not in _LOWERINGS:
            raise ValueError(
                f"lowering must be one of {_LOWERINGS}, got {self.lowering!r}"
            )
        if self.isolation not in _ISOLATIONS:
            raise ValueError(
                f"isolation must be one of {_ISOLATIONS}, "
                f"got {self.isolation!r}"
            )
        for name in ("workers", "chunk_size", "max_batch", "slots",
                     "trace_sample"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.bucket_sizes is not None:
            object.__setattr__(
                self, "bucket_sizes", tuple(int(b) for b in self.bucket_sizes)
            )
        if self.isolation == "process" and not self.use_plan:
            raise ValueError(
                "process isolation runs precompiled plans; "
                "use_plan=False is contradictory"
            )
        if self.isolation == "process" and self.packed_datapath is False:
            raise ValueError(
                "process isolation runs the packed planned datapath; "
                "packed_datapath=False is contradictory"
            )

    def merged(self, **overrides) -> "ExecutionConfig":
        """A copy with the non-``None`` overrides applied."""
        updates = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **updates) if updates else self

    def describe(self) -> dict:
        """JSON-ready field dump (for ``repro engines`` and logs)."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out


def deprecated_kwargs_config(
    caller: str,
    base: Optional[ExecutionConfig] = None,
    *,
    use_plan: Optional[bool] = None,
    mode: Optional[str] = None,
    stacklevel: int = 3,
    **extra,
) -> ExecutionConfig:
    """Fold legacy ``use_plan=`` / ``mode=`` kwargs into a config.

    Emits exactly **one** :class:`DeprecationWarning` per call site no
    matter how many legacy kwargs were passed, then returns the
    equivalent :class:`ExecutionConfig` — the shims in ``predict`` /
    ``execute`` / the serving backends all funnel through here so the
    mapping stays in one place.
    """
    if mode is not None and mode not in ("thread", "process"):
        raise ValueError(f"mode must be 'thread' or 'process', got {mode!r}")
    legacy = []
    updates = {}
    if use_plan is not None:
        legacy.append(f"use_plan={use_plan!r}")
        updates["use_plan"] = bool(use_plan)
    if mode is not None:
        legacy.append(f"mode={mode!r}")
        updates["isolation"] = "process" if mode == "process" else "none"
    if legacy:
        warnings.warn(
            f"{caller}({', '.join(legacy)}) is deprecated; pass "
            f"execution=ExecutionConfig({', '.join(sorted(f'{k}={v!r}' for k, v in updates.items()))}) "
            "instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
    config = base if base is not None else ExecutionConfig()
    updates.update({k: v for k, v in extra.items() if v is not None})
    return config.merged(**updates) if updates else config
