"""Config → engine resolution over a table of registered engines.

Every inference path in the repo is a registered :class:`EngineSpec`:
a name, a factory, and declared capability flags. The resolution rules
(:func:`resolve_engine_name`) are the **only** place that decides which
datapath a given :class:`~repro.runtime.config.ExecutionConfig` lands
on — ``FinnAccelerator.predict``, the serving backends, the benchmark
drivers and the CLI all dispatch through here, so a future backend
(e.g. a real accelerator transport) plugs in by registering one spec.

Resolution, in order:

1. ``config.engine`` pins a registered engine by name.
2. ``isolation="process"`` → ``process``.
3. ``workers > 1`` → ``threaded`` (thread-parallel interpreted chunks).
4. ``use_plan=False`` or ``packed_datapath=False`` → ``interpreted``.
5. Models the planner cannot compile fall back to ``interpreted`` under
   ``lowering="auto"`` (an explicit lowering raises instead).
6. Otherwise ``planned-blas`` / ``planned-packed`` per the resolved
   lowering (``auto`` picks BLAS when exact in float32).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.runtime.config import ExecutionConfig

__all__ = [
    "EngineCapabilities",
    "EngineSpec",
    "register_engine",
    "engine_names",
    "engine_spec",
    "engine_table",
    "resolve_engine_name",
    "create_engine",
]


@dataclass(frozen=True)
class EngineCapabilities:
    """What an engine guarantees, declared up front.

    * ``bit_exact`` — logits (and ``return_bits`` traces where the
      engine supports them) match the interpreted reference exactly.
    * ``zero_alloc`` — steady-state batches allocate nothing (plans
      over persistent arenas).
    * ``zero_copy_ipc`` — batches cross process boundaries through
      shared-memory slots, never pickled arrays.
    * ``process_isolated`` — compute runs outside the calling process
      (GIL-free parallelism, fault isolation).
    """

    bit_exact: bool = True
    zero_alloc: bool = False
    zero_copy_ipc: bool = False
    process_isolated: bool = False

    def as_dict(self) -> Dict[str, bool]:
        return {
            "bit_exact": self.bit_exact,
            "zero_alloc": self.zero_alloc,
            "zero_copy_ipc": self.zero_copy_ipc,
            "process_isolated": self.process_isolated,
        }


@dataclass(frozen=True)
class EngineSpec:
    """One registered engine: identity, construction, guarantees."""

    name: str
    factory: Callable  # (accelerator, config) -> Engine
    capabilities: EngineCapabilities
    summary: str


_REGISTRY: "Dict[str, EngineSpec]" = {}


def register_engine(spec: EngineSpec, replace: bool = False) -> EngineSpec:
    """Add an engine to the registry (``replace`` to re-register)."""
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"engine {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def engine_names() -> Tuple[str, ...]:
    """Registered engine names, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def engine_spec(name: str) -> EngineSpec:
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; registered: {', '.join(_REGISTRY)}"
        ) from None


def engine_table() -> list:
    """JSON-ready rows (name, capabilities, summary) for every engine."""
    _ensure_builtins()
    return [
        {
            "name": spec.name,
            "capabilities": spec.capabilities.as_dict(),
            "summary": spec.summary,
        }
        for spec in _REGISTRY.values()
    ]


def resolve_engine_name(
    config: ExecutionConfig, accelerator=None
) -> str:
    """The engine a config lands on (see module docstring for rules)."""
    _ensure_builtins()
    if config.engine is not None:
        return engine_spec(config.engine).name
    if config.isolation == "process":
        return "process"
    if config.workers is not None and config.workers > 1:
        return "threaded"
    if not config.use_plan or config.packed_datapath is False:
        return "interpreted"
    lowering = config.lowering
    if accelerator is not None:
        from repro.hw.plan import _resolve_lowering, plan_unsupported_reason

        if plan_unsupported_reason(accelerator) is not None:
            if lowering == "auto":
                # Legacy predict semantics: silently keep the reference
                # path for models the planner cannot compile.
                return "interpreted"
        elif lowering == "auto":
            lowering = _resolve_lowering(accelerator, "auto")
    if lowering == "auto":
        raise ValueError(
            "lowering='auto' needs an accelerator to resolve against; "
            "pass one or pin lowering='blas'/'packed'"
        )
    return engine_spec(f"planned-{lowering}").name


def create_engine(accelerator, config: ExecutionConfig, **kwargs):
    """Resolve ``config`` and build a prepared engine bound to
    ``accelerator``. Extra kwargs go to the factory (e.g. the serving
    layer's ``pool=`` injection seam for the process engine)."""
    name = resolve_engine_name(config, accelerator)
    engine = engine_spec(name).factory(accelerator, config, **kwargs)
    return engine.prepare()


def _ensure_builtins() -> None:
    # Built-in engines live in repro.runtime.engines; importing the
    # module registers them. Deferred to call time so config/registry
    # stay importable without the hw layer.
    if not _REGISTRY:
        import repro.runtime.engines  # noqa: F401
