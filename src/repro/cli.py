"""Command-line interface: ``python -m repro <command>``.

Wraps the library's main workflows for shell users:

* ``train``    — build the synthetic dataset and train a prototype;
* ``evaluate`` — confusion matrix + accuracy of a checkpoint;
* ``deploy``   — compile a checkpoint and print the full hardware
  profile (timing, resources, buffers, power, device fit);
* ``report``   — the complete markdown reproduction report;
* ``info``     — architecture catalog (Table I facts).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.architectures import ARCHITECTURES, architecture_summary
from repro.core.classifier import BinaryCoP, TrainingBudget
from repro.data.dataset import build_masked_face_dataset
from repro.hw.buffers import plan_buffers
from repro.hw.devices import fit_report
from repro.hw.pipeline import analyze_pipeline
from repro.hw.power import PowerModel
from repro.hw.resources import estimate_resources

__all__ = ["main", "build_parser"]

BINARY_ARCHS = ("cnv", "n-cnv", "u-cnv")


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BinaryCoP reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_train = sub.add_parser("train", help="train a prototype on synthetic data")
    p_train.add_argument("--arch", default="n-cnv", choices=sorted(ARCHITECTURES))
    p_train.add_argument("--raw-size", type=int, default=4000)
    p_train.add_argument("--epochs", type=int, default=30)
    p_train.add_argument("--lr", type=float, default=3e-3)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--save", type=Path, required=True,
                         help="checkpoint output path (.npz)")
    p_train.add_argument("--quiet", action="store_true")

    p_eval = sub.add_parser("evaluate", help="evaluate a checkpoint")
    p_eval.add_argument("--model", type=Path, required=True)
    p_eval.add_argument("--raw-size", type=int, default=2000)
    p_eval.add_argument("--seed", type=int, default=0)

    p_deploy = sub.add_parser("deploy", help="hardware profile of a checkpoint")
    p_deploy.add_argument("--model", type=Path, required=True)
    p_deploy.add_argument("--clock-mhz", type=float, default=100.0)
    p_deploy.add_argument("--dsp-offload", action="store_true")

    p_report = sub.add_parser("report", help="full markdown reproduction report")
    p_report.add_argument("--out", type=Path, default=Path("report.md"))
    p_report.add_argument("--archs", nargs="+", default=list(BINARY_ARCHS),
                          choices=sorted(ARCHITECTURES))

    p_info = sub.add_parser("info", help="architecture catalog (Table I)")
    p_info.add_argument("--arch", default=None, choices=BINARY_ARCHS)
    return parser


def _cmd_train(args) -> int:
    print(f"generating dataset (raw_size={args.raw_size}, seed={args.seed}) ...")
    splits = build_masked_face_dataset(raw_size=args.raw_size, rng=args.seed)
    print(splits.summary())
    clf = BinaryCoP(args.arch, rng=args.seed)
    budget = TrainingBudget(epochs=args.epochs, learning_rate=args.lr)
    print(f"training {args.arch} for up to {args.epochs} epochs ...")
    start = time.perf_counter()
    history = clf.fit(splits, budget, verbose=not args.quiet)
    print(f"trained {history.epochs} epochs in {time.perf_counter() - start:.0f}s")
    metrics = clf.evaluate(splits.test)
    print(f"test accuracy: {metrics['accuracy']:.4f}")
    path = clf.save(args.save)
    print(f"saved checkpoint to {path}")
    return 0


def _cmd_evaluate(args) -> int:
    clf = BinaryCoP.load(args.model)
    print(f"loaded {clf.architecture} from {args.model}")
    splits = build_masked_face_dataset(raw_size=args.raw_size, rng=args.seed)
    cm = clf.confusion(splits.test)
    print(cm.render())
    print(f"accuracy: {cm.overall_accuracy():.4f}")
    for name, recall in cm.per_class_recall().items():
        print(f"  recall[{name}] = {recall:.4f}")
    return 0


def _cmd_deploy(args) -> int:
    clf = BinaryCoP.load(args.model)
    if not clf.is_binary:
        print("error: the FP32 baseline is not deployable", file=sys.stderr)
        return 2
    accelerator = clf.deploy()
    print(analyze_pipeline(accelerator, args.clock_mhz).report())
    resources = estimate_resources(accelerator, dsp_offload=args.dsp_offload)
    print(f"resources: {resources.report()}")
    print(plan_buffers(accelerator).report())
    power = PowerModel().estimate(resources, clock_mhz=args.clock_mhz)
    print(f"power: {power.report()}")
    for line in fit_report(resources.lut, resources.bram36, resources.dsp):
        print(f"  {line}")
    return 0


def _cmd_report(args) -> int:
    from repro.core.reporting import build_report
    from repro.core.zoo import dataset_cached, trained_classifier

    splits = dataset_cached()
    classifiers = {}
    for arch in args.archs:
        print(f"loading (or training) {arch} ...")
        classifiers[arch] = trained_classifier(
            arch, splits=splits, dataset_key={"default_dataset": True}
        )
    report = build_report(classifiers, splits)
    path = report.save(args.out)
    print(f"wrote {path}")
    return 0


def _cmd_info(args) -> int:
    archs = (args.arch,) if args.arch else BINARY_ARCHS
    for name in archs:
        summary = architecture_summary(name)
        print(f"{name}: {len(summary['layers'])} MVTU layers, "
              f"{summary['weight_bits']:,} weight bits "
              f"({summary['weight_bits'] / 8192:.1f} KiB packed)")
        for lname, c_in, c_out in summary["layers"]:
            print(f"  {lname:<10s} [{c_in}, {c_out}]")
        folding = summary["folding"]
        print(f"  PE:   {', '.join(map(str, folding.pe))}")
        print(f"  SIMD: {', '.join(map(str, folding.simd))}")
    return 0


_COMMANDS = {
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "deploy": _cmd_deploy,
    "report": _cmd_report,
    "info": _cmd_info,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
