"""Command-line interface: ``python -m repro <command>``.

Wraps the library's main workflows for shell users:

* ``train``    — build the synthetic dataset and train a prototype;
* ``evaluate`` — confusion matrix + accuracy of a checkpoint;
* ``deploy``   — compile a checkpoint and print the full hardware
  profile (timing, resources, buffers, power, device fit);
* ``report``   — the complete markdown reproduction report;
* ``info``     — architecture catalog (Table I facts);
* ``serve``    — run the dynamic-batching inference server against a
  synthetic open-loop gate-camera arrival process (``--telemetry`` /
  ``--trace-out`` record a span journal);
* ``serve-bench`` — sweep offered load through the server and tabulate
  throughput, latency percentiles and shed/rejected counts;
* ``trace``    — summarize a saved span journal: critical path,
  per-span-kind percentiles, slowest-stage table with modelled vs
  measured bottleneck;
* ``metrics``  — one-shot metrics dump (Prometheus text exposition or
  JSON) from a saved span journal;
* ``lint``     — static analysis (per-file AST rules plus the
  whole-program concurrency and arena-aliasing passes, selectable via
  ``--passes``) with a justified suppression baseline and
  text/JSON/SARIF output;
* ``lockgraph`` — dump the whole-program lock-acquisition-order graph
  (DOT or JSON); exits non-zero when the graph has a cycle;
* ``verify-model`` — static model-graph verification of the registered
  architectures against their Table I foldings;
* ``bench``    — throughput measurement (kernels, per-stage wall time,
  end-to-end FPS) recorded as a trajectory in ``BENCH_throughput.json``
  with regression detection against the previous run.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.lint import PASSES as LINT_PASSES
from repro.core.architectures import ARCHITECTURES, architecture_summary
from repro.core.classifier import BinaryCoP, TrainingBudget
from repro.data.dataset import build_masked_face_dataset
from repro.hw.buffers import plan_buffers
from repro.hw.devices import fit_report
from repro.hw.pipeline import analyze_pipeline
from repro.hw.power import PowerModel
from repro.hw.resources import estimate_resources

__all__ = ["main", "build_parser"]

BINARY_ARCHS = ("cnv", "n-cnv", "u-cnv")


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BinaryCoP reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_train = sub.add_parser("train", help="train a prototype on synthetic data")
    p_train.add_argument("--arch", default="n-cnv", choices=sorted(ARCHITECTURES))
    p_train.add_argument("--raw-size", type=int, default=4000)
    p_train.add_argument("--epochs", type=int, default=30)
    p_train.add_argument("--lr", type=float, default=3e-3)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--save", type=Path, required=True,
                         help="checkpoint output path (.npz)")
    p_train.add_argument("--quiet", action="store_true")
    p_train.add_argument("--num-workers", type=int, default=1,
                         help="render worker processes for dataset generation "
                              "(bit-identical to serial at any count)")
    p_train.add_argument("--data-cache", type=Path, default=None,
                         help="directory for the on-disk dataset cache; "
                              "repeat runs with the same config load from it")

    p_eval = sub.add_parser("evaluate", help="evaluate a checkpoint")
    p_eval.add_argument("--model", type=Path, required=True)
    p_eval.add_argument("--raw-size", type=int, default=2000)
    p_eval.add_argument("--seed", type=int, default=0)

    p_deploy = sub.add_parser("deploy", help="hardware profile of a checkpoint")
    p_deploy.add_argument("--model", type=Path, required=True)
    p_deploy.add_argument("--clock-mhz", type=float, default=100.0)
    p_deploy.add_argument("--dsp-offload", action="store_true")

    p_report = sub.add_parser("report", help="full markdown reproduction report")
    p_report.add_argument("--out", type=Path, default=Path("report.md"))
    p_report.add_argument("--archs", nargs="+", default=list(BINARY_ARCHS),
                          choices=sorted(ARCHITECTURES))

    p_info = sub.add_parser("info", help="architecture catalog (Table I)")
    p_info.add_argument("--arch", default=None, choices=BINARY_ARCHS)

    def add_serving_args(p) -> None:
        p.add_argument("--model", type=Path, required=True,
                       help="trained checkpoint (.npz)")
        p.add_argument("--backend", default="software",
                       choices=("software", "accelerator", "both", "process"),
                       help="primary backend; 'both' adds the accelerator "
                            "simulator as fallback; 'process' fans planned "
                            "batches across a multi-process pool")
        p.add_argument("--max-batch", type=int, default=32)
        p.add_argument("--buckets", type=int, nargs="+", default=None,
                       metavar="N",
                       help="pad micro-batches up to these sizes so "
                            "shape-keyed backends compile a fixed plan set "
                            "(largest must cover --max-batch)")
        p.add_argument("--pool-workers", type=int, default=None,
                       help="process-pool worker count (default: one per "
                            "physical core, capped at 4)")
        p.add_argument("--lowering", default="auto",
                       choices=("auto", "blas", "packed"),
                       help="plan lowering for the accelerator/process "
                            "backends (default: auto picks the exact-f32 "
                            "BLAS lowering where the geometry allows)")
        p.add_argument("--max-wait-ms", type=float, default=5.0)
        p.add_argument("--queue-capacity", type=int, default=256)
        p.add_argument("--workers", type=int, default=2)
        p.add_argument("--timeout-ms", type=float, default=None,
                       help="per-request deadline (default: none)")
        p.add_argument("--tile-pool", type=int, default=24,
                       help="pre-rendered gate-camera face tiles to replay")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--telemetry", action="store_true",
                       help="activate trace spans and print a trace "
                            "summary after the run")
        p.add_argument("--trace-sample", type=int, default=1, metavar="N",
                       help="record every Nth request trace (default: "
                            "all)")
        p.add_argument("--trace-out", type=Path, default=None, metavar="FILE",
                       help="save the span journal as JSON (implies "
                            "--telemetry)")

    p_serve = sub.add_parser(
        "serve", help="dynamic-batching server on synthetic gate traffic"
    )
    add_serving_args(p_serve)
    p_serve.add_argument("--rate", type=float, default=200.0,
                         help="offered load, requests/second")
    p_serve.add_argument("--duration", type=float, default=2.0,
                         help="seconds of open-loop traffic")
    p_serve.add_argument("--report-every", type=float, default=1.0,
                         help="periodic stats interval (0 disables)")

    p_sbench = sub.add_parser(
        "serve-bench", help="offered-load sweep through the server"
    )
    add_serving_args(p_sbench)
    p_sbench.add_argument("--rates", type=float, nargs="+",
                          default=[100.0, 400.0, 1600.0])
    p_sbench.add_argument("--duration", type=float, default=2.0,
                          help="seconds of traffic per rate")

    p_trace = sub.add_parser(
        "trace", help="summarize a saved trace journal (from --trace-out)"
    )
    p_trace.add_argument("journal", type=Path,
                         help="span journal JSON written by --trace-out")
    p_trace.add_argument("--top", type=int, default=10,
                         help="rows in the slowest-stage table")

    p_metrics = sub.add_parser(
        "metrics",
        help="one-shot metrics dump (Prometheus or JSON) from a journal",
    )
    p_metrics.add_argument("--journal", type=Path, default=None,
                           help="span journal JSON to derive metrics from")
    p_metrics.add_argument("--format", default="prometheus",
                           choices=("prometheus", "json"),
                           help="output format (default: prometheus)")

    p_lint = sub.add_parser(
        "lint", help="static AST lint over a source tree (default: repro)"
    )
    p_lint.add_argument("paths", nargs="*", type=Path,
                        help="files/directories to lint "
                             "(default: the installed repro package)")
    p_lint.add_argument("--baseline", type=Path, default=None,
                        help="suppression file (default: search for "
                             ".repro-lint-baseline upward from the first "
                             "path)")
    p_lint.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    p_lint.add_argument("--write-baseline", type=Path, default=None,
                        metavar="FILE",
                        help="accept current findings into FILE and exit 0")
    p_lint.add_argument("--rules", action="store_true",
                        help="print the rule catalog and exit")
    p_lint.add_argument("--passes", default=",".join(LINT_PASSES),
                        metavar="P1,P2",
                        help="comma-separated analysis passes to run "
                             f"(default: {','.join(LINT_PASSES)})")
    p_lint.add_argument("--format", default="text",
                        choices=("text", "json", "sarif"),
                        help="report format (default: text)")
    p_lint.add_argument("--prune-baseline", action="store_true",
                        help="rewrite the baseline file without stale "
                             "entries (justifications preserved verbatim)")

    p_lockgraph = sub.add_parser(
        "lockgraph",
        help="dump the whole-program lock-acquisition-order graph",
    )
    p_lockgraph.add_argument("paths", nargs="*", type=Path,
                             help="files/directories to analyze "
                                  "(default: the installed repro package)")
    p_lockgraph.add_argument("--format", default="dot",
                             choices=("dot", "json"),
                             help="graph output format (default: dot)")
    p_lockgraph.add_argument("--out", type=Path, default=None,
                             help="write to FILE instead of stdout")

    p_verify = sub.add_parser(
        "verify-model",
        help="static model-graph verification (shape/dtype + BNN/FINN rules)",
    )
    p_verify.add_argument("--arch", default="all",
                          choices=BINARY_ARCHS + ("all",),
                          help="architecture to verify against its Table I "
                               "folding (default: all)")

    p_engines = sub.add_parser(
        "engines",
        help="list the registered runtime engines and their capabilities",
    )
    p_engines.add_argument("--format", default="table",
                           choices=("table", "json"),
                           help="output format (default: table)")

    p_bench = sub.add_parser(
        "bench",
        help="perf-regression benchmark: kernels, stages, end-to-end FPS",
    )
    p_bench.add_argument("--archs", nargs="+", default=list(BINARY_ARCHS),
                         choices=BINARY_ARCHS)
    p_bench.add_argument("--out", type=Path,
                         default=Path("BENCH_throughput.json"),
                         help="trajectory file to append to and compare "
                              "against")
    p_bench.add_argument("--images", type=int, default=16,
                         help="batch size for the end-to-end timing")
    p_bench.add_argument("--repeats", type=int, default=2,
                         help="best-of repeats per timed section")
    p_bench.add_argument("--tolerance", type=float, default=0.25,
                         help="allowed fractional slowdown vs the previous "
                              "run before the bench fails")
    p_bench.add_argument("--smoke", action="store_true",
                         help="tiny CI sanity run: validates the result "
                              "schema (and --out, if present) without "
                              "recording a trajectory entry")
    p_bench.add_argument("--no-fail", action="store_true",
                         help="report regressions without a non-zero exit")
    p_bench.add_argument("--sections", nargs="+", metavar="SECTION",
                         help="run only these sections (e.g. kernels e2e "
                              "plan); section-limited runs are printed but "
                              "not recorded in the trajectory")
    p_bench.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_train(args) -> int:
    print(f"generating dataset (raw_size={args.raw_size}, seed={args.seed}) ...")
    splits = build_masked_face_dataset(
        raw_size=args.raw_size,
        rng=args.seed,
        num_workers=args.num_workers,
        cache_dir=args.data_cache,
    )
    print(splits.summary())
    clf = BinaryCoP(args.arch, rng=args.seed)
    budget = TrainingBudget(epochs=args.epochs, learning_rate=args.lr)
    print(f"training {args.arch} for up to {args.epochs} epochs ...")
    start = time.perf_counter()
    history = clf.fit(splits, budget, verbose=not args.quiet)
    print(f"trained {history.epochs} epochs in {time.perf_counter() - start:.0f}s")
    metrics = clf.evaluate(splits.test)
    print(f"test accuracy: {metrics['accuracy']:.4f}")
    path = clf.save(args.save)
    print(f"saved checkpoint to {path}")
    return 0


def _cmd_evaluate(args) -> int:
    clf = BinaryCoP.load(args.model)
    print(f"loaded {clf.architecture} from {args.model}")
    splits = build_masked_face_dataset(raw_size=args.raw_size, rng=args.seed)
    cm = clf.confusion(splits.test)
    print(cm.render())
    print(f"accuracy: {cm.overall_accuracy():.4f}")
    for name, recall in cm.per_class_recall().items():
        print(f"  recall[{name}] = {recall:.4f}")
    return 0


def _cmd_deploy(args) -> int:
    clf = BinaryCoP.load(args.model)
    if not clf.is_binary:
        print("error: the FP32 baseline is not deployable", file=sys.stderr)
        return 2
    accelerator = clf.deploy()
    print(analyze_pipeline(accelerator, args.clock_mhz).report())
    resources = estimate_resources(accelerator, dsp_offload=args.dsp_offload)
    print(f"resources: {resources.report()}")
    print(plan_buffers(accelerator).report())
    power = PowerModel().estimate(resources, clock_mhz=args.clock_mhz)
    print(f"power: {power.report()}")
    for line in fit_report(resources.lut, resources.bram36, resources.dsp):
        print(f"  {line}")
    return 0


def _cmd_report(args) -> int:
    from repro.core.reporting import build_report
    from repro.core.zoo import dataset_cached, trained_classifier

    splits = dataset_cached()
    classifiers = {}
    for arch in args.archs:
        print(f"loading (or training) {arch} ...")
        classifiers[arch] = trained_classifier(
            arch, splits=splits, dataset_key={"default_dataset": True}
        )
    report = build_report(classifiers, splits)
    path = report.save(args.out)
    print(f"wrote {path}")
    return 0


def _cmd_info(args) -> int:
    archs = (args.arch,) if args.arch else BINARY_ARCHS
    for name in archs:
        summary = architecture_summary(name)
        print(f"{name}: {len(summary['layers'])} MVTU layers, "
              f"{summary['weight_bits']:,} weight bits "
              f"({summary['weight_bits'] / 8192:.1f} KiB packed)")
        for lname, c_in, c_out in summary["layers"]:
            print(f"  {lname:<10s} [{c_in}, {c_out}]")
        folding = summary["folding"]
        print(f"  PE:   {', '.join(map(str, folding.pe))}")
        print(f"  SIMD: {', '.join(map(str, folding.simd))}")
    return 0


def _build_server(args):
    """Shared serve/serve-bench setup: checkpoint -> backends -> server."""
    from repro.serving import (
        AcceleratorBackend,
        ClassifierBackend,
        InferenceServer,
        ProcessPoolBackend,
        ServingConfig,
    )

    from repro.runtime import ExecutionConfig

    clf = BinaryCoP.load(args.model)
    print(f"loaded {clf.architecture} from {args.model}")
    config = ServingConfig(
        max_batch_size=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_capacity=args.queue_capacity,
        num_workers=args.workers,
        default_timeout_s=(
            None if args.timeout_ms is None else args.timeout_ms / 1e3
        ),
        bucket_sizes=tuple(args.buckets) if args.buckets else None,
    )
    lowering = getattr(args, "lowering", "auto")
    backends = []
    if args.backend in ("software", "both"):
        backends.append(ClassifierBackend(clf))
    if args.backend in ("accelerator", "both"):
        backends.append(
            AcceleratorBackend(
                clf.deploy(),
                execution=ExecutionConfig(lowering=lowering),
            )
        )
    if args.backend == "process":
        backends.append(
            ProcessPoolBackend(
                clf.deploy(),
                buckets=config.bucket_sizes,
                max_batch=config.max_batch_size,
                execution=ExecutionConfig(
                    isolation="process",
                    workers=args.pool_workers,
                    lowering=lowering,
                    trace_sample=(
                        args.trace_sample
                        if (args.telemetry or args.trace_out is not None)
                        else None
                    ),
                ),
            )
        )
    names = " -> ".join(
        f"{b.name} (x{b.max_concurrency})" for b in backends
    )
    print(f"backends: {names}")
    return InferenceServer(backends, config)


def _start_telemetry(args):
    """Activate tracing for serve/serve-bench when requested.

    Returns the journal (or None). ``--trace-out`` implies telemetry.
    """
    from repro.telemetry import SpanJournal, Tracer, activate

    if not (args.telemetry or args.trace_out is not None):
        return None
    if args.trace_sample <= 0:
        raise SystemExit(
            f"--trace-sample must be positive, got {args.trace_sample}"
        )
    journal = SpanJournal()
    activate(Tracer(sample_every=args.trace_sample, journal=journal))
    print(
        f"telemetry on (sampling every "
        f"{args.trace_sample} request trace(s))"
    )
    return journal


def _finish_telemetry(args, journal) -> None:
    from repro.telemetry import deactivate, summarize_spans

    if journal is None:
        return
    deactivate()
    spans = journal.snapshot()
    print(summarize_spans(spans).render())
    if args.trace_out is not None:
        path = journal.save(args.trace_out)
        print(f"wrote {len(spans)} spans to {path}")


def _cmd_serve(args) -> int:
    import signal

    from repro.serving import StatsReporter, face_tile_pool, run_open_loop

    journal = _start_telemetry(args)
    server = _build_server(args)
    if journal is not None:
        for backend in server.backends:
            bind = getattr(backend, "bind_journal", None)
            if bind is not None:
                bind(journal)
    print(f"rendering {args.tile_pool} gate-camera tiles ...")
    tiles = face_tile_pool(args.tile_pool, rng=args.seed)
    reporter = None
    result = None
    interrupted = False

    # SIGTERM (systemd, docker stop, CI timeouts) gets the same graceful
    # drain Ctrl-C does: convert it to KeyboardInterrupt so the handler
    # below runs and the context manager drains the admission queue.
    def _terminate(signum, frame):
        raise KeyboardInterrupt

    previous_term = signal.signal(signal.SIGTERM, _terminate)
    try:
        with server:
            print(server.health(smoke=True).render())
            if args.report_every > 0:
                reporter = server.reporter(interval_s=args.report_every).start()
            print(
                f"offering {args.rate:,.0f} req/s for {args.duration:.1f}s "
                f"(open loop) ..."
            )
            try:
                result = run_open_loop(
                    server, tiles, rate_hz=args.rate,
                    duration_s=args.duration, rng=args.seed + 1,
                )
            except KeyboardInterrupt:
                interrupted = True
                print(
                    "\nsignal received - draining admission queue and "
                    "stopping workers ..."
                )
            if reporter is not None:
                reporter.stop()
            if result is not None:
                print(result.report())
            if not interrupted:
                print(server.stats().report())
                print(server.health().render())
        if interrupted:
            # Final snapshot *after* the drain so the counters include
            # every request the shutdown worked off.
            print(server.stats().report())
    finally:
        signal.signal(signal.SIGTERM, previous_term)
        _finish_telemetry(args, journal)
    if interrupted:
        return 0
    return 0 if result.completed else 1


def _cmd_serve_bench(args) -> int:
    from repro.serving import face_tile_pool, run_open_loop
    from repro.utils.tables import render_table

    journal = _start_telemetry(args)
    server_factory = lambda: _build_server(args)  # noqa: E731
    print(f"rendering {args.tile_pool} gate-camera tiles ...")
    tiles = face_tile_pool(args.tile_pool, rng=args.seed)
    rows = []
    try:
        for rate in args.rates:
            server = server_factory()
            with server:
                result = run_open_loop(
                    server, tiles, rate_hz=rate, duration_s=args.duration,
                    rng=args.seed + 1,
                )
                stats = server.stats()
            p50 = result.latency_percentile(50) * 1e3 if result.latencies_s else float("nan")
            p95 = result.latency_percentile(95) * 1e3 if result.latencies_s else float("nan")
            p99 = result.latency_percentile(99) * 1e3 if result.latencies_s else float("nan")
            rows.append(
                [
                    f"{rate:,.0f}",
                    f"{result.offered}",
                    f"{result.achieved_qps:,.0f}",
                    f"{p50:.1f}/{p95:.1f}/{p99:.1f}",
                    f"{stats.mean_batch_size:.1f}",
                    f"{result.rejected + result.shed}",
                    f"{result.timed_out}",
                ]
            )
    finally:
        _finish_telemetry(args, journal)
    print(
        render_table(
            ["offered/s", "requests", "QPS", "p50/p95/p99 ms",
             "mean batch", "rejected+shed", "timed out"],
            rows,
            title="serve-bench: offered load sweep",
        )
    )
    return 0


def _cmd_trace(args) -> int:
    from repro.telemetry import SpanJournal, summarize_spans

    try:
        spans = SpanJournal.load(args.journal)
    except (OSError, ValueError) as exc:
        print(f"error: {args.journal}: {exc}", file=sys.stderr)
        return 1
    if not spans:
        print(f"{args.journal}: empty journal (no spans recorded)")
        return 0
    print(summarize_spans(spans).render(top=args.top))
    return 0


def _cmd_metrics(args) -> int:
    from repro.telemetry import SpanJournal, TelemetryExporter

    journal = None
    if args.journal is not None:
        try:
            spans = SpanJournal.load(args.journal)
        except (OSError, ValueError) as exc:
            print(f"error: {args.journal}: {exc}", file=sys.stderr)
            return 1
        journal = SpanJournal()
        for span in spans:
            journal.record(span)
    exporter = TelemetryExporter(journal=journal)
    if args.format == "json":
        print(exporter.to_json())
    else:
        print(exporter.to_prometheus(), end="")
    return 0


def _cmd_lint(args) -> int:
    import json

    from repro.analysis import Baseline, lint_paths, rules_table
    from repro.analysis.lint import prune_baseline

    if args.rules:
        print(rules_table())
        return 0
    import repro as _repro

    passes = tuple(p.strip() for p in args.passes.split(",") if p.strip())
    try:
        paths = args.paths or [Path(_repro.__file__).parent]
        if args.no_baseline:
            report = lint_paths(paths, baseline=Baseline(), passes=passes)
        elif args.baseline is not None:
            try:
                baseline = Baseline.load(args.baseline)
            except ValueError as exc:
                print(f"error: {args.baseline}: {exc}", file=sys.stderr)
                return 2
            report = lint_paths(paths, baseline=baseline, passes=passes)
        else:
            report = lint_paths(paths, passes=passes)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline is not None:
        baseline = Baseline.from_diagnostics(report.diagnostics)
        path = baseline.save(args.write_baseline)
        print(f"wrote {len(baseline)} suppression(s) to {path}")
        return 0
    if args.prune_baseline:
        pruned = prune_baseline(report)
        if pruned is None or pruned.path is None:
            print("error: --prune-baseline needs a baseline file",
                  file=sys.stderr)
            return 2
        dropped = len(report.stale_entries)
        pruned.save(pruned.path)
        print(f"pruned {dropped} stale entrie(s) from {pruned.path}")
        return 0
    for entry in report.stale_entries:
        print(
            f"warning: stale baseline entry (matches no current finding): "
            f"{entry.render()}",
            file=sys.stderr,
        )
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    elif args.format == "sarif":
        print(json.dumps(report.to_sarif(), indent=2))
    else:
        print(report.render())
    return report.exit_code()


def _cmd_lockgraph(args) -> int:
    import ast as _ast

    from repro.analysis.concurrency import build_lock_graph
    from repro.analysis.lint import collect_sources

    import repro as _repro

    paths = args.paths or [Path(_repro.__file__).parent]
    sources = []
    for path in collect_sources(paths):
        try:
            sources.append(
                (path, _ast.parse(path.read_text(), filename=str(path)))
            )
        except SyntaxError as exc:
            print(f"warning: skipping {path}: {exc.msg}", file=sys.stderr)
    graph = build_lock_graph(sources)
    text = graph.render_json() if args.format == "json" else graph.to_dot()
    if args.out is not None:
        args.out.write_text(text + "\n")
        print(
            f"wrote {len(graph.nodes)} node(s), {len(graph.edges)} edge(s) "
            f"to {args.out}"
        )
    else:
        print(text)
    # a cycle in the lock graph is a finding, mirror lint's exit semantics
    return 1 if graph.cycles() else 0


def _cmd_verify_model(args) -> int:
    from repro.core.zoo import verify_zoo

    archs = None if args.arch == "all" else (args.arch,)
    reports = verify_zoo(archs)
    worst = 0
    for name, report in reports.items():
        print(report.render())
        worst = max(worst, report.exit_code())
    return worst


def _cmd_engines(args) -> int:
    """List the registered runtime engines with their capability flags."""
    import json

    from repro.runtime import ExecutionConfig, engine_table

    table = engine_table()
    default = ExecutionConfig()
    if args.format == "json":
        print(json.dumps(
            {
                "engines": table,
                "default_config": default.describe(),
                "resolution": [
                    "config.engine pins a registered engine by name",
                    "isolation='process' -> process",
                    "workers > 1 -> threaded",
                    "use_plan=False or packed_datapath=False -> interpreted",
                    "unplannable model + lowering='auto' -> interpreted",
                    "otherwise planned-blas / planned-packed per the "
                    "resolved lowering",
                ],
            },
            indent=2,
        ))
        return 0
    flags = ("bit_exact", "zero_alloc", "zero_copy_ipc", "process_isolated")
    header = ["engine"] + list(flags) + ["summary"]
    rows = [
        [row["name"]]
        + [("yes" if row["capabilities"][f] else "-") for f in flags]
        + [row["summary"]]
        for row in table
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows))
        for i in range(len(header))
    ]
    for line in (header, *rows):
        print("  ".join(c.ljust(w) for c, w in zip(line, widths)).rstrip())
    print()
    print("resolution: engine > isolation='process' > workers>1 > "
          "use_plan=False > lowering (auto picks BLAS when exact in f32)")
    return 0


def _cmd_bench(args) -> int:
    from repro.benchmarking import (
        BENCH_SECTIONS,
        append_run,
        compare_to_best,
        load_doc,
        render_comparison,
        render_run,
        run_bench,
        save_doc,
    )

    sections = None
    if args.sections:
        unknown = sorted(set(args.sections) - set(BENCH_SECTIONS))
        if unknown:
            print(
                f"error: unknown bench section(s): {', '.join(unknown)} "
                f"(known: {', '.join(BENCH_SECTIONS)})",
                file=sys.stderr,
            )
            return 2
        sections = tuple(args.sections)
    partial = sections is not None and set(sections) != set(BENCH_SECTIONS)

    if args.smoke:
        run = run_bench(smoke=True, seed=args.seed, sections=sections)
        print(render_run(run))
        if args.out.exists():
            try:
                load_doc(args.out)  # validates the recorded trajectory
            except ValueError as exc:
                print(f"error: {args.out}: {exc}", file=sys.stderr)
                return 1
            print(f"{args.out}: schema OK")
        print("smoke bench OK (no trajectory entry recorded)")
        return 0
    run = run_bench(
        archs=tuple(args.archs),
        images=args.images,
        repeats=args.repeats,
        seed=args.seed,
        sections=sections,
    )
    print(render_run(run))
    doc = load_doc(args.out)
    regressed = False
    if doc is not None:
        # Gate against the best prior run of the same label: a smoke run
        # (or one slow outlier) in the trajectory must not set the bar.
        records = compare_to_best(doc["runs"], run, tolerance=args.tolerance)
        print(render_comparison(records))
        regressed = any(rec["regressed"] for rec in records)
    if partial:
        print(
            "section-limited run: not recorded in the trajectory "
            f"(sections: {', '.join(run['sections'])})"
        )
    else:
        doc = append_run(doc, run)
        save_doc(doc, args.out)
        print(f"recorded run {len(doc['runs'])} in {args.out}")
    if regressed and not args.no_fail:
        print("error: throughput regressed beyond tolerance", file=sys.stderr)
        return 1
    return 0


_COMMANDS = {
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "deploy": _cmd_deploy,
    "report": _cmd_report,
    "info": _cmd_info,
    "serve": _cmd_serve,
    "serve-bench": _cmd_serve_bench,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "lint": _cmd_lint,
    "lockgraph": _cmd_lockgraph,
    "verify-model": _cmd_verify_model,
    "engines": _cmd_engines,
    "bench": _cmd_bench,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
