"""Whole-program index and call graph for the interprocedural passes.

The concurrency analyzer needs to answer questions the per-file AST
rules cannot: *which method does ``self._queue.pop()`` land in?* and
*what locks does that method take?* This module builds the
infrastructure both passes share:

* :class:`ProjectIndex` — every parsed module's classes, methods,
  module-level functions and import aliases, plus per-class attribute
  types recovered from ``__init__`` (``self.x = ClassName(...)`` and
  ``self.x = param`` with an annotated parameter);
* :func:`ProjectIndex.resolve_call` — a best-effort, *precision-first*
  resolver: ``self.m()``, ``self.attr.m()`` (through attribute types,
  chained), ``ClassName(...)`` (to ``__init__``), ``ClassName.m()``,
  locally-typed ``var.m()`` and plain/imported ``f()``. Anything it
  cannot prove resolves to ``None`` and the analyses treat the call as
  opaque — an unresolved call never manufactures a finding.

Resolution is by source text only: nothing is imported or executed, so
the linter can safely chew on broken or side-effecting code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["FunctionInfo", "ClassInfo", "ModuleInfo", "ProjectIndex", "module_name"]


def module_name(path: Path) -> str:
    """Dotted module name for ``path``, walking up through packages.

    ``src/repro/serving/admission.py`` -> ``repro.serving.admission``
    regardless of the directory the linter was invoked from; a loose
    file (test fixture in a tmp dir) is just its stem.
    """
    path = Path(path).resolve()
    parts: List[str] = [] if path.stem == "__init__" else [path.stem]
    directory = path.parent
    while (directory / "__init__.py").is_file():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:  # filesystem root; cannot happen in practice
            break
        directory = parent
    return ".".join(parts) or path.stem


@dataclass
class FunctionInfo:
    """One analyzable function or method."""

    module: str
    qualname: str  # "Class.method" or "function"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    path: str
    cls: Optional["ClassInfo"] = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def ref(self) -> str:
        """Globally-unique key: ``module::Class.method``."""
        return f"{self.module}::{self.qualname}"

    @property
    def display(self) -> str:
        return f"{Path(self.path).name}:{self.qualname}"


@dataclass
class ClassInfo:
    """One class definition plus the facts the analyses need."""

    module: str
    name: str
    node: ast.ClassDef
    path: str
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: instance attribute -> class-name string (unresolved, see
    #: ProjectIndex.attr_class) recovered from constructor assignments.
    attr_types: Dict[str, str] = field(default_factory=dict)
    base_names: List[str] = field(default_factory=list)


@dataclass
class ModuleInfo:
    name: str
    path: str
    tree: ast.Module
    #: local alias -> fully qualified name ("np" -> "numpy",
    #: "AdmissionQueue" -> "repro.serving.admission.AdmissionQueue").
    imports: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """The class-name string of a simple annotation.

    Handles ``Foo``, ``module.Foo``, ``Optional[Foo]`` and ``"Foo"``
    (string annotations); anything fancier returns None.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[")[0].split(".")[-1].strip('"\' ')
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        head = _annotation_name(node.value)
        if head in ("Optional", "Final", "ClassVar"):
            inner = node.slice
            if isinstance(inner, ast.Tuple):  # pragma: no cover - odd Optional
                return None
            return _annotation_name(inner)
    return None


def _param_annotations(fn: ast.AST) -> Dict[str, str]:
    out: Dict[str, str] = {}
    args = fn.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        name = _annotation_name(arg.annotation)
        if name is not None:
            out[arg.arg] = name
    return out


def _first_class_call(expr: ast.AST) -> Optional[str]:
    """Name of the first plausible constructor call inside ``expr``.

    Covers ``Foo(...)``, ``foo or Foo(...)``, ``Foo(...) if c else None``.
    Only capitalised names are considered constructors — a heuristic,
    but one that matches both PEP 8 and this codebase.
    """
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id[:1].isupper()
        ):
            return node.func.id
    return None


class ProjectIndex:
    """Parsed view of a whole source tree, queryable without imports."""

    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self.modules = modules
        #: class name -> every ClassInfo with that name (usually one).
        self._classes_by_name: Dict[str, List[ClassInfo]] = {}
        for mod in modules.values():
            for cls in mod.classes.values():
                self._classes_by_name.setdefault(cls.name, []).append(cls)

    # -- construction --------------------------------------------------------
    @classmethod
    def build(cls, sources: Iterable[Tuple[Path, ast.Module]]) -> "ProjectIndex":
        modules: Dict[str, ModuleInfo] = {}
        for path, tree in sources:
            name = module_name(path)
            mod = ModuleInfo(name=name, path=str(path), tree=tree)
            cls._index_module(mod)
            modules[name] = mod
        return cls(modules)

    @staticmethod
    def _index_module(mod: ModuleInfo) -> None:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    mod.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    mod.imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        for node in mod.tree.body:
            if isinstance(node, ast.ClassDef):
                info = ClassInfo(
                    module=mod.name,
                    name=node.name,
                    node=node,
                    path=mod.path,
                    base_names=[
                        b.id if isinstance(b, ast.Name) else getattr(b, "attr", "")
                        for b in node.bases
                    ],
                )
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info.methods[item.name] = FunctionInfo(
                            module=mod.name,
                            qualname=f"{node.name}.{item.name}",
                            node=item,
                            path=mod.path,
                            cls=info,
                        )
                ProjectIndex._infer_attr_types(info)
                mod.classes[node.name] = info
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mod.functions[node.name] = FunctionInfo(
                    module=mod.name,
                    qualname=node.name,
                    node=node,
                    path=mod.path,
                )

    @staticmethod
    def _infer_attr_types(info: ClassInfo) -> None:
        """Fill ``attr_types`` from constructor-style assignments."""
        for method in info.methods.values():
            annotations = _param_annotations(method.node)
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    type_name = None
                    value = node.value
                    if isinstance(value, ast.Name):
                        type_name = annotations.get(value.id)
                    else:
                        type_name = _first_class_call(value)
                    if type_name and target.attr not in info.attr_types:
                        info.attr_types[target.attr] = type_name

    # -- queries -------------------------------------------------------------
    def all_functions(self) -> List[FunctionInfo]:
        out: List[FunctionInfo] = []
        for mod in self.modules.values():
            out.extend(mod.functions.values())
            for cls in mod.classes.values():
                out.extend(cls.methods.values())
        return out

    def all_classes(self) -> List[ClassInfo]:
        return [c for m in self.modules.values() for c in m.classes.values()]

    def resolve_class(
        self, name: Optional[str], from_module: Optional[str] = None
    ) -> Optional[ClassInfo]:
        """The :class:`ClassInfo` a class-name string refers to.

        Same-module definitions win, then explicit imports, then a
        project-wide unique name; an ambiguous name resolves to None.
        """
        if not name:
            return None
        if from_module and from_module in self.modules:
            mod = self.modules[from_module]
            if name in mod.classes:
                return mod.classes[name]
            qualified = mod.imports.get(name)
            if qualified:
                target_mod, _, target_name = qualified.rpartition(".")
                target = self.modules.get(target_mod)
                if target and target_name in target.classes:
                    return target.classes[target_name]
        candidates = self._classes_by_name.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    def lookup_method(
        self, cls: Optional[ClassInfo], name: str, _depth: int = 0
    ) -> Optional[FunctionInfo]:
        """Find ``name`` on ``cls`` or (single-inheritance) its bases."""
        if cls is None or _depth > 8:
            return None
        if name in cls.methods:
            return cls.methods[name]
        for base_name in cls.base_names:
            base = self.resolve_class(base_name, from_module=cls.module)
            found = self.lookup_method(base, name, _depth + 1)
            if found is not None:
                return found
        return None

    def attr_class(
        self, cls: Optional[ClassInfo], attr: str
    ) -> Optional[ClassInfo]:
        """The class of ``self.<attr>`` inside methods of ``cls``."""
        if cls is None:
            return None
        return self.resolve_class(cls.attr_types.get(attr), from_module=cls.module)

    # -- expression typing and call resolution -------------------------------
    def type_of(
        self,
        expr: ast.AST,
        caller: FunctionInfo,
        local_types: Optional[Dict[str, str]] = None,
    ) -> Optional[ClassInfo]:
        """Static type of ``expr`` in ``caller``'s scope (or None)."""
        local_types = local_types or {}
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return caller.cls
            return self.resolve_class(
                local_types.get(expr.id), from_module=caller.module
            )
        if isinstance(expr, ast.Attribute):
            owner = self.type_of(expr.value, caller, local_types)
            return self.attr_class(owner, expr.attr)
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Name):
                cls = self.resolve_class(expr.func.id, from_module=caller.module)
                if cls is not None:
                    return cls
        return None

    def local_types(self, caller: FunctionInfo) -> Dict[str, str]:
        """Per-function variable -> class-name map (annotations + ctors)."""
        out = _param_annotations(caller.node)
        for node in ast.walk(caller.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                name = _first_class_call(node.value)
                if name is not None:
                    out[node.targets[0].id] = name
        return out

    def resolve_call(
        self,
        call: ast.Call,
        caller: FunctionInfo,
        local_types: Optional[Dict[str, str]] = None,
    ) -> Optional[FunctionInfo]:
        """The :class:`FunctionInfo` a call lands in, or None if opaque."""
        return self.resolve_callable(call.func, caller, local_types)

    def resolve_callable(
        self,
        func: ast.AST,
        caller: FunctionInfo,
        local_types: Optional[Dict[str, str]] = None,
    ) -> Optional[FunctionInfo]:
        """Like :meth:`resolve_call` for a bare callable expression
        (``target=self._loop`` thread targets, ``pool.submit(fn)``)."""
        local_types = local_types if local_types is not None else self.local_types(
            caller
        )
        if isinstance(func, ast.Name):
            cls = self.resolve_class(func.id, from_module=caller.module)
            if cls is not None:  # ClassName(...) -> __init__
                return self.lookup_method(cls, "__init__")
            mod = self.modules.get(caller.module)
            if mod and func.id in mod.functions:
                return mod.functions[func.id]
            if mod:
                qualified = mod.imports.get(func.id)
                if qualified:
                    target_mod, _, target_name = qualified.rpartition(".")
                    target = self.modules.get(target_mod)
                    if target and target_name in target.functions:
                        return target.functions[target_name]
            return None
        if isinstance(func, ast.Attribute):
            # ClassName.method (static-style call)
            if isinstance(func.value, ast.Name):
                cls = self.resolve_class(func.value.id, from_module=caller.module)
                if cls is not None and func.value.id[:1].isupper():
                    return self.lookup_method(cls, func.attr)
            owner = self.type_of(func.value, caller, local_types)
            if owner is not None:
                return self.lookup_method(owner, func.attr)
        return None
