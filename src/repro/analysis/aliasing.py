"""Arena/out= aliasing analysis for the allocation-free fast path
(AL001–AL003).

The training fast path (PR 4) routes every large intermediate through a
:class:`~repro.nn.arena.BufferArena`: ``arena.get(owner, role, shape)``
returns the *same* ndarray every step, and kernels write into it via
``out=``. That trades allocation for aliasing hazards, none of which
numpy will ever raise on:

- **AL001** — the same buffer is an input *and* the ``out=`` target of
  a non-elementwise op (``np.matmul(a, b, out=a)`` reads ``a`` while
  overwriting it: silent garbage). Elementwise ufuncs process value-by-
  value and are explicitly in-place-safe, so a whitelist exempts them.
- **AL002** — an arena view *escapes* the step scope: returned from a
  function or stored on ``self``. The arena recycles the buffer next
  step, so the escapee is silently overwritten. ``forward``/``backward``
  returns are exempt: the layer-chain contract documented in
  ``nn/arena.py`` is that a layer's output lives only until the next
  layer of the same step consumes it. Methods of an **arena-owner
  class** — one that binds an arena to an attribute whose name contains
  ``arena`` (e.g. ``repro.hw.plan.ExecutionPlan``) — are also exempt:
  owning the arena's lifecycle *is* holding long-lived views into it,
  and such classes carry their own staleness guard (the arena epoch
  check) instead of the step-scope contract.
- **AL003** — an arena view is read after the arena was reset
  (``set_arena(None)``, ``arena.clear()``): the storage may already be
  re-handed to another owner.

Taint is intraprocedural and syntactic: a variable is arena-tainted if
it is assigned from ``<arena>.get(...)``, from an ``out=``-carrying call
whose ``out=`` is tainted, from an alias-preserving view method
(``reshape``/``ravel``/``astype``/...) of a tainted variable, or from a
plain copy of one. Calls with unknown effects drop taint — like the
concurrency pass, unresolved facts never manufacture findings.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import FunctionInfo, ProjectIndex
from repro.analysis.diagnostics import Diagnostic

__all__ = ["analyze_aliasing", "ELEMENTWISE_SAFE"]

#: ufunc-style ops that are safe with ``out=`` aliasing an input: they
#: read and write each element exactly once, in order.
ELEMENTWISE_SAFE = {
    "add", "subtract", "multiply", "divide", "true_divide", "floor_divide",
    "maximum", "minimum", "clip", "copyto", "negative", "positive", "abs",
    "absolute", "fabs", "sign", "exp", "log", "sqrt", "square", "tanh",
    "where", "logical_and", "logical_or", "logical_not", "logical_xor",
    "bitwise_and", "bitwise_or", "bitwise_xor", "invert", "left_shift",
    "right_shift", "power", "mod", "remainder", "greater", "greater_equal",
    "less", "less_equal", "equal", "not_equal", "rint", "floor", "ceil",
    "round", "heaviside",
}

#: ndarray methods that return a view (or an alias under ``copy=False``)
#: of their receiver.
_VIEW_METHODS = {
    "reshape", "ravel", "view", "astype", "transpose", "squeeze", "swapaxes",
}
_VIEW_ATTRS = {"T"}

#: methods whose receiver-is-arena call resets/recycles all arena storage.
_RESET_METHODS = {"clear", "reset"}


def _call_name(func: ast.AST) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _is_arena_expr(expr: ast.AST, arena_locals: Set[str]) -> bool:
    """Is ``expr`` a reference to an arena object?"""
    if isinstance(expr, ast.Name):
        return expr.id in arena_locals or "arena" in expr.id.lower()
    if isinstance(expr, ast.Attribute):
        if "arena" in expr.attr.lower():
            return True
    return False


def _names_in(expr: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


def _class_owns_arena(cls_node: ast.ClassDef) -> bool:
    """Does this class bind an arena to one of its attributes?

    True when any method assigns ``self.<attr>`` where the attribute
    name contains ``arena`` — the syntactic signature of an arena-owner
    class (it manages the arena's lifecycle, so its stored views live
    exactly as long as the arena does).
    """
    for node in ast.walk(cls_node):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and "arena" in target.attr.lower()
            ):
                return True
    return False


class _FunctionAliasing:
    """One function's linear taint walk."""

    def __init__(self, fn: FunctionInfo, arena_owner: bool = False) -> None:
        self.fn = fn
        #: methods of an arena-owner class hold views for the arena's
        #: whole lifetime by design — AL002 escapes are exempt there.
        self.arena_owner = arena_owner
        self.tainted: Dict[str, Tuple[str, int]] = {}  # name -> (origin, line)
        #: names of locals bound to an arena object
        self.arena_locals: Set[str] = set()
        self.arena_dead_since: Optional[int] = None  # line of the reset
        self.diags: List[Diagnostic] = []

    # -- taint sources --------------------------------------------------------
    def _taint_of_expr(self, expr: ast.AST) -> Optional[str]:
        """Origin label when ``expr`` evaluates to an arena-aliased array."""
        if isinstance(expr, ast.Name):
            if expr.id in self.tainted:
                return self.tainted[expr.id][0]
            return None
        if isinstance(expr, ast.Attribute):
            if expr.attr in _VIEW_ATTRS:
                return self._taint_of_expr(expr.value)
            return None
        if isinstance(expr, ast.Call):
            name = _call_name(expr.func)
            # <arena>.get(...) — the canonical source
            if name == "get" and isinstance(expr.func, ast.Attribute) and (
                _is_arena_expr(expr.func.value, self.arena_locals)
            ):
                return f"arena.get at line {expr.lineno}"
            # view methods of a tainted receiver
            if name in _VIEW_METHODS and isinstance(expr.func, ast.Attribute):
                return self._taint_of_expr(expr.func.value)
            # any call returning its out= buffer
            for kw in expr.keywords:
                if kw.arg in ("out", "scratch"):
                    origin = self._taint_of_expr(kw.value)
                    if origin is not None:
                        return origin
            return None
        return None

    # -- per-statement processing ---------------------------------------------
    def _check_call(self, call: ast.Call) -> None:
        func_name = _call_name(call.func)
        out_kw = next(
            (kw for kw in call.keywords if kw.arg == "out"), None
        )
        if out_kw is not None and func_name not in ELEMENTWISE_SAFE:
            out_names = (
                {out_kw.value.id}
                if isinstance(out_kw.value, ast.Name)
                else set()
            )
            for arg in call.args:
                overlap = out_names & _names_in(arg) if out_names else set()
                if overlap:
                    name = sorted(overlap)[0]
                    self.diags.append(
                        Diagnostic(
                            "AL001",
                            f"'{name}' is both an input and the out= target "
                            f"of {func_name}(), which reads inputs while "
                            f"writing the output; the result is undefined",
                            path=self.fn.path,
                            line=call.lineno,
                            symbol=self.fn.qualname,
                            fix_hint="write into a distinct arena role, or "
                            "use an elementwise op",
                        )
                    )
        # arena reset?
        if (
            func_name in _RESET_METHODS
            and isinstance(call.func, ast.Attribute)
            and _is_arena_expr(call.func.value, self.arena_locals)
        ):
            self.arena_dead_since = call.lineno
        if func_name == "set_arena" and call.args:
            arg = call.args[0]
            if isinstance(arg, ast.Constant) and arg.value is None:
                self.arena_dead_since = call.lineno

    def _check_reads(self, expr: ast.AST) -> None:
        """AL003: tainted reads after the arena was reset."""
        if self.arena_dead_since is None:
            return
        for name in sorted(_names_in(expr) & set(self.tainted)):
            origin, _ = self.tainted[name]
            self.diags.append(
                Diagnostic(
                    "AL003",
                    f"'{name}' ({origin}) read after the arena was reset at "
                    f"line {self.arena_dead_since}; its storage may already "
                    f"be reused",
                    path=self.fn.path,
                    line=expr.lineno if hasattr(expr, "lineno") else 0,
                    symbol=self.fn.qualname,
                    fix_hint="copy the value out before resetting the arena",
                )
            )
            # report once per name
            del self.tainted[name]

    def _escape(self, expr: ast.AST, how: str, line: int) -> None:
        if self.arena_owner:
            return
        origin = self._taint_of_expr(expr)
        if origin is None and isinstance(expr, ast.Tuple):
            for elt in expr.elts:
                origin = self._taint_of_expr(elt)
                if origin is not None:
                    break
        if origin is None:
            return
        self.diags.append(
            Diagnostic(
                "AL002",
                f"arena view ({origin}) escapes via {how}; the arena "
                f"recycles this buffer on the next step, silently "
                f"overwriting the escapee",
                path=self.fn.path,
                line=line,
                symbol=self.fn.qualname,
                fix_hint="copy() before storing, or keep the view inside "
                "the step scope",
            )
        )

    def _handle_assign(self, node: ast.Assign) -> None:
        for call in ast.walk(node.value):
            if isinstance(call, ast.Call):
                self._check_call(call)
        self._check_reads(node.value)
        origin = self._taint_of_expr(node.value)
        # arena-object locals: arena = self._scratch_arena(x)
        is_arena_obj = False
        if isinstance(node.value, ast.Call):
            callee = _call_name(node.value.func)
            if "arena" in callee.lower():
                is_arena_obj = True
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_arena_obj:
                    self.arena_locals.add(target.id)
                    continue
                if origin is not None:
                    self.tainted[target.id] = (origin, node.lineno)
                else:
                    self.tainted.pop(target.id, None)
            elif isinstance(target, ast.Attribute) and (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self._escape(
                    node.value, f"self.{target.attr}", node.lineno
                )
            elif isinstance(target, ast.Tuple) and isinstance(
                node.value, ast.Tuple
            ) and len(target.elts) == len(node.value.elts):
                for t, v in zip(target.elts, node.value.elts):
                    if isinstance(t, ast.Name):
                        sub = self._taint_of_expr(v)
                        if sub is not None:
                            self.tainted[t.id] = (sub, node.lineno)
                        else:
                            self.tainted.pop(t.id, None)

    def run(self) -> List[Diagnostic]:
        exempt_returns = (
            self.fn.name in ("forward", "backward") or self.arena_owner
        )
        for stmt in _linear_statements(self.fn.node):
            if isinstance(stmt, ast.Assign):
                self._handle_assign(stmt)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                wrapped = ast.Assign(targets=[stmt.target], value=stmt.value)
                ast.copy_location(wrapped, stmt)
                self._handle_assign(wrapped)
            elif isinstance(stmt, ast.AugAssign):
                self._check_reads(stmt.value)
                for call in ast.walk(stmt.value):
                    if isinstance(call, ast.Call):
                        self._check_call(call)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                self._check_reads(stmt.value)
                for call in ast.walk(stmt.value):
                    if isinstance(call, ast.Call):
                        self._check_call(call)
                if not exempt_returns:
                    self._escape(stmt.value, "return", stmt.lineno)
            elif isinstance(stmt, ast.Expr):
                self._check_reads(stmt.value)
                for call in ast.walk(stmt.value):
                    if isinstance(call, ast.Call):
                        self._check_call(call)
            elif isinstance(stmt, (ast.If, ast.While)):
                self._check_reads(stmt.test)
            elif isinstance(stmt, ast.For):
                self._check_reads(stmt.iter)
        return self.diags


def _linear_statements(fn: ast.AST) -> Iterable[ast.stmt]:
    """Statements of ``fn`` in source order, bodies flattened, nested
    function/class definitions skipped (they run on their own clock)."""
    work: List[ast.stmt] = list(fn.body)
    while work:
        stmt = work.pop(0)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield stmt
        inner: List[ast.stmt] = []
        for field_name in ("body", "orelse", "finalbody"):
            inner.extend(getattr(stmt, field_name, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            inner.extend(handler.body)
        work[:0] = inner


def analyze_aliasing(
    sources: Iterable[Tuple[Path, ast.Module]],
    index: Optional[ProjectIndex] = None,
) -> List[Diagnostic]:
    """Run AL001–AL003 over every function in ``sources``."""
    if index is None:
        index = ProjectIndex.build(sources)
    diags: List[Diagnostic] = []
    owner_memo: Dict[int, bool] = {}
    for fn in index.all_functions():
        arena_owner = False
        if fn.cls is not None:
            key = id(fn.cls)
            if key not in owner_memo:
                owner_memo[key] = _class_owns_arena(fn.cls.node)
            arena_owner = owner_memo[key]
        diags.extend(_FunctionAliasing(fn, arena_owner=arena_owner).run())
    return diags
