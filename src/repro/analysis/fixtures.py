"""Seeded-defect sources for analyzer soundness tests.

Each constant is a complete, syntactically valid module containing
exactly one engineered defect (or none, for the ``CLEAN_*`` variants).
The test suite parses them and asserts the analyzers report *exactly*
the intended rule — no more, no less — which is the soundness contract:
an analyzer that cannot find a planted deadlock proves nothing by
finding the repo clean.
"""

from __future__ import annotations

import textwrap

__all__ = [
    "ABBA_DEADLOCK",
    "BLOCKING_UNDER_LOCK",
    "UNGUARDED_SHARED_WRITE",
    "MIXED_GUARDS",
    "LOCAL_LOCK",
    "CLEAN_LOCK_ORDER",
    "OVERLAPPING_OUT",
    "ARENA_ESCAPE",
    "USE_AFTER_RESET",
    "CLEAN_ARENA",
]

#: CC001 — classic ABBA across two lock classes: ``Ledger.post`` takes
#: Ledger._lock then (through a call) Journal._lock, while ``reconcile``
#: takes them in the opposite order.
ABBA_DEADLOCK = textwrap.dedent(
    '''
    import threading


    class Journal:
        def __init__(self):
            self._lock = threading.Lock()
            self.entries = []

        def record(self, entry):
            with self._lock:
                self.entries.append(entry)


    class Ledger:
        def __init__(self, journal: Journal):
            self._lock = threading.Lock()
            self.journal = journal
            self.balance = 0

        def post(self, amount):
            with self._lock:
                self.balance += amount
                self.journal.record(amount)


    def reconcile(journal: Journal, ledger: Ledger):
        with journal._lock:
            with ledger._lock:
                return ledger.balance
    '''
)

#: CC002 — Event.wait while holding the registry lock.
BLOCKING_UNDER_LOCK = textwrap.dedent(
    '''
    import threading


    class Registry:
        def __init__(self):
            self._lock = threading.Lock()
            self._ready = threading.Event()
            self.items = {}

        def wait_ready(self):
            with self._lock:
                self._ready.wait()
                return dict(self.items)
    '''
)

#: CC003 — counter guarded in poll() but written bare from the thread loop.
UNGUARDED_SHARED_WRITE = textwrap.dedent(
    '''
    import threading


    class Sampler:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0
            self._thread = threading.Thread(target=self._run)

        def _run(self):
            self.count = self.count + 1

        def poll(self):
            with self._lock:
                return self.count
    '''
)

#: CC004 — the same attribute guarded by two different locks.
MIXED_GUARDS = textwrap.dedent(
    '''
    import threading


    class Split:
        def __init__(self):
            self._read_lock = threading.Lock()
            self._write_lock = threading.Lock()
            self.value = 0

        def read(self):
            with self._read_lock:
                return self.value

        def write(self, v):
            with self._write_lock:
                self.value = v
    '''
)

#: CC005 — a lock created per call guards nothing.
LOCAL_LOCK = textwrap.dedent(
    '''
    import threading

    counter = 0


    def bump():
        lock = threading.Lock()
        with lock:
            global counter
            counter = counter + 1
    '''
)

#: Clean: two locks, always taken in the same order; Condition aliased
#: to the mutex; waits only on the held condition.
CLEAN_LOCK_ORDER = textwrap.dedent(
    '''
    import threading


    class Pipeline:
        def __init__(self):
            self._lock = threading.Lock()
            self._cv = threading.Condition(self._lock)
            self._stage_lock = threading.Lock()
            self.items = []

        def push(self, item):
            with self._lock:
                self.items.append(item)
                with self._stage_lock:
                    pass
            with self._cv:
                self._cv.notify()

        def pop(self):
            with self._cv:
                while not self.items:
                    self._cv.wait()
                with self._stage_lock:
                    return self.items.pop()
    '''
)

#: AL001 — the same arena view is an input and the out= of a matmul.
OVERLAPPING_OUT = textwrap.dedent(
    '''
    import numpy as np


    def fused_step(arena, w):
        view = arena.get(None, "acts", (8, 8))
        np.matmul(view, w, out=view)
        total = float(view.sum())
        return total
    '''
)

#: AL002 — an arena view stored on self outlives the step.
ARENA_ESCAPE = textwrap.dedent(
    '''
    class Layer:
        def warm(self, arena, x):
            scratch = arena.get(self, "scratch", x.shape)
            self.keep = scratch
            return None
    '''
)

#: AL003 — an arena view read after the arena was reset.
USE_AFTER_RESET = textwrap.dedent(
    '''
    def finish(arena):
        buf = arena.get(None, "logits", (4,))
        arena.clear()
        return float(buf.sum())
    '''
)

#: Clean: elementwise in-place ops, view consumed before reset, nothing
#: escapes a non-forward scope.
CLEAN_ARENA = textwrap.dedent(
    '''
    import numpy as np


    def safe_step(arena, w):
        view = arena.get(None, "acts", (8, 8))
        np.multiply(view, 2.0, out=view)
        np.add(view, 1.0, out=view)
        total = float(view.sum())
        arena.clear()
        return total
    '''
)
