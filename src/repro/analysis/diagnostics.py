"""Structured diagnostics shared by both analysis engines.

Every finding — whether from the model-graph verifier or the AST lint
pass — is a :class:`Diagnostic`: a rule id from the central
:data:`RULES` catalog, a severity, a location (file/line for lint,
model/layer for graph checks), a human message and a machine-actionable
fix hint. A :class:`DiagnosticReport` aggregates findings for one
target, applies suppressions and renders the CLI output, so `repro
lint` and `repro verify-model` print and exit identically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Severity",
    "Rule",
    "RULES",
    "Diagnostic",
    "DiagnosticReport",
    "rules_table",
]


class Severity(enum.Enum):
    """How bad a finding is; ordering is meaningful (ERROR > WARNING)."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return ("info", "warning", "error").index(self.value)

    def __str__(self) -> str:  # pragma: no cover - display sugar
        return self.value


@dataclass(frozen=True)
class Rule:
    """One entry of the analyzer rule catalog."""

    rule_id: str
    engine: str  # "graph" or "lint"
    severity: Severity
    title: str
    rationale: str


#: The complete rule catalog. Rule ids are stable API: they appear in
#: reports, suppression files and tests.
RULES: Dict[str, Rule] = {
    r.rule_id: r
    for r in (
        # -- model-graph verifier ------------------------------------------
        Rule("MG001", "graph", Severity.ERROR, "shape-inference-failure",
             "static shape/dtype propagation failed at a layer boundary"),
        Rule("MG002", "graph", Severity.ERROR, "bn-before-sign",
             "sign binarisation must be immediately preceded by BatchNorm "
             "so thresholds fold (§III-A)"),
        Rule("MG003", "graph", Severity.ERROR, "sign-before-maxpool",
             "max-pool must consume binary feature maps so hardware can "
             "pool with boolean OR (§III-B)"),
        Rule("MG004", "graph", Severity.ERROR, "conv-grammar",
             "conv layers must be followed by BatchNorm -> SignActivation "
             "to be threshold-foldable"),
        Rule("MG005", "graph", Severity.ERROR, "dense-grammar",
             "dense layers must be thresholded (BatchNorm -> sign) or the "
             "final BinaryDense logits layer"),
        Rule("MG006", "graph", Severity.ERROR, "missing-flatten",
             "a dense stage was reached with a non-flat activation shape"),
        Rule("MG007", "graph", Severity.ERROR, "pe-divisibility",
             "PE must divide the MVTU's output rows (channels/features), "
             "or synthesis would leave lanes idle (FINN folding)"),
        Rule("MG008", "graph", Severity.ERROR, "simd-divisibility",
             "SIMD must divide the MVTU's fan-in (cols)"),
        Rule("MG009", "graph", Severity.ERROR, "folding-arity",
             "the folding config must supply exactly one (PE, SIMD) pair "
             "per MVTU"),
        Rule("MG010", "graph", Severity.WARNING, "dead-layer",
             "layer is an identity on its inferred input domain "
             "(e.g. sign of an already-binary stream)"),
        Rule("MG011", "graph", Severity.WARNING, "dtype-narrowing",
             "a binary matrix engine consumes a non-binarised operand; "
             "deployment would silently narrow it to 1 bit"),
        Rule("MG012", "graph", Severity.WARNING, "resource-envelope",
             "on-chip weight storage exceeds every catalog device's BRAM "
             "envelope (hw/devices.py)"),
        Rule("MG013", "graph", Severity.ERROR, "conv-geometry",
             "hardware conv supports stride 1 and no padding only"),
        Rule("MG014", "graph", Severity.ERROR, "alien-layer",
             "layer type is not part of the deployable grammar"),
        # -- AST lint -------------------------------------------------------
        Rule("LK001", "lint", Severity.WARNING, "lock-discipline",
             "attribute written under a lock in one method but accessed "
             "lock-free in another"),
        Rule("NP001", "lint", Severity.WARNING, "global-np-random",
             "legacy global numpy RNG breaks seed plumbing; use "
             "repro.utils.rng"),
        Rule("NP002", "lint", Severity.WARNING, "inplace-on-view",
             "in-place numpy op on a variable bound to a potential view "
             "mutates the base array"),
        Rule("PY001", "lint", Severity.WARNING, "bare-except",
             "bare except swallows KeyboardInterrupt/SystemExit"),
        Rule("PY002", "lint", Severity.WARNING, "mutable-default",
             "mutable default argument is shared across calls"),
        # -- interprocedural concurrency analysis -----------------------------
        Rule("CC001", "concurrency", Severity.ERROR, "lock-order-cycle",
             "the global lock-acquisition-order graph has a cycle; two "
             "threads interleaving those paths deadlock"),
        Rule("CC002", "concurrency", Severity.WARNING, "blocking-under-lock",
             "a mutex is held around a call that can block indefinitely "
             "(Event.wait, queue.get, a may-block callee)"),
        Rule("CC003", "concurrency", Severity.WARNING, "unguarded-shared-write",
             "an attribute guarded elsewhere is written lock-free from "
             "code reachable from a thread entry point"),
        Rule("CC004", "concurrency", Severity.WARNING, "inconsistent-guard",
             "the same attribute is guarded by different locks in "
             "different methods, so no lock actually protects it"),
        Rule("CC005", "concurrency", Severity.WARNING, "function-local-lock",
             "a lock created as a function local is born unshared and "
             "excludes nothing"),
        # -- arena aliasing analysis ------------------------------------------
        Rule("AL001", "aliasing", Severity.ERROR, "overlapping-out",
             "the same buffer is an input and the out= target of a "
             "non-elementwise op; the result is undefined"),
        Rule("AL002", "aliasing", Severity.WARNING, "arena-view-escape",
             "an arena-backed view escapes its step scope (stored on "
             "self or returned); the arena will recycle it"),
        Rule("AL003", "aliasing", Severity.WARNING, "use-after-arena-reset",
             "an arena-backed view is read after the arena was reset"),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding, printable and suppressible.

    ``path`` is a source file for lint findings and a model name for
    graph findings; ``symbol`` is the qualified anchor used by the
    suppression baseline (``Class.attr``, ``function``, or a layer
    name).
    """

    rule_id: str
    message: str
    path: str = ""
    line: Optional[int] = None
    symbol: str = ""
    fix_hint: str = ""
    severity: Optional[Severity] = None

    def __post_init__(self) -> None:
        if self.rule_id not in RULES:
            raise ValueError(f"unknown rule id {self.rule_id!r}")
        if self.severity is None:
            object.__setattr__(self, "severity", RULES[self.rule_id].severity)

    @property
    def rule(self) -> Rule:
        return RULES[self.rule_id]

    @property
    def location(self) -> str:
        loc = self.path
        if self.line is not None:
            loc += f":{self.line}"
        if self.symbol:
            loc += f" ({self.symbol})" if loc else self.symbol
        return loc

    def render(self) -> str:
        out = f"{self.location}: {self.severity} {self.rule_id}: {self.message}"
        if self.fix_hint:
            out += f"\n    hint: {self.fix_hint}"
        return out


class DiagnosticReport:
    """Findings for one analysis target, plus the suppressed remainder."""

    def __init__(self, target: str = "") -> None:
        self.target = target
        self.diagnostics: List[Diagnostic] = []
        self.suppressed: List[Tuple[Diagnostic, str]] = []  # (diag, why)
        #: baseline entries that matched nothing (set by the lint driver).
        self.stale_entries: list = []
        #: the Baseline the driver applied, for --prune-baseline.
        self.baseline = None

    # -- collection ----------------------------------------------------------
    def add(self, diag: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diag)
        return diag

    def emit(self, rule_id: str, message: str, **kwargs) -> Diagnostic:
        """Shorthand: build and add a :class:`Diagnostic`."""
        return self.add(Diagnostic(rule_id, message, **kwargs))

    def suppress(self, diag: Diagnostic, justification: str) -> None:
        self.diagnostics.remove(diag)
        self.suppressed.append((diag, justification))

    def extend(self, other: "DiagnosticReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.suppressed.extend(other.suppressed)

    # -- queries -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    @property
    def rule_ids(self) -> List[str]:
        return [d.rule_id for d in self.diagnostics]

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def clean(self, fail_on: Severity = Severity.WARNING) -> bool:
        """True when no finding at or above ``fail_on`` severity remains."""
        return not any(d.severity.rank >= fail_on.rank for d in self.diagnostics)

    def exit_code(self, fail_on: Severity = Severity.WARNING) -> int:
        return 0 if self.clean(fail_on) else 1

    # -- machine-readable output ---------------------------------------------
    def to_dict(self) -> dict:
        """Stable JSON-ready structure (``repro lint --format json``)."""

        def one(diag: Diagnostic) -> dict:
            return {
                "rule_id": diag.rule_id,
                "severity": str(diag.severity),
                "message": diag.message,
                "path": diag.path,
                "line": diag.line,
                "symbol": diag.symbol,
                "fix_hint": diag.fix_hint,
            }

        return {
            "target": self.target,
            "diagnostics": [one(d) for d in self.diagnostics],
            "suppressed": [
                {**one(d), "justification": why}
                for d, why in self.suppressed
            ],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "suppressed": len(self.suppressed),
            },
        }

    def to_sarif(self) -> dict:
        """SARIF 2.1.0 log, one run, rule metadata from :data:`RULES`.

        Suppressed findings are included with a SARIF ``suppressions``
        entry so CI annotations show (but do not fail on) them.
        """
        used = sorted(
            {d.rule_id for d in self.diagnostics}
            | {d.rule_id for d, _ in self.suppressed}
        )
        rule_index = {rule_id: i for i, rule_id in enumerate(used)}
        sarif_level = {"error": "error", "warning": "warning", "info": "note"}

        def result(diag: Diagnostic, justification: Optional[str]) -> dict:
            out = {
                "ruleId": diag.rule_id,
                "ruleIndex": rule_index[diag.rule_id],
                "level": sarif_level[str(diag.severity)],
                "message": {"text": diag.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": diag.path},
                            "region": {"startLine": diag.line or 1},
                        },
                        **(
                            {
                                "logicalLocations": [
                                    {"fullyQualifiedName": diag.symbol}
                                ]
                            }
                            if diag.symbol
                            else {}
                        ),
                    }
                ],
            }
            if justification is not None:
                out["suppressions"] = [
                    {
                        "kind": "external",
                        "justification": justification,
                    }
                ]
            return out

        return {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "informationUri": (
                                "https://github.com/binarycop/repro"
                            ),
                            "rules": [
                                {
                                    "id": rule_id,
                                    "name": RULES[rule_id].title,
                                    "shortDescription": {
                                        "text": RULES[rule_id].title
                                    },
                                    "fullDescription": {
                                        "text": RULES[rule_id].rationale
                                    },
                                    "defaultConfiguration": {
                                        "level": sarif_level[
                                            str(RULES[rule_id].severity)
                                        ]
                                    },
                                }
                                for rule_id in used
                            ],
                        }
                    },
                    "results": [
                        *(result(d, None) for d in self.diagnostics),
                        *(result(d, why) for d, why in self.suppressed),
                    ],
                }
            ],
        }

    # -- rendering -----------------------------------------------------------
    def render(self) -> str:
        lines = []
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (-d.severity.rank, d.path, d.line or 0, d.rule_id),
        )
        for diag in ordered:
            lines.append(diag.render())
        summary = (
            f"{self.target}: " if self.target else ""
        ) + (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
            + (f", {len(self.suppressed)} suppressed" if self.suppressed else "")
        )
        if not self.diagnostics:
            summary += " — clean"
        lines.append(summary)
        return "\n".join(lines)


def rules_table() -> str:
    """Markdown table of the rule catalog (used by docs and ``--rules``)."""
    lines = [
        "| rule | engine | severity | title |",
        "|------|--------|----------|-------|",
    ]
    for rule in RULES.values():
        lines.append(
            f"| {rule.rule_id} | {rule.engine} | {rule.severity} | "
            f"{rule.title} |"
        )
    return "\n".join(lines)
