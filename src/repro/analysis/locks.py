"""Lock resolution and per-function lock/attribute event extraction.

The first half answers *what locks exist*: every ``threading.Lock`` /
``RLock`` / ``Condition`` / ``(Bounded)Semaphore`` bound to an instance
attribute (plain assignment, dataclass ``field(default_factory=...)``,
or buried inside a container comprehension like ``WorkerPool._slots``)
or to a module-level global. A ``Condition(self._lock)`` records an
*alias*: acquiring the condition acquires the underlying lock, so the
two must be one node for held-set and ordering purposes.

The second half answers *what one function does with them*: a
syntax-directed walk that tracks the set of locks held at every
statement (``with self._lock:`` scoping, ``x.acquire()``/``x.release()``
pairs, locals bound to lock attributes) and records four event streams —
acquisitions, resolved/opaque call sites, ``self`` attribute accesses
and potentially-blocking calls — each stamped with the held set at that
point. The concurrency rules are all written against these summaries.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.callgraph import ClassInfo, FunctionInfo, ProjectIndex

__all__ = [
    "LOCK_FACTORIES",
    "LockInfo",
    "LockRegistry",
    "resolve_locks",
    "Acquisition",
    "CallSite",
    "AttrAccess",
    "BlockingSite",
    "FunctionEvents",
    "extract_events",
]

#: threading factories that create a mutual-exclusion primitive.
LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
#: factories that create waitable-but-not-lock primitives (CC002 fodder).
EVENT_FACTORIES = {"Event", "Barrier"}


@dataclass(frozen=True)
class LockInfo:
    """One lock-valued attribute (or module global)."""

    ident: str  # unique: "module::Class.attr" or "module::NAME"
    display: str  # short: "Class.attr" / "NAME"
    kind: str  # Lock | RLock | Condition | Semaphore | BoundedSemaphore
    path: str
    line: int
    alias_of: Optional[str] = None  # ident of the underlying lock


class LockRegistry:
    """All resolved locks, with alias-chasing and per-class lookup."""

    def __init__(self) -> None:
        self.locks: Dict[str, LockInfo] = {}
        #: idents of Event-like waitables (not locks, but block waiters).
        self.events: Set[str] = set()

    def add(self, info: LockInfo) -> None:
        self.locks.setdefault(info.ident, info)

    def root(self, ident: str) -> str:
        """Follow the alias chain to the underlying lock identity."""
        seen = set()
        while ident in self.locks and self.locks[ident].alias_of:
            if ident in seen:  # defensive: cyclic aliases cannot normally occur
                break
            seen.add(ident)
            ident = self.locks[ident].alias_of
        return ident

    def class_lock_attrs(self, cls: ClassInfo) -> Set[str]:
        prefix = f"{cls.module}::{cls.name}."
        return {
            ident[len(prefix):]
            for ident in self.locks
            if ident.startswith(prefix)
        }

    def __len__(self) -> int:
        return len(self.locks)


def _factory_call(node: ast.AST, factories) -> Optional[ast.Call]:
    """The first ``threading.X(...)``/bare ``X(...)`` call (X in
    ``factories``) anywhere inside ``node``."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        if name in factories:
            return sub
    return None


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _factory_name(call: ast.Call) -> str:
    func = call.func
    return func.attr if isinstance(func, ast.Attribute) else func.id


def resolve_locks(index: ProjectIndex) -> LockRegistry:
    """Find every lock attribute and module-level lock in the project."""
    registry = LockRegistry()
    for mod in index.modules.values():
        # module-level locks: NAME = threading.Lock()
        for node in mod.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and (
                isinstance(node.targets[0], ast.Name)
            ):
                call = _factory_call(node.value, LOCK_FACTORIES)
                if call is not None and isinstance(node.value, ast.Call):
                    registry.add(
                        LockInfo(
                            ident=f"{mod.name}::{node.targets[0].id}",
                            display=node.targets[0].id,
                            kind=_factory_name(call),
                            path=mod.path,
                            line=node.lineno,
                        )
                    )
        for cls in mod.classes.values():
            _resolve_class_locks(registry, cls)
    return registry


def _resolve_class_locks(registry: LockRegistry, cls: ClassInfo) -> None:
    pending_aliases: List[Tuple[LockInfo, str]] = []

    def add_attr(attr: str, call: ast.Call, line: int) -> None:
        kind = _factory_name(call)
        info = LockInfo(
            ident=f"{cls.module}::{cls.name}.{attr}",
            display=f"{cls.name}.{attr}",
            kind=kind,
            path=cls.path,
            line=line,
        )
        if kind in EVENT_FACTORIES:
            registry.events.add(info.ident)
            return
        # Condition(self._lock): acquiring the condition acquires the lock.
        if kind == "Condition" and call.args:
            underlying = _self_attr(call.args[0])
            if underlying is not None:
                pending_aliases.append((info, underlying))
                return
        registry.add(info)

    # dataclass-style: `_lock: threading.Lock = field(default_factory=...)`
    for item in cls.node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            if item.value is None:
                continue
            call = _factory_call(item.value, LOCK_FACTORIES | EVENT_FACTORIES)
            if call is None:
                # default_factory=threading.Lock passes the factory
                # *uncalled* — look for the bare reference.
                for sub in ast.walk(item.value):
                    if (
                        isinstance(sub, ast.keyword)
                        and sub.arg == "default_factory"
                    ):
                        name = (
                            sub.value.attr
                            if isinstance(sub.value, ast.Attribute)
                            else getattr(sub.value, "id", None)
                        )
                        if name in LOCK_FACTORIES:
                            registry.add(
                                LockInfo(
                                    ident=f"{cls.module}::{cls.name}."
                                    f"{item.target.id}",
                                    display=f"{cls.name}.{item.target.id}",
                                    kind=name,
                                    path=cls.path,
                                    line=item.lineno,
                                )
                            )
            else:
                add_attr(item.target.id, call, item.lineno)

    for method in cls.methods.values():
        for node in ast.walk(method.node):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                # self._slots: Dict[str, BoundedSemaphore] = {...}
                targets, value = [node.target], node.value
            else:
                continue
            for target in targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                call = _factory_call(value, LOCK_FACTORIES | EVENT_FACTORIES)
                if call is not None:
                    add_attr(attr, call, node.lineno)

    for info, underlying in pending_aliases:
        target_ident = f"{cls.module}::{cls.name}.{underlying}"
        registry.add(
            LockInfo(
                ident=info.ident,
                display=info.display,
                kind=info.kind,
                path=info.path,
                line=info.line,
                alias_of=target_ident if target_ident in registry.locks else None,
            )
        )


# -- per-function event extraction ---------------------------------------------

#: a held lock: (ident, acquisition file, acquisition line)
Held = Tuple[str, str, int]


@dataclass(frozen=True)
class Acquisition:
    ident: str
    path: str
    line: int
    held: Tuple[Held, ...]  # locks already held when this one is taken


@dataclass(frozen=True)
class CallSite:
    callee: Optional[FunctionInfo]  # None = opaque
    node: ast.Call
    held: Tuple[Held, ...]
    line: int


@dataclass(frozen=True)
class AttrAccess:
    attr: str
    is_write: bool
    held: Tuple[Held, ...]
    line: int


@dataclass(frozen=True)
class BlockingSite:
    what: str  # human label, e.g. "Event.wait" / "time.sleep"
    receiver_root: Optional[str]  # lock root when the receiver is a Condition
    path: str
    line: int
    held: Tuple[Held, ...]


@dataclass
class FunctionEvents:
    """Everything the concurrency rules need to know about one function."""

    fn: FunctionInfo
    acquisitions: List[Acquisition] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    attr_accesses: List[AttrAccess] = field(default_factory=list)
    blocking: List[BlockingSite] = field(default_factory=list)
    #: lock factories bound to plain locals (CC005 fodder): (name, line)
    local_locks: List[Tuple[str, int]] = field(default_factory=list)


def extract_events(
    fn: FunctionInfo, index: ProjectIndex, registry: LockRegistry
) -> FunctionEvents:
    """One pass over ``fn``'s body collecting lock-relevant events."""
    events = FunctionEvents(fn=fn)
    local_types = index.local_types(fn)
    # locals bound to a lock object: name -> lock ident
    lock_locals: Dict[str, str] = {}
    # .acquire()d locks not yet .release()d (per-function approximation)
    explicit_held: List[Held] = []
    path = fn.path

    def lock_ident_of(expr: ast.AST) -> Optional[str]:
        """Resolve an expression to a lock identity, if it is one."""
        attr = _self_attr(expr)
        if attr is not None and fn.cls is not None:
            ident = f"{fn.cls.module}::{fn.cls.name}.{attr}"
            if ident in registry.locks or ident in registry.events:
                return ident
            return None
        if isinstance(expr, ast.Attribute):
            # other._lock, where `other` has a statically known class
            owner = index.type_of(expr.value, fn, local_types)
            if owner is not None:
                ident = f"{owner.module}::{owner.name}.{expr.attr}"
                if ident in registry.locks or ident in registry.events:
                    return ident
            return None
        if isinstance(expr, ast.Name):
            if expr.id in lock_locals:
                return lock_locals[expr.id]
            ident = f"{fn.module}::{expr.id}"
            if ident in registry.locks:
                return ident
            return None
        # self._slots[key] — a lock pulled out of a lock container
        if isinstance(expr, ast.Subscript):
            return lock_ident_of(expr.value)
        return None

    def held_now(scoped: Tuple[Held, ...]) -> Tuple[Held, ...]:
        return scoped + tuple(explicit_held)

    def record_acquisition(ident: str, line: int, scoped: Tuple[Held, ...]) -> None:
        if ident in registry.events:
            return  # events are not locks; they never order anything
        events.acquisitions.append(
            Acquisition(ident=ident, path=path, line=line, held=held_now(scoped))
        )

    def visit_call(node: ast.Call, scoped: Tuple[Held, ...]) -> None:
        held = held_now(scoped)
        func = node.func
        # x.acquire() / x.release()
        if isinstance(func, ast.Attribute) and func.attr in ("acquire", "release"):
            ident = lock_ident_of(func.value)
            if ident is not None and ident not in registry.events:
                if func.attr == "acquire":
                    record_acquisition(ident, node.lineno, scoped)
                    explicit_held.append((ident, path, node.lineno))
                else:
                    for i, (held_ident, _, _) in enumerate(explicit_held):
                        if held_ident == ident:
                            explicit_held.pop(i)
                            break
                return
        # blocking calls
        blocked = _blocking_label(func, lock_ident_of, registry)
        if blocked is not None:
            label, receiver_root = blocked
            events.blocking.append(
                BlockingSite(
                    what=label,
                    receiver_root=receiver_root,
                    path=path,
                    line=node.lineno,
                    held=held,
                )
            )
        callee = index.resolve_call(node, fn, local_types)
        events.calls.append(
            CallSite(callee=callee, node=node, held=held, line=node.lineno)
        )

    def visit(node: ast.AST, scoped: Tuple[Held, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
            node is not fn.node
        ):
            return  # nested defs run later, under their own discipline
        if isinstance(node, ast.With):
            entered: List[Held] = []
            for item in node.items:
                visit(item.context_expr, scoped)
                ident = None
                if isinstance(item.context_expr, ast.Call):
                    pass  # `with lock_factory():` etc. — not a held lock attr
                else:
                    ident = lock_ident_of(item.context_expr)
                if ident is not None and ident not in registry.events:
                    record_acquisition(
                        ident, item.context_expr.lineno, scoped + tuple(entered)
                    )
                    entered.append((ident, path, item.context_expr.lineno))
            inner = scoped + tuple(entered)
            for stmt in node.body:
                visit(stmt, inner)
            return
        if isinstance(node, ast.Assign):
            visit(node.value, scoped)
            # track locals bound to locks: x = self._lock / x = self._slots[k]
            targets = node.targets
            if len(targets) == 1 and isinstance(targets[0], ast.Tuple) and (
                isinstance(node.value, ast.Tuple)
                and len(targets[0].elts) == len(node.value.elts)
            ):
                pairs = list(zip(targets[0].elts, node.value.elts))
            else:
                pairs = [(t, node.value) for t in targets]
            for target, value in pairs:
                if isinstance(target, ast.Name):
                    ident = lock_ident_of(value)
                    if ident is not None:
                        lock_locals[target.name if False else target.id] = ident
                    else:
                        lock_locals.pop(target.id, None)
                        call = (
                            _factory_call(value, LOCK_FACTORIES)
                            if isinstance(value, ast.Call)
                            else None
                        )
                        if call is not None and value is call:
                            events.local_locks.append((target.id, node.lineno))
                            lock_locals[target.id] = f"<local>::{target.id}"
                visit_attr_target(target, scoped)
            return
        if isinstance(node, ast.Call):
            for child in ast.iter_child_nodes(node):
                visit(child, scoped)
            visit_call(node, scoped)
            return
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None:
                events.attr_accesses.append(
                    AttrAccess(
                        attr=attr,
                        is_write=isinstance(node.ctx, (ast.Store, ast.Del)),
                        held=held_now(scoped),
                        line=node.lineno,
                    )
                )
        for child in ast.iter_child_nodes(node):
            visit(child, scoped)

    def visit_attr_target(target: ast.AST, scoped: Tuple[Held, ...]) -> None:
        attr = _self_attr(target)
        if attr is not None:
            events.attr_accesses.append(
                AttrAccess(
                    attr=attr, is_write=True, held=held_now(scoped),
                    line=target.lineno,
                )
            )
        else:
            for child in ast.iter_child_nodes(target):
                visit(child, scoped)

    for stmt in fn.node.body:
        visit(stmt, ())
    return events


#: module-level callables that block the calling thread.
_BLOCKING_MODULE_CALLS = {
    ("time", "sleep"): "time.sleep",
}
#: method names that block when invoked on a waitable.
_BLOCKING_METHODS = {"wait": "wait", "get": "queue.get", "put": "queue.put"}


def _blocking_label(
    func: ast.AST, lock_ident_of, registry: LockRegistry
) -> Optional[Tuple[str, Optional[str]]]:
    """``(label, receiver_lock_root)`` when ``func`` is a blocking call.

    The receiver root is non-None only for ``Condition.wait`` — the one
    blocking call that *releases* its own lock while waiting, which the
    CC002 rule must exempt when that lock is the one held.
    """
    if isinstance(func, ast.Attribute):
        if (
            isinstance(func.value, ast.Name)
            and (func.value.id, func.attr) in _BLOCKING_MODULE_CALLS
        ):
            return _BLOCKING_MODULE_CALLS[(func.value.id, func.attr)], None
        if func.attr == "wait":
            ident = lock_ident_of(func.value)
            if ident is not None and ident in registry.events:
                return "Event.wait", None
            if ident is not None:
                info = registry.locks.get(ident)
                if info is not None and info.kind == "Condition":
                    return "Condition.wait", registry.root(ident)
                return f"{info.kind}.wait" if info else "wait", None
            # UNRESOLVED receiver: only treat known waitable names as
            # blocking; arbitrary `.wait()` would be too noisy.
            name = getattr(func.value, "attr", getattr(func.value, "id", ""))
            if name.lstrip("_") in ("done", "stop", "event", "ready", "closed",
                                    "finished", "cv", "cond", "condition"):
                return "wait", None
            return None
        if func.attr in ("get", "put"):
            # only stdlib queue.Queue-ish receivers by name
            name = getattr(func.value, "attr", getattr(func.value, "id", ""))
            if "queue" in name.lower() and lock_ident_of(func.value) is None:
                return _BLOCKING_METHODS[func.attr], None
    return None
