"""Lint driver: walk source trees, run analysis passes, apply the baseline.

``lint_paths`` is the engine behind ``repro lint``: it collects
``*.py`` files (a file path is taken as-is, a directory is walked
recursively), parses each exactly once, then runs the selected passes
over the shared trees:

- ``ast`` — the per-file rules in :mod:`repro.analysis.astrules`;
- ``concurrency`` — the whole-program lock-order / shared-state
  analysis (:mod:`repro.analysis.concurrency`, CC001–CC005);
- ``aliasing`` — the arena/``out=`` aliasing pass
  (:mod:`repro.analysis.aliasing`, AL001–AL003).

Baseline-matched findings move into the report's ``suppressed`` list;
baseline entries that matched nothing (for an engine that actually ran)
are recorded on ``report.stale_entries`` so the CLI can warn and
``--prune-baseline`` can drop them. Exit semantics live on the report:
any unsuppressed finding makes ``repro lint`` exit non-zero.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

import ast

from repro.analysis.aliasing import analyze_aliasing
from repro.analysis.astrules import run_ast_rules
from repro.analysis.baseline import Baseline, BaselineEntry, find_baseline
from repro.analysis.concurrency import analyze_concurrency
from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, RULES

__all__ = [
    "PASSES", "collect_sources", "lint_file", "lint_paths", "prune_baseline",
]

#: Directories never descended into — and never accepted even when a
#: file inside one is passed explicitly.
_SKIP_DIRS = {"__pycache__", ".git", ".binarycop_cache"}

#: All analysis passes, in execution order.
PASSES = ("ast", "concurrency", "aliasing")

#: pass name -> the rule-catalog engine whose findings it produces.
_PASS_ENGINES = {
    "ast": "lint",
    "concurrency": "concurrency",
    "aliasing": "aliasing",
}


def collect_sources(paths: Iterable[Path]) -> List[Path]:
    """Every python file under ``paths``, stable-sorted, deduplicated.

    The skip-set applies to explicitly named files too (a stray
    ``__pycache__`` artifact is never lintable), and deduplication is on
    resolved paths so the same file reached through a symlink and
    directly collapses to one entry.
    """
    out = []
    seen = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not (set(p.parts) & _SKIP_DIRS)
            )
        elif path.suffix == ".py":
            if set(path.resolve().parts) & _SKIP_DIRS:
                continue
            candidates = [path]
        else:
            raise ValueError(f"{path}: not a python file or directory")
        for c in candidates:
            key = c.resolve()
            if key not in seen:
                seen.add(key)
                out.append(c)
    return out


def _parse_file(path: Path) -> Tuple[Optional[ast.Module], List[Diagnostic]]:
    source = Path(path).read_text()
    try:
        return ast.parse(source, filename=str(path)), []
    except SyntaxError as exc:
        # A file the linter cannot parse is a shape-inference failure of
        # its own kind; surface it via the closest existing rule.
        return None, [
            Diagnostic(
                "PY001",
                f"file does not parse: {exc.msg}",
                path=str(path), line=exc.lineno or 1,
                fix_hint="fix the syntax error",
            )
        ]


def lint_file(path: Path) -> List[Diagnostic]:
    """All raw (un-suppressed) per-file AST findings for one file."""
    tree, diags = _parse_file(path)
    if tree is None:
        return diags
    return list(run_ast_rules(str(path), tree))


def lint_paths(
    paths: Sequence[Path],
    baseline: Optional[Baseline] = None,
    baseline_path: Optional[Path] = None,
    passes: Sequence[str] = PASSES,
) -> DiagnosticReport:
    """Lint ``paths``; returns the aggregated, baseline-filtered report.

    When neither ``baseline`` nor ``baseline_path`` is given, the
    suppression file is discovered by walking up from the first path
    (``.repro-lint-baseline``).
    """
    unknown = set(passes) - set(PASSES)
    if unknown:
        raise ValueError(
            f"unknown pass(es) {sorted(unknown)!r}; valid: {', '.join(PASSES)}"
        )
    files = collect_sources(paths)
    if baseline is None:
        if baseline_path is None and files:
            baseline_path = find_baseline(files[0])
        baseline = (
            Baseline.load(baseline_path) if baseline_path else Baseline()
        )
    report = DiagnosticReport(
        target=", ".join(str(p) for p in paths)
    )

    raw: List[Diagnostic] = []
    parsed: List[Tuple[Path, ast.Module]] = []
    for path in files:
        tree, parse_diags = _parse_file(path)
        raw.extend(parse_diags)
        if tree is not None:
            parsed.append((path, tree))
    if "ast" in passes:
        for path, tree in parsed:
            raw.extend(run_ast_rules(str(path), tree))
    if "concurrency" in passes:
        raw.extend(analyze_concurrency(parsed))
    if "aliasing" in passes:
        raw.extend(analyze_aliasing(parsed))

    used_entries = set()
    for diag in raw:
        entry = baseline.match(diag)
        if entry is not None:
            used_entries.add(id(entry))
            report.suppressed.append((diag, entry.justification))
        else:
            report.add(diag)

    # A baseline entry is stale only relative to engines that ran: an
    # ast-only invocation must not call the AL002 entries dead.
    active_engines = {_PASS_ENGINES[p] for p in passes}
    report.stale_entries = [
        entry
        for entry in baseline.entries
        if id(entry) not in used_entries
        and entry.rule_id in RULES
        and RULES[entry.rule_id].engine in active_engines
    ]
    report.baseline = baseline
    return report


def prune_baseline(report: DiagnosticReport) -> Optional[Baseline]:
    """The report's baseline minus its stale entries (or None when the
    report carries no baseline). Justifications pass through verbatim."""
    baseline: Optional[Baseline] = getattr(report, "baseline", None)
    if baseline is None:
        return None
    stale = {id(e) for e in getattr(report, "stale_entries", [])}
    kept: List[BaselineEntry] = [
        e for e in baseline.entries if id(e) not in stale
    ]
    return Baseline(kept, path=baseline.path)
