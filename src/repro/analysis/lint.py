"""Lint driver: walk source trees, run AST rules, apply the baseline.

``lint_paths`` is the engine behind ``repro lint``: it collects
``*.py`` files (a file path is taken as-is, a directory is walked
recursively), parses each once, runs every rule in
:mod:`repro.analysis.astrules` and moves baseline-matched findings into
the report's ``suppressed`` list. Exit semantics live on the report:
any unsuppressed finding makes ``repro lint`` exit non-zero.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence

import ast

from repro.analysis.astrules import run_ast_rules
from repro.analysis.baseline import Baseline, find_baseline
from repro.analysis.diagnostics import Diagnostic, DiagnosticReport

__all__ = ["collect_sources", "lint_file", "lint_paths"]

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".binarycop_cache"}


def collect_sources(paths: Iterable[Path]) -> List[Path]:
    """Every python file under ``paths``, stable-sorted, deduplicated."""
    out = []
    seen = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not (set(p.parts) & _SKIP_DIRS)
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise ValueError(f"{path}: not a python file or directory")
        for c in candidates:
            key = c.resolve()
            if key not in seen:
                seen.add(key)
                out.append(c)
    return out


def lint_file(path: Path) -> List[Diagnostic]:
    """All raw (un-suppressed) findings for one file."""
    source = Path(path).read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        # A file the linter cannot parse is a shape-inference failure of
        # its own kind; surface it via the closest existing rule.
        return [
            Diagnostic(
                "PY001",
                f"file does not parse: {exc.msg}",
                path=str(path), line=exc.lineno or 1,
                fix_hint="fix the syntax error",
            )
        ]
    return list(run_ast_rules(str(path), tree))


def lint_paths(
    paths: Sequence[Path],
    baseline: Optional[Baseline] = None,
    baseline_path: Optional[Path] = None,
) -> DiagnosticReport:
    """Lint ``paths``; returns the aggregated, baseline-filtered report.

    When neither ``baseline`` nor ``baseline_path`` is given, the
    suppression file is discovered by walking up from the first path
    (``.repro-lint-baseline``).
    """
    files = collect_sources(paths)
    if baseline is None:
        if baseline_path is None and files:
            baseline_path = find_baseline(files[0])
        baseline = (
            Baseline.load(baseline_path) if baseline_path else Baseline()
        )
    report = DiagnosticReport(
        target=", ".join(str(p) for p in paths)
    )
    for path in files:
        for diag in lint_file(path):
            entry = baseline.match(diag)
            if entry is not None:
                report.suppressed.append((diag, entry.justification))
            else:
                report.add(diag)
    return report
