"""AST lint rules (stdlib :mod:`ast` only, no third-party deps).

Each rule is a function ``(path, tree) -> Iterator[Diagnostic]``
registered in :data:`AST_RULES`. The rules are deliberately heuristic —
they are tuned for this codebase's conventions (``self._lock``
discipline in the serving layer, ``repro.utils.rng`` seed plumbing,
numpy-heavy numerics) and favour precision over recall: a finding
should either be fixed or be worth a justified baseline entry.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic

__all__ = ["AST_RULES", "run_ast_rules"]

_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}
#: Legacy module-level numpy RNG entry points (the seeded-global API).
_NP_RANDOM_LEGACY = {
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "binomial", "beta", "gamma", "poisson", "exponential",
    "get_state", "set_state", "RandomState",
}
#: Methods whose result may alias the receiver's buffer (numpy views).
_VIEW_METHODS = {"reshape", "ravel", "view", "transpose", "swapaxes", "squeeze"}


def _qualname_map(tree: ast.AST) -> Dict[ast.AST, str]:
    """Map every node to its enclosing ``Class.method`` qualname."""
    out: Dict[ast.AST, str] = {}

    def visit(node: ast.AST, scope: Tuple[str, ...]) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            scope = scope + (node.name,)
        out[node] = ".".join(scope)
        for child in ast.iter_child_nodes(node):
            visit(child, scope)

    visit(tree, ())
    return out


def _is_self_attr(node: ast.AST) -> Optional[str]:
    """The attribute name when ``node`` is ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


# -- PY001: bare except --------------------------------------------------------
def check_bare_except(path: str, tree: ast.AST) -> Iterator[Diagnostic]:
    qualnames = _qualname_map(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield Diagnostic(
                "PY001",
                "bare 'except:' also catches KeyboardInterrupt/SystemExit",
                path=path, line=node.lineno,
                symbol=qualnames.get(node, ""),
                fix_hint="catch 'Exception' (or something narrower)",
            )


# -- PY002: mutable default arguments ------------------------------------------
def check_mutable_defaults(path: str, tree: ast.AST) -> Iterator[Diagnostic]:
    qualnames = _qualname_map(tree)
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set")
            )
            if mutable:
                yield Diagnostic(
                    "PY002",
                    f"function {node.name!r} has a mutable default "
                    f"argument, shared across every call",
                    path=path, line=default.lineno,
                    symbol=qualnames.get(node, node.name),
                    fix_hint="default to None and create the container "
                             "inside the function",
                )


# -- NP001: global numpy RNG ---------------------------------------------------
def _np_random_member(node: ast.Attribute) -> Optional[str]:
    """``X`` for expressions of the form ``np.random.X`` / ``numpy.random.X``."""
    value = node.value
    if (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in ("np", "numpy")
    ):
        return node.attr
    return None


def check_global_np_random(path: str, tree: ast.AST) -> Iterator[Diagnostic]:
    qualnames = _qualname_map(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        member = _np_random_member(node)
        if member in _NP_RANDOM_LEGACY:
            yield Diagnostic(
                "NP001",
                f"np.random.{member} uses the legacy global RNG; seeds "
                f"set elsewhere leak into (or out of) this call",
                path=path, line=node.lineno,
                symbol=qualnames.get(node, ""),
                fix_hint="thread an RngLike through repro.utils.rng."
                         "as_generator/derive instead",
            )


# -- NP002: in-place op on a potential view ------------------------------------
def _is_view_expr(node: ast.AST) -> Optional[str]:
    """Source variable name when ``node`` is a likely-view of a Name."""
    # base slicing: v = u[1:], u[:, 0], u[::2] ...
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and _slice_contains_slice(node.slice)
    ):
        return node.value.id
    # transpose attribute: v = u.T
    if (
        isinstance(node, ast.Attribute)
        and node.attr == "T"
        and isinstance(node.value, ast.Name)
    ):
        return node.value.id
    # view-returning methods: v = u.reshape(...), u.ravel() ...
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _VIEW_METHODS
        and isinstance(node.func.value, ast.Name)
    ):
        return node.func.value.id
    return None


def _slice_contains_slice(node: ast.AST) -> bool:
    if isinstance(node, ast.Slice):
        return True
    if isinstance(node, ast.Tuple):
        return any(_slice_contains_slice(elt) for elt in node.elts)
    return False


def check_inplace_on_view(path: str, tree: ast.AST) -> Iterator[Diagnostic]:
    qualnames = _qualname_map(tree)
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        views: Dict[str, Tuple[str, int]] = {}  # var -> (source, line)
        for stmt in _ordered_statements(func):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name):
                target = stmt.targets[0].id
                source = _is_view_expr(stmt.value)
                if source is not None and source != target:
                    views[target] = (source, stmt.lineno)
                else:
                    views.pop(target, None)  # rebound to something else
            elif isinstance(stmt, ast.AugAssign) and \
                    isinstance(stmt.target, ast.Name) and \
                    stmt.target.id in views:
                source, bind_line = views[stmt.target.id]
                yield Diagnostic(
                    "NP002",
                    f"in-place op on {stmt.target.id!r}, bound to a "
                    f"potential view of {source!r} (line {bind_line}); "
                    f"this mutates {source!r} through the view",
                    path=path, line=stmt.lineno,
                    symbol=qualnames.get(func, func.name),
                    fix_hint=f"copy first ({stmt.target.id} = "
                             f"{stmt.target.id}.copy()) or write "
                             f"out-of-place",
                )


def _ordered_statements(func: ast.AST) -> Iterator[ast.stmt]:
    """All statements inside ``func`` in source order (nested blocks
    flattened, nested function bodies skipped — they run later)."""

    def walk(body) -> Iterator[ast.stmt]:
        for stmt in body:
            yield stmt
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for field_body in (
                getattr(stmt, "body", []),
                getattr(stmt, "orelse", []),
                getattr(stmt, "finalbody", []),
            ):
                yield from walk(field_body)
            for handler in getattr(stmt, "handlers", []):
                yield from walk(handler.body)

    yield from walk(func.body)


# -- LK001: lock discipline ----------------------------------------------------
def check_lock_discipline(path: str, tree: ast.AST) -> Iterator[Diagnostic]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield from _check_class_locks(path, node)


def _lock_attrs(cls: ast.ClassDef) -> Set[str]:
    """Instance attributes assigned from threading.Lock/RLock/Condition."""
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            attr = _is_self_attr(target)
            if attr is None:
                continue
            value = node.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, (ast.Attribute, ast.Name))
            ):
                func_name = (
                    value.func.attr
                    if isinstance(value.func, ast.Attribute)
                    else value.func.id
                )
                if func_name in _LOCK_FACTORIES:
                    locks.add(attr)
    return locks


def _check_class_locks(path: str, cls: ast.ClassDef) -> Iterator[Diagnostic]:
    locks = _lock_attrs(cls)
    if not locks:
        return

    # access records: attr -> list of (method, is_write, held, line)
    accesses: Dict[str, List[Tuple[str, bool, bool, int]]] = {}
    fields: Set[str] = set()

    def record(method: str, node: ast.AST, held: bool) -> None:
        attr = _is_self_attr(node)
        if attr is None or attr in locks or attr.startswith("__"):
            return
        is_write = isinstance(node.ctx, (ast.Store, ast.Del))
        if is_write:
            fields.add(attr)
        accesses.setdefault(attr, []).append(
            (method, is_write, held, node.lineno)
        )

    def walk(method: str, node: ast.AST, held: bool) -> None:
        if isinstance(node, ast.With):
            item_holds = any(
                _is_self_attr(item.context_expr) in locks
                for item in node.items
            )
            for item in node.items:
                walk(method, item.context_expr, held)
            for stmt in node.body:
                walk(method, stmt, held or item_holds)
            return
        if isinstance(node, ast.Attribute):
            record(method, node, held)
        for child in ast.iter_child_nodes(node):
            walk(method, child, held)

    for item in cls.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name in ("__init__", "__del__", "__repr__"):
            continue  # pre-publication / teardown: no other thread yet
        for stmt in item.body:
            walk(item.name, stmt, held=False)

    for attr in sorted(fields):
        recs = accesses.get(attr, [])
        locked_writes = [r for r in recs if r[1] and r[2]]
        if not locked_writes:
            continue
        writer_methods = {r[0] for r in locked_writes}
        unguarded = [
            r for r in recs if not r[2] and r[0] not in writer_methods
        ]
        if not unguarded:
            continue
        first = min(unguarded, key=lambda r: r[3])
        others = sorted({r[0] for r in unguarded})
        yield Diagnostic(
            "LK001",
            f"{cls.name}.{attr} is written under lock in "
            f"{sorted(writer_methods)} but accessed lock-free in "
            f"{others}",
            path=path, line=first[3],
            symbol=f"{cls.name}.{attr}",
            fix_hint="guard the access with the same lock, or record a "
                     "baseline entry explaining why the race is benign",
        )


AST_RULES = (
    check_lock_discipline,
    check_global_np_random,
    check_inplace_on_view,
    check_bare_except,
    check_mutable_defaults,
)


def run_ast_rules(path: str, tree: ast.AST) -> Iterator[Diagnostic]:
    """Run every registered AST rule over one parsed module."""
    for rule in AST_RULES:
        yield from rule(path, tree)
