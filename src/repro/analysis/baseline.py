"""Suppression baseline for intentional analyzer exceptions.

A baseline file records findings that are understood and accepted, one
per line::

    # comment
    <rule-id> <path> <symbol-or-*>  # justification

``path`` matches by normalized suffix so entries written repo-relative
(``src/repro/serving/request.py``) match however the linter is invoked;
``symbol`` is the diagnostic's qualified anchor (``Class.attr`` for the
lock rule, the enclosing function for expression rules, a layer name
for graph rules) or ``*`` to cover the whole file. The justification
comment is mandatory — an unexplained suppression is itself a finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import Iterable, List, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic, RULES

__all__ = ["BaselineEntry", "Baseline", "BASELINE_FILENAME", "find_baseline"]

BASELINE_FILENAME = ".repro-lint-baseline"


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding."""

    rule_id: str
    path: str
    symbol: str
    justification: str
    lineno: int = 0  # line in the baseline file (for error messages)

    def matches(self, diag: Diagnostic) -> bool:
        if self.rule_id != diag.rule_id:
            return False
        if not _path_matches(self.path, diag.path):
            return False
        return self.symbol == "*" or self.symbol == diag.symbol

    def render(self) -> str:
        return (
            f"{self.rule_id} {self.path} {self.symbol}"
            f"  # {self.justification}"
        )


def _normalize(path: str) -> str:
    return str(PurePosixPath(Path(path).as_posix()))


def _path_matches(pattern: str, actual: str) -> bool:
    """Suffix match on whole path components."""
    pat = _normalize(pattern).lstrip("./")
    act = _normalize(actual)
    return act == pat or act.endswith("/" + pat)


class Baseline:
    """A parsed suppression file (possibly empty)."""

    def __init__(
        self, entries: Sequence[BaselineEntry] = (), path: Optional[Path] = None
    ) -> None:
        self.entries: List[BaselineEntry] = list(entries)
        self.path = path

    # -- construction --------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        entries = []
        for lineno, raw in enumerate(
            Path(path).read_text().splitlines(), start=1
        ):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if "#" in line:
                spec, justification = line.split("#", 1)
                justification = justification.strip()
            else:
                spec, justification = line, ""
            parts = spec.split()
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{lineno}: expected '<rule-id> <path> <symbol>"
                    f"  # justification', got {raw!r}"
                )
            rule_id, target, symbol = parts
            if rule_id not in RULES:
                raise ValueError(
                    f"{path}:{lineno}: unknown rule id {rule_id!r}"
                )
            if not justification:
                raise ValueError(
                    f"{path}:{lineno}: suppression for {rule_id} needs a "
                    f"'# justification' comment"
                )
            if justification.lower().startswith("todo"):
                # The --write-baseline placeholder. Accepting it would let
                # "write the baseline, never explain it" become permanent.
                raise ValueError(
                    f"{path}:{lineno}: suppression for {rule_id} still has "
                    f"a TODO-placeholder justification ({justification!r}); "
                    f"replace it with the actual reason"
                )
            entries.append(
                BaselineEntry(rule_id, target, symbol, justification, lineno)
            )
        return cls(entries, path=Path(path))

    @classmethod
    def from_diagnostics(
        cls, diagnostics: Iterable[Diagnostic], repo_root: Optional[Path] = None
    ) -> "Baseline":
        """A baseline accepting every given finding (``--write-baseline``)."""
        entries = []
        seen = set()
        for diag in diagnostics:
            path = diag.path
            if repo_root is not None:
                try:
                    path = str(Path(path).resolve().relative_to(
                        Path(repo_root).resolve()
                    ))
                except ValueError:
                    pass
            key = (diag.rule_id, _normalize(path), diag.symbol or "*")
            if key in seen:
                continue
            seen.add(key)
            entries.append(
                BaselineEntry(
                    diag.rule_id, _normalize(path), diag.symbol or "*",
                    "TODO: justify this suppression",
                )
            )
        return cls(entries)

    # -- use -----------------------------------------------------------------
    def match(self, diag: Diagnostic) -> Optional[BaselineEntry]:
        for entry in self.entries:
            if entry.matches(diag):
                return entry
        return None

    def save(self, path: Path) -> Path:
        path = Path(path)
        lines = [
            "# repro lint baseline — intentional, justified exceptions.",
            "# Syntax: <rule-id> <path> <symbol-or-*>  # justification",
            "",
        ]
        lines += [e.render() for e in self.entries]
        path.write_text("\n".join(lines) + "\n")
        return path

    def __len__(self) -> int:
        return len(self.entries)


def find_baseline(start: Path) -> Optional[Path]:
    """Search ``start`` and its ancestors for a baseline file."""
    start = Path(start).resolve()
    if start.is_file():
        start = start.parent
    for directory in (start, *start.parents):
        candidate = directory / BASELINE_FILENAME
        if candidate.is_file():
            return candidate
    return None
